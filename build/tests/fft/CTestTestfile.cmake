# CMake generated Testfile for 
# Source directory: /root/repo/tests/fft
# Build directory: /root/repo/build/tests/fft
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_fft]=] "/root/repo/build/tests/fft/test_fft")
set_tests_properties([=[test_fft]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/fft/CMakeLists.txt;1;fx_add_test;/root/repo/tests/fft/CMakeLists.txt;0;")
