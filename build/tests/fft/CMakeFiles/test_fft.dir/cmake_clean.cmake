file(REMOVE_RECURSE
  "CMakeFiles/test_fft.dir/test_gamma_cache.cpp.o"
  "CMakeFiles/test_fft.dir/test_gamma_cache.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_good_size.cpp.o"
  "CMakeFiles/test_fft.dir/test_good_size.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_plan1d.cpp.o"
  "CMakeFiles/test_fft.dir/test_plan1d.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_plan1d_layouts.cpp.o"
  "CMakeFiles/test_fft.dir/test_plan1d_layouts.cpp.o.d"
  "CMakeFiles/test_fft.dir/test_plan2d3d.cpp.o"
  "CMakeFiles/test_fft.dir/test_plan2d3d.cpp.o.d"
  "test_fft"
  "test_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
