
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fft/test_gamma_cache.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_gamma_cache.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_gamma_cache.cpp.o.d"
  "/root/repo/tests/fft/test_good_size.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_good_size.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_good_size.cpp.o.d"
  "/root/repo/tests/fft/test_plan1d.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_plan1d.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_plan1d.cpp.o.d"
  "/root/repo/tests/fft/test_plan1d_layouts.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_plan1d_layouts.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_plan1d_layouts.cpp.o.d"
  "/root/repo/tests/fft/test_plan2d3d.cpp" "tests/fft/CMakeFiles/test_fft.dir/test_plan2d3d.cpp.o" "gcc" "tests/fft/CMakeFiles/test_fft.dir/test_plan2d3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fft/CMakeFiles/fx_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
