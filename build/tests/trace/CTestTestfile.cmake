# CMake generated Testfile for 
# Source directory: /root/repo/tests/trace
# Build directory: /root/repo/build/tests/trace
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_trace]=] "/root/repo/build/tests/trace/test_trace")
set_tests_properties([=[test_trace]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/trace/CMakeLists.txt;1;fx_add_test;/root/repo/tests/trace/CMakeLists.txt;0;")
