file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/test_analysis.cpp.o"
  "CMakeFiles/test_trace.dir/test_analysis.cpp.o.d"
  "CMakeFiles/test_trace.dir/test_report.cpp.o"
  "CMakeFiles/test_trace.dir/test_report.cpp.o.d"
  "CMakeFiles/test_trace.dir/test_timeline.cpp.o"
  "CMakeFiles/test_trace.dir/test_timeline.cpp.o.d"
  "CMakeFiles/test_trace.dir/test_trace_io.cpp.o"
  "CMakeFiles/test_trace.dir/test_trace_io.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
