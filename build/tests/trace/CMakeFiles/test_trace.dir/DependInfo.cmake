
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/test_analysis.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_analysis.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/trace/test_report.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_report.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_report.cpp.o.d"
  "/root/repo/tests/trace/test_timeline.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_timeline.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/trace/test_trace_io.cpp" "tests/trace/CMakeFiles/test_trace.dir/test_trace_io.cpp.o" "gcc" "tests/trace/CMakeFiles/test_trace.dir/test_trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/fx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
