# Empty dependencies file for test_pw.
# This may be replaced when dependencies are built.
