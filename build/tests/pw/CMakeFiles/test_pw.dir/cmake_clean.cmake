file(REMOVE_RECURSE
  "CMakeFiles/test_pw.dir/test_gvectors_grid.cpp.o"
  "CMakeFiles/test_pw.dir/test_gvectors_grid.cpp.o.d"
  "CMakeFiles/test_pw.dir/test_sticks.cpp.o"
  "CMakeFiles/test_pw.dir/test_sticks.cpp.o.d"
  "test_pw"
  "test_pw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
