
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pw/test_gvectors_grid.cpp" "tests/pw/CMakeFiles/test_pw.dir/test_gvectors_grid.cpp.o" "gcc" "tests/pw/CMakeFiles/test_pw.dir/test_gvectors_grid.cpp.o.d"
  "/root/repo/tests/pw/test_sticks.cpp" "tests/pw/CMakeFiles/test_pw.dir/test_sticks.cpp.o" "gcc" "tests/pw/CMakeFiles/test_pw.dir/test_sticks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pw/CMakeFiles/fx_pw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fx_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
