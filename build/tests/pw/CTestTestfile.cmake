# CMake generated Testfile for 
# Source directory: /root/repo/tests/pw
# Build directory: /root/repo/build/tests/pw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_pw]=] "/root/repo/build/tests/pw/test_pw")
set_tests_properties([=[test_pw]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/pw/CMakeLists.txt;1;fx_add_test;/root/repo/tests/pw/CMakeLists.txt;0;")
