# CMake generated Testfile for 
# Source directory: /root/repo/tests/fftx
# Build directory: /root/repo/build/tests/fftx
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_fftx]=] "/root/repo/build/tests/fftx/test_fftx")
set_tests_properties([=[test_fftx]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/fftx/CMakeLists.txt;1;fx_add_test;/root/repo/tests/fftx/CMakeLists.txt;0;")
