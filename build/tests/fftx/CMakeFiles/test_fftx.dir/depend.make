# Empty dependencies file for test_fftx.
# This may be replaced when dependencies are built.
