file(REMOVE_RECURSE
  "CMakeFiles/test_fftx.dir/test_descriptor.cpp.o"
  "CMakeFiles/test_fftx.dir/test_descriptor.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_grid_fft.cpp.o"
  "CMakeFiles/test_fftx.dir/test_grid_fft.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_pencil_fft.cpp.o"
  "CMakeFiles/test_fftx.dir/test_pencil_fft.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_pipeline.cpp.o"
  "CMakeFiles/test_fftx.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_pipeline_extras.cpp.o"
  "CMakeFiles/test_fftx.dir/test_pipeline_extras.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_random_configs.cpp.o"
  "CMakeFiles/test_fftx.dir/test_random_configs.cpp.o.d"
  "CMakeFiles/test_fftx.dir/test_window_stress.cpp.o"
  "CMakeFiles/test_fftx.dir/test_window_stress.cpp.o.d"
  "test_fftx"
  "test_fftx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fftx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
