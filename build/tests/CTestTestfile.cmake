# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("fft")
subdirs("simmpi")
subdirs("tasking")
subdirs("pw")
subdirs("trace")
subdirs("fftx")
subdirs("perfmodel")
