# CMake generated Testfile for 
# Source directory: /root/repo/tests/perfmodel
# Build directory: /root/repo/build/tests/perfmodel
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_perfmodel]=] "/root/repo/build/tests/perfmodel/test_perfmodel")
set_tests_properties([=[test_perfmodel]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/perfmodel/CMakeLists.txt;1;fx_add_test;/root/repo/tests/perfmodel/CMakeLists.txt;0;")
