file(REMOVE_RECURSE
  "CMakeFiles/test_perfmodel.dir/test_backend_consistency.cpp.o"
  "CMakeFiles/test_perfmodel.dir/test_backend_consistency.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/test_machine.cpp.o"
  "CMakeFiles/test_perfmodel.dir/test_machine.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/test_program.cpp.o"
  "CMakeFiles/test_perfmodel.dir/test_program.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/test_simulator.cpp.o"
  "CMakeFiles/test_perfmodel.dir/test_simulator.cpp.o.d"
  "test_perfmodel"
  "test_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
