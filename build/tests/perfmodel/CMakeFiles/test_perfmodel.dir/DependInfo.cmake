
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/perfmodel/test_backend_consistency.cpp" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_backend_consistency.cpp.o" "gcc" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_backend_consistency.cpp.o.d"
  "/root/repo/tests/perfmodel/test_machine.cpp" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_machine.cpp.o" "gcc" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_machine.cpp.o.d"
  "/root/repo/tests/perfmodel/test_program.cpp" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_program.cpp.o" "gcc" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_program.cpp.o.d"
  "/root/repo/tests/perfmodel/test_simulator.cpp" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_simulator.cpp.o" "gcc" "tests/perfmodel/CMakeFiles/test_perfmodel.dir/test_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/fx_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/fftx/CMakeFiles/fx_fftx.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pw/CMakeFiles/fx_pw.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fx_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/fx_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
