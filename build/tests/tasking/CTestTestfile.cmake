# CMake generated Testfile for 
# Source directory: /root/repo/tests/tasking
# Build directory: /root/repo/build/tests/tasking
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_tasking]=] "/root/repo/build/tests/tasking/test_tasking")
set_tests_properties([=[test_tasking]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/tasking/CMakeLists.txt;1;fx_add_test;/root/repo/tests/tasking/CMakeLists.txt;0;")
