
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tasking/test_dependencies.cpp" "tests/tasking/CMakeFiles/test_tasking.dir/test_dependencies.cpp.o" "gcc" "tests/tasking/CMakeFiles/test_tasking.dir/test_dependencies.cpp.o.d"
  "/root/repo/tests/tasking/test_priority.cpp" "tests/tasking/CMakeFiles/test_tasking.dir/test_priority.cpp.o" "gcc" "tests/tasking/CMakeFiles/test_tasking.dir/test_priority.cpp.o.d"
  "/root/repo/tests/tasking/test_taskloop_stress.cpp" "tests/tasking/CMakeFiles/test_tasking.dir/test_taskloop_stress.cpp.o" "gcc" "tests/tasking/CMakeFiles/test_tasking.dir/test_taskloop_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasking/CMakeFiles/fx_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
