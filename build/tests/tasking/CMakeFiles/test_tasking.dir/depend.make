# Empty dependencies file for test_tasking.
# This may be replaced when dependencies are built.
