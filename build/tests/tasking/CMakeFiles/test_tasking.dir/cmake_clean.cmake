file(REMOVE_RECURSE
  "CMakeFiles/test_tasking.dir/test_dependencies.cpp.o"
  "CMakeFiles/test_tasking.dir/test_dependencies.cpp.o.d"
  "CMakeFiles/test_tasking.dir/test_priority.cpp.o"
  "CMakeFiles/test_tasking.dir/test_priority.cpp.o.d"
  "CMakeFiles/test_tasking.dir/test_taskloop_stress.cpp.o"
  "CMakeFiles/test_tasking.dir/test_taskloop_stress.cpp.o.d"
  "test_tasking"
  "test_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
