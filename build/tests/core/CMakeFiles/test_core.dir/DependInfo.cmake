
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_error.cpp" "tests/core/CMakeFiles/test_core.dir/test_error.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_error.cpp.o.d"
  "/root/repo/tests/core/test_rng.cpp" "tests/core/CMakeFiles/test_core.dir/test_rng.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_rng.cpp.o.d"
  "/root/repo/tests/core/test_stats.cpp" "tests/core/CMakeFiles/test_core.dir/test_stats.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_stats.cpp.o.d"
  "/root/repo/tests/core/test_table_csv.cpp" "tests/core/CMakeFiles/test_core.dir/test_table_csv.cpp.o" "gcc" "tests/core/CMakeFiles/test_core.dir/test_table_csv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
