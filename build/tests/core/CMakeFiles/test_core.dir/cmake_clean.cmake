file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_error.cpp.o"
  "CMakeFiles/test_core.dir/test_error.cpp.o.d"
  "CMakeFiles/test_core.dir/test_rng.cpp.o"
  "CMakeFiles/test_core.dir/test_rng.cpp.o.d"
  "CMakeFiles/test_core.dir/test_stats.cpp.o"
  "CMakeFiles/test_core.dir/test_stats.cpp.o.d"
  "CMakeFiles/test_core.dir/test_table_csv.cpp.o"
  "CMakeFiles/test_core.dir/test_table_csv.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
