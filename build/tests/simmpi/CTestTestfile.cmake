# CMake generated Testfile for 
# Source directory: /root/repo/tests/simmpi
# Build directory: /root/repo/build/tests/simmpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_simmpi]=] "/root/repo/build/tests/simmpi/test_simmpi")
set_tests_properties([=[test_simmpi]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/simmpi/CMakeLists.txt;1;fx_add_test;/root/repo/tests/simmpi/CMakeLists.txt;0;")
