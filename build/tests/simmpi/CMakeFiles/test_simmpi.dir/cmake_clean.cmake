file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi.dir/test_collectives.cpp.o"
  "CMakeFiles/test_simmpi.dir/test_collectives.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/test_nonblocking.cpp.o"
  "CMakeFiles/test_simmpi.dir/test_nonblocking.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/test_rooted.cpp.o"
  "CMakeFiles/test_simmpi.dir/test_rooted.cpp.o.d"
  "CMakeFiles/test_simmpi.dir/test_tags_split_p2p.cpp.o"
  "CMakeFiles/test_simmpi.dir/test_tags_split_p2p.cpp.o.d"
  "test_simmpi"
  "test_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
