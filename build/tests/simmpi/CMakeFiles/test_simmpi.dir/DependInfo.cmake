
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simmpi/test_collectives.cpp" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_collectives.cpp.o" "gcc" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_collectives.cpp.o.d"
  "/root/repo/tests/simmpi/test_nonblocking.cpp" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_nonblocking.cpp.o" "gcc" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_nonblocking.cpp.o.d"
  "/root/repo/tests/simmpi/test_rooted.cpp" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_rooted.cpp.o" "gcc" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_rooted.cpp.o.d"
  "/root/repo/tests/simmpi/test_tags_split_p2p.cpp" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_tags_split_p2p.cpp.o" "gcc" "tests/simmpi/CMakeFiles/test_simmpi.dir/test_tags_split_p2p.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
