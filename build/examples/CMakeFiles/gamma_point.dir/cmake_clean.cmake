file(REMOVE_RECURSE
  "CMakeFiles/gamma_point.dir/gamma_point.cpp.o"
  "CMakeFiles/gamma_point.dir/gamma_point.cpp.o.d"
  "gamma_point"
  "gamma_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gamma_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
