# Empty dependencies file for gamma_point.
# This may be replaced when dependencies are built.
