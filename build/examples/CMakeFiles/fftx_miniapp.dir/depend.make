# Empty dependencies file for fftx_miniapp.
# This may be replaced when dependencies are built.
