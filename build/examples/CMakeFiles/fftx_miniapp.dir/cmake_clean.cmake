file(REMOVE_RECURSE
  "CMakeFiles/fftx_miniapp.dir/fftx_miniapp.cpp.o"
  "CMakeFiles/fftx_miniapp.dir/fftx_miniapp.cpp.o.d"
  "fftx_miniapp"
  "fftx_miniapp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fftx_miniapp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
