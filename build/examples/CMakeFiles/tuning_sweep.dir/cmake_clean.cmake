file(REMOVE_RECURSE
  "CMakeFiles/tuning_sweep.dir/tuning_sweep.cpp.o"
  "CMakeFiles/tuning_sweep.dir/tuning_sweep.cpp.o.d"
  "tuning_sweep"
  "tuning_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
