file(REMOVE_RECURSE
  "CMakeFiles/charge_density.dir/charge_density.cpp.o"
  "CMakeFiles/charge_density.dir/charge_density.cpp.o.d"
  "charge_density"
  "charge_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charge_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
