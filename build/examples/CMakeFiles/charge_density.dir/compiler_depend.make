# Empty compiler generated dependencies file for charge_density.
# This may be replaced when dependencies are built.
