file(REMOVE_RECURSE
  "CMakeFiles/qe_band_loop.dir/qe_band_loop.cpp.o"
  "CMakeFiles/qe_band_loop.dir/qe_band_loop.cpp.o.d"
  "qe_band_loop"
  "qe_band_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qe_band_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
