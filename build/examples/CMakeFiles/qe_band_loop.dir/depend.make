# Empty dependencies file for qe_band_loop.
# This may be replaced when dependencies are built.
