# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_qe_band_loop]=] "/root/repo/build/examples/qe_band_loop" "2" "8")
set_tests_properties([=[example_qe_band_loop]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_gamma_point]=] "/root/repo/build/examples/gamma_point")
set_tests_properties([=[example_gamma_point]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_charge_density]=] "/root/repo/build/examples/charge_density" "2" "3")
set_tests_properties([=[example_charge_density]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_miniapp_real]=] "/root/repo/build/examples/fftx_miniapp" "-backend" "real" "-nranks" "2" "-ecutwfc" "8" "-alat" "8" "-nbnd" "4" "-verify")
set_tests_properties([=[example_miniapp_real]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_miniapp_model]=] "/root/repo/build/examples/fftx_miniapp" "-backend" "model" "-nranks" "8" "-ntg" "4" "-nbnd" "16" "-ecutwfc" "20" "-alat" "12" "-table")
set_tests_properties([=[example_miniapp_model]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
