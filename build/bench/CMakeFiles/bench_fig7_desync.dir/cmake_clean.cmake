file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_desync.dir/bench_fig7_desync.cpp.o"
  "CMakeFiles/bench_fig7_desync.dir/bench_fig7_desync.cpp.o.d"
  "bench_fig7_desync"
  "bench_fig7_desync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_desync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
