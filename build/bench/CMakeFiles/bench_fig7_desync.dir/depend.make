# Empty dependencies file for bench_fig7_desync.
# This may be replaced when dependencies are built.
