# Empty dependencies file for bench_sphere_vs_dense.
# This may be replaced when dependencies are built.
