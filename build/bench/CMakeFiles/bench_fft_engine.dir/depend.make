# Empty dependencies file for bench_fft_engine.
# This may be replaced when dependencies are built.
