file(REMOVE_RECURSE
  "CMakeFiles/bench_pencil_vs_slab.dir/bench_pencil_vs_slab.cpp.o"
  "CMakeFiles/bench_pencil_vs_slab.dir/bench_pencil_vs_slab.cpp.o.d"
  "bench_pencil_vs_slab"
  "bench_pencil_vs_slab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pencil_vs_slab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
