# Empty compiler generated dependencies file for bench_pencil_vs_slab.
# This may be replaced when dependencies are built.
