file(REMOVE_RECURSE
  "CMakeFiles/bench_real_pipeline.dir/bench_real_pipeline.cpp.o"
  "CMakeFiles/bench_real_pipeline.dir/bench_real_pipeline.cpp.o.d"
  "bench_real_pipeline"
  "bench_real_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
