# Empty dependencies file for bench_table1_efficiency.
# This may be replaced when dependencies are built.
