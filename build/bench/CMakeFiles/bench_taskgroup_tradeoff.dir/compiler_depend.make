# Empty compiler generated dependencies file for bench_taskgroup_tradeoff.
# This may be replaced when dependencies are built.
