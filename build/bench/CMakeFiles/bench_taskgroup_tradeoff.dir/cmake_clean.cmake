file(REMOVE_RECURSE
  "CMakeFiles/bench_taskgroup_tradeoff.dir/bench_taskgroup_tradeoff.cpp.o"
  "CMakeFiles/bench_taskgroup_tradeoff.dir/bench_taskgroup_tradeoff.cpp.o.d"
  "bench_taskgroup_tradeoff"
  "bench_taskgroup_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taskgroup_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
