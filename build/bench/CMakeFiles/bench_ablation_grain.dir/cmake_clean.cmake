file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grain.dir/bench_ablation_grain.cpp.o"
  "CMakeFiles/bench_ablation_grain.dir/bench_ablation_grain.cpp.o.d"
  "bench_ablation_grain"
  "bench_ablation_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
