# Empty compiler generated dependencies file for bench_ablation_grain.
# This may be replaced when dependencies are built.
