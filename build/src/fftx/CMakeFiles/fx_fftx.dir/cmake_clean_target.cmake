file(REMOVE_RECURSE
  "libfx_fftx.a"
)
