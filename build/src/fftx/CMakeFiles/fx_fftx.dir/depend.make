# Empty dependencies file for fx_fftx.
# This may be replaced when dependencies are built.
