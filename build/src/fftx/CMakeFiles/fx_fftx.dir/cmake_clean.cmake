file(REMOVE_RECURSE
  "CMakeFiles/fx_fftx.dir/descriptor.cpp.o"
  "CMakeFiles/fx_fftx.dir/descriptor.cpp.o.d"
  "CMakeFiles/fx_fftx.dir/grid_fft.cpp.o"
  "CMakeFiles/fx_fftx.dir/grid_fft.cpp.o.d"
  "CMakeFiles/fx_fftx.dir/pencil_fft.cpp.o"
  "CMakeFiles/fx_fftx.dir/pencil_fft.cpp.o.d"
  "CMakeFiles/fx_fftx.dir/pipeline.cpp.o"
  "CMakeFiles/fx_fftx.dir/pipeline.cpp.o.d"
  "CMakeFiles/fx_fftx.dir/reference.cpp.o"
  "CMakeFiles/fx_fftx.dir/reference.cpp.o.d"
  "libfx_fftx.a"
  "libfx_fftx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_fftx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
