
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fftx/descriptor.cpp" "src/fftx/CMakeFiles/fx_fftx.dir/descriptor.cpp.o" "gcc" "src/fftx/CMakeFiles/fx_fftx.dir/descriptor.cpp.o.d"
  "/root/repo/src/fftx/grid_fft.cpp" "src/fftx/CMakeFiles/fx_fftx.dir/grid_fft.cpp.o" "gcc" "src/fftx/CMakeFiles/fx_fftx.dir/grid_fft.cpp.o.d"
  "/root/repo/src/fftx/pencil_fft.cpp" "src/fftx/CMakeFiles/fx_fftx.dir/pencil_fft.cpp.o" "gcc" "src/fftx/CMakeFiles/fx_fftx.dir/pencil_fft.cpp.o.d"
  "/root/repo/src/fftx/pipeline.cpp" "src/fftx/CMakeFiles/fx_fftx.dir/pipeline.cpp.o" "gcc" "src/fftx/CMakeFiles/fx_fftx.dir/pipeline.cpp.o.d"
  "/root/repo/src/fftx/reference.cpp" "src/fftx/CMakeFiles/fx_fftx.dir/reference.cpp.o" "gcc" "src/fftx/CMakeFiles/fx_fftx.dir/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fx_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/pw/CMakeFiles/fx_pw.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/fx_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
