file(REMOVE_RECURSE
  "CMakeFiles/fx_fft.dir/bluestein.cpp.o"
  "CMakeFiles/fx_fft.dir/bluestein.cpp.o.d"
  "CMakeFiles/fx_fft.dir/dft_ref.cpp.o"
  "CMakeFiles/fx_fft.dir/dft_ref.cpp.o.d"
  "CMakeFiles/fx_fft.dir/gamma.cpp.o"
  "CMakeFiles/fx_fft.dir/gamma.cpp.o.d"
  "CMakeFiles/fx_fft.dir/good_size.cpp.o"
  "CMakeFiles/fx_fft.dir/good_size.cpp.o.d"
  "CMakeFiles/fx_fft.dir/plan1d.cpp.o"
  "CMakeFiles/fx_fft.dir/plan1d.cpp.o.d"
  "CMakeFiles/fx_fft.dir/plan2d.cpp.o"
  "CMakeFiles/fx_fft.dir/plan2d.cpp.o.d"
  "CMakeFiles/fx_fft.dir/plan3d.cpp.o"
  "CMakeFiles/fx_fft.dir/plan3d.cpp.o.d"
  "CMakeFiles/fx_fft.dir/plan_cache.cpp.o"
  "CMakeFiles/fx_fft.dir/plan_cache.cpp.o.d"
  "libfx_fft.a"
  "libfx_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
