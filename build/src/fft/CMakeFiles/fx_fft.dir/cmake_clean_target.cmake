file(REMOVE_RECURSE
  "libfx_fft.a"
)
