
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/bluestein.cpp" "src/fft/CMakeFiles/fx_fft.dir/bluestein.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/bluestein.cpp.o.d"
  "/root/repo/src/fft/dft_ref.cpp" "src/fft/CMakeFiles/fx_fft.dir/dft_ref.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/dft_ref.cpp.o.d"
  "/root/repo/src/fft/gamma.cpp" "src/fft/CMakeFiles/fx_fft.dir/gamma.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/gamma.cpp.o.d"
  "/root/repo/src/fft/good_size.cpp" "src/fft/CMakeFiles/fx_fft.dir/good_size.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/good_size.cpp.o.d"
  "/root/repo/src/fft/plan1d.cpp" "src/fft/CMakeFiles/fx_fft.dir/plan1d.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/plan1d.cpp.o.d"
  "/root/repo/src/fft/plan2d.cpp" "src/fft/CMakeFiles/fx_fft.dir/plan2d.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/plan2d.cpp.o.d"
  "/root/repo/src/fft/plan3d.cpp" "src/fft/CMakeFiles/fx_fft.dir/plan3d.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/plan3d.cpp.o.d"
  "/root/repo/src/fft/plan_cache.cpp" "src/fft/CMakeFiles/fx_fft.dir/plan_cache.cpp.o" "gcc" "src/fft/CMakeFiles/fx_fft.dir/plan_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
