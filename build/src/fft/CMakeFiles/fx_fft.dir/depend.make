# Empty dependencies file for fx_fft.
# This may be replaced when dependencies are built.
