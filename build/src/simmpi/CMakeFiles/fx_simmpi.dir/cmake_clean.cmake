file(REMOVE_RECURSE
  "CMakeFiles/fx_simmpi.dir/comm.cpp.o"
  "CMakeFiles/fx_simmpi.dir/comm.cpp.o.d"
  "libfx_simmpi.a"
  "libfx_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
