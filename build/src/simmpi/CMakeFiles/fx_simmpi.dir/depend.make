# Empty dependencies file for fx_simmpi.
# This may be replaced when dependencies are built.
