file(REMOVE_RECURSE
  "libfx_simmpi.a"
)
