file(REMOVE_RECURSE
  "libfx_perfmodel.a"
)
