# Empty compiler generated dependencies file for fx_perfmodel.
# This may be replaced when dependencies are built.
