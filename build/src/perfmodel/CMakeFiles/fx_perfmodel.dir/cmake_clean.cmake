file(REMOVE_RECURSE
  "CMakeFiles/fx_perfmodel.dir/machine.cpp.o"
  "CMakeFiles/fx_perfmodel.dir/machine.cpp.o.d"
  "CMakeFiles/fx_perfmodel.dir/program.cpp.o"
  "CMakeFiles/fx_perfmodel.dir/program.cpp.o.d"
  "CMakeFiles/fx_perfmodel.dir/simulator.cpp.o"
  "CMakeFiles/fx_perfmodel.dir/simulator.cpp.o.d"
  "libfx_perfmodel.a"
  "libfx_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
