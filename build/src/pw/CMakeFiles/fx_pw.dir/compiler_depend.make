# Empty compiler generated dependencies file for fx_pw.
# This may be replaced when dependencies are built.
