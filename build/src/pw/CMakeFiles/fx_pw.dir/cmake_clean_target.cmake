file(REMOVE_RECURSE
  "libfx_pw.a"
)
