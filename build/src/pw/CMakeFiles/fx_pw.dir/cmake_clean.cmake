file(REMOVE_RECURSE
  "CMakeFiles/fx_pw.dir/grid.cpp.o"
  "CMakeFiles/fx_pw.dir/grid.cpp.o.d"
  "CMakeFiles/fx_pw.dir/gvectors.cpp.o"
  "CMakeFiles/fx_pw.dir/gvectors.cpp.o.d"
  "CMakeFiles/fx_pw.dir/sticks.cpp.o"
  "CMakeFiles/fx_pw.dir/sticks.cpp.o.d"
  "CMakeFiles/fx_pw.dir/wavefunction.cpp.o"
  "CMakeFiles/fx_pw.dir/wavefunction.cpp.o.d"
  "libfx_pw.a"
  "libfx_pw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_pw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
