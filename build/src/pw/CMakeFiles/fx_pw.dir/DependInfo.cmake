
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pw/grid.cpp" "src/pw/CMakeFiles/fx_pw.dir/grid.cpp.o" "gcc" "src/pw/CMakeFiles/fx_pw.dir/grid.cpp.o.d"
  "/root/repo/src/pw/gvectors.cpp" "src/pw/CMakeFiles/fx_pw.dir/gvectors.cpp.o" "gcc" "src/pw/CMakeFiles/fx_pw.dir/gvectors.cpp.o.d"
  "/root/repo/src/pw/sticks.cpp" "src/pw/CMakeFiles/fx_pw.dir/sticks.cpp.o" "gcc" "src/pw/CMakeFiles/fx_pw.dir/sticks.cpp.o.d"
  "/root/repo/src/pw/wavefunction.cpp" "src/pw/CMakeFiles/fx_pw.dir/wavefunction.cpp.o" "gcc" "src/pw/CMakeFiles/fx_pw.dir/wavefunction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/fx_fft.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
