file(REMOVE_RECURSE
  "libfx_trace.a"
)
