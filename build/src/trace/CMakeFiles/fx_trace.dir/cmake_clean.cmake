file(REMOVE_RECURSE
  "CMakeFiles/fx_trace.dir/analysis.cpp.o"
  "CMakeFiles/fx_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/fx_trace.dir/phases.cpp.o"
  "CMakeFiles/fx_trace.dir/phases.cpp.o.d"
  "CMakeFiles/fx_trace.dir/report.cpp.o"
  "CMakeFiles/fx_trace.dir/report.cpp.o.d"
  "CMakeFiles/fx_trace.dir/timeline.cpp.o"
  "CMakeFiles/fx_trace.dir/timeline.cpp.o.d"
  "CMakeFiles/fx_trace.dir/trace_io.cpp.o"
  "CMakeFiles/fx_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/fx_trace.dir/tracer.cpp.o"
  "CMakeFiles/fx_trace.dir/tracer.cpp.o.d"
  "libfx_trace.a"
  "libfx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
