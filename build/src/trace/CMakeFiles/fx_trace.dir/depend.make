# Empty dependencies file for fx_trace.
# This may be replaced when dependencies are built.
