
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/fx_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/phases.cpp" "src/trace/CMakeFiles/fx_trace.dir/phases.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/phases.cpp.o.d"
  "/root/repo/src/trace/report.cpp" "src/trace/CMakeFiles/fx_trace.dir/report.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/report.cpp.o.d"
  "/root/repo/src/trace/timeline.cpp" "src/trace/CMakeFiles/fx_trace.dir/timeline.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/timeline.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/fx_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/fx_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/fx_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/fx_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
