# Empty compiler generated dependencies file for fx_tasking.
# This may be replaced when dependencies are built.
