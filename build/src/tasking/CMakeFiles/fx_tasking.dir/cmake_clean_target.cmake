file(REMOVE_RECURSE
  "libfx_tasking.a"
)
