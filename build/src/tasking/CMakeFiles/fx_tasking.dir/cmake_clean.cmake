file(REMOVE_RECURSE
  "CMakeFiles/fx_tasking.dir/runtime.cpp.o"
  "CMakeFiles/fx_tasking.dir/runtime.cpp.o.d"
  "libfx_tasking.a"
  "libfx_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
