file(REMOVE_RECURSE
  "libfx_core.a"
)
