# Empty dependencies file for fx_core.
# This may be replaced when dependencies are built.
