file(REMOVE_RECURSE
  "CMakeFiles/fx_core.dir/csv.cpp.o"
  "CMakeFiles/fx_core.dir/csv.cpp.o.d"
  "CMakeFiles/fx_core.dir/stats.cpp.o"
  "CMakeFiles/fx_core.dir/stats.cpp.o.d"
  "CMakeFiles/fx_core.dir/table.cpp.o"
  "CMakeFiles/fx_core.dir/table.cpp.o.d"
  "libfx_core.a"
  "libfx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
