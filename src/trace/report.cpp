#include "trace/report.hpp"

#include <sstream>

#include "core/error.hpp"
#include "core/format.hpp"
#include "core/table.hpp"

namespace fx::trace {

std::string render_efficiency_report(const std::string& title,
                                     const std::vector<ReportEntry>& entries) {
  FX_CHECK(!entries.empty(), "report needs at least one entry");
  std::vector<ScalabilityFactors> scal;
  scal.reserve(entries.size());
  for (const auto& e : entries) {
    scal.push_back(scale_against(entries.front().summary, e.summary));
  }

  core::TablePrinter t(title);
  std::vector<std::string> head{"metric"};
  for (const auto& e : entries) head.push_back(e.label);
  t.header(head);

  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> cells{name};
    for (std::size_t i = 0; i < entries.size(); ++i) {
      cells.push_back(core::pct(getter(i)));
    }
    t.row(cells);
  };
  row("Parallel efficiency",
      [&](std::size_t i) { return entries[i].summary.parallel_efficiency; });
  row("  Load Balance",
      [&](std::size_t i) { return entries[i].summary.load_balance; });
  row("  Communication Efficiency",
      [&](std::size_t i) { return entries[i].summary.comm_efficiency; });
  row("    Synchronization",
      [&](std::size_t i) { return entries[i].summary.sync_efficiency; });
  row("    Transfer",
      [&](std::size_t i) { return entries[i].summary.transfer_efficiency; });
  row("Computation Scalability",
      [&](std::size_t i) { return scal[i].computation_scalability; });
  row("  IPC Scalability",
      [&](std::size_t i) { return scal[i].ipc_scalability; });
  row("  Instructions Scalability",
      [&](std::size_t i) { return scal[i].instruction_scalability; });
  row("Global Efficiency",
      [&](std::size_t i) { return scal[i].global_efficiency; });

  std::vector<std::string> ipc{"avg IPC"};
  for (const auto& e : entries) {
    ipc.push_back(core::fixed(e.summary.avg_ipc, 3));
  }
  t.row(ipc);
  return t.str();
}

std::string render_efficiency_report(const std::string& title,
                                     const std::vector<std::string>& labels,
                                     const std::vector<const Tracer*>& tracers,
                                     double freq_ghz) {
  FX_CHECK(labels.size() == tracers.size(), "labels/tracers size mismatch");
  std::vector<ReportEntry> entries;
  entries.reserve(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    entries.push_back(
        ReportEntry{labels[i], analyze_efficiency(*tracers[i], freq_ghz)});
  }
  return render_efficiency_report(title, entries);
}

}  // namespace fx::trace
