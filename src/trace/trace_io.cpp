#include "trace/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace fx::trace {

namespace {

constexpr int kVersion = 1;

/// Hex-float formatting keeps doubles bit-exact through the round trip.
std::string hexd(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double(const std::string& tok) {
  return std::strtod(tok.c_str(), nullptr);
}

}  // namespace

void save_trace(const Tracer& tracer, std::ostream& os) {
  os << "fxtrace " << kVersion << ' ' << tracer.nranks() << '\n';
  for (const auto& e : tracer.compute_events()) {
    os << "C " << e.rank << ' ' << e.thread << ' '
       << static_cast<int>(e.phase) << ' ' << e.band << ' '
       << hexd(e.t_begin) << ' ' << hexd(e.t_end) << ' '
       << hexd(e.instructions) << '\n';
  }
  for (const auto& e : tracer.comm_events()) {
    os << "M " << e.rank << ' ' << e.thread << ' '
       << static_cast<int>(e.kind) << ' ' << e.comm_id << ' ' << e.comm_size
       << ' ' << e.tag << ' ' << e.bytes << ' ' << hexd(e.t_begin) << ' '
       << hexd(e.t_end) << '\n';
  }
  for (const auto& e : tracer.task_events()) {
    os << "T " << e.rank << ' ' << e.worker << ' ' << hexd(e.t_begin) << ' '
       << hexd(e.t_end) << ' ' << e.label << '\n';
  }
  FX_CHECK(os.good(), "trace write failed");
}

void save_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  FX_CHECK(os.is_open(), "cannot open trace file for writing: " + path);
  save_trace(tracer, os);
}

std::unique_ptr<Tracer> load_trace(std::istream& is) {
  std::string magic;
  int version = 0;
  int nranks = 0;
  is >> magic >> version >> nranks;
  FX_CHECK(magic == "fxtrace", "not an fxtrace file");
  FX_CHECK(version == kVersion, "unsupported fxtrace version");
  FX_CHECK(nranks >= 1, "corrupt fxtrace header");
  auto tracer = std::make_unique<Tracer>(nranks);

  std::string line;
  std::getline(is, line);  // rest of header line
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "C") {
      int rank = 0;
      int thread = 0;
      int phase = 0;
      int band = 0;
      std::string t0;
      std::string t1;
      std::string instr;
      ls >> rank >> thread >> phase >> band >> t0 >> t1 >> instr;
      FX_CHECK(!ls.fail(), "corrupt compute event: " + line);
      tracer->record_compute(ComputeEvent{
          rank, thread, static_cast<PhaseKind>(phase), band,
          parse_double(t0), parse_double(t1), parse_double(instr)});
    } else if (kind == "M") {
      int rank = 0;
      int thread = 0;
      int op = 0;
      int comm_id = 0;
      int comm_size = 0;
      int tag = 0;
      std::size_t bytes = 0;
      std::string t0;
      std::string t1;
      ls >> rank >> thread >> op >> comm_id >> comm_size >> tag >> bytes >>
          t0 >> t1;
      FX_CHECK(!ls.fail(), "corrupt comm event: " + line);
      tracer->record_comm(CommOpEvent{
          rank, thread, static_cast<mpi::CommOpKind>(op), comm_id, comm_size,
          tag, bytes, parse_double(t0), parse_double(t1)});
    } else if (kind == "T") {
      int rank = 0;
      int worker = 0;
      std::string t0;
      std::string t1;
      ls >> rank >> worker >> t0 >> t1;
      FX_CHECK(!ls.fail(), "corrupt task event: " + line);
      std::string label;
      std::getline(ls, label);
      if (!label.empty() && label.front() == ' ') label.erase(0, 1);
      tracer->record_task(TaskEvent{rank, worker, label, parse_double(t0),
                                    parse_double(t1)});
    } else {
      FX_CHECK(false, "unknown fxtrace record: " + line);
    }
  }
  return tracer;
}

std::unique_ptr<Tracer> load_trace(const std::string& path) {
  std::ifstream is(path);
  FX_CHECK(is.is_open(), "cannot open trace file: " + path);
  return load_trace(is);
}

}  // namespace fx::trace
