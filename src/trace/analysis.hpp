// The POP efficiency model (Rosas, Gimenez, Labarta: "Scalability
// Prediction for Fundamental Performance Factors") computed from traces --
// the analysis behind the paper's Tables I and II.
//
// Hierarchy (all factors multiplicative):
//
//   Global efficiency   = Parallel efficiency x Computation scalability
//   Parallel efficiency = Load balance x Communication efficiency
//   Comm efficiency     = Synchronization efficiency x Transfer efficiency
//   Comp scalability    = IPC scalability x Instruction scalability
//
// Definitions (paper Sec. III): a "row" is one execution stream -- an MPI
// rank in the original version, a (rank, worker-thread) pair in the task
// versions.  C_i is row i's accumulated computation time; T the total
// runtime.
//
//   Load balance        = avg_i(C_i) / max_i(C_i)
//   Comm efficiency     = max_i(C_i) / T
//   Transfer efficiency = T_ideal / T, with T_ideal the runtime on an
//                         instantaneous network.  We estimate the transfer
//                         part of each collective as the time after the
//                         *last* participant arrived (the remainder being
//                         synchronization wait), and T_ideal = T minus the
//                         average per-row transfer time -- a first-order
//                         estimator of the same quantity POP obtains by
//                         ideal-network replay.
//   Sync efficiency     = Comm efficiency / Transfer efficiency
//
// Scalability factors compare a run against the smallest run of its sweep:
//
//   Instruction scal.   = total_instructions_ref / total_instructions_run
//   IPC scalability     = IPC_run / IPC_ref
//   Computation scal.   = (ref total compute time) / (run total compute
//                         time), equal to the product of the previous two
//                         when the frequency is fixed.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/tracer.hpp"

namespace fx::trace {

/// Per-run efficiency factors and aggregates.
struct EfficiencySummary {
  int rows = 0;                 ///< execution streams observed
  double runtime = 0.0;         ///< t_max - t_min of the trace
  double total_compute = 0.0;   ///< sum over rows of C_i
  double max_compute = 0.0;     ///< max_i C_i
  double avg_compute = 0.0;     ///< avg_i C_i
  double total_instructions = 0.0;
  double avg_ipc = 0.0;         ///< total_instructions/(total_compute*freq)

  double load_balance = 1.0;
  double comm_efficiency = 1.0;
  double sync_efficiency = 1.0;
  double transfer_efficiency = 1.0;
  double parallel_efficiency = 1.0;
};

/// Scalability of `run` against the sweep's smallest configuration `ref`.
struct ScalabilityFactors {
  double computation_scalability = 1.0;
  double ipc_scalability = 1.0;
  double instruction_scalability = 1.0;
  double global_efficiency = 1.0;
};

/// Computes the per-run factors.  `freq_ghz` converts compute time to
/// cycles for the IPC aggregate (use the machine model's clock for model
/// traces; any consistent value works for relative real-trace analysis).
/// PhaseKind::Abft spans are classified as overhead, not computation: they
/// contribute neither to C_i nor to the instruction totals, so ABFT duty
/// cycles do not skew the factors.
EfficiencySummary analyze_efficiency(const Tracer& tracer, double freq_ghz);

/// Derives the cross-run factors of Tables I/II.
ScalabilityFactors scale_against(const EfficiencySummary& ref,
                                 const EfficiencySummary& run);

/// Duration-weighted mean IPC of one phase kind across the trace (the
/// paper's "main compute phase" IPC numbers in Sec. V use FftXy).
double mean_phase_ipc(const Tracer& tracer, PhaseKind kind, double freq_ghz);

}  // namespace fx::trace
