#include "trace/observatory.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "core/table.hpp"
#include "core/timer.hpp"
#include "trace/artifacts.hpp"

namespace fx::trace {

namespace {

/// fftx.obs.* registry mirrors (the in-object counters serve tests/reset;
/// these serve metrics dumps and the CI assertions).
struct ObsMetrics {
  core::Counter& phase_records;
  core::Counter& iterations;
  core::Counter& straggler_flags;
  core::Counter& drift_flags;
  core::Counter& incidents;
  core::Gauge& load_balance;
  core::Gauge& comm_efficiency;
};

ObsMetrics& obs_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static ObsMetrics m{reg.counter("fftx.obs.phase_records"),
                      reg.counter("fftx.obs.iterations"),
                      reg.counter("fftx.obs.straggler_flags"),
                      reg.counter("fftx.obs.drift_flags"),
                      reg.counter("fftx.obs.incidents"),
                      reg.gauge("fftx.obs.load_balance"),
                      reg.gauge("fftx.obs.comm_efficiency")};
  return m;
}

/// Attribution-column name: a PhaseKind, or the pseudo-phase "exchange"
/// for time spent inside collectives (index kNumPhaseKinds).
const char* obs_phase_name(int phase) {
  if (phase < 0) return "-";
  if (phase >= kNumPhaseKinds) return "exchange";
  return to_string(static_cast<PhaseKind>(phase));
}

constexpr int kMaxFlightDumps = 8;    ///< per process, incidents throttle
constexpr int kMaxIncidentReasons = 32;

}  // namespace

ObsMode default_obs_mode() {
  const char* v = std::getenv("FFTX_OBS");
  if (v == nullptr || *v == '\0') return ObsMode::Off;
  if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
    return ObsMode::Off;
  }
  if (std::strcmp(v, "watch") == 0 || std::strcmp(v, "1") == 0) {
    return ObsMode::Watch;
  }
  if (std::strcmp(v, "strict") == 0 || std::strcmp(v, "2") == 0) {
    return ObsMode::Strict;
  }
  core::invalid_env("FFTX_OBS", v, "off|watch|strict", "observatory");
}

int default_obs_ring() {
  int ring = 32;
  core::env_int_in("FFTX_OBS_RING", ring, 4, 1 << 24, "observatory");
  return ring;
}

const char* to_string(ObsMode mode) {
  switch (mode) {
    case ObsMode::Off:
      return "off";
    case ObsMode::Watch:
      return "watch";
    case ObsMode::Strict:
      return "strict";
  }
  return "?";
}

Observatory& Observatory::global() {
  // Leaked singleton: the incident sink installed below may fire from
  // watchdog threads during late shutdown, so the instance must outlive
  // every static destructor.
  static Observatory* g = [] {
    auto* obs = new Observatory();
    core::install_incident_sink(
        [obs](const std::string& reason) { obs->incident(reason); });
    return obs;
  }();
  return *g;
}

Observatory* obs_active() {
  Observatory& g = Observatory::global();
  return g.enabled() ? &g : nullptr;
}

Observatory::Observatory() {
  mode_.store(static_cast<int>(default_obs_mode()), std::memory_order_relaxed);
  ring_cap_ = default_obs_ring();
}

void Observatory::configure(ObsMode mode, int ring_capacity) {
  reset();
  std::lock_guard lock(mu_);
  if (ring_capacity > 0) ring_cap_ = std::max(4, ring_capacity);
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void Observatory::configure_detection(const Detection& d) {
  std::lock_guard lock(mu_);
  det_ = d;
}

void Observatory::reset() {
  std::lock_guard lock(mu_);
  nranks_ = 0;
  ntg_ = 1;
  run_depth_ = 0;
  expected_share_ = {};
  ewma_share_ = {};
  have_expected_ = false;
  cells_.clear();
  ring_.clear();
  done_count_.clear();
  last_straggler_.reset();
  incident_reasons_.clear();
  n_records_ = 0;
  n_iters_ = 0;
  n_straggler_ = 0;
  n_drift_ = 0;
  n_incidents_ = 0;
  strict_base_ = 0;
  records_mirrored_ = 0;
  ewma_lb_ = 1.0;
  ewma_ce_ = 1.0;
}

Observatory::Cell& Observatory::cell(int rank, PhaseKind phase) {
  const auto need =
      static_cast<std::size_t>(rank + 1) * kNumPhaseKinds;
  while (cells_.size() < need) cells_.push_back(std::make_unique<Cell>());
  return *cells_[static_cast<std::size_t>(rank) * kNumPhaseKinds +
                 static_cast<std::size_t>(phase)];
}

Observatory::IterationRecord* Observatory::slot_for(int iter) {
  if (ring_.empty() || iter < 0) return nullptr;
  const auto idx = static_cast<std::size_t>(
      (iter / ntg_) % static_cast<int>(ring_.size()));
  return &ring_[idx];
}

void Observatory::begin_run(
    int nranks, int ntg,
    const std::array<double, kNumPhaseKinds>& expected_share) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  if (run_depth_++ > 0) return;  // joining ranks of the same run
  nranks_ = std::max(1, nranks);
  ntg_ = std::max(1, ntg);
  // Fresh flight ring per run: iteration ordinals restart at 0, so stale
  // slots from a previous run would alias them.
  ring_.assign(static_cast<std::size_t>(ring_cap_), IterationRecord{});
  done_count_.assign(static_cast<std::size_t>(ring_cap_), 0);
  expected_share_ = expected_share;
  double sum = 0.0;
  for (const double s : expected_share_) sum += s;
  have_expected_ = sum > 0.0;
  if (have_expected_) {
    for (double& s : expected_share_) s /= sum;
  }
  strict_base_ = n_straggler_ + n_drift_ + n_incidents_;
}

void Observatory::end_run() {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  if (run_depth_ > 0) --run_depth_;
  obs_metrics().load_balance.set(ewma_lb_);
  obs_metrics().comm_efficiency.set(ewma_ce_);
  const std::uint64_t rec = n_records_.load(std::memory_order_relaxed);
  obs_metrics().phase_records.add(rec - records_mirrored_);
  records_mirrored_ = rec;
}

void Observatory::record_phase(int rank, PhaseKind phase, int iter,
                               double seconds) {
  if (!enabled() || rank < 0 || seconds < 0.0) return;
  std::lock_guard lock(mu_);
  // The registry mirror (fftx.obs.phase_records) is batched into end_run:
  // at task-per-FFT granularity this path runs per FFT call, and even one
  // extra relaxed atomic on a second cache line is measurable against the
  // <= 1 % overhead budget.
  n_records_.fetch_add(1, std::memory_order_relaxed);

  Cell& c = cell(rank, phase);
  ++c.count;
  c.total_s += seconds;
  const double delta = seconds - c.ewma_mean;
  c.ewma_mean += det_.ewma_alpha * delta;
  c.ewma_var =
      (1.0 - det_.ewma_alpha) * (c.ewma_var + det_.ewma_alpha * delta * delta);
  c.hist.record(seconds * 1e3);

  IterationRecord* rec = slot_for(iter);
  if (rec == nullptr || rec->iter != iter) return;
  const auto r = static_cast<std::size_t>(rank);
  if (r >= rec->ranks.size()) return;
  auto& rr = rec->ranks[r];
  rr.phase_s[static_cast<std::size_t>(phase)] += seconds;
  if (phase == PhaseKind::Abft) {
    rr.abft_s += seconds;
  } else if (phase == PhaseKind::TaskWait) {
    // Scheduling delay is neither work nor overhead: it competes with the
    // exchange column for straggler blame but never skews POP compute.
    rr.sched_s += seconds;
  } else {
    rr.compute_s += seconds;
  }
}

void Observatory::record_comm(int rank, int tag, double seconds) {
  if (!enabled() || rank < 0 || seconds < 0.0) return;
  std::lock_guard lock(mu_);
  IterationRecord* rec = slot_for(tag);
  if (rec == nullptr || rec->iter != tag) return;
  const auto r = static_cast<std::size_t>(rank);
  if (r >= rec->ranks.size()) return;
  rec->ranks[r].comm_s += seconds;
}

void Observatory::iteration_begin(int rank, int iter) {
  if (!enabled() || rank < 0) return;
  const double now = core::WallTimer::now();
  std::lock_guard lock(mu_);
  IterationRecord* rec = slot_for(iter);
  if (rec == nullptr) return;
  const auto idx = static_cast<std::size_t>(rec - ring_.data());
  if (rec->iter != iter) {
    // First rank in claims the slot (evicting whatever iteration aged out
    // of the ring -- that is the flight recorder's bounded-memory deal).
    *rec = IterationRecord{};
    rec->iter = iter;
    rec->t_begin = now;
    rec->t_end = now;
    rec->ranks.assign(static_cast<std::size_t>(nranks_), RankRecord{});
    done_count_[idx] = 0;
  } else {
    rec->t_begin = std::min(rec->t_begin, now);
  }
}

void Observatory::iteration_done(int rank, int iter) {
  if (!enabled() || rank < 0) return;
  const double now = core::WallTimer::now();
  std::lock_guard lock(mu_);
  IterationRecord* rec = slot_for(iter);
  if (rec == nullptr || rec->iter != iter) return;
  const auto idx = static_cast<std::size_t>(rec - ring_.data());
  rec->t_end = std::max(rec->t_end, now);
  if (++done_count_[idx] < nranks_) return;
  // Last rank out evaluates the whole iteration -- the deferred-verdict
  // pattern: no collective, just shared memory and the run's own ordering.
  rec->complete = true;
  n_iters_.fetch_add(1, std::memory_order_relaxed);
  obs_metrics().iterations.add();
  finalize_iteration(*rec);
}

void Observatory::finalize_iteration(IterationRecord& rec) {
  const auto n = rec.ranks.size();
  if (n == 0) return;

  // POP factors of this one iteration (trace/analysis definitions, ABFT
  // spans excluded from compute -- they are overhead, not work).
  double total_c = 0.0;
  double max_c = 0.0;
  std::vector<double> busy(n);  // compute + overhead + exchange per rank
  for (std::size_t r = 0; r < n; ++r) {
    const auto& rr = rec.ranks[r];
    total_c += rr.compute_s;
    max_c = std::max(max_c, rr.compute_s);
    busy[r] = rr.compute_s + rr.abft_s + rr.comm_s + rr.sched_s;
  }
  const double wall = std::max(0.0, rec.t_end - rec.t_begin);
  rec.load_balance = max_c > 0.0 ? (total_c / static_cast<double>(n)) / max_c
                                 : 1.0;
  rec.comm_efficiency = wall > 0.0 ? std::min(1.0, max_c / wall) : 1.0;
  const double a = det_.ewma_alpha;
  ewma_lb_ += a * (rec.load_balance - ewma_lb_);
  ewma_ce_ += a * (rec.comm_efficiency - ewma_ce_);

  // Straggler: the busiest rank against the median of its peers, with an
  // absolute floor so jitter on tiny grids never flags.
  if (n >= 2) {
    std::size_t worst = 0;
    for (std::size_t r = 1; r < n; ++r) {
      if (busy[r] > busy[worst]) worst = r;
    }
    std::vector<double> peers;
    peers.reserve(n - 1);
    for (std::size_t r = 0; r < n; ++r) {
      if (r != worst) peers.push_back(busy[r]);
    }
    std::sort(peers.begin(), peers.end());
    const double med = peers[peers.size() / 2];
    const double excess = busy[worst] - med;
    if (busy[worst] > det_.straggler_factor * med &&
        excess > det_.straggler_floor_s) {
      // Offending column: the largest per-phase excess of the straggler
      // over its peers' average, exchange time included (an injected
      // collective stall shows up there, not in any compute span).
      int worst_phase = kNumPhaseKinds;  // "exchange"
      double worst_excess = 0.0;
      for (int p = 0; p <= kNumPhaseKinds; ++p) {
        double mine = 0.0;
        double others = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
          const double v = p == kNumPhaseKinds
                               ? rec.ranks[r].comm_s
                               : rec.ranks[r].phase_s[static_cast<
                                     std::size_t>(p)];
          if (r == worst) {
            mine = v;
          } else {
            others += v;
          }
        }
        const double gap = mine - others / static_cast<double>(n - 1);
        if (gap > worst_excess) {
          worst_excess = gap;
          worst_phase = p;
        }
      }
      rec.straggler_rank = static_cast<int>(worst);
      rec.straggler_phase = worst_phase;
      last_straggler_ = StragglerFlag{rec.iter, static_cast<int>(worst),
                                      worst_phase, excess};
      n_straggler_.fetch_add(1, std::memory_order_relaxed);
      obs_metrics().straggler_flags.add();
      core::emit_instant(core::cat(
          "obs: straggler rank ", worst, " at iteration ", rec.iter, " (",
          obs_phase_name(worst_phase), " +",
          core::fixed(worst_excess * 1e3, 2), " ms, ",
          core::fixed(busy[worst] / std::max(med, 1e-12), 2), "x median)"));
    }
  }

  // Drift: a phase's rolling share of iteration compute against the model
  // expectation (the paper's contention signature -- one phase ballooning
  // under interference while the others hold).
  if (total_c > 0.0) {
    std::uint32_t mask = 0;
    for (int p = 0; p < kNumPhaseKinds; ++p) {
      if (static_cast<PhaseKind>(p) == PhaseKind::Abft ||
          static_cast<PhaseKind>(p) == PhaseKind::TaskWait) {
        continue;  // not compute: no model share, never a drift signal
      }
      double share = 0.0;
      for (const auto& rr : rec.ranks) {
        share += rr.phase_s[static_cast<std::size_t>(p)];
      }
      share /= total_c;
      auto& ew = ewma_share_[static_cast<std::size_t>(p)];
      ew += a * (share - ew);
      if (!have_expected_) continue;
      const double want = expected_share_[static_cast<std::size_t>(p)];
      if (ew > want * det_.drift_factor + det_.drift_margin) {
        mask |= 1u << static_cast<unsigned>(p);
      }
    }
    rec.drift_mask = mask;
    if (mask != 0) {
      n_drift_.fetch_add(1, std::memory_order_relaxed);
      obs_metrics().drift_flags.add();
    }
  }
}

void Observatory::incident(const std::string& reason) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  // Collectively-agreed faults (the ABFT verdict) are emitted by every
  // rank that completes the agreement, because a poisoned world can strand
  // any single designated emitter inside the collective before it speaks.
  // Identical consecutive reasons within one run coalesce to one incident.
  if (run_depth_ > 0 && !incident_reasons_.empty() &&
      incident_reasons_.back() == reason) {
    return;
  }
  n_incidents_.fetch_add(1, std::memory_order_relaxed);
  obs_metrics().incidents.add();
  if (incident_reasons_.size() <
      static_cast<std::size_t>(kMaxIncidentReasons)) {
    incident_reasons_.push_back(reason);
  }
  dump_flight_locked(reason);
}

void Observatory::dump_flight_locked(const std::string& reason) {
  const std::string dir = trace_dir();
  if (dir.empty() || flight_dumps_ >= kMaxFlightDumps) return;
  ++flight_dumps_;
  const auto path =
      std::filesystem::path(dir) /
      core::cat("obs_flight_", flight_dumps_, ".json");
  try {
    std::filesystem::create_directories(path.parent_path());
    core::json::save_file(flight_json_locked(), path.string());
    std::cout << "[obs] incident (" << reason << "): flight recorder -> "
              << path.string() << "\n";
  } catch (const std::exception& e) {
    // An unwritable trace dir must never escalate an incident into a crash.
    std::cerr << "[obs] flight dump failed: " << e.what() << "\n";
  }
}

std::optional<Observatory::StragglerFlag> Observatory::last_straggler()
    const {
  std::lock_guard lock(mu_);
  return last_straggler_;
}

double Observatory::load_balance() const {
  std::lock_guard lock(mu_);
  return ewma_lb_;
}

double Observatory::comm_efficiency() const {
  std::lock_guard lock(mu_);
  return ewma_ce_;
}

std::vector<Observatory::IterationRecord> Observatory::flight() const {
  std::lock_guard lock(mu_);
  std::vector<IterationRecord> out;
  for (const auto& rec : ring_) {
    if (rec.iter >= 0) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& x, const auto& y) { return x.iter < y.iter; });
  return out;
}

core::json::Value Observatory::flight_json() const {
  std::lock_guard lock(mu_);
  return flight_json_locked();
}

core::json::Value Observatory::flight_json_locked() const {
  namespace json = core::json;
  json::Object root;
  root["mode"] = to_string(mode());
  root["nranks"] = nranks_;
  root["ntg"] = ntg_;
  root["straggler_flags"] = n_straggler_.load(std::memory_order_relaxed);
  root["drift_flags"] = n_drift_.load(std::memory_order_relaxed);
  root["incidents"] = [&] {
    json::Array a;
    for (const auto& r : incident_reasons_) a.emplace_back(r);
    return a;
  }();

  std::vector<const IterationRecord*> ordered;
  for (const auto& rec : ring_) {
    if (rec.iter >= 0) ordered.push_back(&rec);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* x, const auto* y) { return x->iter < y->iter; });

  json::Array iters;
  for (const IterationRecord* rec : ordered) {
    json::Object it;
    it["iter"] = rec->iter;
    it["complete"] = rec->complete;
    it["wall_ms"] = (rec->t_end - rec->t_begin) * 1e3;
    it["load_balance"] = rec->load_balance;
    it["comm_efficiency"] = rec->comm_efficiency;
    it["straggler_rank"] = rec->straggler_rank;
    it["straggler_phase"] = obs_phase_name(rec->straggler_phase);
    json::Array drift;
    for (int p = 0; p < kNumPhaseKinds; ++p) {
      if ((rec->drift_mask & (1u << static_cast<unsigned>(p))) != 0) {
        drift.emplace_back(obs_phase_name(p));
      }
    }
    it["drift_phases"] = std::move(drift);
    json::Array ranks;
    for (std::size_t r = 0; r < rec->ranks.size(); ++r) {
      const auto& rr = rec->ranks[r];
      json::Object jr;
      jr["rank"] = static_cast<int>(r);
      jr["compute_ms"] = rr.compute_s * 1e3;
      jr["abft_ms"] = rr.abft_s * 1e3;
      jr["exchange_ms"] = rr.comm_s * 1e3;
      jr["sched_ms"] = rr.sched_s * 1e3;
      json::Object phases;
      for (int p = 0; p < kNumPhaseKinds; ++p) {
        const double s = rr.phase_s[static_cast<std::size_t>(p)];
        if (s > 0.0) phases[obs_phase_name(p)] = s * 1e3;
      }
      jr["phases_ms"] = std::move(phases);
      ranks.push_back(std::move(jr));
    }
    it["ranks"] = std::move(ranks);
    iters.push_back(std::move(it));
  }
  root["iterations"] = std::move(iters);
  return json::Value{std::move(root)};
}

std::string Observatory::attribution_report() const {
  std::lock_guard lock(mu_);
  core::TablePrinter t("observatory: live phase attribution");
  t.header({"phase", "spans", "mean ms", "p95 ms", "share", "expected",
            "drift"});
  for (int p = 0; p < kNumPhaseKinds; ++p) {
    std::uint64_t count = 0;
    double total = 0.0;
    double p95 = 0.0;
    for (int r = 0; r * kNumPhaseKinds < static_cast<int>(cells_.size());
         ++r) {
      const auto& c =
          *cells_[static_cast<std::size_t>(r) * kNumPhaseKinds +
                  static_cast<std::size_t>(p)];
      count += c.count;
      total += c.total_s;
      p95 = std::max(p95, c.hist.quantile(0.95));
    }
    if (count == 0) continue;
    const double share = ewma_share_[static_cast<std::size_t>(p)];
    const double want = expected_share_[static_cast<std::size_t>(p)];
    const bool drifting =
        have_expected_ && static_cast<PhaseKind>(p) != PhaseKind::Abft &&
        static_cast<PhaseKind>(p) != PhaseKind::TaskWait &&
        share > want * det_.drift_factor + det_.drift_margin;
    t.row({obs_phase_name(p), core::cat(count),
           core::fixed(total / static_cast<double>(count) * 1e3, 3),
           core::fixed(p95, 3), core::pct(share),
           have_expected_ ? core::pct(want) : std::string("-"),
           drifting ? "DRIFT" : ""});
  }
  t.row({});
  t.row({"load balance (ewma)", core::pct(ewma_lb_)});
  t.row({"comm efficiency (ewma)", core::pct(ewma_ce_)});
  t.row({"iterations", core::cat(n_iters_.load(std::memory_order_relaxed))});
  t.row({"straggler flags",
         core::cat(n_straggler_.load(std::memory_order_relaxed))});
  t.row({"drift flags", core::cat(n_drift_.load(std::memory_order_relaxed))});
  t.row({"incidents",
         core::cat(n_incidents_.load(std::memory_order_relaxed))});
  return t.str();
}

void Observatory::strict_check() const {
  if (mode() != ObsMode::Strict) return;
  std::lock_guard lock(mu_);
  const std::uint64_t now =
      n_straggler_.load(std::memory_order_relaxed) +
      n_drift_.load(std::memory_order_relaxed) +
      n_incidents_.load(std::memory_order_relaxed);
  if (now <= strict_base_) return;
  throw core::Error(core::cat(
      "observatory strict mode: ", now - strict_base_,
      " anomaly flag(s) this run (stragglers ",
      n_straggler_.load(std::memory_order_relaxed), ", drift ",
      n_drift_.load(std::memory_order_relaxed), ", incidents ",
      n_incidents_.load(std::memory_order_relaxed), "); see fftx.obs.* and ",
      "the flight recorder"));
}

}  // namespace fx::trace
