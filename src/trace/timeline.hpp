// Paraver-style trace views rendered as text and CSV.
//
// The paper's Figs. 3 and 7 are Paraver timelines (rows = execution
// streams, x = time, color = metric) and an IPC histogram (rows = streams,
// x = IPC, color = accumulated duration).  These renderers produce the
// same views as fixed-width character art -- enough to see the
// synchronized phase blocks of the original version versus the scattered,
// de-synchronized phases of the task version -- plus CSV dumps of the raw
// events for external plotting.
#pragma once

#include <string>

#include "trace/tracer.hpp"

namespace fx::trace {

/// What the timeline colors by.
enum class TimelineView {
  Phase,         ///< compute phase kind (one letter per PhaseKind)
  Ipc,           ///< instantaneous IPC as a digit 0..9 (scaled to max)
  MpiCall,       ///< communication operation kind
  Communicator,  ///< communicator id of the active operation
};

struct TimelineOptions {
  TimelineView view = TimelineView::Phase;
  int width = 100;        ///< character columns
  double t_begin = 0.0;   ///< window start (normalized trace time)
  double t_end = 0.0;     ///< window end; 0 = full trace
  double freq_ghz = 1.4;  ///< for the IPC view
};

/// Renders one row per (rank, thread) stream; within each character cell
/// the longest-lasting state wins.  Includes a legend.
std::string render_timeline(const Tracer& tracer, const TimelineOptions& opt);

/// Renders the Fig. 7 histogram: rows = streams, columns = IPC bins,
/// cell brightness (" .:-=+*#@") = accumulated phase duration in the bin.
std::string render_ipc_histogram(const Tracer& tracer, int bins,
                                 double freq_ghz);

/// Dumps all three event streams to CSV (kind, rank, thread, begin, end,
/// detail columns) for external plotting.
void write_events_csv(const Tracer& tracer, const std::string& path);

}  // namespace fx::trace
