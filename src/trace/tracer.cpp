#include "trace/tracer.hpp"

#include <algorithm>
#include <limits>

#include "core/hooks.hpp"
#include "core/timer.hpp"

namespace fx::trace {

namespace {

// Each tracer gets a process-unique id; the thread-local shard cache maps
// id -> shard pointer.  Keying by id (not Tracer*) means a destroyed
// tracer's cache entry can never be mistaken for a new tracer that happens
// to be allocated at the same address -- a stale entry is simply never
// matched again.
std::atomic<std::uint64_t> g_next_tracer_id{1};

struct TlsEntry {
  std::uint64_t id;
  void* shard;
};

thread_local std::vector<TlsEntry> tl_shards;

// Stale entries (tracers long destroyed) accumulate in long-lived worker
// threads; past this size the cache is rebuilt from scratch.  Dropping a
// live tracer's entry is harmless: the next record re-registers a fresh
// shard for this thread.
constexpr std::size_t kTlsCacheLimit = 64;

}  // namespace

Tracer::Tracer(int nranks, TracerMode mode)
    : nranks_(nranks),
      mode_(mode),
      id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Shard& Tracer::my_shard() const {
  for (const auto& e : tl_shards) {
    if (e.id == id_) return *static_cast<Shard*>(e.shard);
  }
  if (tl_shards.size() >= kTlsCacheLimit) tl_shards.clear();
  // Default-init, not value-init (make_unique): value-initializing a Shard
  // zeroes ~230 KB of ring slots and first-touches every page, which costs
  // more than the entire per-event path on short traced runs.  Slots at or
  // past `head` are never read, so leaving them uninitialized is safe; the
  // head/tail atomics carry their own {0} initializers.
  std::unique_ptr<Shard> shard(new Shard);
  Shard* p = shard.get();
  {
    std::lock_guard lock(reg_mu_);
    shards_.push_back(std::move(shard));
  }
  tl_shards.push_back({id_, p});
  return *p;
}

template <typename E, std::size_t N>
void Tracer::spill(Ring<E, N>& ring, std::vector<E>& central,
                   const E& e) const {
  std::lock_guard lock(flush_mu_);
  ring.drain(central);
  ring.try_push(e);  // ring is empty now; cannot fail
  spills_.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::record_compute(const ComputeEvent& e) {
  if (mode_ == TracerMode::Mutex) {
    std::lock_guard lock(flush_mu_);
    compute_.push_back(e);
    return;
  }
  Shard& s = my_shard();
  if (!s.compute.try_push(e)) spill(s.compute, compute_, e);
}

void Tracer::record_comm(const CommOpEvent& e) {
  if (mode_ == TracerMode::Mutex) {
    std::lock_guard lock(flush_mu_);
    comm_.push_back(e);
    return;
  }
  Shard& s = my_shard();
  if (!s.comm.try_push(e)) spill(s.comm, comm_, e);
}

void Tracer::record_task(const TaskEvent& e) {
  if (mode_ == TracerMode::Mutex) {
    std::lock_guard lock(flush_mu_);
    tasks_.push_back(e);
    return;
  }
  Shard& s = my_shard();
  if (!s.tasks.try_push(e)) spill(s.tasks, tasks_, e);
}

void Tracer::record_instant(const InstantEvent& e) {
  std::lock_guard lock(flush_mu_);
  instants_.push_back(e);
}

void Tracer::flush() const {
  std::lock_guard lock(flush_mu_);
  // Snapshot the shard list; shards_ only grows and entries are stable.
  std::vector<Shard*> shards;
  {
    std::lock_guard reg(reg_mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  for (Shard* s : shards) {
    s->compute.drain(compute_);
    s->comm.drain(comm_);
    s->tasks.drain(tasks_);
  }
}

const std::vector<ComputeEvent>& Tracer::compute_events() const {
  flush();
  return compute_;
}

const std::vector<CommOpEvent>& Tracer::comm_events() const {
  flush();
  return comm_;
}

const std::vector<TaskEvent>& Tracer::task_events() const {
  flush();
  return tasks_;
}

const std::vector<InstantEvent>& Tracer::instant_events() const {
  flush();
  return instants_;
}

double Tracer::t_min() const {
  flush();
  std::lock_guard lock(flush_mu_);
  double t = std::numeric_limits<double>::max();
  for (const auto& e : compute_) t = std::min(t, e.t_begin);
  for (const auto& e : comm_) t = std::min(t, e.t_begin);
  for (const auto& e : tasks_) t = std::min(t, e.t_begin);
  for (const auto& e : instants_) t = std::min(t, e.t);
  return t == std::numeric_limits<double>::max() ? 0.0 : t;
}

double Tracer::t_max() const {
  flush();
  std::lock_guard lock(flush_mu_);
  double t = 0.0;
  for (const auto& e : compute_) t = std::max(t, e.t_end);
  for (const auto& e : comm_) t = std::max(t, e.t_end);
  for (const auto& e : tasks_) t = std::max(t, e.t_end);
  for (const auto& e : instants_) t = std::max(t, e.t);
  return t;
}

void Tracer::normalize_time() {
  const double origin = t_min();  // flushes
  std::lock_guard lock(flush_mu_);
  for (auto& e : compute_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
  for (auto& e : comm_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
  for (auto& e : tasks_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
  for (auto& e : instants_) e.t -= origin;
}

void Tracer::clear() {
  flush();  // resets every ring to empty
  std::lock_guard lock(flush_mu_);
  compute_.clear();
  comm_.clear();
  tasks_.clear();
  instants_.clear();
}

AmbientTracerScope::AmbientTracerScope(Tracer& tracer) {
  token_ = core::install_instant_sink([&tracer](const std::string& name) {
    tracer.record_instant({-1, -1, name, core::WallTimer::now()});
  });
}

AmbientTracerScope::~AmbientTracerScope() {
  core::remove_instant_sink(token_);
}

}  // namespace fx::trace
