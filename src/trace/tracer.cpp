#include "trace/tracer.hpp"

#include <algorithm>
#include <limits>

namespace fx::trace {

void Tracer::record_compute(const ComputeEvent& e) {
  std::lock_guard lock(mu_);
  compute_.push_back(e);
}

void Tracer::record_comm(const CommOpEvent& e) {
  std::lock_guard lock(mu_);
  comm_.push_back(e);
}

void Tracer::record_task(const TaskEvent& e) {
  std::lock_guard lock(mu_);
  tasks_.push_back(e);
}

double Tracer::t_min() const {
  std::lock_guard lock(mu_);
  double t = std::numeric_limits<double>::max();
  for (const auto& e : compute_) t = std::min(t, e.t_begin);
  for (const auto& e : comm_) t = std::min(t, e.t_begin);
  for (const auto& e : tasks_) t = std::min(t, e.t_begin);
  return t == std::numeric_limits<double>::max() ? 0.0 : t;
}

double Tracer::t_max() const {
  std::lock_guard lock(mu_);
  double t = 0.0;
  for (const auto& e : compute_) t = std::max(t, e.t_end);
  for (const auto& e : comm_) t = std::max(t, e.t_end);
  for (const auto& e : tasks_) t = std::max(t, e.t_end);
  return t;
}

void Tracer::normalize_time() {
  const double origin = t_min();
  std::lock_guard lock(mu_);
  for (auto& e : compute_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
  for (auto& e : comm_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
  for (auto& e : tasks_) {
    e.t_begin -= origin;
    e.t_end -= origin;
  }
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  compute_.clear();
  comm_.clear();
  tasks_.clear();
}

}  // namespace fx::trace
