#include "trace/analysis.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "core/error.hpp"

namespace fx::trace {

namespace {
/// Stable row id for a (rank, thread) stream.
std::int64_t row_of(int rank, int thread) {
  return static_cast<std::int64_t>(rank) * 4096 + thread;
}
}  // namespace

EfficiencySummary analyze_efficiency(const Tracer& tracer, double freq_ghz) {
  FX_CHECK(freq_ghz > 0.0, "frequency must be positive");
  EfficiencySummary s;

  // Per-row computation time.  ABFT spans are integrity *overhead*, not
  // useful computation: counting them as compute would flatter the load
  // balance (every rank checks in lockstep) and shift comm efficiency, so
  // Tables I/II reproductions would no longer isolate the algorithm.  The
  // rows still exist (a rank that only ran checks is still a stream).
  std::map<std::int64_t, double> compute;
  for (const auto& e : tracer.compute_events()) {
    compute.try_emplace(row_of(e.rank, e.thread), 0.0);
    if (e.phase == PhaseKind::Abft || e.phase == PhaseKind::TaskWait) continue;
    compute[row_of(e.rank, e.thread)] += e.t_end - e.t_begin;
    s.total_instructions += e.instructions;
  }
  // Rows that only communicate still count as rows.
  for (const auto& e : tracer.comm_events()) {
    compute.try_emplace(row_of(e.rank, e.thread), 0.0);
  }
  s.rows = static_cast<int>(compute.size());
  if (s.rows == 0) return s;

  for (const auto& [row, c] : compute) {
    s.total_compute += c;
    s.max_compute = std::max(s.max_compute, c);
  }
  s.avg_compute = s.total_compute / s.rows;
  s.runtime = tracer.t_max() - tracer.t_min();

  if (s.total_compute > 0.0) {
    s.avg_ipc = s.total_instructions / (s.total_compute * freq_ghz * 1e9);
  }
  if (s.max_compute > 0.0) {
    s.load_balance = s.avg_compute / s.max_compute;
  }
  if (s.runtime > 0.0) {
    s.comm_efficiency = std::min(1.0, s.max_compute / s.runtime);
  }

  // Transfer estimation: group collective events into instances by
  // (comm id, kind, tag, per-rank occurrence index); the time after the
  // last participant entered is transfer, the rest is synchronization wait.
  struct Key {
    int comm_id;
    int kind;
    int tag;
    std::size_t occurrence;
    auto operator<=>(const Key&) const = default;
  };
  std::map<std::tuple<std::int64_t, int, int, int>, std::size_t> occurrence;
  struct Instance {
    double max_enter = 0.0;
    std::vector<std::pair<std::int64_t, std::pair<double, double>>> events;
  };
  std::map<Key, Instance> instances;
  // Events are recorded in completion order; per (row, comm, kind, tag)
  // order matches issue order, which is what instance matching needs.
  for (const auto& e : tracer.comm_events()) {
    if (e.kind == mpi::CommOpKind::Send || e.kind == mpi::CommOpKind::Recv) {
      continue;  // point-to-point handled as pure transfer below
    }
    const std::int64_t row = row_of(e.rank, e.thread);
    const auto occ_key =
        std::make_tuple(row, e.comm_id, static_cast<int>(e.kind), e.tag);
    const std::size_t occ = occurrence[occ_key]++;
    Instance& inst =
        instances[Key{e.comm_id, static_cast<int>(e.kind), e.tag, occ}];
    inst.max_enter = std::max(inst.max_enter, e.t_begin);
    inst.events.emplace_back(row, std::make_pair(e.t_begin, e.t_end));
  }

  std::map<std::int64_t, double> transfer;
  for (const auto& [key, inst] : instances) {
    for (const auto& [row, span] : inst.events) {
      const double xfer = std::max(0.0, span.second - inst.max_enter);
      transfer[row] += xfer;
    }
  }
  for (const auto& e : tracer.comm_events()) {
    if (e.kind == mpi::CommOpKind::Send || e.kind == mpi::CommOpKind::Recv) {
      transfer[row_of(e.rank, e.thread)] += e.t_end - e.t_begin;
    }
  }

  double avg_transfer = 0.0;
  for (const auto& [row, x] : transfer) avg_transfer += x;
  avg_transfer /= s.rows;

  if (s.runtime > 0.0) {
    const double t_ideal = std::max(s.max_compute, s.runtime - avg_transfer);
    s.transfer_efficiency = std::min(1.0, t_ideal / s.runtime);
    s.sync_efficiency =
        s.transfer_efficiency > 0.0
            ? std::min(1.0, s.comm_efficiency / s.transfer_efficiency)
            : 1.0;
  }
  s.parallel_efficiency = s.load_balance * s.comm_efficiency;
  return s;
}

ScalabilityFactors scale_against(const EfficiencySummary& ref,
                                 const EfficiencySummary& run) {
  ScalabilityFactors f;
  if (run.total_instructions > 0.0) {
    f.instruction_scalability =
        ref.total_instructions / run.total_instructions;
  }
  if (ref.avg_ipc > 0.0) {
    f.ipc_scalability = run.avg_ipc / ref.avg_ipc;
  }
  if (run.total_compute > 0.0) {
    f.computation_scalability = ref.total_compute / run.total_compute;
  }
  f.global_efficiency = run.parallel_efficiency * f.computation_scalability;
  return f;
}

double mean_phase_ipc(const Tracer& tracer, PhaseKind kind, double freq_ghz) {
  double instructions = 0.0;
  double seconds = 0.0;
  for (const auto& e : tracer.compute_events()) {
    if (e.phase != kind) continue;
    instructions += e.instructions;
    seconds += e.t_end - e.t_begin;
  }
  if (seconds <= 0.0) return 0.0;
  return instructions / (seconds * freq_ghz * 1e9);
}

}  // namespace fx::trace
