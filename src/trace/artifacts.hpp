// End-of-run observability artifacts, controlled by one env var.
//
// Every example and bench calls dump_run_artifacts() (or dump_metrics()
// when it has no tracer) just before exiting.  When FFTX_TRACE_DIR is set
// the run drops, uniformly and without per-binary flags:
//
//   $FFTX_TRACE_DIR/<name>.fxtrace       -- the native trace (trace_io)
//   $FFTX_TRACE_DIR/<name>.json          -- Chrome/Perfetto trace-event JSON
//   $FFTX_TRACE_DIR/<name>.metrics.csv   -- metrics registry snapshot
//   $FFTX_TRACE_DIR/<name>.metrics.json  -- same, JSON
//
// When the variable is unset both calls are no-ops, so the helpers can be
// called unconditionally.  The directory is created if missing.
#pragma once

#include <string>

namespace fx::trace {

class Tracer;

/// Value of FFTX_TRACE_DIR, or "" when unset/empty.
std::string trace_dir();

/// Normalizes `tracer` to t = 0 and writes all four artifacts for this run
/// under trace_dir()/<name>.*.  Returns false (doing nothing) when
/// FFTX_TRACE_DIR is unset.
bool dump_run_artifacts(Tracer& tracer, const std::string& name);

/// Metrics-only variant for binaries that do not own a tracer.
bool dump_metrics(const std::string& name);

}  // namespace fx::trace
