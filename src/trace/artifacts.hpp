// End-of-run observability artifacts, controlled by one env var.
//
// Every example and bench calls dump_run_artifacts() (or dump_metrics()
// when it has no tracer) just before exiting.  When FFTX_TRACE_DIR is set
// the run drops, uniformly and without per-binary flags:
//
//   $FFTX_TRACE_DIR/<name>.fxtrace       -- the native trace (trace_io)
//   $FFTX_TRACE_DIR/<name>.json          -- Chrome/Perfetto trace-event JSON
//   $FFTX_TRACE_DIR/<name>.metrics.csv   -- metrics registry snapshot
//   $FFTX_TRACE_DIR/<name>.metrics.json  -- same, JSON
//   $FFTX_TRACE_DIR/<name>.flight.json   -- observatory flight recorder
//                                           (only when FFTX_OBS is on and
//                                           iterations were recorded)
//
// When the variable is unset both calls are no-ops, so the helpers can be
// called unconditionally.  The directory is created if missing.
//
// Abnormal exits: a run that dies in an SdcError / CommError unwind is
// exactly the run whose artifacts matter most, yet a bare end-of-main
// dump_run_artifacts() call never executes on that path.  ArtifactScope is
// the stack-order fix -- declare one after creating the tracer and the
// artifacts are written from its destructor, unwind or not:
//
//   fx::trace::Tracer tracer(nranks);
//   fx::trace::ArtifactScope artifacts(&tracer, "fftx_miniapp");
//   ... run ...   // throwing past here still dumps
#pragma once

#include <string>

namespace fx::trace {

class Tracer;

/// Value of FFTX_TRACE_DIR, or "" when unset/empty.
std::string trace_dir();

/// Normalizes `tracer` to t = 0 and writes all artifacts for this run
/// under trace_dir()/<name>.*.  Returns false (doing nothing) when
/// FFTX_TRACE_DIR is unset.
bool dump_run_artifacts(Tracer& tracer, const std::string& name);

/// Metrics-only variant for binaries that do not own a tracer.
bool dump_metrics(const std::string& name);

/// RAII artifact flush: dumps on destruction, including during exception
/// unwinds, so traces / metrics / the flight recorder survive SdcError and
/// CommError exits.  Dump errors are swallowed (never terminate during an
/// unwind).  `tracer` may be null (metrics + flight only); it must outlive
/// the scope.
class ArtifactScope {
 public:
  ArtifactScope(Tracer* tracer, std::string name)
      : tracer_(tracer), name_(std::move(name)) {}
  ~ArtifactScope();

  ArtifactScope(const ArtifactScope&) = delete;
  ArtifactScope& operator=(const ArtifactScope&) = delete;

  /// Dumps now and disarms the destructor (clean-path flush at a chosen
  /// point, e.g. before printing a summary that reads the files back).
  void flush();

 private:
  Tracer* tracer_;
  std::string name_;
  bool armed_ = true;
};

}  // namespace fx::trace
