// Chrome trace-event / Perfetto JSON exporter.
//
// Converts a Tracer's three event streams into the Trace Event Format
// (the JSON flavour understood by ui.perfetto.dev and chrome://tracing):
//
//   * one process per rank (pid = rank, named "rank N"),
//   * one thread track per recording thread within the rank (tid = thread),
//   * compute phases, comm operations and task lifecycles as "ph":"X"
//     complete events (cat = compute / comm / task) with band, instruction
//     count, bytes, tag and communicator attached as args,
//   * a per-rank "collectives in flight" counter track ("ph":"C"), and a
//     per-(rank, thread) "ipc" counter sampled per compute phase from the
//     modelled instruction count.
//
// Timestamps are exported in microseconds relative to the trace's t_min(),
// so real-backend (steady-clock) and model-backend (virtual-time) traces
// both open at t = 0.  The .fxtrace format stays the interchange format;
// this is a view for humans.
#pragma once

#include <iosfwd>
#include <string>

namespace fx::trace {

class Tracer;

struct ChromeExportOptions {
  /// Clock frequency used to turn "instructions per second" into IPC for
  /// the counter track.  The paper's KNL runs at 1.4 GHz.
  double freq_ghz = 1.4;
};

/// Writes the full trace as one JSON object {"traceEvents": [...]}.
void save_chrome_trace(const Tracer& tracer, std::ostream& os,
                       const ChromeExportOptions& opts = {});

/// Same, to a file (throws core::Error if the file cannot be opened).
void save_chrome_trace(const Tracer& tracer, const std::string& path,
                       const ChromeExportOptions& opts = {});

}  // namespace fx::trace
