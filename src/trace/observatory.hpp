// Online performance observatory: live phase attribution, straggler and
// load-imbalance detection, and a flight recorder of recent iterations.
//
// PR 3's tracer answers "what happened" after the run; the observatory
// answers "is this run healthy" *during* it, cheaply enough to stay on in
// production (`FFTX_OBS=watch`).  It is fed from two existing streams --
// the RAII compute spans (trace/span.hpp) and the pipeline's communicator
// observer -- so instrumented code needs no new call sites, and detection
// is evaluated by whichever rank finishes an iteration last, mirroring the
// ABFT deferred-verdict trick: ranks here are threads of one process, so
// cross-rank aggregation is shared memory and costs no collective.
//
// What it maintains:
//   - per-(rank, phase) rolling statistics: EWMA mean/variance plus a
//     streaming p95 (a core::Histogram per cell);
//   - per-band-iteration records: per-rank compute/comm seconds split by
//     phase, live POP load-balance and communication-efficiency factors
//     (trace/analysis definitions applied to one iteration);
//   - straggler flags: a rank whose iteration time exceeds the median of
//     its peers by a configurable factor, with the offending phase named
//     (largest excess over the peer average, exchange time included);
//   - drift flags: a phase whose measured share of iteration compute
//     exceeds the model-expected share (pushed in by the pipeline from the
//     trace::phase_cost model) beyond a tolerance -- the paper's contention
//     signature, detected at runtime;
//   - a flight-recorder ring of the last FFTX_OBS_RING iterations, dumped
//     as JSON next to the PR 3 artifacts whenever an incident fires
//     (SdcError verdict, recovery shrink, watchdog near-miss, guard
//     retry -- routed here through core::emit_incident).
//
// Modes (env FFTX_OBS, or Observatory::configure for tests/benches):
//   off    -- everything compiled in, nothing recorded; the only residual
//             cost is one pointer test per span (obs_active()).
//   watch  -- record, detect, flag (metrics fftx.obs.*), never interfere.
//   strict -- watch + strict_check() throws core::Error when any straggler
//             or drift flag accumulated during the run (CI gates).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/metrics.hpp"
#include "trace/phases.hpp"

namespace fx::trace {

enum class ObsMode { Off, Watch, Strict };

/// Mode selected by FFTX_OBS (off | watch | strict; default off).
ObsMode default_obs_mode();

/// Flight-recorder capacity from FFTX_OBS_RING (default 32, minimum 4).
int default_obs_ring();

const char* to_string(ObsMode mode);

class Observatory;

/// The process observatory when observation is on, nullptr when off.  One
/// non-inlined call + pointer test: cheap enough for span destructors.
Observatory* obs_active();

class Observatory {
 public:
  /// Detection tuning.  Defaults are deliberately conservative: an
  /// iteration straggler must exceed the peer median by 1.75x AND by an
  /// absolute floor, so sub-millisecond jitter on tiny grids never flags.
  struct Detection {
    double straggler_factor = 1.75;  ///< rank time vs peer median
    double straggler_floor_s = 2e-4; ///< minimum absolute excess
    double drift_factor = 1.6;       ///< measured share vs expected share
    double drift_margin = 0.05;      ///< additive share tolerance
    double ewma_alpha = 0.1;         ///< rolling-statistics decay
  };

  /// One rank's slice of one recorded iteration.
  struct RankRecord {
    double compute_s = 0.0;  ///< sum of non-ABFT, non-TaskWait phase spans
    double abft_s = 0.0;     ///< ABFT overhead spans
    double comm_s = 0.0;     ///< collective time attributed by tag
    double sched_s = 0.0;    ///< task-queue wait (ready but unscheduled)
    std::array<double, kNumPhaseKinds> phase_s{};
  };

  /// One flight-recorder slot: a band iteration as all ranks saw it.
  struct IterationRecord {
    int iter = -1;             ///< first band index of the iteration
    bool complete = false;     ///< all ranks reported iteration_done
    double t_begin = 0.0;      ///< earliest rank entry (wall seconds)
    double t_end = 0.0;        ///< latest rank completion
    double load_balance = 1.0;
    double comm_efficiency = 1.0;
    int straggler_rank = -1;   ///< -1 when no flag
    int straggler_phase = -1;  ///< PhaseKind value, kNumPhaseKinds == comm
    std::uint32_t drift_mask = 0;  ///< bit p set == phase p drifted
    std::vector<RankRecord> ranks;
  };

  /// The most recent straggler flag (tests assert the injected rank).
  struct StragglerFlag {
    int iter = -1;
    int rank = -1;
    int phase = -1;       ///< PhaseKind value, or kNumPhaseKinds for comm
    double excess_s = 0.0;
  };

  /// Process-wide instance (mode from FFTX_OBS on first use).
  static Observatory& global();

  /// Overrides mode and ring capacity (tests, benches, the miniapp flag).
  /// Resets all recorded state.
  void configure(ObsMode mode, int ring_capacity = 0);
  /// Overrides detection thresholds (tests); keeps recorded state.
  void configure_detection(const Detection& d);

  [[nodiscard]] ObsMode mode() const {
    return static_cast<ObsMode>(mode_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled() const { return mode() != ObsMode::Off; }

  // --- Run lifecycle (called by every rank of a pipeline; refcounted) ---

  /// First rank in (re)shapes the per-rank structures; `expected_share`
  /// is the model's per-phase fraction of iteration compute (sums to ~1
  /// over compute phases; all-zero means "no model available", which
  /// disables drift detection).
  void begin_run(int nranks, int ntg,
                 const std::array<double, kNumPhaseKinds>& expected_share);
  void end_run();

  // --- Feeds (hot paths; no collectives, one mutex) ---

  /// One compute span completed: `iter` is the span's band/iteration tag.
  void record_phase(int rank, PhaseKind phase, int iter, double seconds);
  /// One collective completed; exchanges carry tag == iter.
  void record_comm(int rank, int tag, double seconds);
  void iteration_begin(int rank, int iter);
  /// Last rank to finish evaluates the iteration: POP factors, straggler,
  /// drift -- the deferred-verdict analogue.
  void iteration_done(int rank, int iter);

  /// Fault context: counts, remembers the reason, and dumps the flight
  /// ring to FFTX_TRACE_DIR (throttled).  Wired to core::emit_incident.
  void incident(const std::string& reason);

  // --- Inspection ---

  [[nodiscard]] std::uint64_t phase_records() const { return n_records_; }
  [[nodiscard]] std::uint64_t iterations_done() const { return n_iters_; }
  [[nodiscard]] std::uint64_t straggler_flags() const { return n_straggler_; }
  [[nodiscard]] std::uint64_t drift_flags() const { return n_drift_; }
  [[nodiscard]] std::uint64_t incidents() const { return n_incidents_; }
  [[nodiscard]] std::optional<StragglerFlag> last_straggler() const;

  /// EWMA POP factors over completed iterations.
  [[nodiscard]] double load_balance() const;
  [[nodiscard]] double comm_efficiency() const;

  /// Flight-recorder contents, oldest first (completed and in-flight).
  [[nodiscard]] std::vector<IterationRecord> flight() const;
  /// The flight recorder + incident reasons as a JSON document (the
  /// `<name>.flight.json` artifact; format in DESIGN.md section 15).
  [[nodiscard]] core::json::Value flight_json() const;

  /// Live attribution table: per phase, observed count / mean / p95 /
  /// share vs expected share, plus run-level POP factors and flags.
  [[nodiscard]] std::string attribution_report() const;

  /// Under Strict: throws core::Error if any straggler/drift flag or
  /// incident accumulated since begin_run.  No-op in Watch/Off.  Callers
  /// must invoke it at a point all ranks reach (after the closing
  /// barrier), so the throw is lockstep.
  void strict_check() const;

  /// Clears all recorded state, flags and per-run bookkeeping (tests).
  void reset();

 private:
  Observatory();

  struct Cell {  // per (rank, phase) rolling statistics
    std::uint64_t count = 0;
    double total_s = 0.0;
    double ewma_mean = 0.0;
    double ewma_var = 0.0;
    core::Histogram hist;  ///< milliseconds; p95 at ~19 % resolution
  };

  [[nodiscard]] Cell& cell(int rank, PhaseKind phase);
  [[nodiscard]] IterationRecord* slot_for(int iter);
  void finalize_iteration(IterationRecord& rec);
  void dump_flight_locked(const std::string& reason);
  [[nodiscard]] core::json::Value flight_json_locked() const;

  std::atomic<int> mode_{0};
  int ring_cap_ = 32;
  Detection det_;

  mutable std::mutex mu_;
  int nranks_ = 0;
  int ntg_ = 1;
  int run_depth_ = 0;  ///< ranks currently inside begin_run..end_run
  std::array<double, kNumPhaseKinds> expected_share_{};
  std::array<double, kNumPhaseKinds> ewma_share_{};
  bool have_expected_ = false;
  // Cells hold a core::Histogram (atomics, immovable), so the table holds
  // pointers; nranks x kNumPhaseKinds, row-major by rank.
  std::vector<std::unique_ptr<Cell>> cells_;
  std::vector<IterationRecord> ring_;
  std::vector<int> done_count_;  ///< per ring slot, ranks reported done
  std::optional<StragglerFlag> last_straggler_;
  std::vector<std::string> incident_reasons_;
  int flight_dumps_ = 0;

  // Flag counters mirrored into the metrics registry (fftx.obs.*); the
  // members make reset()/tests independent of the global registry.
  std::atomic<std::uint64_t> n_records_{0};
  std::atomic<std::uint64_t> n_iters_{0};
  std::atomic<std::uint64_t> n_straggler_{0};
  std::atomic<std::uint64_t> n_drift_{0};
  std::atomic<std::uint64_t> n_incidents_{0};
  std::uint64_t strict_base_ = 0;  ///< flags at begin_run (strict_check)
  std::uint64_t records_mirrored_ = 0;  ///< span count already in the registry
  double ewma_lb_ = 1.0;
  double ewma_ce_ = 1.0;
};

}  // namespace fx::trace
