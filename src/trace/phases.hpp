// Phase taxonomy and instruction/byte cost model.
//
// The FFT kernel's compute phases, as identified in the paper's Fig. 3
// timeline analysis (psi preparation, pack, FFT-Z, scatter, FFT-XY, VOFR,
// and their mirrors).  Each phase gets a first-order operation-count model:
// `instructions` feeds the instruction-scalability metric of the POP
// efficiency model, and `bytes` (memory traffic) feeds the KNL contention
// model -- phases with a high bytes/instruction ratio are the ones whose
// IPC collapses when every core runs them simultaneously.
//
// We have no hardware counters (and the model backend has no hardware at
// all), so instruction counts are *estimates from work descriptors*; they
// are consistent between both backends by construction, which is exactly
// what relative metrics need.
#pragma once

#include <cmath>
#include <cstddef>

namespace fx::trace {

/// Compute-phase kinds of the band-FFT pipeline.
enum class PhaseKind {
  PsiPrep,   ///< expanding packed coefficients into pencil buffers
  Pack,      ///< band redistribution across task groups (with Alltoallv)
  FftZ,      ///< 1D FFTs along Z on sticks
  Scatter,   ///< pencil<->plane data movement (with Alltoall(v))
  FftXy,     ///< 2D FFTs on owned planes
  Vofr,      ///< pointwise V(r) application
  Unpack,    ///< redistribution back + rescaling
  Other,
  // Appended (not inserted): the integer values above are serialized in
  // traces, so they must stay stable.
  Abft,      ///< checksum-band / Parseval / digest integrity checks
  TaskWait,  ///< ready-but-unscheduled queue wait (streaming scheduler)
};

/// Short stable name, e.g. "fft_z" (used by timelines and CSVs).
const char* to_string(PhaseKind kind);

/// Number of distinct PhaseKind values (for arrays indexed by phase).
inline constexpr int kNumPhaseKinds = 10;

/// First-order operation counts for one phase execution.
struct PhaseCost {
  double instructions;
  double bytes;  ///< memory traffic (read + write)
};

/// Cost of a batch of 1D FFTs: `points` total complex elements across all
/// transforms of length `len`.  Complex radix-2-equivalent work is about
/// 5*N*log2(N) flops per transform; we charge ~1.5 instructions per flop
/// (address arithmetic, loads/stores) and one read+write of the working
/// set per log-pass through the cache-unfriendly strides.
PhaseCost fft_cost(std::size_t points, std::size_t len);

/// Cost of a pure data-movement phase over `elems` complex elements
/// (pack/unpack/scatter local marshalling): few instructions, maximal
/// memory traffic -- the low-IPC phases of Fig. 3.
PhaseCost copy_cost(std::size_t elems);

/// Cost of the pointwise potential application over `elems` elements.
PhaseCost vofr_cost(std::size_t elems);

/// Lookup by kind for model-side tabulation; `elems` is total complex
/// elements and `len` the transform length (ignored for non-FFT phases).
PhaseCost phase_cost(PhaseKind kind, std::size_t elems, std::size_t len);

/// Nominal (contention-free) relative IPC of a phase -- the trace-layer
/// mirror of perfmodel's KNL calibration (model::MachineConfig::knl()
/// base_ipc; keep the two in sync).  Dividing a phase's modelled
/// instructions by this turns instruction shares into expected *time*
/// shares, which is what the online observatory compares measured phase
/// durations against.  Only ratios matter, so the mirror is usable on any
/// host.
double phase_nominal_ipc(PhaseKind kind);

}  // namespace fx::trace
