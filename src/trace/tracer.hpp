// Event tracer (the Extrae analogue).
//
// Records three event streams per run -- compute phases, communication
// operations, task lifecycles -- with wall-clock (real backend) or virtual
// (model backend) timestamps.  The analyzer (analysis.hpp) computes the POP
// efficiency factors from these streams, and the renderers (timeline.hpp)
// produce the Fig. 3 / Fig. 7 views.
//
// Collection is sharded: every recording thread gets its own set of SPSC
// ring buffers (registered on first use), so the hot path is two clock
// reads, a struct copy into the ring slot, and one release store -- no
// lock, no contention with other recorders.  Shards are drained into the
// central per-stream vectors whenever a reader needs them (flush()) or when
// a producer's own ring fills up (the producer then briefly takes the
// consumer role for its ring).  The paper's Extrae overhead envelope
// (0.6-2.2 %) is the budget this has to stay inside even with tens of
// recording threads; `bench_real_pipeline` measures it A/B against the
// retained global-mutex mode (TracerMode::Mutex) and against tracing off.
//
// Read contract: the accessors (compute_events() etc., t_min/t_max,
// normalize_time) flush all shards first and return references into the
// merged store.  They give a consistent, complete view only once recording
// has quiesced -- i.e. after the run's joins/barriers, the same
// single-writer-then-read discipline the old mutex tracer silently relied
// on.  Reading *while* other threads still record is safe (no data race,
// flush serializes consumers) but naturally yields a snapshot that may miss
// events still being produced.  Merged event order is grouped by recording
// thread, not globally time-sorted; consumers that need time order sort by
// t_begin (analysis.cpp and the renderers already do).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "trace/phases.hpp"

namespace fx::trace {

/// One executed compute phase on one thread of one rank.
struct ComputeEvent {
  int rank;
  int thread;      ///< worker id within the rank (0 for MPI-only runs)
  PhaseKind phase;
  int band;        ///< first band of the iteration this phase belongs to
  double t_begin;
  double t_end;
  double instructions;  ///< modelled instruction count (see phases.hpp)
};

/// One communication operation as observed by one rank.
struct CommOpEvent {
  int rank;
  int thread;
  mpi::CommOpKind kind;
  int comm_id;
  int comm_size;
  int tag;
  std::size_t bytes;
  double t_begin;
  double t_end;
};

/// One task execution (task-based modes only).
struct TaskEvent {
  int rank;
  int worker;
  std::string label;
  double t_begin;
  double t_end;
};

/// A rare point-in-time marker (watchdog near-miss, communicator repair,
/// checkpoint commit).  rank/thread may be -1 when the emitting layer does
/// not know them (out-of-band events via core::emit_instant); the Chrome
/// exporter puts those on a dedicated "events" track.
struct InstantEvent {
  int rank;
  int thread;
  std::string name;
  double t;
};

/// Collection strategy.  Sharded is the default; Mutex keeps the old
/// global-mutex append path alive as the A/B baseline for
/// bench_real_pipeline's overhead measurement.
enum class TracerMode { Sharded, Mutex };

/// Append-only event store for one experiment run.
class Tracer {
 public:
  explicit Tracer(int nranks, TracerMode mode = TracerMode::Sharded);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void record_compute(const ComputeEvent& e);
  void record_comm(const CommOpEvent& e);
  void record_task(const TaskEvent& e);
  /// Instants are rare by contract, so they always take the mutex path
  /// (no ring) regardless of mode.
  void record_instant(const InstantEvent& e);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] TracerMode mode() const { return mode_; }

  /// Merged streams; flushes all shards first (see the read contract in the
  /// file header).  References stay valid until the next mutating call.
  [[nodiscard]] const std::vector<ComputeEvent>& compute_events() const;
  [[nodiscard]] const std::vector<CommOpEvent>& comm_events() const;
  [[nodiscard]] const std::vector<TaskEvent>& task_events() const;
  [[nodiscard]] const std::vector<InstantEvent>& instant_events() const;

  /// Earliest / latest timestamp over all streams (0 if empty).  Flushes.
  [[nodiscard]] double t_min() const;
  [[nodiscard]] double t_max() const;

  /// Shifts every timestamp so that t_min() becomes zero.  Call once after
  /// the run has quiesced; makes timelines and CSVs start at t = 0.
  void normalize_time();

  /// Drains every thread's rings into the central store.  Idempotent;
  /// called implicitly by every reader.
  void flush() const;

  void clear();

  /// Number of times a producer filled its ring and had to drain it inline
  /// (each spill momentarily serializes that one thread with readers).
  /// Useful for sizing checks; large values mean flush() is called too
  /// rarely for the event rate.
  [[nodiscard]] std::uint64_t overflow_spills() const {
    return spills_.load(std::memory_order_relaxed);
  }

 private:
  // Fixed-capacity single-producer single-consumer ring.  The producer is
  // the owning thread's record_* call; the consumer is whoever holds
  // flush_mu_ (a reader, or the producer itself on overflow).
  template <typename E, std::size_t N>
  struct Ring {
    std::array<E, N> slots;
    std::atomic<std::size_t> head{0};  // written by producer
    std::atomic<std::size_t> tail{0};  // written by consumer

    bool try_push(const E& e) {
      const std::size_t h = head.load(std::memory_order_relaxed);
      if (h - tail.load(std::memory_order_acquire) == N) return false;
      slots[h % N] = e;
      head.store(h + 1, std::memory_order_release);
      return true;
    }

    // Consumer side; caller must hold flush_mu_.
    void drain(std::vector<E>& out) {
      const std::size_t h = head.load(std::memory_order_acquire);
      std::size_t t = tail.load(std::memory_order_relaxed);
      for (; t != h; ++t) out.push_back(std::move(slots[t % N]));
      tail.store(t, std::memory_order_release);
    }
  };

  // Sized for a few hundred events per thread between flushes (overflow
  // just spills through the mutex path, so a tight fit is safe), and to
  // keep a Shard under the allocator's mmap threshold (~128 KB): a malloc
  // that small is served from the reused heap, so per-run shard setup does
  // not pay fresh mmap/munmap plus page faults on every recording thread.
  static constexpr std::size_t kComputeCap = 1024;
  static constexpr std::size_t kCommCap = 512;
  static constexpr std::size_t kTaskCap = 256;

  struct Shard {
    Ring<ComputeEvent, kComputeCap> compute;
    Ring<CommOpEvent, kCommCap> comm;
    Ring<TaskEvent, kTaskCap> tasks;
  };

  /// This thread's shard of this tracer, registering one on first use.
  Shard& my_shard() const;

  /// Drains one ring of this thread's shard after try_push failed.
  template <typename E, std::size_t N>
  void spill(Ring<E, N>& ring, std::vector<E>& central, const E& e) const;

  int nranks_;
  TracerMode mode_;
  std::uint64_t id_;  ///< process-unique, keys the thread-local shard cache

  mutable std::mutex reg_mu_;  // guards shards_ growth
  mutable std::vector<std::unique_ptr<Shard>> shards_;

  // flush_mu_ serializes consumers (flush/clear/spill) and guards the
  // central vectors.  Mutex mode records straight into them under it.
  mutable std::mutex flush_mu_;
  mutable std::vector<ComputeEvent> compute_;
  mutable std::vector<CommOpEvent> comm_;
  mutable std::vector<TaskEvent> tasks_;
  mutable std::vector<InstantEvent> instants_;
  mutable std::atomic<std::uint64_t> spills_{0};
};

/// Installs `tracer` as the process-global instant sink (core/hooks.hpp)
/// for the scope's lifetime: core::emit_instant() calls from layers that
/// hold no tracer reference (the simmpi watchdog, the recovery driver)
/// become InstantEvents on this tracer.  Inert if another sink is already
/// installed.  The tracer must outlive the scope.
class AmbientTracerScope {
 public:
  explicit AmbientTracerScope(Tracer& tracer);
  ~AmbientTracerScope();

  AmbientTracerScope(const AmbientTracerScope&) = delete;
  AmbientTracerScope& operator=(const AmbientTracerScope&) = delete;

 private:
  std::uint64_t token_ = 0;
};

}  // namespace fx::trace
