// Event tracer (the Extrae analogue).
//
// Records three event streams per run -- compute phases, communication
// operations, task lifecycles -- with wall-clock (real backend) or virtual
// (model backend) timestamps.  The analyzer (analysis.hpp) computes the POP
// efficiency factors from these streams, and the renderers (timeline.hpp)
// produce the Fig. 3 / Fig. 7 views.
//
// Thread safety: events are appended under a mutex; the hot path is two
// clock reads and a small struct copy, which measured overhead keeps well
// under the Extrae overheads quoted in the paper (0.6-2.2 %).
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "trace/phases.hpp"

namespace fx::trace {

/// One executed compute phase on one thread of one rank.
struct ComputeEvent {
  int rank;
  int thread;      ///< worker id within the rank (0 for MPI-only runs)
  PhaseKind phase;
  int band;        ///< first band of the iteration this phase belongs to
  double t_begin;
  double t_end;
  double instructions;  ///< modelled instruction count (see phases.hpp)
};

/// One communication operation as observed by one rank.
struct CommOpEvent {
  int rank;
  int thread;
  mpi::CommOpKind kind;
  int comm_id;
  int comm_size;
  int tag;
  std::size_t bytes;
  double t_begin;
  double t_end;
};

/// One task execution (task-based modes only).
struct TaskEvent {
  int rank;
  int worker;
  std::string label;
  double t_begin;
  double t_end;
};

/// Append-only event store for one experiment run.
class Tracer {
 public:
  explicit Tracer(int nranks) : nranks_(nranks) {}

  void record_compute(const ComputeEvent& e);
  void record_comm(const CommOpEvent& e);
  void record_task(const TaskEvent& e);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const std::vector<ComputeEvent>& compute_events() const {
    return compute_;
  }
  [[nodiscard]] const std::vector<CommOpEvent>& comm_events() const {
    return comm_;
  }
  [[nodiscard]] const std::vector<TaskEvent>& task_events() const {
    return tasks_;
  }

  /// Earliest / latest timestamp over all streams (0 if empty).
  [[nodiscard]] double t_min() const;
  [[nodiscard]] double t_max() const;

  /// Shifts every timestamp so that t_min() becomes zero.  Call once after
  /// the run; makes timelines and CSVs start at t = 0.
  void normalize_time();

  void clear();

 private:
  int nranks_;
  mutable std::mutex mu_;
  std::vector<ComputeEvent> compute_;
  std::vector<CommOpEvent> comm_;
  std::vector<TaskEvent> tasks_;
};

}  // namespace fx::trace
