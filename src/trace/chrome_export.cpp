#include "trace/chrome_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "trace/tracer.hpp"

namespace fx::trace {

namespace {

// JSON string escaping for event names / labels.
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {
    os_.precision(15);
    os_ << "{\"traceEvents\": [";
  }

  // Each emit_* writes one event object; the writer handles commas.
  void begin_event() { os_ << (first_ ? "\n" : ",\n"); first_ = false; }

  void metadata(int pid, int tid, const char* what, const std::string& name) {
    begin_event();
    os_ << R"({"ph": "M", "pid": )" << pid;
    if (tid >= 0) os_ << R"(, "tid": )" << tid;
    os_ << R"(, "name": ")" << what << R"(", "args": {"name": ")"
        << escaped(name) << "\"}}";
  }

  void complete(int pid, int tid, const char* cat, const std::string& name,
                double ts_us, double dur_us, const std::string& args_json) {
    begin_event();
    os_ << R"({"ph": "X", "pid": )" << pid << R"(, "tid": )" << tid
        << R"(, "cat": ")" << cat << R"(", "name": ")" << escaped(name)
        << R"(", "ts": )" << ts_us << R"(, "dur": )" << dur_us;
    if (!args_json.empty()) os_ << R"(, "args": {)" << args_json << '}';
    os_ << '}';
  }

  void instant(int pid, int tid, const char* cat, const std::string& name,
               double ts_us) {
    begin_event();
    os_ << R"({"ph": "i", "pid": )" << pid << R"(, "tid": )" << tid
        << R"(, "cat": ")" << cat << R"(", "name": ")" << escaped(name)
        << R"(", "ts": )" << ts_us << R"(, "s": "p"})";
  }

  void counter(int pid, const std::string& name, double ts_us,
               const char* series, double value) {
    begin_event();
    os_ << R"({"ph": "C", "pid": )" << pid << R"(, "name": ")"
        << escaped(name) << R"(", "ts": )" << ts_us << R"(, "args": {")"
        << series << R"(": )" << value << "}}";
  }

  void finish() { os_ << "\n]}\n"; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

bool is_collective(mpi::CommOpKind k) {
  return k != mpi::CommOpKind::Send && k != mpi::CommOpKind::Recv;
}

}  // namespace

void save_chrome_trace(const Tracer& tracer, std::ostream& os,
                       const ChromeExportOptions& opts) {
  const auto& compute = tracer.compute_events();
  const auto& comm = tracer.comm_events();
  const auto& tasks = tracer.task_events();
  const auto& instants = tracer.instant_events();
  const double origin = tracer.t_min();
  const auto us = [origin](double t) { return (t - origin) * 1e6; };
  const auto dur_us = [](double t0, double t1) { return (t1 - t0) * 1e6; };

  Writer w(os);

  // Track naming: every (rank, thread) pair seen in any stream.
  std::set<std::pair<int, int>> tracks;
  for (const auto& e : compute) tracks.insert({e.rank, e.thread});
  for (const auto& e : comm) tracks.insert({e.rank, e.thread});
  for (const auto& e : tasks) tracks.insert({e.rank, e.worker});
  for (const auto& e : instants) {
    if (e.rank >= 0) tracks.insert({e.rank, std::max(e.thread, 0)});
  }
  std::set<int> ranks;
  for (const auto& [rank, thread] : tracks) ranks.insert(rank);
  for (const int rank : ranks) {
    w.metadata(rank, -1, "process_name", "rank " + std::to_string(rank));
  }
  for (const auto& [rank, thread] : tracks) {
    w.metadata(rank, thread, "thread_name",
               "thread " + std::to_string(thread));
  }
  // Out-of-band instants (rank -1, e.g. the watchdog's) get a process of
  // their own above the rank tracks.
  const int events_pid = ranks.empty() ? 0 : *ranks.rbegin() + 1;
  const bool any_ambient = std::any_of(
      instants.begin(), instants.end(),
      [](const InstantEvent& e) { return e.rank < 0; });
  if (any_ambient) {
    w.metadata(events_pid, -1, "process_name", "events");
    w.metadata(events_pid, 0, "thread_name", "instants");
  }

  for (const auto& e : compute) {
    std::string args = "\"band\": " + std::to_string(e.band) +
                       ", \"instructions\": " +
                       std::to_string(e.instructions);
    w.complete(e.rank, e.thread, "compute", to_string(e.phase), us(e.t_begin),
               dur_us(e.t_begin, e.t_end), args);
  }
  for (const auto& e : comm) {
    std::string args = "\"comm\": " + std::to_string(e.comm_id) +
                       ", \"comm_size\": " + std::to_string(e.comm_size) +
                       ", \"tag\": " + std::to_string(e.tag) +
                       ", \"bytes\": " + std::to_string(e.bytes);
    w.complete(e.rank, e.thread, "comm", to_string(e.kind), us(e.t_begin),
               dur_us(e.t_begin, e.t_end), args);
  }
  for (const auto& e : tasks) {
    w.complete(e.rank, e.worker, "task", e.label, us(e.t_begin),
               dur_us(e.t_begin, e.t_end), "");
  }
  for (const auto& e : instants) {
    const int pid = e.rank >= 0 ? e.rank : events_pid;
    const int tid = e.rank >= 0 ? std::max(e.thread, 0) : 0;
    w.instant(pid, tid, "instant", e.name, us(e.t));
  }

  // Counter track 1: collectives in flight, per rank.  Swept from the
  // begin/end edges of collective comm events; ends sort before begins at
  // equal timestamps so back-to-back collectives don't double-count.
  {
    std::map<int, std::vector<std::pair<double, int>>> edges;  // rank->(t,+-1)
    for (const auto& e : comm) {
      if (!is_collective(e.kind)) continue;
      edges[e.rank].push_back({e.t_begin, +1});
      edges[e.rank].push_back({e.t_end, -1});
    }
    for (auto& [rank, ev] : edges) {
      std::sort(ev.begin(), ev.end(),
                [](const auto& a, const auto& b) {
                  return a.first != b.first ? a.first < b.first
                                            : a.second < b.second;
                });
      int inflight = 0;
      for (const auto& [t, d] : ev) {
        inflight += d;
        w.counter(rank, "collectives in flight", us(t), "count", inflight);
      }
    }
  }

  // Counter track 2: IPC per compute phase, one series per thread.  The
  // instruction counts are the cost model's (phases.hpp), so this is the
  // modelled IPC the paper's Fig. 3 colors by, not a hardware counter.
  {
    const double hz = opts.freq_ghz * 1e9;
    std::vector<const ComputeEvent*> sorted;
    sorted.reserve(compute.size());
    for (const auto& e : compute) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const ComputeEvent* a, const ComputeEvent* b) {
                return a->t_begin < b->t_begin;
              });
    for (const ComputeEvent* e : sorted) {
      const double dur = e->t_end - e->t_begin;
      if (dur <= 0.0 || hz <= 0.0) continue;
      const double ipc = e->instructions / (dur * hz);
      const std::string name = "ipc thread " + std::to_string(e->thread);
      w.counter(e->rank, name, us(e->t_begin), "ipc", ipc);
      w.counter(e->rank, name, us(e->t_end), "ipc", 0.0);
    }
  }

  w.finish();
}

void save_chrome_trace(const Tracer& tracer, const std::string& path,
                       const ChromeExportOptions& opts) {
  std::ofstream os(path);
  FX_CHECK(os.good(), "cannot open chrome trace file '" + path + "'");
  save_chrome_trace(tracer, os, opts);
}

}  // namespace fx::trace
