// Trace persistence (the Extrae .prv role, in a simple line format).
//
// Traces can be written after a run and re-loaded later for offline
// analysis -- every analyzer and renderer works identically on a loaded
// trace.  Format: one event per line,
//
//   fxtrace 1 <nranks>
//   C <rank> <thread> <phase> <band> <t_begin> <t_end> <instructions>
//   M <rank> <thread> <op> <comm_id> <comm_size> <tag> <bytes> <t0> <t1>
//   T <rank> <worker> <t_begin> <t_end> <label...>
//
// Timestamps keep full double precision (hex floats), so a save/load round
// trip is exact.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/tracer.hpp"

namespace fx::trace {

/// Writes the trace to a stream / file.  Throws fx::core::Error on I/O
/// failure.
void save_trace(const Tracer& tracer, std::ostream& os);
void save_trace(const Tracer& tracer, const std::string& path);

/// Reads a trace written by save_trace.  Throws fx::core::Error on parse
/// errors or unsupported versions.
std::unique_ptr<Tracer> load_trace(std::istream& is);
std::unique_ptr<Tracer> load_trace(const std::string& path);

}  // namespace fx::trace
