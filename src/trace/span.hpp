// RAII trace spans: time a scope and record it as one tracer event.
//
//   void BandFftPipeline::fft_z(...) {
//     FX_TRACE_SCOPE(tracer_, rank, worker, trace::PhaseKind::FftZ, band,
//                    trace::fft_cost(...).instructions);
//     ...  // the whole scope becomes one ComputeEvent
//   }
//
// Construction reads the clock once, destruction reads it again and pushes
// the event through the tracer's lock-free shard for the current thread.
// A null tracer makes the span a no-op (two branch instructions), so call
// sites need no `if (tracer_)` guards.  When the cost model input is only
// known after the work ran, name the span and call set_instructions():
//
//   trace::ScopedSpan span(tracer_, rank, worker, trace::PhaseKind::Pack,
//                          band);
//   const std::size_t moved = do_pack(...);
//   span.set_instructions(trace::copy_cost(moved).instructions);
//
// The string-label overload records a TaskEvent instead (task lifecycles).
// Spans must begin and end on the same thread -- they feed an SPSC shard.
#pragma once

#include <string>
#include <utility>

#include "core/timer.hpp"
#include "trace/observatory.hpp"
#include "trace/phases.hpp"
#include "trace/tracer.hpp"

namespace fx::trace {

/// Times its enclosing scope and records it on destruction as a
/// ComputeEvent (phase overload) or TaskEvent (label overload).
///
/// Compute spans additionally feed the online observatory when FFTX_OBS is
/// on -- with or without a tracer, so always-on watch mode costs no trace
/// memory.  The observatory is fed wall-clock durations from here (not
/// from Tracer::record_compute) on purpose: the model backend writes
/// virtual timestamps straight into the tracer, which must never poison
/// the live statistics.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, int rank, int thread, PhaseKind phase, int band,
             double instructions = 0.0)
      : tracer_(tracer),
        obs_(obs_active()),
        rank_(rank),
        thread_(thread),
        phase_(phase),
        band_(band),
        instructions_(instructions),
        t_begin_(tracer != nullptr || obs_ != nullptr ? core::WallTimer::now()
                                                      : 0.0) {}

  ScopedSpan(Tracer* tracer, int rank, int worker, std::string label)
      : tracer_(tracer),
        rank_(rank),
        thread_(worker),
        is_task_(true),
        label_(std::move(label)),
        t_begin_(tracer ? core::WallTimer::now() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach the modelled instruction count once it is known (compute spans).
  void set_instructions(double instructions) { instructions_ = instructions; }

  ~ScopedSpan() {
    if (tracer_ == nullptr && obs_ == nullptr) return;
    const double t_end = core::WallTimer::now();
    if (is_task_) {
      if (tracer_ != nullptr) {
        tracer_->record_task({rank_, thread_, std::move(label_), t_begin_,
                              t_end});
      }
      return;
    }
    if (tracer_ != nullptr) {
      tracer_->record_compute(
          {rank_, thread_, phase_, band_, t_begin_, t_end, instructions_});
    }
    if (obs_ != nullptr) {
      obs_->record_phase(rank_, phase_, band_, t_end - t_begin_);
    }
  }

 private:
  Tracer* tracer_;
  Observatory* obs_ = nullptr;
  int rank_ = 0;
  int thread_ = 0;
  PhaseKind phase_ = PhaseKind::Other;
  int band_ = 0;
  bool is_task_ = false;
  double instructions_ = 0.0;
  std::string label_;
  double t_begin_;
};

}  // namespace fx::trace

// NOLINTBEGIN(cppcoreguidelines-macro-usage): scope guards need __LINE__
// pasting for unique local names.
#define FX_TRACE_CONCAT_INNER(a, b) a##b
#define FX_TRACE_CONCAT(a, b) FX_TRACE_CONCAT_INNER(a, b)

/// Record the enclosing scope as one trace event.  Arguments are forwarded
/// to ScopedSpan: (tracer, rank, thread, PhaseKind, band[, instructions])
/// for a compute phase, or (tracer, rank, worker, label) for a task.
#define FX_TRACE_SCOPE(...)                                       \
  ::fx::trace::ScopedSpan FX_TRACE_CONCAT(fx_trace_span_, __LINE__) { \
    __VA_ARGS__                                                   \
  }
// NOLINTEND(cppcoreguidelines-macro-usage)
