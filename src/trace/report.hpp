// Multi-run POP efficiency reports (the analyst-facing summary table the
// paper's Tables I/II are instances of).
//
// Feed it one (label, EfficiencySummary) pair per configuration of a
// scaling sweep; it derives the cross-run scalability factors against the
// first entry and renders the full multiplicative hierarchy.
#pragma once

#include <string>
#include <vector>

#include "trace/analysis.hpp"

namespace fx::trace {

struct ReportEntry {
  std::string label;  ///< e.g. "1 x 8"
  EfficiencySummary summary;
};

/// One row per factor, one column per entry; scalabilities are relative to
/// entries.front().  Returns the rendered table.
std::string render_efficiency_report(const std::string& title,
                                     const std::vector<ReportEntry>& entries);

/// Convenience: analyze several tracers (all with the same frequency) and
/// render.  Labels and tracers must have equal sizes.
std::string render_efficiency_report(const std::string& title,
                                     const std::vector<std::string>& labels,
                                     const std::vector<const Tracer*>& tracers,
                                     double freq_ghz);

}  // namespace fx::trace
