#include "trace/phases.hpp"

namespace fx::trace {

const char* to_string(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::PsiPrep:
      return "psi_prep";
    case PhaseKind::Pack:
      return "pack";
    case PhaseKind::FftZ:
      return "fft_z";
    case PhaseKind::Scatter:
      return "scatter";
    case PhaseKind::FftXy:
      return "fft_xy";
    case PhaseKind::Vofr:
      return "vofr";
    case PhaseKind::Unpack:
      return "unpack";
    case PhaseKind::Other:
      return "other";
    case PhaseKind::Abft:
      return "abft";
    case PhaseKind::TaskWait:
      return "task_wait";
  }
  return "?";
}

PhaseCost fft_cost(std::size_t points, std::size_t len) {
  if (points == 0 || len <= 1) return {0.0, 0.0};
  const double p = static_cast<double>(points);
  const double lg = std::log2(static_cast<double>(len));
  const double flops = 5.0 * p * lg;
  const double instructions = 1.5 * flops;
  // One 16-byte complex read + write per element per pass; the butterflies
  // of one pass largely hit cache, so charge half a pass of DRAM traffic.
  const double bytes = 0.5 * 32.0 * p * lg;
  return {instructions, bytes};
}

PhaseCost copy_cost(std::size_t elems) {
  const double e = static_cast<double>(elems);
  // ~4 instructions per element (indexed load, store, pointer bookkeeping)
  // against a full 16-byte read + 16-byte write: bytes/instruction ~ 8,
  // the bandwidth-bound regime.
  return {4.0 * e, 32.0 * e};
}

PhaseCost vofr_cost(std::size_t elems) {
  const double e = static_cast<double>(elems);
  // Complex*real multiply: 2 flops + loads/stores; reads V (8B) and the
  // element (16B), writes 16B.
  return {6.0 * e, 40.0 * e};
}

double phase_nominal_ipc(PhaseKind kind) {
  // Mirror of model::MachineConfig::knl() base_ipc -- keep in sync.
  switch (kind) {
    case PhaseKind::PsiPrep:
      return 0.30;
    case PhaseKind::Pack:
    case PhaseKind::Scatter:
    case PhaseKind::Unpack:
      return 0.70;
    case PhaseKind::FftZ:
    case PhaseKind::Vofr:
      return 0.90;
    case PhaseKind::FftXy:
      return 1.40;
    case PhaseKind::Other:
    case PhaseKind::Abft:
    case PhaseKind::TaskWait:
      return 1.0;
  }
  return 1.0;
}

PhaseCost phase_cost(PhaseKind kind, std::size_t elems, std::size_t len) {
  switch (kind) {
    case PhaseKind::FftZ:
    case PhaseKind::FftXy:
      return fft_cost(elems, len);
    case PhaseKind::Vofr:
      return vofr_cost(elems);
    case PhaseKind::PsiPrep:
    case PhaseKind::Pack:
    case PhaseKind::Scatter:
    case PhaseKind::Unpack:
    case PhaseKind::Other:
    case PhaseKind::Abft:
    case PhaseKind::TaskWait:
      return copy_cost(elems);
  }
  return copy_cost(elems);
}

}  // namespace fx::trace
