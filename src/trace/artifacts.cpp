#include "trace/artifacts.hpp"

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/json.hpp"
#include "core/metrics.hpp"
#include "trace/chrome_export.hpp"
#include "trace/observatory.hpp"
#include "trace/trace_io.hpp"
#include "trace/tracer.hpp"

namespace fx::trace {

namespace {

std::filesystem::path prepared_dir() {
  const std::string dir = trace_dir();
  if (dir.empty()) return {};
  std::filesystem::path p(dir);
  std::filesystem::create_directories(p);
  return p;
}

void dump_metrics_into(const std::filesystem::path& dir,
                       const std::string& name) {
  const auto& reg = core::MetricsRegistry::global();
  reg.dump((dir / (name + ".metrics.csv")).string(),
           core::MetricsRegistry::DumpFormat::Csv);
  reg.dump((dir / (name + ".metrics.json")).string(),
           core::MetricsRegistry::DumpFormat::Json);
}

void dump_flight_into(const std::filesystem::path& dir,
                      const std::string& name) {
  Observatory* obs = obs_active();
  if (obs == nullptr || obs->iterations_done() == 0) return;
  core::json::save_file(obs->flight_json(),
                        (dir / (name + ".flight.json")).string());
}

}  // namespace

std::string trace_dir() {
  const char* v = std::getenv("FFTX_TRACE_DIR");
  return v == nullptr ? std::string() : std::string(v);
}

bool dump_run_artifacts(Tracer& tracer, const std::string& name) {
  const auto dir = prepared_dir();
  if (dir.empty()) return false;
  tracer.normalize_time();
  save_trace(tracer, (dir / (name + ".fxtrace")).string());
  save_chrome_trace(tracer, (dir / (name + ".json")).string());
  dump_metrics_into(dir, name);
  dump_flight_into(dir, name);
  std::cout << "[trace] observability artifacts for '" << name << "' in "
            << dir.string() << "/\n";
  return true;
}

bool dump_metrics(const std::string& name) {
  const auto dir = prepared_dir();
  if (dir.empty()) return false;
  dump_metrics_into(dir, name);
  dump_flight_into(dir, name);
  std::cout << "[trace] metrics snapshot for '" << name << "' in "
            << dir.string() << "/\n";
  return true;
}

ArtifactScope::~ArtifactScope() {
  if (!armed_) return;
  try {
    if (tracer_ != nullptr) {
      dump_run_artifacts(*tracer_, name_);
    } else {
      dump_metrics(name_);
    }
  } catch (...) {
    // Never let an artifact write terminate the program mid-unwind.
  }
}

void ArtifactScope::flush() {
  armed_ = false;
  if (tracer_ != nullptr) {
    dump_run_artifacts(*tracer_, name_);
  } else {
    dump_metrics(name_);
  }
}

}  // namespace fx::trace
