#include "trace/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "core/csv.hpp"
#include "core/error.hpp"
#include "core/format.hpp"

namespace fx::trace {

namespace {

char phase_letter(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::PsiPrep:
      return 'p';
    case PhaseKind::Pack:
      return 'K';
    case PhaseKind::FftZ:
      return 'Z';
    case PhaseKind::Scatter:
      return 'S';
    case PhaseKind::FftXy:
      return 'X';
    case PhaseKind::Vofr:
      return 'V';
    case PhaseKind::Unpack:
      return 'U';
    case PhaseKind::Other:
      return 'o';
    case PhaseKind::Abft:
      return 'A';
    case PhaseKind::TaskWait:
      return 'w';
  }
  return '?';
}

char mpi_letter(mpi::CommOpKind kind) {
  switch (kind) {
    case mpi::CommOpKind::Alltoall:
      return 'A';
    case mpi::CommOpKind::Alltoallv:
      return 'a';
    case mpi::CommOpKind::Barrier:
      return 'B';
    case mpi::CommOpKind::Bcast:
      return 'b';
    case mpi::CommOpKind::Allreduce:
      return 'r';
    case mpi::CommOpKind::Allgather:
      return 'g';
    case mpi::CommOpKind::Split:
      return 's';
    case mpi::CommOpKind::Send:
      return '>';
    case mpi::CommOpKind::Recv:
      return '<';
    case mpi::CommOpKind::Gather:
      return 'G';
    case mpi::CommOpKind::Scatter:
      return 'C';
    case mpi::CommOpKind::Reduce:
      return 'R';
    case mpi::CommOpKind::Ialltoall:
      return 'I';
    case mpi::CommOpKind::Ialltoallv:
      return 'i';
  }
  return '?';
}

struct RowKey {
  int rank;
  int thread;
  auto operator<=>(const RowKey&) const = default;
};

}  // namespace

std::string render_timeline(const Tracer& tracer, const TimelineOptions& opt) {
  FX_CHECK(opt.width >= 10, "timeline width too small");
  const double t0 = opt.t_begin;
  const double t1 = opt.t_end > opt.t_begin ? opt.t_end : tracer.t_max();
  const double span = std::max(t1 - t0, 1e-12);
  const double dt = span / opt.width;

  // Collect rows.
  std::map<RowKey, std::vector<std::pair<char, double>>> cells;
  auto row_cells = [&](int rank, int thread)
      -> std::vector<std::pair<char, double>>& {
    auto& c = cells[RowKey{rank, thread}];
    if (c.empty()) {
      c.assign(static_cast<std::size_t>(opt.width), {' ', 0.0});
    }
    return c;
  };

  auto paint = [&](int rank, int thread, double b, double e, char ch) {
    if (e <= t0 || b >= t1) return;
    auto& row = row_cells(rank, thread);
    const int c0 = std::clamp(static_cast<int>((b - t0) / dt), 0,
                              opt.width - 1);
    const int c1 = std::clamp(static_cast<int>((e - t0) / dt), 0,
                              opt.width - 1);
    for (int c = c0; c <= c1; ++c) {
      const double cell_b = t0 + c * dt;
      const double cell_e = cell_b + dt;
      const double overlap =
          std::min(e, cell_e) - std::max(b, cell_b);
      auto& cell = row[static_cast<std::size_t>(c)];
      if (overlap > cell.second) cell = {ch, overlap};
    }
  };

  const bool want_compute = opt.view == TimelineView::Phase ||
                            opt.view == TimelineView::Ipc;
  if (want_compute) {
    for (const auto& e : tracer.compute_events()) {
      char ch = ' ';
      if (opt.view == TimelineView::Phase) {
        ch = phase_letter(e.phase);
      } else {
        const double secs = e.t_end - e.t_begin;
        const double ipc =
            secs > 0.0 ? e.instructions / (secs * opt.freq_ghz * 1e9) : 0.0;
        const int digit = std::clamp(static_cast<int>(ipc * 5.0), 0, 9);
        ch = static_cast<char>('0' + digit);
      }
      paint(e.rank, e.thread, e.t_begin, e.t_end, ch);
    }
  } else {
    for (const auto& e : tracer.comm_events()) {
      char ch = opt.view == TimelineView::MpiCall
                    ? mpi_letter(e.kind)
                    : static_cast<char>('0' + e.comm_id % 10);
      paint(e.rank, e.thread, e.t_begin, e.t_end, ch);
    }
    // Ensure every stream appears even if it has no comm in the window.
    for (const auto& e : tracer.compute_events()) {
      row_cells(e.rank, e.thread);
    }
  }

  std::ostringstream os;
  os << "time window [" << core::fixed(t0 * 1e3, 3) << " ms, "
     << core::fixed(t1 * 1e3, 3) << " ms], " << opt.width << " columns\n";
  for (const auto& [key, row] : cells) {
    os << 'r' << key.rank;
    if (key.thread > 0 || cells.count(RowKey{key.rank, 1}) > 0) {
      os << '.' << key.thread;
    }
    os << '\t' << '|';
    for (const auto& [ch, w] : row) os << ch;
    os << "|\n";
  }
  switch (opt.view) {
    case TimelineView::Phase:
      os << "legend: p=psi_prep K=pack Z=fft_z S=scatter X=fft_xy V=vofr "
            "U=unpack\n";
      break;
    case TimelineView::Ipc:
      os << "legend: digit = IPC*5 (0 => <0.2 IPC, 9 => >=1.8 IPC)\n";
      break;
    case TimelineView::MpiCall:
      os << "legend: A=Alltoall a=Alltoallv B=Barrier r=Allreduce "
            "g=Allgather b=Bcast\n";
      break;
    case TimelineView::Communicator:
      os << "legend: digit = communicator id mod 10\n";
      break;
  }
  return os.str();
}

std::string render_ipc_histogram(const Tracer& tracer, int bins,
                                 double freq_ghz) {
  FX_CHECK(bins >= 2, "need at least two IPC bins");
  constexpr double kMaxIpc = 2.0;  // fixed scale, comparable across runs
  static const char kShades[] = " .:-=+*#@";
  constexpr int kNumShades = 9;

  std::map<RowKey, std::vector<double>> hist;
  double max_cell = 0.0;
  for (const auto& e : tracer.compute_events()) {
    const double secs = e.t_end - e.t_begin;
    if (secs <= 0.0) continue;
    const double ipc = e.instructions / (secs * freq_ghz * 1e9);
    const int bin = std::clamp(static_cast<int>(ipc / kMaxIpc * bins), 0,
                               bins - 1);
    auto& row = hist[RowKey{e.rank, e.thread}];
    if (row.empty()) row.assign(static_cast<std::size_t>(bins), 0.0);
    row[static_cast<std::size_t>(bin)] += secs;
    max_cell = std::max(max_cell, row[static_cast<std::size_t>(bin)]);
  }

  std::ostringstream os;
  os << "IPC histogram: columns span [0, " << core::fixed(kMaxIpc, 1)
     << ") IPC in " << bins << " bins; shade = accumulated time\n";
  for (const auto& [key, row] : hist) {
    os << 'r' << key.rank << '.' << key.thread << '\t' << '|';
    for (double v : row) {
      const int shade =
          max_cell > 0.0
              ? std::clamp(static_cast<int>(v / max_cell * kNumShades), 0,
                           kNumShades - 1)
              : 0;
      os << kShades[shade];
    }
    os << "|\n";
  }
  return os.str();
}

void write_events_csv(const Tracer& tracer, const std::string& path) {
  core::CsvWriter csv(path);
  csv.row({"stream", "rank", "thread", "t_begin", "t_end", "what", "detail1",
           "detail2"});
  for (const auto& e : tracer.compute_events()) {
    csv.row({"compute", core::cat(e.rank), core::cat(e.thread),
             core::cat(e.t_begin), core::cat(e.t_end), to_string(e.phase),
             core::cat(e.band), core::cat(e.instructions)});
  }
  for (const auto& e : tracer.comm_events()) {
    csv.row({"comm", core::cat(e.rank), core::cat(e.thread),
             core::cat(e.t_begin), core::cat(e.t_end), mpi::to_string(e.kind),
             core::cat(e.comm_id), core::cat(e.bytes)});
  }
  for (const auto& e : tracer.task_events()) {
    csv.row({"task", core::cat(e.rank), core::cat(e.worker),
             core::cat(e.t_begin), core::cat(e.t_end), e.label, "", ""});
  }
}

}  // namespace fx::trace
