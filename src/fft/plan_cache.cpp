#include "fft/plan_cache.hpp"

#include "core/metrics.hpp"

namespace fx::fft {

namespace {

// Plan construction is the expensive path (twiddle tables, Bluestein
// setup); the hit/miss ratio in a run's metrics dump shows whether the
// cache is actually absorbing it.
struct CacheMetrics {
  core::Counter& hits;
  core::Counter& misses;
};

CacheMetrics& cache_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static CacheMetrics m{reg.counter("fft.plan_cache.hits"),
                        reg.counter("fft.plan_cache.misses")};
  return m;
}

}  // namespace

std::shared_ptr<const Fft1d> PlanCache::plan1d(std::size_t n, Direction dir) {
  const auto key = std::make_pair(n, static_cast<int>(dir));
  std::lock_guard lock(mu_);
  auto& slot = c1_[key];
  if (!slot) {
    cache_metrics().misses.add();
    slot = std::make_shared<const Fft1d>(n, dir);
  } else {
    cache_metrics().hits.add();
  }
  return slot;
}

std::shared_ptr<const BatchPlan1d> PlanCache::batch1d(std::size_t n,
                                                      Direction dir,
                                                      BatchKernel kernel) {
  const auto key =
      std::make_tuple(n, static_cast<int>(dir), static_cast<int>(kernel));
  std::lock_guard lock(mu_);
  auto& slot = cb_[key];
  if (!slot) {
    cache_metrics().misses.add();
    slot = std::make_shared<const BatchPlan1d>(n, dir, kernel);
  } else {
    cache_metrics().hits.add();
  }
  return slot;
}

std::shared_ptr<const BatchPlanR2c1d> PlanCache::r2c1d(std::size_t n,
                                                       Direction dir,
                                                       BatchKernel kernel) {
  const auto key =
      std::make_tuple(n, static_cast<int>(dir), static_cast<int>(kernel));
  std::lock_guard lock(mu_);
  auto& slot = cr_[key];
  if (!slot) {
    cache_metrics().misses.add();
    slot = std::make_shared<const BatchPlanR2c1d>(n, dir, kernel);
  } else {
    cache_metrics().hits.add();
  }
  return slot;
}

std::shared_ptr<const Fft2d> PlanCache::plan2d(std::size_t nx, std::size_t ny,
                                               Direction dir,
                                               BatchKernel kernel) {
  const auto key = std::make_tuple(nx, ny, static_cast<int>(dir),
                                   static_cast<int>(kernel));
  std::lock_guard lock(mu_);
  auto& slot = c2_[key];
  if (!slot) {
    cache_metrics().misses.add();
    slot = std::make_shared<const Fft2d>(nx, ny, dir, kernel);
  } else {
    cache_metrics().hits.add();
  }
  return slot;
}

std::size_t PlanCache::size() const {
  std::lock_guard lock(mu_);
  return c1_.size() + cb_.size() + cr_.size() + c2_.size();
}

std::size_t PlanCache::evict_unused() {
  std::lock_guard lock(mu_);
  const auto unused = [](const auto& kv) {
    return kv.second.use_count() == 1;
  };
  std::size_t n = 0;
  n += std::erase_if(c1_, unused);
  n += std::erase_if(cb_, unused);
  n += std::erase_if(cr_, unused);
  n += std::erase_if(c2_, unused);
  if (n > 0) {
    static core::Counter& evictions =
        core::MetricsRegistry::global().counter("fft.plan_cache.evictions");
    evictions.add(n);
  }
  return n;
}

void PlanCache::clear() {
  std::lock_guard lock(mu_);
  c1_.clear();
  cb_.clear();
  cr_.clear();
  c2_.clear();
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace fx::fft
