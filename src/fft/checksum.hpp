// Checksum-band packing and digest primitives for algorithm-based fault
// tolerance (ABFT) over batched FFTs.
//
// An FFT is linear: T(sum_i w_i x_i) == sum_i w_i T(x_i) for any weights.
// The ABFT layer exploits this by forming one weighted "checksum band" per
// batch before a transform stage and comparing its transform against the
// same weighted combination of the transformed batch afterwards -- a single
// extra length-n FFT guards a whole howmany-by-n batch.  The identity holds
// only up to floating-point rounding (the two sides round differently), so
// comparisons use the roundoff-floor tolerance derived here; corruption
// below that floor is numerically indistinguishable from legitimate
// rounding and therefore scientifically harmless.
//
// Parseval's theorem gives a second, cheaper invariant: an unnormalized
// length-n transform (either direction) scales energy exactly,
// ||T(x)||^2 == n * ||x||^2.
//
// For the gaps *between* compute stages -- where this codebase's fault
// model injects its bit flips -- rounding plays no role, so a word digest
// over the at-rest buffer detects every flipped bit exactly.
//
// Everything here is plain local arithmetic with no pipeline or MPI
// dependencies; the fftx::AbftGuard composes these into per-stage checks.
#pragma once

#include <cstddef>
#include <cstdint>

#include "fft/types.hpp"

namespace fx::fft {

/// Deterministic checksum weight of batch item i, uniform in [1, 2): far
/// from zero (no band can vanish from the combination) and pairwise
/// distinct (two corrupted bands cannot cancel except on a measure-zero
/// set).  Stateless, so every rank and every replay derives identical
/// weights.
[[nodiscard]] double abft_weight(std::size_t i);

/// Accumulates dst[j] += abft_weight(b) * in[(b - lo) * idist + j] for every
/// batch item b in [lo, hi), where `in` points at item lo and items are
/// `idist` elements apart, each of length n (contiguous).  Returns the
/// summed energy sum |in|^2 over the touched elements, so callers get the
/// Parseval input for free in the same pass.  Weights are indexed by the
/// *global* item index b, letting chunked stages accumulate incrementally.
double checksum_accumulate(cplx* dst, const cplx* in, std::size_t idist,
                           std::size_t lo, std::size_t hi, std::size_t n);

/// checksum_accumulate fused with the at-rest digest of the touched region:
/// one streaming pass yields the weighted combination, the Parseval energy
/// (returned) and, in *dig, a digest bit-identical to
/// digest(in, (hi - lo) * n).  Requires idist == n (contiguous items), which
/// is how every stage buffer is laid out; the guard pairs this with a
/// preceding seal so the stage-entry digest check costs no extra pass.
double checksum_accumulate_digest(cplx* dst, const cplx* in, std::size_t lo,
                                  std::size_t hi, std::size_t n,
                                  std::uint64_t* dig);

/// Sum of |p[i]|^2 over n elements.
[[nodiscard]] double energy(const cplx* p, std::size_t n);

/// energy() fused with the at-rest digest of the same buffer (bit-identical
/// to digest(p, n)) in one streaming pass -- the light-duty stage guard:
/// Parseval in, seal/check out, no weighted combination.
double energy_digest(const cplx* p, std::size_t n, std::uint64_t* dig);

/// Max element residual and scale between two length-n vectors:
/// residual = max |a - b|, scale = max(max |a|, max |b|).
struct ChecksumResidual {
  double residual = 0.0;
  double scale = 0.0;
};
[[nodiscard]] ChecksumResidual checksum_compare(const cplx* a, const cplx* b,
                                                std::size_t n);

/// Roundoff-floor tolerance for the linearity check on a length-n transform
/// of an nbatch-item combination whose compared vectors have infinity-norm
/// `scale`: the FFT contributes O(log2 n) rounding steps per element and
/// the combination O(nbatch), each bounded by eps * scale.  The constant is
/// generous (it must never fire on a clean run) while still resolving any
/// flip that perturbs a result by more than ~1e-12 of the data scale.
[[nodiscard]] double checksum_tolerance(std::size_t n, std::size_t nbatch,
                                        double scale);

/// Relative tolerance for comparing two energy sums accumulated over
/// `count` elements (plain summation: worst-case error grows linearly).
[[nodiscard]] double energy_tolerance(std::size_t count);

/// Order-dependent rotate-xor digest of n 64-bit words: any single flipped
/// bit (and any burst short of a deliberate collision) changes the digest.
/// Eight shift/xor-only lanes auto-vectorize at any SIMD width -- digesting
/// must cost far less than the FFTs it guards.
[[nodiscard]] std::uint64_t digest_words(const std::uint64_t* p,
                                         std::size_t n);

/// Digest of a complex buffer's bit pattern (2n doubles reinterpreted as
/// words; std::complex<double> is layout-compatible by the standard).
[[nodiscard]] std::uint64_t digest(const cplx* p, std::size_t n);

}  // namespace fx::fft
