#include "fft/batch1d.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/env.hpp"
#include "core/error.hpp"

namespace fx::fft {

namespace {

constexpr std::size_t kW = BatchPlan1d::kSimdWidth;

/// Doubles per lane pack: kW real parts followed by kW imaginary parts.
constexpr std::size_t kPack = 2 * kW;

/// Tile scratch budget.  A tile transforms kW lanes through 3 ping-pong
/// buffers of n packs (gather, output, recursion scratch) = 384*n bytes;
/// keeping that under one KNL L2 slice (512 KiB per core of the shared
/// 1 MiB tile cache) is what makes the gather/scatter transposes pay for
/// themselves.  Longer transforms fall back to the scalar path.
constexpr std::size_t kL2TileBytes = 512 * 1024;

}  // namespace

BatchKernel default_batch_kernel() {
  static const BatchKernel kernel = [] {
    bool scalar = false;
    core::env_flag("FFTX_FFT_SCALAR", scalar, "fft");
    return scalar ? BatchKernel::Scalar : BatchKernel::Simd;
  }();
  return kernel;
}

BatchPlan1d::BatchPlan1d(std::size_t n, Direction dir, BatchKernel kernel)
    : base_(n, dir), kernel_(kernel) {
  const std::size_t tile_bytes = 3 * n * kPack * sizeof(double);
  simd_ok_ = kernel_ == BatchKernel::Simd && n >= 2 &&
             !base_.uses_bluestein() && tile_bytes <= kL2TileBytes;
}

void BatchPlan1d::execute_many(std::size_t howmany, const cplx* in,
                               std::size_t istride, std::size_t idist,
                               cplx* out, std::size_t ostride,
                               std::size_t odist, Workspace& ws) const {
  if (howmany == 0) return;
  detail::check_batch_aliasing(base_.size(), howmany, in, istride, idist, out,
                               ostride, odist);
  if (!simd_ok_) {
    base_.execute_many(howmany, in, istride, idist, out, ostride, odist, ws);
    return;
  }
  std::size_t b = 0;
  while (b < howmany) {
    const std::size_t lanes = std::min(kW, howmany - b);
    if (lanes == 1) {
      // A lone tail transform: the pack transposes would cost more than
      // they vectorize, so run it through the scalar engine.
      base_.execute_strided(in + b * idist, istride, out + b * odist, ostride,
                            ws);
    } else {
      execute_tile(lanes, in + b * idist, istride, idist, out + b * odist,
                   ostride, odist, ws);
    }
    b += lanes;
  }
}

void BatchPlan1d::execute_many(std::size_t howmany, const cplx* in,
                               std::size_t istride, std::size_t idist,
                               cplx* out, std::size_t ostride,
                               std::size_t odist) const {
  execute_many(howmany, in, istride, idist, out, ostride, odist,
               thread_workspace());
}

void BatchPlan1d::execute_tile(std::size_t lanes, const cplx* in,
                               std::size_t istride, std::size_t idist,
                               cplx* out, std::size_t ostride,
                               std::size_t odist, Workspace& ws) const {
  const std::size_t n = base_.size();
  // One lease carved into the 3 tile buffers; cvec storage is 64-byte
  // aligned and each buffer spans n*kPack doubles (a multiple of 64
  // bytes), so every pack below is aligned.  [complex.numbers.general]
  // guarantees the double-array reinterpretation of cplx storage.
  Workspace::Buffer lease(ws, 3 * n * kW);
  auto* raw = reinterpret_cast<double*>(lease.data());
  double* gathered = raw;
  double* result = raw + n * kPack;
  double* scratch = raw + 2 * n * kPack;

  // Gather: element j of lane l comes from in[l*idist + j*istride].  Lanes
  // beyond the batch tail are zero-filled so they stay finite (their
  // results are discarded by the scatter).
  for (std::size_t j = 0; j < n; ++j) {
    double* re = gathered + j * kPack;
    double* im = re + kW;
    const cplx* src = in + j * istride;
    for (std::size_t l = 0; l < lanes; ++l) {
      re[l] = src[l * idist].real();
      im[l] = src[l * idist].imag();
    }
    for (std::size_t l = lanes; l < kW; ++l) {
      re[l] = 0.0;
      im[l] = 0.0;
    }
  }

  brecurse(n, 0, gathered, 1, result, scratch);

  // Scatter: lane l's element k goes to out[l*odist + k*ostride].  Reading
  // happened entirely in the gather, so fully in-place batches are safe.
  for (std::size_t k = 0; k < n; ++k) {
    const double* re = result + k * kPack;
    const double* im = re + kW;
    cplx* dst = out + k * ostride;
    for (std::size_t l = 0; l < lanes; ++l) {
      dst[l * odist] = cplx{re[l], im[l]};
    }
  }
}

void BatchPlan1d::brecurse(std::size_t n, std::size_t factor_index,
                           const double* in, std::size_t istride, double* out,
                           double* scratch) const {
  if (n == 1) {
#pragma omp simd
    for (std::size_t d = 0; d < kPack; ++d) out[d] = in[d];
    return;
  }
  const std::size_t r = base_.factors_[factor_index];
  const std::size_t m = n / r;

  if (m == 1) {
    // Leaf: one small DFT straight from the (pack-strided) input.
    bsmall_dft(r, in, istride, out, 1);
    return;
  }

  // Decimation in time, exactly as the scalar engine: r interleaved
  // sub-transforms into `scratch`, ping-ponging with `out`.
  for (std::size_t q = 0; q < r; ++q) {
    brecurse(m, factor_index + 1, in + q * istride * kPack, istride * r,
             scratch + q * m * kPack, out + q * m * kPack);
  }

  // Combine.  Every lane of a pack shares the twiddle w_n^{j*q} -- the
  // lanes are the same element index of different transforms -- so the
  // complex multiply broadcasts one (wr, wi) pair over 8 lanes.
  const std::size_t step = base_.size() / n;
  alignas(64) double z[13 * kPack];
  for (std::size_t j = 0; j < m; ++j) {
    const double* s0 = scratch + j * kPack;
#pragma omp simd
    for (std::size_t d = 0; d < kPack; ++d) z[d] = s0[d];
    for (std::size_t q = 1; q < r; ++q) {
      const cplx w = base_.twiddle_[j * q * step];
      const double wr = w.real();
      const double wi = w.imag();
      const double* sre = scratch + (q * m + j) * kPack;
      const double* sim = sre + kW;
      double* zre = z + q * kPack;
      double* zim = zre + kW;
#pragma omp simd
      for (std::size_t l = 0; l < kW; ++l) {
        zre[l] = sre[l] * wr - sim[l] * wi;
        zim[l] = sre[l] * wi + sim[l] * wr;
      }
    }
    bsmall_dft(r, z, 1, out + j * kPack, m);
  }
}

void BatchPlan1d::bsmall_dft(std::size_t r, const double* z, std::size_t zs,
                             double* out, std::size_t os) const {
  // Pack-granular mirror of Fft1d::small_dft: out[t*os] = sum_q z[q*zs] *
  // w_r^{t*q}, with every +-*/ an 8-lane loop.  z and out never alias
  // (z is either the gathered tile or a local combine buffer).
  const double s = sign_of(base_.direction());
  const std::size_t zp = zs * kPack;
  const std::size_t op = os * kPack;
  switch (r) {
    case 1:
#pragma omp simd
      for (std::size_t d = 0; d < kPack; ++d) out[d] = z[d];
      return;
    case 2: {
      const double* are = z;
      const double* aim = z + kW;
      const double* bre = z + zp;
      const double* bim = z + zp + kW;
      double* o0 = out;
      double* o1 = out + op;
#pragma omp simd
      for (std::size_t l = 0; l < kW; ++l) {
        const double xr = are[l];
        const double xi = aim[l];
        const double yr = bre[l];
        const double yi = bim[l];
        o0[l] = xr + yr;
        o0[kW + l] = xi + yi;
        o1[l] = xr - yr;
        o1[kW + l] = xi - yi;
      }
      return;
    }
    case 3: {
      // w = -1/2 + i*s*sqrt(3)/2, as in the scalar kernel.
      constexpr double kHalfSqrt3 = 0.86602540378443864676;
      const double* z0 = z;
      const double* z1 = z + zp;
      const double* z2 = z + 2 * zp;
      double* o0 = out;
      double* o1 = out + op;
      double* o2 = out + 2 * op;
#pragma omp simd
      for (std::size_t l = 0; l < kW; ++l) {
        const double tr = z1[l] + z2[l];
        const double ti = z1[kW + l] + z2[kW + l];
        const double ur = z0[l] - 0.5 * tr;
        const double ui = z0[kW + l] - 0.5 * ti;
        const double dr = z1[l] - z2[l];
        const double di = z1[kW + l] - z2[kW + l];
        const double vr = -s * kHalfSqrt3 * di;
        const double vi = s * kHalfSqrt3 * dr;
        o0[l] = z0[l] + tr;
        o0[kW + l] = z0[kW + l] + ti;
        o1[l] = ur + vr;
        o1[kW + l] = ui + vi;
        o2[l] = ur - vr;
        o2[kW + l] = ui - vi;
      }
      return;
    }
    case 4: {
      const double* z0 = z;
      const double* z1 = z + zp;
      const double* z2 = z + 2 * zp;
      const double* z3 = z + 3 * zp;
      double* o0 = out;
      double* o1 = out + op;
      double* o2 = out + 2 * op;
      double* o3 = out + 3 * op;
#pragma omp simd
      for (std::size_t l = 0; l < kW; ++l) {
        const double t0r = z0[l] + z2[l];
        const double t0i = z0[kW + l] + z2[kW + l];
        const double t1r = z0[l] - z2[l];
        const double t1i = z0[kW + l] - z2[kW + l];
        const double t2r = z1[l] + z3[l];
        const double t2i = z1[kW + l] + z3[kW + l];
        const double t3r = z1[l] - z3[l];
        const double t3i = z1[kW + l] - z3[kW + l];
        const double it3r = -s * t3i;
        const double it3i = s * t3r;
        o0[l] = t0r + t2r;
        o0[kW + l] = t0i + t2i;
        o1[l] = t1r + it3r;
        o1[kW + l] = t1i + it3i;
        o2[l] = t0r - t2r;
        o2[kW + l] = t0i - t2i;
        o3[l] = t1r - it3r;
        o3[kW + l] = t1i - it3i;
      }
      return;
    }
    default: {
      // Generic O(r^2) kernel (r in {5, 7, 11, 13}) via the shared full
      // twiddle table: w_r^{tq} = twiddle[((t*q) % r) * (n/r)].
      const std::size_t step = base_.size() / r;
      alignas(64) double acc[kPack];
      for (std::size_t t = 0; t < r; ++t) {
#pragma omp simd
        for (std::size_t d = 0; d < kPack; ++d) acc[d] = z[d];
        for (std::size_t q = 1; q < r; ++q) {
          const cplx w = base_.twiddle_[((t * q) % r) * step];
          const double wr = w.real();
          const double wi = w.imag();
          const double* zq = z + q * zp;
#pragma omp simd
          for (std::size_t l = 0; l < kW; ++l) {
            acc[l] += zq[l] * wr - zq[kW + l] * wi;
            acc[kW + l] += zq[l] * wi + zq[kW + l] * wr;
          }
        }
        double* dst = out + t * op;
#pragma omp simd
        for (std::size_t d = 0; d < kPack; ++d) dst[d] = acc[d];
      }
      return;
    }
  }
}

}  // namespace fx::fft
