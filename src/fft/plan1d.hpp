// One-dimensional complex-to-complex FFT plan.
//
// This is the engine behind QE's cft_2z / cft_2xy equivalents in the
// pipeline.  The algorithm is a mixed-radix decimation-in-time transform
// (radices 2, 3, 4, 5, 7, 11, 13) with a single full-size twiddle table;
// sizes containing larger prime factors fall back to Bluestein's chirp-z
// algorithm on an embedded power-of-two plan, so every size is O(n log n).
//
// Plans are immutable and thread-safe; scratch memory comes from a
// caller-provided (or thread-local) Workspace.  Transforms are
// unnormalized: Backward(Forward(x)) == n * x.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

class Bluestein;  // defined in bluestein.hpp

namespace detail {
/// Guard for the execute_many aliasing contract shared by the scalar and
/// batched engines: accepts a fully in-place batch (in == out with
/// identical strides) or disjoint in/out spans, and throws via FX_ASSERT
/// on any other overlap.
void check_batch_aliasing(std::size_t n, std::size_t howmany, const cplx* in,
                          std::size_t istride, std::size_t idist,
                          const cplx* out, std::size_t ostride,
                          std::size_t odist);
}  // namespace detail

class Fft1d {
 public:
  /// Builds a plan for length n (n >= 1) in the given direction.
  Fft1d(std::size_t n, Direction dir);
  ~Fft1d();

  Fft1d(const Fft1d&) = delete;
  Fft1d& operator=(const Fft1d&) = delete;
  Fft1d(Fft1d&&) noexcept;
  Fft1d& operator=(Fft1d&&) noexcept;

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] Direction direction() const { return dir_; }

  /// Contiguous transform.  in == out (in-place) is allowed and handled via
  /// an internal copy.  Partial overlap is undefined behaviour.
  void execute(const cplx* in, cplx* out, Workspace& ws) const;
  void execute(const cplx* in, cplx* out) const;

  /// Strided transform: element j read from in[j*istride], written to
  /// out[k*ostride].  Strides must be >= 1.
  void execute_strided(const cplx* in, std::size_t istride, cplx* out,
                       std::size_t ostride, Workspace& ws) const;

  /// Batched transform: `howmany` transforms; transform b reads
  /// in[b*idist + j*istride] and writes out[b*odist + k*ostride].
  ///
  /// Aliasing: transforms run sequentially, so outputs of earlier
  /// transforms must not overlap inputs of later ones.  The only
  /// supported aliased layout is the fully in-place batch (in == out,
  /// istride == ostride, idist == odist); otherwise the input and output
  /// spans must be disjoint.  Anything in between -- shifted batches,
  /// in-place with mismatched strides -- silently corrupted results
  /// before and is now rejected by an FX_ASSERT.
  void execute_many(std::size_t howmany, const cplx* in, std::size_t istride,
                    std::size_t idist, cplx* out, std::size_t ostride,
                    std::size_t odist, Workspace& ws) const;

  /// True if this plan uses the Bluestein fallback (exposed for tests).
  [[nodiscard]] bool uses_bluestein() const { return bluestein_ != nullptr; }

 private:
  friend class BatchPlan1d;  // shares factors_/twiddle_ for the SIMD tiles

  void execute_contiguous_from_strided(const cplx* in, std::size_t istride,
                                       cplx* out, Workspace& ws) const;
  void recurse(std::size_t n, std::size_t factor_index, const cplx* in,
               std::size_t istride, cplx* out, cplx* scratch) const;
  void small_dft(std::size_t r, const cplx* z, cplx* out,
                 std::size_t ostride) const;

  std::size_t n_ = 1;
  Direction dir_ = Direction::Forward;
  std::vector<std::size_t> factors_;  // product == n_, empty when Bluestein
  cvec twiddle_;                      // twiddle_[k] = exp(sign*2*pi*i*k/n)
  std::unique_ptr<Bluestein> bluestein_;
};

}  // namespace fx::fft
