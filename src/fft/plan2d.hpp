// Two-dimensional complex FFT on a row-major nx*ny plane (x fastest).
//
// This is the engine behind the pipeline's cft_2xy equivalent: QE performs
// the XY transform of every real-space plane a rank owns.  The transform is
// computed as ny row FFTs of length nx followed by nx column FFTs of length
// ny (stride nx); both passes run through the SIMD-across-batch engine
// (rows are a contiguous batch, columns a transposed one), with the scalar
// oracle selectable per plan for A/B benching.
#pragma once

#include <cstddef>

#include "fft/batch1d.hpp"
#include "fft/r2c1d.hpp"
#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

class Fft2d {
 public:
  Fft2d(std::size_t nx, std::size_t ny, Direction dir,
        BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] Direction direction() const { return dir_; }
  [[nodiscard]] BatchKernel kernel() const { return along_x_.kernel(); }

  /// Transforms one plane of nx*ny contiguous elements, indexed
  /// data[ix + nx*iy].  In-place (the pipeline's usage) or out-of-place.
  void execute(const cplx* in, cplx* out, Workspace& ws) const;
  void execute(const cplx* in, cplx* out) const;

 private:
  std::size_t nx_;
  std::size_t ny_;
  Direction dir_;
  BatchPlan1d along_x_;
  BatchPlan1d along_y_;
};

/// Real-input 2D transform on a row-major nx*ny plane.  Forward plans map
/// nx*ny reals to the Hermitian-reduced (nx/2+1)*ny half plane (r2c along
/// x, then a complex transform along y of the surviving columns); Backward
/// plans invert it.  Unnormalized: backward(forward(x)) == nx*ny*x.
class Fft2dR2c {
 public:
  Fft2dR2c(std::size_t nx, std::size_t ny, Direction dir,
           BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  /// Stored x extent of the half plane: nx/2 + 1.
  [[nodiscard]] std::size_t nhx() const { return along_x_.half_spectrum(); }
  [[nodiscard]] Direction direction() const { return dir_; }

  /// r2c: in is nx*ny reals (in[ix + nx*iy]), out the nhx()*ny half plane
  /// (out[kx + nhx()*iy]).  Forward plans only; buffers must not overlap.
  void execute(const double* in, cplx* out, Workspace& ws) const;
  /// c2r inverse of the layout above.  Backward plans only.
  void execute(const cplx* in, double* out, Workspace& ws) const;

 private:
  std::size_t nx_;
  std::size_t ny_;
  Direction dir_;
  BatchPlanR2c1d along_x_;
  BatchPlan1d along_y_;
};

}  // namespace fx::fft
