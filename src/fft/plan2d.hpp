// Two-dimensional complex FFT on a row-major nx*ny plane (x fastest).
//
// This is the engine behind the pipeline's cft_2xy equivalent: QE performs
// the XY transform of every real-space plane a rank owns.  The transform is
// computed as ny row FFTs of length nx followed by nx column FFTs of length
// ny (stride nx).
#pragma once

#include <cstddef>

#include "fft/plan1d.hpp"
#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

class Fft2d {
 public:
  Fft2d(std::size_t nx, std::size_t ny, Direction dir);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] Direction direction() const { return dir_; }

  /// Transforms one plane of nx*ny contiguous elements, indexed
  /// data[ix + nx*iy].  In-place (the pipeline's usage) or out-of-place.
  void execute(const cplx* in, cplx* out, Workspace& ws) const;
  void execute(const cplx* in, cplx* out) const;

 private:
  std::size_t nx_;
  std::size_t ny_;
  Direction dir_;
  Fft1d along_x_;
  Fft1d along_y_;
};

}  // namespace fx::fft
