// Shared numeric types for the FFT engine.
#pragma once

#include <complex>

#include "core/aligned.hpp"

namespace fx::fft {

/// All transforms operate on double-precision complex numbers, matching
/// Quantum ESPRESSO's wave-function representation.
using cplx = std::complex<double>;

using cvec = fx::core::aligned_vector<cplx>;

/// Transform direction.  Forward uses exp(-2*pi*i*j*k/n); Backward uses
/// exp(+2*pi*i*j*k/n).  Both are unnormalized: Backward(Forward(x)) == n*x.
enum class Direction { Forward, Backward };

/// Sign of the exponent for a direction: -1 for Forward, +1 for Backward.
constexpr double sign_of(Direction d) {
  return d == Direction::Forward ? -1.0 : 1.0;
}

/// The opposite direction (used by Bluestein's embedded inverse transform).
constexpr Direction reverse(Direction d) {
  return d == Direction::Forward ? Direction::Backward : Direction::Forward;
}

}  // namespace fx::fft
