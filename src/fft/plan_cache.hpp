// Thread-safe plan cache.
//
// Plans are immutable after construction, so they can be shared freely;
// building one costs a twiddle-table fill (or a Bluestein kernel FFT),
// which is worth amortizing when many pipeline instances or tasks need the
// same sizes.  The cache hands out shared_ptrs; entries live as long as
// the cache (plus any outstanding users).
//
// Cache keys include the batch kernel (SIMD tiles vs scalar oracle), so a
// benchmark can hold both variants of the same size side by side.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "fft/batch1d.hpp"
#include "fft/plan1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/r2c1d.hpp"

namespace fx::fft {

class PlanCache {
 public:
  /// Returns (building on first use) the 1D plan for (n, dir).
  std::shared_ptr<const Fft1d> plan1d(std::size_t n, Direction dir);

  /// Returns (building on first use) the batched 1D plan for
  /// (n, dir, kernel).  This is what every execute_many call site in the
  /// pipeline uses; pass BatchKernel::Scalar for the A/B oracle.
  std::shared_ptr<const BatchPlan1d> batch1d(
      std::size_t n, Direction dir, BatchKernel kernel = default_batch_kernel());

  /// Returns (building on first use) the batched r2c/c2r plan for
  /// (n, dir, kernel): Forward plans transform real input to the Hermitian
  /// half spectrum, Backward plans invert it.
  std::shared_ptr<const BatchPlanR2c1d> r2c1d(
      std::size_t n, Direction dir, BatchKernel kernel = default_batch_kernel());

  /// Returns (building on first use) the 2D plan for (nx, ny, dir, kernel).
  std::shared_ptr<const Fft2d> plan2d(std::size_t nx, std::size_t ny,
                                      Direction dir,
                                      BatchKernel kernel = default_batch_kernel());

  /// Number of distinct plans currently cached.
  [[nodiscard]] std::size_t size() const;

  /// Drops all cached plans (outstanding shared_ptrs stay valid).
  void clear();

  /// Drops every plan no caller holds anymore (use_count == 1, i.e. only
  /// the cache's own reference).  Cache hygiene after elastic
  /// re-decomposition: plans built for a dead layout would otherwise stay
  /// resident for the rest of the process.  Returns the number evicted.
  std::size_t evict_unused();

  /// Process-wide shared instance.
  static PlanCache& global();

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::size_t, int>, std::shared_ptr<const Fft1d>> c1_;
  std::map<std::tuple<std::size_t, int, int>,
           std::shared_ptr<const BatchPlan1d>>
      cb_;
  std::map<std::tuple<std::size_t, int, int>,
           std::shared_ptr<const BatchPlanR2c1d>>
      cr_;
  std::map<std::tuple<std::size_t, std::size_t, int, int>,
           std::shared_ptr<const Fft2d>>
      c2_;
};

}  // namespace fx::fft
