#include "fft/bluestein.hpp"

#include <cmath>
#include <numbers>

#include "core/error.hpp"
#include "fft/plan1d.hpp"

namespace fx::fft {

namespace {
std::size_t next_pow2(std::size_t n) {
  std::size_t m = 1;
  while (m < n) m <<= 1;
  return m;
}
}  // namespace

Bluestein::Bluestein(std::size_t n, Direction dir)
    : n_(n), m_(next_pow2(2 * n - 1)) {
  FX_CHECK(n >= 2);
  const double s = sign_of(dir);

  // chirp_[j] = exp(s*pi*i*j^2/n).  Reduce j^2 mod 2n before the float
  // multiply: exp has period 2*pi and pi*j^2/n wraps at j^2 == 2n.
  chirp_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t e = (j * j) % (2 * n_);
    const double ang = s * std::numbers::pi * static_cast<double>(e) /
                       static_cast<double>(n_);
    chirp_[j] = cplx{std::cos(ang), std::sin(ang)};
  }

  // Kernel g[d] = conj(chirp_[|d|]) laid out circularly in length m_.
  cvec g(m_, cplx{0.0, 0.0});
  g[0] = std::conj(chirp_[0]);
  for (std::size_t j = 1; j < n_; ++j) {
    g[j] = std::conj(chirp_[j]);
    g[m_ - j] = std::conj(chirp_[j]);
  }

  fwd_ = std::make_unique<Fft1d>(m_, Direction::Forward);
  bwd_ = std::make_unique<Fft1d>(m_, Direction::Backward);
  FX_ASSERT(!fwd_->uses_bluestein(), "power-of-two inner plan expected");

  kernel_hat_.resize(m_);
  Workspace ws;
  fwd_->execute(g.data(), kernel_hat_.data(), ws);
}

Bluestein::~Bluestein() = default;

void Bluestein::execute(const cplx* in, cplx* out, Workspace& ws) const {
  // X[k] = chirp_[k] * (a (*) g)[k]  with a[j] = x[j]*chirp_[j] and the
  // convolution computed spectrally on length m_.
  Workspace::Buffer a(ws, m_);
  Workspace::Buffer spectrum(ws, m_);

  cplx* ap = a.data();
  for (std::size_t j = 0; j < n_; ++j) ap[j] = in[j] * chirp_[j];
  for (std::size_t j = n_; j < m_; ++j) ap[j] = cplx{0.0, 0.0};

  fwd_->execute(ap, spectrum.data(), ws);
  const double inv_m = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < m_; ++k) {
    spectrum.data()[k] *= kernel_hat_[k] * inv_m;
  }
  bwd_->execute(spectrum.data(), ap, ws);

  for (std::size_t k = 0; k < n_; ++k) out[k] = chirp_[k] * ap[k];
}

}  // namespace fx::fft
