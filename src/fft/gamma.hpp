// Gamma-point real-band utilities.
//
// At the Gamma point, Quantum ESPRESSO's wave functions are real in real
// space, so their spectra are Hermitian: X(-k) = conj(X(k)).  The classic
// exploitation was the "two bands at a time" packing trick -- run two real
// signals through one complex FFT of z = a + i*b and split the spectra:
//
//   A(k) = (Z(k) + conj(Z(n-k))) / 2
//   B(k) = (Z(k) - conj(Z(n-k))) / (2i)
//
// That trick only halves the *count* of transforms; every transform is
// still full complex and every spectrum is stored twice over.  The native
// r2c/c2r engine (fft/r2c1d.hpp) supersedes it: each real band gets its
// own half-length transform and only the non-redundant half spectrum
// (n/2 + 1 coefficients) is stored, which is what the distributed pipeline
// ships through the exchange.  fft_two_real / ifft_two_real remain as
// compatibility shims implemented on top of the r2c engine; new code
// should use fft_real_bands / ifft_real_bands (or BatchPlanR2c1d
// directly).
#pragma once

#include <cstddef>
#include <span>

#include "fft/plan1d.hpp"
#include "fft/r2c1d.hpp"
#include "fft/types.hpp"

namespace fx::fft {

/// Number of packed transforms needed to carry `nbands` real bands two at
/// a time: ceil(nbands/2).  The historical pairing loop computed nbands/2
/// with integer division and silently dropped the last band when nbands
/// was odd; the odd tail must instead ride as a final pair whose second
/// (imaginary) slot is zero.
[[nodiscard]] constexpr std::size_t gamma_pair_count(std::size_t nbands) {
  return (nbands + 1) / 2;
}

/// Batched Gamma-point forward transform through the native r2c engine:
/// band b reads `plan.size()` reals at bands[b*band_dist + j] and writes
/// its half spectrum (`plan.half_spectrum()` coefficients) at
/// spectra[b*spec_dist + k].  `plan` must be Forward.  Every band count is
/// handled exactly -- there is no pairing and hence no odd-tail rounding.
void fft_real_bands(const BatchPlanR2c1d& plan, std::size_t nbands,
                    const double* bands, std::size_t band_dist, cplx* spectra,
                    std::size_t spec_dist, Workspace& ws);

/// Inverse of fft_real_bands (`plan` must be Backward); the reconstructed
/// reals are scaled by 1/n, so a round trip restores the inputs.
void ifft_real_bands(const BatchPlanR2c1d& plan, std::size_t nbands,
                     const cplx* spectra, std::size_t spec_dist, double* bands,
                     std::size_t band_dist, Workspace& ws);

/// Compatibility shim for the packing trick's interface: transforms two
/// real signals a, b (length n) and writes their full complex spectra
/// (length n each).  Internally each signal now runs through the cached
/// native r2c plan and the half spectra are Hermitian-expanded; the passed
/// plan only validates size and direction.  Deprecated -- new code should
/// use fft_real_bands and keep the half-spectrum storage.
void fft_two_real(const Fft1d& forward_plan, std::span<const double> a,
                  std::span<const double> b, std::span<cplx> spectrum_a,
                  std::span<cplx> spectrum_b, Workspace& ws);

/// Compatibility shim inverting fft_two_real: reconstructs the two real
/// signals from their (Hermitian) full spectra, scaled by 1/n.  Only the
/// stored half of each spectrum is read; the mirror half is implied.
/// Deprecated -- new code should use ifft_real_bands.
void ifft_two_real(const Fft1d& backward_plan, std::span<const cplx> spectrum_a,
                   std::span<const cplx> spectrum_b, std::span<double> a,
                   std::span<double> b, Workspace& ws);

/// True if `spectrum` is Hermitian within `tol` (max absolute deviation).
bool is_hermitian(std::span<const cplx> spectrum, double tol);

}  // namespace fx::fft
