// Gamma-point packing: two real signals through one complex FFT.
//
// At the Gamma point, Quantum ESPRESSO's wave functions are real in real
// space, so their spectra are Hermitian: X(-k) = conj(X(k)).  Two real
// signals a, b can therefore share one complex transform of z = a + i*b:
//
//   A(k) = (Z(k) + conj(Z(n-k))) / 2
//   B(k) = (Z(k) - conj(Z(n-k))) / (2i)
//
// and conversely two Hermitian spectra pack into one complex inverse
// transform.  This halves the FFT work for Gamma-only calculations --
// QE's classic "two bands at a time" trick, exposed here as utilities on
// top of the engine.
#pragma once

#include <span>

#include "fft/plan1d.hpp"
#include "fft/types.hpp"

namespace fx::fft {

/// Forward direction: transforms two real signals a, b (length n) with one
/// length-n complex FFT; writes their full complex spectra (length n each).
/// Buffers must not alias.  Uses the provided Forward plan (plan.size()
/// must equal a.size() == b.size()).
void fft_two_real(const Fft1d& forward_plan, std::span<const double> a,
                  std::span<const double> b, std::span<cplx> spectrum_a,
                  std::span<cplx> spectrum_b, Workspace& ws);

/// Inverse direction: reconstructs the two real signals from their spectra
/// with one complex backward transform.  The spectra must be Hermitian
/// (X(n-k) == conj(X(k)) within `tolerance` of the checks the debug build
/// asserts); the imaginary parts of the unpacked result are the numerical
/// error and are discarded.  Outputs are scaled by 1/n (round trip with
/// fft_two_real restores the inputs).
void ifft_two_real(const Fft1d& backward_plan, std::span<const cplx> spectrum_a,
                   std::span<const cplx> spectrum_b, std::span<double> a,
                   std::span<double> b, Workspace& ws);

/// True if `spectrum` is Hermitian within `tol` (max absolute deviation).
bool is_hermitian(std::span<const cplx> spectrum, double tol);

}  // namespace fx::fft
