// Batched one-dimensional FFT: SIMD across the batch dimension.
//
// The pipeline's hot work is never one large transform -- it is thousands
// of small 1D FFTs (z-sticks of length nz, plane rows of length nx,
// plane columns of length ny).  Fft1d::execute_many runs them one at a
// time, so every butterfly is scalar complex arithmetic and the whole
// SIMD dimension of the core is wasted; the paper's KNL analysis shows
// exactly this pattern collapsing to IPC ~0.75 once cores fill.
//
// BatchPlan1d instead tiles the batch into groups of kSimdWidth
// transforms and transposes each tile into a structure-of-arrays scratch
// (split re/im "lane packs": for each element index j, 8 doubles of real
// parts then 8 doubles of imaginary parts, 64-byte aligned).  The
// mixed-radix passes then run once per tile with every inner loop a
// branch-free `#pragma omp simd` over the 8 lanes: all lanes share the
// same twiddle factor because they sit at the same element index of
// *different* transforms.  A tile is gathered, transformed entirely in
// L2-resident scratch (3 ping-pong buffers of n packs, 384*n bytes), and
// scattered back, so arbitrary (stride, dist) layouts -- contiguous
// sticks and transposed columns alike -- pay only the two transposes.
//
// Fallbacks keep every size correct: Bluestein lengths, length-1 tails of
// a tile, and lengths whose tile scratch would overflow L2 all route
// through the scalar Fft1d path, which also remains selectable per plan
// (BatchKernel::Scalar) as the A/B correctness oracle for benchmarks.
#pragma once

#include <cstddef>

#include "fft/plan1d.hpp"
#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

/// Which kernel a BatchPlan1d runs: the SIMD-across-batch tiles (default)
/// or the scalar per-transform loop kept as the correctness oracle.
enum class BatchKernel { Simd, Scalar };

/// Process-wide default kernel: BatchKernel::Simd unless the environment
/// variable FFTX_FFT_SCALAR is set to a non-empty value other than "0"
/// (read once), which forces the scalar oracle everywhere -- the A/B
/// switch the pipeline benches use without recompiling.
BatchKernel default_batch_kernel();

class BatchPlan1d {
 public:
  /// Transforms per SIMD tile: 8 doubles = one AVX-512 register (KNL's
  /// native width); on narrower hosts the compiler splits each lane loop
  /// into 2 or 4 vector ops, which still beats scalar complex arithmetic.
  static constexpr std::size_t kSimdWidth = 8;

  BatchPlan1d(std::size_t n, Direction dir,
              BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t size() const { return base_.size(); }
  [[nodiscard]] Direction direction() const { return base_.direction(); }
  [[nodiscard]] BatchKernel kernel() const { return kernel_; }

  /// True if execute_many will use the SIMD tile path (false for the
  /// scalar oracle, Bluestein sizes, and tile-overflows-L2 lengths).
  [[nodiscard]] bool simd_active() const { return simd_ok_; }

  /// The scalar plan this batched plan wraps (the correctness oracle).
  [[nodiscard]] const Fft1d& scalar_plan() const { return base_; }

  /// Batched transform with Fft1d::execute_many's exact contract:
  /// transform b reads in[b*idist + j*istride] and writes
  /// out[b*odist + k*ostride].  Fully in-place batches (in == out with
  /// identical strides) are supported; see Fft1d::execute_many for the
  /// aliasing rules (anything between "same layout in place" and
  /// "disjoint" is rejected).
  void execute_many(std::size_t howmany, const cplx* in, std::size_t istride,
                    std::size_t idist, cplx* out, std::size_t ostride,
                    std::size_t odist, Workspace& ws) const;
  void execute_many(std::size_t howmany, const cplx* in, std::size_t istride,
                    std::size_t idist, cplx* out, std::size_t ostride,
                    std::size_t odist) const;

 private:
  void execute_tile(std::size_t lanes, const cplx* in, std::size_t istride,
                    std::size_t idist, cplx* out, std::size_t ostride,
                    std::size_t odist, Workspace& ws) const;
  void brecurse(std::size_t n, std::size_t factor_index, const double* in,
                std::size_t istride, double* out, double* scratch) const;
  void bsmall_dft(std::size_t r, const double* z, std::size_t zstride,
                  double* out, std::size_t ostride) const;

  Fft1d base_;
  BatchKernel kernel_;
  bool simd_ok_;
};

}  // namespace fx::fft
