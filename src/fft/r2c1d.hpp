// Batched real-to-complex / complex-to-real 1D transforms.
//
// Gamma-point wavefunctions are real in real space, so their spectra are
// Hermitian: X[n-k] == conj(X[k]).  A full complex plan computes (and the
// exchange layer ships) both halves; this engine computes only the
// non-redundant half spectrum of N/2+1 coefficients and does it with half
// the butterflies, via the classic pack-two-reals-into-one-complex trick
// applied *within* one signal:
//
//   forward (r2c), even n = 2m:
//     z[j] = x[2j] + i*x[2j+1]                 (reinterpret, no extra flops)
//     Z    = FFT_m(z)                          (half-length transform)
//     X[k] = E[k] + w^k * O[k],  k = 0..m      (post-pass twiddle split)
//   where E[k] = (Z[k] + conj(Z[m-k]))/2, O[k] = (Z[k] - conj(Z[m-k]))/(2i)
//   are the spectra of the even/odd samples and w = exp(-2*pi*i/n); indices
//   are mod m (Z[m] reads Z[0]).
//
//   backward (c2r), the exact inverse pre-pass:
//     Z'[k] = (X[k] + conj(X[m-k])) + i*conj(w)^k * (X[k] - conj(X[m-k]))
//     z     = BackwardFFT_m(Z')                (Z' = 2Z, so z carries n*x)
//     x[2j] = Re z[j], x[2j+1] = Im z[j]
//
// Both directions are unnormalized like every plan here: c2r(r2c(x)) == n*x.
// The half-length transform is a BatchPlan1d, so the hot butterflies stay
// SIMD-across-batch; odd lengths, length 1, and BatchKernel::Scalar route
// through a full-length complex transform of the zero-extended input -- the
// genuinely different algorithm that serves as the correctness oracle.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "fft/batch1d.hpp"
#include "fft/plan1d.hpp"
#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

class BatchPlanR2c1d {
 public:
  static constexpr std::size_t kSimdWidth = BatchPlan1d::kSimdWidth;

  /// A Forward plan computes r2c (real in, half spectrum out); a Backward
  /// plan computes c2r (half spectrum in, real out).  Any n >= 1 works;
  /// even n >= 2 with a non-scalar kernel uses the packed half-length path.
  BatchPlanR2c1d(std::size_t n, Direction dir,
                 BatchKernel kernel = default_batch_kernel());

  /// Logical (real) transform length n.
  [[nodiscard]] std::size_t size() const { return n_; }
  /// Stored spectrum length n/2 + 1 (the non-redundant Hermitian half).
  [[nodiscard]] std::size_t half_spectrum() const { return nh_; }
  [[nodiscard]] Direction direction() const { return dir_; }
  [[nodiscard]] BatchKernel kernel() const { return kernel_; }
  /// True if the packed half-length path is in use (false for odd n, n == 1
  /// and the scalar oracle, which run a full-length complex transform).
  [[nodiscard]] bool packed_active() const { return packed_; }

  /// r2c: transform b reads n reals at in[b*idist + j*istride] and writes
  /// half_spectrum() coefficients at out[b*odist + k*ostride].  Forward
  /// plans only.  in and out must not overlap.
  void execute_many(std::size_t howmany, const double* in, std::size_t istride,
                    std::size_t idist, cplx* out, std::size_t ostride,
                    std::size_t odist, Workspace& ws) const;

  /// c2r: transform b reads half_spectrum() coefficients at
  /// in[b*idist + k*istride] and writes n reals at out[b*odist + j*ostride].
  /// Only the stored half is read; the redundant mirror is implied.
  /// Backward plans only.  in and out must not overlap.
  void execute_many(std::size_t howmany, const cplx* in, std::size_t istride,
                    std::size_t idist, double* out, std::size_t ostride,
                    std::size_t odist, Workspace& ws) const;

  /// Single-transform conveniences over contiguous spans.
  void execute(std::span<const double> in, std::span<cplx> out,
               Workspace& ws) const;
  void execute(std::span<const cplx> in, std::span<double> out,
               Workspace& ws) const;

 private:
  void forward_packed(std::size_t howmany, const double* in,
                      std::size_t istride, std::size_t idist, cplx* out,
                      std::size_t ostride, std::size_t odist,
                      Workspace& ws) const;
  void backward_packed(std::size_t howmany, const cplx* in,
                       std::size_t istride, std::size_t idist, double* out,
                       std::size_t ostride, std::size_t odist,
                       Workspace& ws) const;
  void forward_fallback(std::size_t howmany, const double* in,
                        std::size_t istride, std::size_t idist, cplx* out,
                        std::size_t ostride, std::size_t odist,
                        Workspace& ws) const;
  void backward_fallback(std::size_t howmany, const cplx* in,
                         std::size_t istride, std::size_t idist, double* out,
                         std::size_t ostride, std::size_t odist,
                         Workspace& ws) const;

  std::size_t n_;
  std::size_t nh_;
  Direction dir_;
  BatchKernel kernel_;
  bool packed_;
  std::unique_ptr<BatchPlan1d> half_;  ///< length n/2 (packed path only)
  std::unique_ptr<Fft1d> full_;        ///< length n (fallback path only)
  cvec w_;  ///< w[k] = exp(sign(dir)*2*pi*i*k/n), k = 0..n/2 (packed only)
};

/// Expands a stored half spectrum (n/2 + 1 coefficients) to the full
/// Hermitian spectrum of length n: full[k] = half[k] for k <= n/2,
/// conj(half[n-k]) above.  half and full must not overlap.
void expand_half_spectrum(std::span<const cplx> half, std::span<cplx> full);

}  // namespace fx::fft
