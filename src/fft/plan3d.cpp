#include "fft/plan3d.hpp"

namespace fx::fft {

Fft3d::Fft3d(std::size_t nx, std::size_t ny, std::size_t nz, Direction dir,
             BatchKernel kernel)
    : nz_(nz), xy_(nx, ny, dir, kernel), along_z_(nz, dir, kernel) {}

void Fft3d::execute(const cplx* in, cplx* out, Workspace& ws) const {
  const std::size_t plane = nx() * ny();
  for (std::size_t iz = 0; iz < nz_; ++iz) {
    xy_.execute(in + iz * plane, out + iz * plane, ws);
  }
  // Z lines: one per (ix, iy), stride = plane size -- a transposed batch
  // whose SIMD lanes are 8 adjacent (ix, iy) columns.
  along_z_.execute_many(plane, out, plane, 1, out, plane, 1, ws);
}

void Fft3d::execute(const cplx* in, cplx* out) const {
  execute(in, out, thread_workspace());
}

Fft3dR2c::Fft3dR2c(std::size_t nx, std::size_t ny, std::size_t nz,
                   Direction dir, BatchKernel kernel)
    : nz_(nz), xy_(nx, ny, dir, kernel), along_z_(nz, dir, kernel) {}

void Fft3dR2c::execute(const double* in, cplx* out, Workspace& ws) const {
  const std::size_t plane = nx() * ny();
  const std::size_t hplane = nhx() * ny();
  for (std::size_t iz = 0; iz < nz_; ++iz) {
    xy_.execute(in + iz * plane, out + iz * hplane, ws);
  }
  along_z_.execute_many(hplane, out, hplane, 1, out, hplane, 1, ws);
}

void Fft3dR2c::execute(const cplx* in, double* out, Workspace& ws) const {
  const std::size_t plane = nx() * ny();
  const std::size_t hplane = nhx() * ny();
  Workspace::Buffer half(ws, hplane * nz_);
  along_z_.execute_many(hplane, in, hplane, 1, half.data(), hplane, 1, ws);
  for (std::size_t iz = 0; iz < nz_; ++iz) {
    xy_.execute(half.data() + iz * hplane, out + iz * plane, ws);
  }
}

}  // namespace fx::fft
