#include "fft/plan2d.hpp"

#include <cstring>

namespace fx::fft {

Fft2d::Fft2d(std::size_t nx, std::size_t ny, Direction dir)
    : nx_(nx), ny_(ny), dir_(dir), along_x_(nx, dir), along_y_(ny, dir) {}

void Fft2d::execute(const cplx* in, cplx* out, Workspace& ws) const {
  // Rows first (contiguous), writing into `out`; then columns in place.
  if (in != out) {
    along_x_.execute_many(ny_, in, 1, nx_, out, 1, nx_, ws);
  } else {
    for (std::size_t row = 0; row < ny_; ++row) {
      along_x_.execute(in + row * nx_, out + row * nx_, ws);
    }
  }
  along_y_.execute_many(nx_, out, nx_, 1, out, nx_, 1, ws);
}

void Fft2d::execute(const cplx* in, cplx* out) const {
  execute(in, out, thread_workspace());
}

}  // namespace fx::fft
