#include "fft/plan2d.hpp"

#include "core/error.hpp"

namespace fx::fft {

Fft2d::Fft2d(std::size_t nx, std::size_t ny, Direction dir, BatchKernel kernel)
    : nx_(nx), ny_(ny), dir_(dir),
      along_x_(nx, dir, kernel),
      along_y_(ny, dir, kernel) {}

void Fft2d::execute(const cplx* in, cplx* out, Workspace& ws) const {
  // Rows first (a contiguous batch), then columns (a transposed batch,
  // stride nx).  The batched engine gathers each SIMD tile before it
  // scatters, so the in == out case needs no special-casing.
  along_x_.execute_many(ny_, in, 1, nx_, out, 1, nx_, ws);
  along_y_.execute_many(nx_, out, nx_, 1, out, nx_, 1, ws);
}

void Fft2d::execute(const cplx* in, cplx* out) const {
  execute(in, out, thread_workspace());
}

Fft2dR2c::Fft2dR2c(std::size_t nx, std::size_t ny, Direction dir,
                   BatchKernel kernel)
    : nx_(nx), ny_(ny), dir_(dir),
      along_x_(nx, dir, kernel),
      along_y_(ny, dir, kernel) {}

void Fft2dR2c::execute(const double* in, cplx* out, Workspace& ws) const {
  FX_CHECK(dir_ == Direction::Forward);
  // r2c rows into the half plane, then complex column transforms of the
  // nhx surviving columns (stride nhx).
  along_x_.execute_many(ny_, in, 1, nx_, out, 1, nhx(), ws);
  along_y_.execute_many(nhx(), out, nhx(), 1, out, nhx(), 1, ws);
}

void Fft2dR2c::execute(const cplx* in, double* out, Workspace& ws) const {
  FX_CHECK(dir_ == Direction::Backward);
  // Column inverse lands in scratch (the input is const), then c2r rows.
  Workspace::Buffer half(ws, nhx() * ny_);
  along_y_.execute_many(nhx(), in, nhx(), 1, half.data(), nhx(), 1, ws);
  along_x_.execute_many(ny_, half.data(), 1, nhx(), out, 1, nx_, ws);
}

}  // namespace fx::fft
