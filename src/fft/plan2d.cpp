#include "fft/plan2d.hpp"

namespace fx::fft {

Fft2d::Fft2d(std::size_t nx, std::size_t ny, Direction dir, BatchKernel kernel)
    : nx_(nx), ny_(ny), dir_(dir),
      along_x_(nx, dir, kernel),
      along_y_(ny, dir, kernel) {}

void Fft2d::execute(const cplx* in, cplx* out, Workspace& ws) const {
  // Rows first (a contiguous batch), then columns (a transposed batch,
  // stride nx).  The batched engine gathers each SIMD tile before it
  // scatters, so the in == out case needs no special-casing.
  along_x_.execute_many(ny_, in, 1, nx_, out, 1, nx_, ws);
  along_y_.execute_many(nx_, out, nx_, 1, out, nx_, 1, ws);
}

void Fft2d::execute(const cplx* in, cplx* out) const {
  execute(in, out, thread_workspace());
}

}  // namespace fx::fft
