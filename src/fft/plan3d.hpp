// Three-dimensional complex FFT on a row-major nx*ny*nz grid
// (index = ix + nx*(iy + ny*iz)).
//
// The distributed pipeline never calls this directly -- it decomposes the 3D
// transform into Z pencils and XY planes across ranks -- but the serial 3D
// plan is the oracle the tests and examples compare the pipeline against,
// and the quickstart example's entry point.  The Z lines run as one
// transposed batch (stride = plane) through the SIMD-across-batch engine.
#pragma once

#include <cstddef>

#include "fft/batch1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/types.hpp"

namespace fx::fft {

class Fft3d {
 public:
  Fft3d(std::size_t nx, std::size_t ny, std::size_t nz, Direction dir,
        BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t nx() const { return xy_.nx(); }
  [[nodiscard]] std::size_t ny() const { return xy_.ny(); }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t volume() const { return xy_.nx() * xy_.ny() * nz_; }
  [[nodiscard]] Direction direction() const { return xy_.direction(); }

  /// Transforms the full grid; in-place or out-of-place.
  void execute(const cplx* in, cplx* out, Workspace& ws) const;
  void execute(const cplx* in, cplx* out) const;

 private:
  std::size_t nz_;
  Fft2d xy_;
  BatchPlan1d along_z_;
};

/// Real-input 3D transform on a row-major nx*ny*nz grid.  Forward plans
/// map the real grid to the Hermitian-reduced (nx/2+1)*ny*nz half grid
/// (r2c planes, then complex z lines); Backward plans invert it.
/// Unnormalized: backward(forward(x)) == volume()*x.
class Fft3dR2c {
 public:
  Fft3dR2c(std::size_t nx, std::size_t ny, std::size_t nz, Direction dir,
           BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t nx() const { return xy_.nx(); }
  [[nodiscard]] std::size_t ny() const { return xy_.ny(); }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t nhx() const { return xy_.nhx(); }
  [[nodiscard]] std::size_t volume() const { return nx() * ny() * nz_; }
  /// Elements of the stored half grid: nhx()*ny*nz.
  [[nodiscard]] std::size_t half_volume() const { return nhx() * ny() * nz_; }
  [[nodiscard]] Direction direction() const { return xy_.direction(); }

  /// r2c: in[ix + nx*(iy + ny*iz)] -> out[kx + nhx()*(iy + ny*iz)].
  /// Forward plans only; buffers must not overlap.
  void execute(const double* in, cplx* out, Workspace& ws) const;
  /// c2r inverse of the layout above.  Backward plans only.
  void execute(const cplx* in, double* out, Workspace& ws) const;

 private:
  std::size_t nz_;
  Fft2dR2c xy_;
  BatchPlan1d along_z_;
};

}  // namespace fx::fft
