// Three-dimensional complex FFT on a row-major nx*ny*nz grid
// (index = ix + nx*(iy + ny*iz)).
//
// The distributed pipeline never calls this directly -- it decomposes the 3D
// transform into Z pencils and XY planes across ranks -- but the serial 3D
// plan is the oracle the tests and examples compare the pipeline against,
// and the quickstart example's entry point.  The Z lines run as one
// transposed batch (stride = plane) through the SIMD-across-batch engine.
#pragma once

#include <cstddef>

#include "fft/batch1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/types.hpp"

namespace fx::fft {

class Fft3d {
 public:
  Fft3d(std::size_t nx, std::size_t ny, std::size_t nz, Direction dir,
        BatchKernel kernel = default_batch_kernel());

  [[nodiscard]] std::size_t nx() const { return xy_.nx(); }
  [[nodiscard]] std::size_t ny() const { return xy_.ny(); }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t volume() const { return xy_.nx() * xy_.ny() * nz_; }
  [[nodiscard]] Direction direction() const { return xy_.direction(); }

  /// Transforms the full grid; in-place or out-of-place.
  void execute(const cplx* in, cplx* out, Workspace& ws) const;
  void execute(const cplx* in, cplx* out) const;

 private:
  std::size_t nz_;
  Fft2d xy_;
  BatchPlan1d along_z_;
};

}  // namespace fx::fft
