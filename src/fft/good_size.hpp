// FFT-friendly grid dimensions.
//
// Quantum ESPRESSO restricts FFT grid dimensions to products of small primes
// (good_fft_dimension in fft_support.f90): 2^a * 3^b * 5^c * 7^d with d <= 1,
// because its vendor FFT backends degrade badly on large prime factors.
// The plane-wave substrate uses good_fft_size() when deriving grid
// dimensions from the energy cutoff.
#pragma once

#include <cstddef>

namespace fx::fft {

/// True if n == 2^a * 3^b * 5^c * 7^d with d <= 1 (and n >= 1).
bool is_good_fft_size(std::size_t n);

/// Smallest good FFT size >= n.  n == 0 yields 1.
std::size_t good_fft_size(std::size_t n);

}  // namespace fx::fft
