#include "fft/plan1d.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <numbers>

#include "core/error.hpp"
#include "fft/bluestein.hpp"

namespace fx::fft {

namespace {

/// Factorizes n into the supported radices (4 preferred over 2x2 for fewer
/// passes).  Returns an empty vector if a prime factor > 13 remains,
/// signalling the Bluestein fallback.
std::vector<std::size_t> factorize(std::size_t n) {
  std::vector<std::size_t> factors;
  while (n % 4 == 0) {
    factors.push_back(4);
    n /= 4;
  }
  for (std::size_t p : {2UL, 3UL, 5UL, 7UL, 11UL, 13UL}) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n != 1) return {};
  return factors;
}

}  // namespace

namespace detail {

void check_batch_aliasing(std::size_t n, std::size_t howmany, const cplx* in,
                          std::size_t istride, std::size_t idist,
                          const cplx* out, std::size_t ostride,
                          std::size_t odist) {
  if (n == 0 || howmany == 0) return;
  if (in == out && istride == ostride && idist == odist) return;
  // Compare as integers: ordering pointers into distinct arrays is
  // unspecified, and these spans are allowed to be unrelated.
  const auto ibeg = reinterpret_cast<std::uintptr_t>(in);
  const auto obeg = reinterpret_cast<std::uintptr_t>(out);
  const auto iend = reinterpret_cast<std::uintptr_t>(
      in + (howmany - 1) * idist + (n - 1) * istride + 1);
  const auto oend = reinterpret_cast<std::uintptr_t>(
      out + (howmany - 1) * odist + (n - 1) * ostride + 1);
  FX_ASSERT(oend <= ibeg || iend <= obeg,
            "execute_many in/out batches overlap incompatibly: only fully "
            "in-place (same pointer and strides) or disjoint spans are "
            "supported");
}

}  // namespace detail

Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

Fft1d::Fft1d(std::size_t n, Direction dir) : n_(n), dir_(dir) {
  FX_CHECK(n >= 1, "FFT length must be positive");
  factors_ = factorize(n);
  if (factors_.empty() && n > 1) {
    bluestein_ = std::make_unique<Bluestein>(n, dir);
    return;
  }
  twiddle_.resize(n);
  const double w = sign_of(dir) * 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = w * static_cast<double>(k);
    twiddle_[k] = cplx{std::cos(ang), std::sin(ang)};
  }
}

Fft1d::~Fft1d() = default;
Fft1d::Fft1d(Fft1d&&) noexcept = default;
Fft1d& Fft1d::operator=(Fft1d&&) noexcept = default;

void Fft1d::small_dft(std::size_t r, const cplx* z, cplx* out,
                      std::size_t ostride) const {
  // out[t*ostride] = sum_q z[q] * w_r^{t*q}, w_r = exp(sign*2*pi*i/r).
  const double s = sign_of(dir_);
  switch (r) {
    case 1:
      out[0] = z[0];
      return;
    case 2:
      out[0] = z[0] + z[1];
      out[ostride] = z[0] - z[1];
      return;
    case 3: {
      // w = -1/2 + i*s*sqrt(3)/2.
      constexpr double kHalfSqrt3 = 0.86602540378443864676;
      const cplx t = z[1] + z[2];
      const cplx u = z[0] - 0.5 * t;
      const cplx dz = z[1] - z[2];
      const cplx v{-s * kHalfSqrt3 * dz.imag(), s * kHalfSqrt3 * dz.real()};
      out[0] = z[0] + t;
      out[ostride] = u + v;
      out[2 * ostride] = u - v;
      return;
    }
    case 4: {
      const cplx t0 = z[0] + z[2];
      const cplx t1 = z[0] - z[2];
      const cplx t2 = z[1] + z[3];
      const cplx t3 = z[1] - z[3];
      // i*s*t3:
      const cplx it3{-s * t3.imag(), s * t3.real()};
      out[0] = t0 + t2;
      out[ostride] = t1 + it3;
      out[2 * ostride] = t0 - t2;
      out[3 * ostride] = t1 - it3;
      return;
    }
    default: {
      // Generic O(r^2) kernel via the full twiddle table:
      // w_r^{tq} = twiddle_[((t*q) % r) * (n_/r)].
      const std::size_t step = n_ / r;
      for (std::size_t t = 0; t < r; ++t) {
        cplx acc = z[0];
        for (std::size_t q = 1; q < r; ++q) {
          acc += z[q] * twiddle_[((t * q) % r) * step];
        }
        out[t * ostride] = acc;
      }
      return;
    }
  }
}

void Fft1d::recurse(std::size_t n, std::size_t factor_index, const cplx* in,
                    std::size_t istride, cplx* out, cplx* scratch) const {
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  const std::size_t r = factors_[factor_index];
  const std::size_t m = n / r;

  if (m == 1) {
    // Leaf: a single small DFT straight from the (strided) input.
    cplx z[13];
    for (std::size_t q = 0; q < r; ++q) z[q] = in[q * istride];
    small_dft(r, z, out, 1);
    return;
  }

  // Decimation in time: r interleaved sub-transforms of length m, computed
  // into `scratch`; the sub-calls use the matching region of `out` as their
  // own scratch (regions are disjoint per q, so this ping-pong is safe).
  for (std::size_t q = 0; q < r; ++q) {
    recurse(m, factor_index + 1, in + q * istride, istride * r,
            scratch + q * m, out + q * m);
  }

  // Combine: out[j + t*m] = sum_q w_n^{j*q} * w_r^{t*q} * scratch[q*m + j].
  // w_n^{e} = twiddle_[e * (n_/n)]; e = j*q < n so no modular reduction.
  const std::size_t step = n_ / n;
  cplx z[13];
  for (std::size_t j = 0; j < m; ++j) {
    z[0] = scratch[j];
    for (std::size_t q = 1; q < r; ++q) {
      z[q] = scratch[q * m + j] * twiddle_[j * q * step];
    }
    small_dft(r, z, out + j, m);
  }
}

void Fft1d::execute(const cplx* in, cplx* out, Workspace& ws) const {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (in == out) {
    Workspace::Buffer copy(ws, n_);
    std::memcpy(copy.data(), in, n_ * sizeof(cplx));
    execute(copy.data(), out, ws);
    return;
  }
  if (bluestein_) {
    bluestein_->execute(in, out, ws);
    return;
  }
  Workspace::Buffer scratch(ws, n_);
  recurse(n_, 0, in, 1, out, scratch.data());
}

void Fft1d::execute(const cplx* in, cplx* out) const {
  execute(in, out, thread_workspace());
}

void Fft1d::execute_contiguous_from_strided(const cplx* in, std::size_t istride,
                                            cplx* out, Workspace& ws) const {
  // `out` is contiguous and distinct from `in`.
  if (bluestein_) {
    Workspace::Buffer gathered(ws, n_);
    for (std::size_t j = 0; j < n_; ++j) gathered.data()[j] = in[j * istride];
    bluestein_->execute(gathered.data(), out, ws);
    return;
  }
  Workspace::Buffer scratch(ws, n_);
  recurse(n_, 0, in, istride, out, scratch.data());
}

void Fft1d::execute_strided(const cplx* in, std::size_t istride, cplx* out,
                            std::size_t ostride, Workspace& ws) const {
  FX_CHECK(istride >= 1 && ostride >= 1);
  if (istride == 1 && ostride == 1) {
    execute(in, out, ws);
    return;
  }
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  // Compute into a contiguous lease, then scatter.  This also makes
  // in-place strided transforms (in == out) safe.
  Workspace::Buffer result(ws, n_);
  execute_contiguous_from_strided(in, istride, result.data(), ws);
  for (std::size_t k = 0; k < n_; ++k) out[k * ostride] = result.data()[k];
}

void Fft1d::execute_many(std::size_t howmany, const cplx* in,
                         std::size_t istride, std::size_t idist, cplx* out,
                         std::size_t ostride, std::size_t odist,
                         Workspace& ws) const {
  detail::check_batch_aliasing(n_, howmany, in, istride, idist, out, ostride,
                               odist);
  for (std::size_t b = 0; b < howmany; ++b) {
    execute_strided(in + b * idist, istride, out + b * odist, ostride, ws);
  }
}

}  // namespace fx::fft
