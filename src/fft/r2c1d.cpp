#include "fft/r2c1d.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

#include "core/error.hpp"

namespace fx::fft {

namespace {
constexpr std::size_t kTile = BatchPlanR2c1d::kSimdWidth;
}  // namespace

BatchPlanR2c1d::BatchPlanR2c1d(std::size_t n, Direction dir,
                               BatchKernel kernel)
    : n_(n),
      nh_(n / 2 + 1),
      dir_(dir),
      kernel_(kernel),
      packed_(n >= 2 && n % 2 == 0 && kernel != BatchKernel::Scalar) {
  FX_CHECK(n >= 1);
  if (packed_) {
    half_ = std::make_unique<BatchPlan1d>(n / 2, dir, kernel);
    // Split/merge twiddles w^k = exp(sign*2*pi*i*k/n) for k = 0..n/2; the
    // forward split uses the forward sign, the backward pre-pass needs the
    // conjugate, which is exactly the backward sign.
    const double step = sign_of(dir) * 2.0 * std::numbers::pi /
                        static_cast<double>(n);
    w_.resize(n / 2 + 1);
    for (std::size_t k = 0; k <= n / 2; ++k) {
      w_[k] = std::polar(1.0, step * static_cast<double>(k));
    }
  } else {
    full_ = std::make_unique<Fft1d>(n, dir);
  }
}

void BatchPlanR2c1d::execute_many(std::size_t howmany, const double* in,
                                  std::size_t istride, std::size_t idist,
                                  cplx* out, std::size_t ostride,
                                  std::size_t odist, Workspace& ws) const {
  FX_CHECK(dir_ == Direction::Forward,
           "r2c execute_many requires a Forward plan");
  if (howmany == 0) return;
  if (packed_) {
    forward_packed(howmany, in, istride, idist, out, ostride, odist, ws);
  } else {
    forward_fallback(howmany, in, istride, idist, out, ostride, odist, ws);
  }
}

void BatchPlanR2c1d::execute_many(std::size_t howmany, const cplx* in,
                                  std::size_t istride, std::size_t idist,
                                  double* out, std::size_t ostride,
                                  std::size_t odist, Workspace& ws) const {
  FX_CHECK(dir_ == Direction::Backward,
           "c2r execute_many requires a Backward plan");
  if (howmany == 0) return;
  if (packed_) {
    backward_packed(howmany, in, istride, idist, out, ostride, odist, ws);
  } else {
    backward_fallback(howmany, in, istride, idist, out, ostride, odist, ws);
  }
}

void BatchPlanR2c1d::execute(std::span<const double> in, std::span<cplx> out,
                             Workspace& ws) const {
  FX_CHECK(in.size() >= n_ && out.size() >= nh_);
  execute_many(1, in.data(), 1, 0, out.data(), 1, 0, ws);
}

void BatchPlanR2c1d::execute(std::span<const cplx> in, std::span<double> out,
                             Workspace& ws) const {
  FX_CHECK(in.size() >= nh_ && out.size() >= n_);
  execute_many(1, in.data(), 1, 0, out.data(), 1, 0, ws);
}

void BatchPlanR2c1d::forward_packed(std::size_t howmany, const double* in,
                                    std::size_t istride, std::size_t idist,
                                    cplx* out, std::size_t ostride,
                                    std::size_t odist, Workspace& ws) const {
  const std::size_t m = n_ / 2;
  Workspace::Buffer zb(ws, kTile * m);
  cplx* zbuf = zb.data();
  for (std::size_t t = 0; t < howmany; t += kTile) {
    const std::size_t lanes = std::min(kTile, howmany - t);
    for (std::size_t b = 0; b < lanes; ++b) {
      const double* src = in + (t + b) * idist;
      cplx* z = zbuf + b * m;
      if (istride == 1) {
        // Contiguous reals ARE the packed complex sequence.
        std::memcpy(static_cast<void*>(z), src, n_ * sizeof(double));
      } else {
        for (std::size_t j = 0; j < m; ++j) {
          z[j] = cplx{src[2 * j * istride], src[(2 * j + 1) * istride]};
        }
      }
    }
    half_->execute_many(lanes, zbuf, 1, m, zbuf, 1, m, ws);
    for (std::size_t b = 0; b < lanes; ++b) {
      const cplx* z = zbuf + b * m;
      cplx* o = out + (t + b) * odist;
      // X[k] = (Z[k] + conj(Z[m-k]))/2 - (i/2)*w^k*(Z[k] - conj(Z[m-k])),
      // indices mod m; the generic formula is exact at k = 0 and k = m too.
      for (std::size_t k = 0; k <= m; ++k) {
        const cplx zk = z[k == m ? 0 : k];
        const cplx zmk = z[k == 0 ? 0 : m - k];
        const cplx sum = zk + std::conj(zmk);
        const cplx diff = zk - std::conj(zmk);
        o[k * ostride] =
            0.5 * sum + w_[k] * cplx{0.5 * diff.imag(), -0.5 * diff.real()};
      }
    }
  }
}

void BatchPlanR2c1d::backward_packed(std::size_t howmany, const cplx* in,
                                     std::size_t istride, std::size_t idist,
                                     double* out, std::size_t ostride,
                                     std::size_t odist, Workspace& ws) const {
  const std::size_t m = n_ / 2;
  Workspace::Buffer zb(ws, kTile * m);
  cplx* zbuf = zb.data();
  for (std::size_t t = 0; t < howmany; t += kTile) {
    const std::size_t lanes = std::min(kTile, howmany - t);
    for (std::size_t b = 0; b < lanes; ++b) {
      const cplx* s = in + (t + b) * idist;
      cplx* z = zbuf + b * m;
      // Z'[k] = (X[k] + conj(X[m-k])) + i*w^k*(X[k] - conj(X[m-k])), with
      // the backward-sign twiddle.  Z' = 2Z, so the (unnormalized)
      // backward transform below already carries the c2r contract's n*x.
      for (std::size_t k = 0; k < m; ++k) {
        const cplx xk = s[k * istride];
        const cplx xmk = s[(m - k) * istride];
        const cplx sum = xk + std::conj(xmk);
        const cplx diff = xk - std::conj(xmk);
        z[k] = sum + w_[k] * cplx{-diff.imag(), diff.real()};
      }
    }
    half_->execute_many(lanes, zbuf, 1, m, zbuf, 1, m, ws);
    for (std::size_t b = 0; b < lanes; ++b) {
      const cplx* z = zbuf + b * m;
      double* dst = out + (t + b) * odist;
      if (ostride == 1) {
        std::memcpy(dst, static_cast<const void*>(z), n_ * sizeof(double));
      } else {
        for (std::size_t j = 0; j < m; ++j) {
          dst[2 * j * ostride] = z[j].real();
          dst[(2 * j + 1) * ostride] = z[j].imag();
        }
      }
    }
  }
}

void BatchPlanR2c1d::forward_fallback(std::size_t howmany, const double* in,
                                      std::size_t istride, std::size_t idist,
                                      cplx* out, std::size_t ostride,
                                      std::size_t odist, Workspace& ws) const {
  Workspace::Buffer xb(ws, n_);
  Workspace::Buffer yb(ws, n_);
  for (std::size_t b = 0; b < howmany; ++b) {
    const double* src = in + b * idist;
    for (std::size_t j = 0; j < n_; ++j) {
      xb.data()[j] = cplx{src[j * istride], 0.0};
    }
    full_->execute(xb.data(), yb.data(), ws);
    cplx* o = out + b * odist;
    for (std::size_t k = 0; k < nh_; ++k) o[k * ostride] = yb.data()[k];
  }
}

void BatchPlanR2c1d::backward_fallback(std::size_t howmany, const cplx* in,
                                       std::size_t istride, std::size_t idist,
                                       double* out, std::size_t ostride,
                                       std::size_t odist,
                                       Workspace& ws) const {
  Workspace::Buffer xb(ws, n_);
  Workspace::Buffer yb(ws, n_);
  for (std::size_t b = 0; b < howmany; ++b) {
    const cplx* s = in + b * idist;
    for (std::size_t k = 0; k < n_; ++k) {
      xb.data()[k] = k < nh_ ? s[k * istride]
                             : std::conj(s[(n_ - k) * istride]);
    }
    full_->execute(xb.data(), yb.data(), ws);
    double* dst = out + b * odist;
    for (std::size_t j = 0; j < n_; ++j) {
      dst[j * ostride] = yb.data()[j].real();
    }
  }
}

void expand_half_spectrum(std::span<const cplx> half, std::span<cplx> full) {
  const std::size_t n = full.size();
  FX_CHECK(n >= 1 && half.size() == n / 2 + 1);
  for (std::size_t k = 0; k <= n / 2; ++k) full[k] = half[k];
  for (std::size_t k = n / 2 + 1; k < n; ++k) {
    full[k] = std::conj(half[n - k]);
  }
}

}  // namespace fx::fft
