// Bluestein chirp-z transform: DFT of arbitrary length n via a circular
// convolution of length M = next power of two >= 2n-1.
//
// Used by Fft1d for sizes with prime factors > 13.  The kernel spectrum is
// precomputed at plan time; execution costs two power-of-two transforms.
#pragma once

#include <cstddef>
#include <memory>

#include "fft/types.hpp"
#include "fft/workspace.hpp"

namespace fx::fft {

class Fft1d;

class Bluestein {
 public:
  Bluestein(std::size_t n, Direction dir);
  ~Bluestein();

  Bluestein(const Bluestein&) = delete;
  Bluestein& operator=(const Bluestein&) = delete;
  Bluestein(Bluestein&&) = delete;
  Bluestein& operator=(Bluestein&&) = delete;

  /// Out-of-place transform of contiguous data (in != out).
  void execute(const cplx* in, cplx* out, Workspace& ws) const;

  [[nodiscard]] std::size_t conv_size() const { return m_; }

 private:
  std::size_t n_;
  std::size_t m_;      // power-of-two convolution length
  cvec chirp_;         // chirp_[j] = exp(sign*pi*i*j^2/n)
  cvec kernel_hat_;    // forward FFT_M of the symmetric conj-chirp kernel
  std::unique_ptr<Fft1d> fwd_;  // length-m_ forward plan
  std::unique_ptr<Fft1d> bwd_;  // length-m_ backward plan
};

}  // namespace fx::fft
