#include "fft/good_size.hpp"


#include <initializer_list>
namespace fx::fft {

bool is_good_fft_size(std::size_t n) {
  if (n == 0) return false;
  int sevens = 0;
  while (n % 7 == 0) {
    n /= 7;
    if (++sevens > 1) return false;
  }
  for (std::size_t p : {2UL, 3UL, 5UL}) {
    while (n % p == 0) n /= p;
  }
  return n == 1;
}

std::size_t good_fft_size(std::size_t n) {
  if (n <= 1) return 1;
  std::size_t m = n;
  while (!is_good_fft_size(m)) ++m;
  return m;
}

}  // namespace fx::fft
