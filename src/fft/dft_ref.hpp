// Naive O(n^2) reference DFT.
//
// The test suite validates every fast path against this direct evaluation of
// the definition; it is deliberately simple enough to inspect by eye.
#pragma once

#include <cstddef>
#include <span>

#include "fft/types.hpp"

namespace fx::fft {

/// out[k] = sum_j in[j] * exp(sign * 2*pi*i * j*k / n), n == in.size().
/// in and out must not alias and must have equal size.
void dft_reference(std::span<const cplx> in, std::span<cplx> out, Direction dir);

/// 3D reference transform on a row-major (z-major) nx*ny*nz grid:
/// index = ix + nx*(iy + ny*iz).  Used to validate the distributed pipeline.
void dft3d_reference(std::span<const cplx> in, std::span<cplx> out,
                     std::size_t nx, std::size_t ny, std::size_t nz,
                     Direction dir);

}  // namespace fx::fft
