#include "fft/dft_ref.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "core/error.hpp"

namespace fx::fft {

void dft_reference(std::span<const cplx> in, std::span<cplx> out,
                   Direction dir) {
  FX_CHECK(in.size() == out.size());
  FX_CHECK(in.data() != out.data(), "dft_reference requires out-of-place");
  const std::size_t n = in.size();
  if (n == 0) return;
  const double w = sign_of(dir) * 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = w * static_cast<double>((j * k) % n);
      acc += in[j] * cplx{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
}

void dft3d_reference(std::span<const cplx> in, std::span<cplx> out,
                     std::size_t nx, std::size_t ny, std::size_t nz,
                     Direction dir) {
  const std::size_t n = nx * ny * nz;
  FX_CHECK(in.size() == n && out.size() == n);

  // Transform along each axis in turn; O(n * (nx+ny+nz)) total.
  std::vector<cplx> cur(in.begin(), in.end());
  std::vector<cplx> line_in;
  std::vector<cplx> line_out;

  auto sweep = [&](std::size_t len, auto index_of) {
    line_in.resize(len);
    line_out.resize(len);
    const std::size_t nlines = n / len;
    std::vector<cplx> next(n);
    for (std::size_t l = 0; l < nlines; ++l) {
      for (std::size_t i = 0; i < len; ++i) line_in[i] = cur[index_of(l, i)];
      dft_reference(line_in, line_out, dir);
      for (std::size_t i = 0; i < len; ++i) next[index_of(l, i)] = line_out[i];
    }
    cur = std::move(next);
  };

  // x lines: l enumerates (iy, iz) pairs.
  sweep(nx, [&](std::size_t l, std::size_t i) { return i + nx * l; });
  // y lines: l = ix + nx*iz.
  sweep(ny, [&](std::size_t l, std::size_t i) {
    const std::size_t ix = l % nx;
    const std::size_t iz = l / nx;
    return ix + nx * (i + ny * iz);
  });
  // z lines: l = ix + nx*iy.
  sweep(nz, [&](std::size_t l, std::size_t i) { return l + nx * ny * i; });

  std::copy(cur.begin(), cur.end(), out.begin());
}

}  // namespace fx::fft
