#include "fft/gamma.hpp"

#include <cmath>

#include "core/error.hpp"
#include "fft/plan_cache.hpp"

namespace fx::fft {

void fft_real_bands(const BatchPlanR2c1d& plan, std::size_t nbands,
                    const double* bands, std::size_t band_dist, cplx* spectra,
                    std::size_t spec_dist, Workspace& ws) {
  FX_CHECK(plan.direction() == Direction::Forward,
           "fft_real_bands needs a Forward plan");
  plan.execute_many(nbands, bands, 1, band_dist, spectra, 1, spec_dist, ws);
}

void ifft_real_bands(const BatchPlanR2c1d& plan, std::size_t nbands,
                     const cplx* spectra, std::size_t spec_dist, double* bands,
                     std::size_t band_dist, Workspace& ws) {
  FX_CHECK(plan.direction() == Direction::Backward,
           "ifft_real_bands needs a Backward plan");
  plan.execute_many(nbands, spectra, 1, spec_dist, bands, 1, band_dist, ws);
  const double inv_n = 1.0 / static_cast<double>(plan.size());
  for (std::size_t b = 0; b < nbands; ++b) {
    double* x = bands + b * band_dist;
    for (std::size_t j = 0; j < plan.size(); ++j) x[j] *= inv_n;
  }
}

void fft_two_real(const Fft1d& forward_plan, std::span<const double> a,
                  std::span<const double> b, std::span<cplx> spectrum_a,
                  std::span<cplx> spectrum_b, Workspace& ws) {
  const std::size_t n = forward_plan.size();
  FX_CHECK(forward_plan.direction() == Direction::Forward,
           "fft_two_real needs a Forward plan");
  FX_CHECK(a.size() == n && b.size() == n && spectrum_a.size() == n &&
               spectrum_b.size() == n,
           "fft_two_real size mismatch");

  const auto r2c = PlanCache::global().r2c1d(n, Direction::Forward);
  const std::size_t nh = r2c->half_spectrum();
  Workspace::Buffer half(ws, 2 * nh);
  r2c->execute(a, {half.data(), nh}, ws);
  r2c->execute(b, {half.data() + nh, nh}, ws);
  expand_half_spectrum({half.data(), nh}, spectrum_a);
  expand_half_spectrum({half.data() + nh, nh}, spectrum_b);
}

void ifft_two_real(const Fft1d& backward_plan,
                   std::span<const cplx> spectrum_a,
                   std::span<const cplx> spectrum_b, std::span<double> a,
                   std::span<double> b, Workspace& ws) {
  const std::size_t n = backward_plan.size();
  FX_CHECK(backward_plan.direction() == Direction::Backward,
           "ifft_two_real needs a Backward plan");
  FX_CHECK(a.size() == n && b.size() == n && spectrum_a.size() == n &&
               spectrum_b.size() == n,
           "ifft_two_real size mismatch");

  const auto c2r = PlanCache::global().r2c1d(n, Direction::Backward);
  const std::size_t nh = c2r->half_spectrum();
  c2r->execute({spectrum_a.data(), nh}, a, ws);
  c2r->execute({spectrum_b.data(), nh}, b, ws);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j] *= inv_n;
    b[j] *= inv_n;
  }
}

bool is_hermitian(std::span<const cplx> spectrum, double tol) {
  const std::size_t n = spectrum.size();
  for (std::size_t k = 0; k < n; ++k) {
    const cplx mirror = std::conj(spectrum[k == 0 ? 0 : n - k]);
    if (std::abs(spectrum[k] - mirror) > tol) return false;
  }
  return true;
}

}  // namespace fx::fft
