#include "fft/gamma.hpp"

#include <cmath>

#include "core/error.hpp"

namespace fx::fft {

void fft_two_real(const Fft1d& forward_plan, std::span<const double> a,
                  std::span<const double> b, std::span<cplx> spectrum_a,
                  std::span<cplx> spectrum_b, Workspace& ws) {
  const std::size_t n = forward_plan.size();
  FX_CHECK(forward_plan.direction() == Direction::Forward,
           "fft_two_real needs a Forward plan");
  FX_CHECK(a.size() == n && b.size() == n && spectrum_a.size() == n &&
               spectrum_b.size() == n,
           "fft_two_real size mismatch");

  Workspace::Buffer packed(ws, n);
  for (std::size_t j = 0; j < n; ++j) {
    packed.data()[j] = cplx{a[j], b[j]};
  }
  Workspace::Buffer z(ws, n);
  forward_plan.execute(packed.data(), z.data(), ws);

  // A(k) = (Z(k) + conj(Z(n-k)))/2;  B(k) = (Z(k) - conj(Z(n-k)))/(2i).
  for (std::size_t k = 0; k < n; ++k) {
    const cplx zk = z.data()[k];
    const cplx zm = std::conj(z.data()[k == 0 ? 0 : n - k]);
    spectrum_a[k] = 0.5 * (zk + zm);
    const cplx diff = zk - zm;
    spectrum_b[k] = cplx{0.5 * diff.imag(), -0.5 * diff.real()};
  }
}

void ifft_two_real(const Fft1d& backward_plan,
                   std::span<const cplx> spectrum_a,
                   std::span<const cplx> spectrum_b, std::span<double> a,
                   std::span<double> b, Workspace& ws) {
  const std::size_t n = backward_plan.size();
  FX_CHECK(backward_plan.direction() == Direction::Backward,
           "ifft_two_real needs a Backward plan");
  FX_CHECK(a.size() == n && b.size() == n && spectrum_a.size() == n &&
               spectrum_b.size() == n,
           "ifft_two_real size mismatch");

  // Z(k) = A(k) + i*B(k): for Hermitian A, B the inverse transform of Z is
  // exactly a + i*b.
  Workspace::Buffer z(ws, n);
  for (std::size_t k = 0; k < n; ++k) {
    z.data()[k] = spectrum_a[k] + cplx{0.0, 1.0} * spectrum_b[k];
  }
  Workspace::Buffer out(ws, n);
  backward_plan.execute(z.data(), out.data(), ws);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = out.data()[j].real() * inv_n;
    b[j] = out.data()[j].imag() * inv_n;
  }
}

bool is_hermitian(std::span<const cplx> spectrum, double tol) {
  const std::size_t n = spectrum.size();
  for (std::size_t k = 0; k < n; ++k) {
    const cplx mirror = std::conj(spectrum[k == 0 ? 0 : n - k]);
    if (std::abs(spectrum[k] - mirror) > tol) return false;
  }
  return true;
}

}  // namespace fx::fft
