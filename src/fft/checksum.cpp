#include "fft/checksum.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/rng.hpp"

namespace fx::fft {

// The ABFT passes run once per stage over every live buffer, so they must
// cost a small fraction of the FFTs they guard.  Everything below is
// written so -O3 auto-vectorizes it without -ffast-math: reductions use a
// fixed small set of independent accumulators (deterministic summation
// order -- ranks compare these values against each other), complex buffers
// are accessed through the double[2] view the standard blesses for
// std::complex, and the digest uses only shifts and xors.

namespace {

const double* as_doubles(const cplx* p) {
  // [complex.numbers.general]: an array of complex<double> may be accessed
  // as an array of double with element i of the complex array at indices
  // 2i (real) and 2i + 1 (imaginary).
  return reinterpret_cast<const double*>(p);
}

double* as_doubles(cplx* p) { return reinterpret_cast<double*>(p); }

}  // namespace

double abft_weight(std::size_t i) {
  std::uint64_t s = 0xabf7c0de5eed0001ULL + i;
  const std::uint64_t h = core::splitmix64(s);
  return 1.0 + static_cast<double>(h >> 11) * 0x1.0p-53;
}

double checksum_accumulate(cplx* dst, const cplx* in, std::size_t idist,
                           std::size_t lo, std::size_t hi, std::size_t n) {
  double* d = as_doubles(dst);
  double e_re = 0.0;
  double e_im = 0.0;
  for (std::size_t b = lo; b < hi; ++b) {
    const double w = abft_weight(b);
    const double* src = as_doubles(in + (b - lo) * idist);
    for (std::size_t j = 0; j < 2 * n; j += 2) {
      const double re = src[j];
      const double im = src[j + 1];
      d[j] += w * re;
      d[j + 1] += w * im;
      e_re += re * re;
      e_im += im * im;
    }
  }
  return e_re + e_im;
}

double energy(const cplx* p, std::size_t n) {
  const double* d = as_doubles(p);
  const std::size_t m = 2 * n;
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    acc[0] += d[i] * d[i];
    acc[1] += d[i + 1] * d[i + 1];
    acc[2] += d[i + 2] * d[i + 2];
    acc[3] += d[i + 3] * d[i + 3];
  }
  for (; i < m; ++i) acc[i & 3] += d[i] * d[i];
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

ChecksumResidual checksum_compare(const cplx* a, const cplx* b,
                                  std::size_t n) {
  // Track squared magnitudes (no per-element sqrt) and take roots once.
  const double* da = as_doubles(a);
  const double* db = as_doubles(b);
  double r2 = 0.0;
  double s2 = 0.0;
  for (std::size_t j = 0; j < 2 * n; j += 2) {
    const double dre = da[j] - db[j];
    const double dim = da[j + 1] - db[j + 1];
    r2 = std::max(r2, dre * dre + dim * dim);
    s2 = std::max(s2, da[j] * da[j] + da[j + 1] * da[j + 1]);
    s2 = std::max(s2, db[j] * db[j] + db[j + 1] * db[j + 1]);
  }
  return ChecksumResidual{std::sqrt(r2), std::sqrt(s2)};
}

double checksum_tolerance(std::size_t n, std::size_t nbatch, double scale) {
  const double eps = 0x1.0p-52;
  const double steps =
      64.0 * (std::log2(static_cast<double>(std::max<std::size_t>(n, 2))) +
              1.0) +
      8.0 * static_cast<double>(nbatch);
  return eps * steps * scale + 1e-290;
}

double energy_tolerance(std::size_t count) {
  const double eps = 0x1.0p-52;
  return 1e-12 + 64.0 * eps * static_cast<double>(count);
}

namespace {

// Eight independent rotate-xor lanes, word i feeding lane i % 8.  Rotation
// is invertible and xor is linear over GF(2), so any single flipped input
// bit survives to its lane's final state: single-bit corruption (the fault
// model) always changes the digest, and multi-bit corruption escapes only
// through a deliberate cancellation aligned across a 512-word stride.
// Shifts and xors only -- the hot loop vectorizes at any SIMD width.
struct DigestLanes {
  std::uint64_t lane[8] = {0x9e3779b97f4a7c15ULL, 0xbf58476d1ce4e5b9ULL,
                           0x94d049bb133111ebULL, 0xd6e8feb86659fd93ULL,
                           0xa0761d6478bd642fULL, 0xe7037ed1a0b428dbULL,
                           0x8ebc6af09c88c6e3ULL, 0x589965cc75374cc3ULL};
  std::size_t absorbed = 0;

  void absorb8(const std::uint64_t* w) {
    for (std::size_t l = 0; l < 8; ++l) {
      const std::uint64_t x = lane[l] ^ w[l];
      lane[l] = (x << 29) | (x >> 35);
    }
    absorbed += 8;
  }

  void absorb1(std::uint64_t w) {
    const std::size_t l = absorbed & 7;
    const std::uint64_t x = lane[l] ^ w;
    lane[l] = (x << 29) | (x >> 35);
    ++absorbed;
  }

  /// Absorbs `nwords` words read byte-wise from `bytes` (memcpy loads keep
  /// the double->word pun defined), re-aligning to the 8-word fast path
  /// first so the word-index-to-lane mapping matches a single linear
  /// digest regardless of how the stream is chunked.
  void absorb_run(const unsigned char* bytes, std::size_t nwords) {
    std::size_t i = 0;
    while (i < nwords && (absorbed & 7) != 0) {
      std::uint64_t w = 0;
      std::memcpy(&w, bytes + i * sizeof(std::uint64_t), sizeof(w));
      absorb1(w);
      ++i;
    }
    for (; i + 8 <= nwords; i += 8) {
      std::uint64_t w[8];
      std::memcpy(w, bytes + i * sizeof(std::uint64_t), sizeof(w));
      absorb8(w);
    }
    for (; i < nwords; ++i) {
      std::uint64_t w = 0;
      std::memcpy(&w, bytes + i * sizeof(std::uint64_t), sizeof(w));
      absorb1(w);
    }
  }

  [[nodiscard]] std::uint64_t finalize() const {
    // splitmix64 per lane diffuses the linear lane states; the fold is
    // rotation-salted so lane order matters.
    std::uint64_t h = 0x5eedabf7ULL ^ (static_cast<std::uint64_t>(absorbed)
                                       << 1);
    for (std::size_t l = 0; l < 8; ++l) {
      std::uint64_t s = lane[l] + l + 1;
      h = ((h << 7) | (h >> 57)) ^ core::splitmix64(s);
    }
    return h;
  }
};

}  // namespace

std::uint64_t digest_words(const std::uint64_t* p, std::size_t n) {
  DigestLanes lanes;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) lanes.absorb8(p + i);
  for (; i < n; ++i) lanes.absorb1(p[i]);
  return lanes.finalize();
}

std::uint64_t digest(const cplx* p, std::size_t n) {
  // complex<double> is layout-compatible with double[2]; go through memcpy
  // to keep the word-wise type pun defined (it compiles to plain loads).
  static_assert(sizeof(cplx) == 2 * sizeof(std::uint64_t));
  DigestLanes lanes;
  lanes.absorb_run(reinterpret_cast<const unsigned char*>(p), 2 * n);
  return lanes.finalize();
}

double checksum_accumulate_digest(cplx* dst, const cplx* in, std::size_t lo,
                                  std::size_t hi, std::size_t n,
                                  std::uint64_t* dig) {
  // Per batch item: the weighted-accumulate/energy loop, then the digest
  // absorption over the same 2n words.  The item is L1/L2-hot for the
  // second loop, so the fusion halves memory traffic versus separate
  // passes while each loop keeps its own clean vectorizable form.  The
  // digest's word order and lane mapping match digest(in, (hi-lo)*n)
  // exactly (contiguous items, absorb_run tracks the global word index).
  double* d = as_doubles(dst);
  double e_re = 0.0;
  double e_im = 0.0;
  DigestLanes lanes;
  for (std::size_t b = lo; b < hi; ++b) {
    const double w = abft_weight(b);
    const double* src = as_doubles(in + (b - lo) * n);
    for (std::size_t j = 0; j < 2 * n; j += 2) {
      const double re = src[j];
      const double im = src[j + 1];
      d[j] += w * re;
      d[j + 1] += w * im;
      e_re += re * re;
      e_im += im * im;
    }
    lanes.absorb_run(reinterpret_cast<const unsigned char*>(src), 2 * n);
  }
  *dig = lanes.finalize();
  return e_re + e_im;
}

double energy_digest(const cplx* p, std::size_t n, std::uint64_t* dig) {
  // Energy loop then digest absorption, blocked so the block stays
  // cache-hot for the second read (same fusion shape as
  // checksum_accumulate_digest).
  const double* d = as_doubles(p);
  const std::size_t m = 2 * n;
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  DigestLanes lanes;
  constexpr std::size_t kBlock = 1024;  // words; multiple of 8
  for (std::size_t base = 0; base < m; base += kBlock) {
    const std::size_t end = std::min(m, base + kBlock);
    std::size_t i = base;
    for (; i + 4 <= end; i += 4) {
      acc[0] += d[i] * d[i];
      acc[1] += d[i + 1] * d[i + 1];
      acc[2] += d[i + 2] * d[i + 2];
      acc[3] += d[i + 3] * d[i + 3];
    }
    for (; i < end; ++i) acc[i & 3] += d[i] * d[i];
    lanes.absorb_run(reinterpret_cast<const unsigned char*>(d + base),
                     end - base);
  }
  *dig = lanes.finalize();
  return (acc[0] + acc[2]) + (acc[1] + acc[3]);
}

}  // namespace fx::fft
