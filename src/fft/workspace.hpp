// Reusable scratch memory for FFT execution.
//
// Plans are immutable after construction and safe to execute from many
// threads concurrently; all mutable state lives in a Workspace that the
// caller owns (one per thread).  A convenience thread-local workspace is
// provided for callers that do not want to manage one explicitly.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "fft/types.hpp"

namespace fx::fft {

/// Pool of complex buffers handed out as RAII leases.  Leases may nest
/// (e.g. a Bluestein transform leasing buffers while its inner power-of-two
/// plan leases its own); buffers return to the pool in destruction order.
class Workspace {
 public:
  /// RAII lease of a buffer of at least n elements (contents undefined).
  class Buffer {
   public:
    Buffer(Workspace& ws, std::size_t n) : ws_(ws) {
      if (!ws.pool_.empty()) {
        v_ = std::move(ws.pool_.back());
        ws.pool_.pop_back();
      }
      v_.resize(n);
    }
    ~Buffer() { ws_.pool_.push_back(std::move(v_)); }

    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    Buffer(Buffer&&) = delete;
    Buffer& operator=(Buffer&&) = delete;

    [[nodiscard]] cplx* data() { return v_.data(); }
    [[nodiscard]] std::span<cplx> span() { return {v_.data(), v_.size()}; }

   private:
    Workspace& ws_;
    cvec v_;
  };

 private:
  friend class Buffer;
  std::vector<cvec> pool_;
};

/// Per-thread default workspace for the convenience execute() overloads.
Workspace& thread_workspace();

}  // namespace fx::fft
