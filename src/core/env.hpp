// Validated environment-variable parsing shared by every module.
//
// PR 7 introduced strict parsing for the FFTX_FAULT_* family (garbage or
// out-of-range values throw a named core::Error instead of silently running
// with a clamped default); this generalizes that pattern so every FFTX_*
// knob in the stack -- overlap chunks, observatory ring, watchdog window,
// checkpoint cadence, retry schedule, service frontend -- fails loudly and
// uniformly.  Each helper returns true and writes `out` only when the
// variable is set and valid; an unset/empty variable keeps the caller's
// default.  `context` (e.g. "fault injection") prefixes the error message so
// the subsystem stays identifiable.
#pragma once

#include <cstdint>

namespace fx::core {

/// Throws core::Error: "<context: >invalid <name>='<value>': expected
/// <expected>".
[[noreturn]] void invalid_env(const char* name, const char* value,
                              const char* expected,
                              const char* context = nullptr);

/// Unsigned integer (rejects signs, trailing junk, overflow).
bool env_u64(const char* name, std::uint64_t& out,
             const char* context = nullptr);

/// Integer in [INT_MIN, INT_MAX] (rejects trailing junk, overflow).
bool env_int(const char* name, int& out, const char* context = nullptr);

/// Finite double (rejects trailing junk, inf, nan).
bool env_double(const char* name, double& out, const char* context = nullptr);

/// Probability in [0, 1].
bool env_prob(const char* name, double& out, const char* context = nullptr);

/// Integer constrained to [lo, hi]; out-of-range values name the bound.
bool env_int_in(const char* name, int& out, int lo, int hi,
                const char* context = nullptr);

/// Finite double constrained to [lo, hi].
bool env_double_in(const char* name, double& out, double lo, double hi,
                   const char* context = nullptr);

/// Boolean flag: any valid integer, nonzero means true (rejects non-integer
/// text so "yes"/"on" fail loudly instead of silently reading as false).
bool env_flag(const char* name, bool& out, const char* context = nullptr);

}  // namespace fx::core
