// Wall-clock deadline budget carried by a request through the stack.
//
// A Deadline is an absolute expiry on the WallTimer epoch (monotonic, shared
// by every thread in the process), so it can be captured once at admission
// and handed down through pipeline configs, guarded exchanges, and the
// recovery driver without re-anchoring.  Default-constructed deadlines are
// inactive: every check is free and nothing ever expires, so deadline-free
// callers pay nothing.
//
// Cancellation protocol: per-rank clocks are read at slightly different
// times, so a rank must never unilaterally throw on expiry while its peers
// continue into a collective -- that desynchronizes the communicator.  The
// pipeline and recovery driver instead fold the local expired() verdict into
// a collective reduction at loop boundaries and throw DeadlineExceeded (see
// core/error.hpp) on every rank in lockstep, leaving the communicator
// healthy for the next request.
#pragma once

#include <limits>

#include "core/timer.hpp"

namespace fx::core {

class Deadline {
 public:
  /// Inactive: never expires.
  Deadline() = default;

  /// Expires `seconds` from now; non-positive budgets yield an inactive
  /// deadline (callers encode "no budget" as 0).
  static Deadline after(double seconds) {
    if (seconds <= 0.0) return {};
    return Deadline(WallTimer::now() + seconds);
  }

  /// Expires at an absolute WallTimer::now() timestamp; non-positive means
  /// inactive.  Used to re-materialize a deadline shipped across threads.
  static Deadline at(double expiry_s) {
    if (expiry_s <= 0.0) return {};
    return Deadline(expiry_s);
  }

  [[nodiscard]] bool active() const { return expiry_s_ > 0.0; }

  [[nodiscard]] bool expired() const {
    return active() && WallTimer::now() >= expiry_s_;
  }

  /// Seconds until expiry (<= 0 when already expired); +inf when inactive.
  [[nodiscard]] double remaining_s() const {
    if (!active()) return std::numeric_limits<double>::infinity();
    return expiry_s_ - WallTimer::now();
  }

  /// Absolute expiry timestamp (0 when inactive); pairs with at().
  [[nodiscard]] double expiry_s() const { return expiry_s_; }

  /// The tighter of two deadlines (inactive ones are transparent).
  [[nodiscard]] static Deadline sooner(Deadline a, Deadline b) {
    if (!a.active()) return b;
    if (!b.active()) return a;
    return a.expiry_s_ <= b.expiry_s_ ? a : b;
  }

 private:
  explicit Deadline(double expiry_s) : expiry_s_(expiry_s) {}
  double expiry_s_ = 0.0;
};

}  // namespace fx::core
