// Wall-clock timing for the real execution backend.
#pragma once

#include <chrono>

namespace fx::core {

/// Monotonic wall-clock stopwatch with double-precision seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since an arbitrary fixed epoch; used to timestamp trace events
  /// consistently across threads.
  static double now() {
    return std::chrono::duration<double>(Clock::now().time_since_epoch())
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fx::core
