// CSV emission for bench outputs (one file per reproduced table/figure).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace fx::core {

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing
/// separators).  Creates parent-less paths relative to the working
/// directory; callers pass e.g. "bench/out/fig2.csv".
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws fx::core::Error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = delete;
  CsvWriter& operator=(CsvWriter&&) = delete;

  void row(const std::vector<std::string>& cells);

 private:
  std::ofstream out_;
};

}  // namespace fx::core
