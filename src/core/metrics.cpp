#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace fx::core {

// ---------------------------------------------------------------------------
// Histogram

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  // frexp: v = frac * 2^exp with frac in [0.5, 1) -> log2(v) = exp + log2(frac)
  int exp = 0;
  const double frac = std::frexp(v, &exp);
  const double log2v = static_cast<double>(exp - 1) +
                       std::log2(frac * 2.0);  // frac*2 in [1, 2)
  const int idx = static_cast<int>(
      std::floor((log2v - kMinExp) * kSubBuckets));
  return std::clamp(idx, 0, kBuckets - 1);
}

double Histogram::bucket_value(int index) {
  // Geometric midpoint of [2^(lo), 2^(lo + 1/kSubBuckets)).
  const double lo =
      kMinExp + static_cast<double>(index) / kSubBuckets;
  return std::exp2(lo + 0.5 / kSubBuckets);
}

void Histogram::record(double v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  // min/max are advisory under concurrency (first writer initializes), which
  // is fine for end-of-run snapshots.
  if (count_.load(std::memory_order_relaxed) == 1) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m &&
         !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= target && cum > 0) return bucket_value(i);
  }
  return bucket_value(kBuckets - 1);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

namespace {

template <typename Map>
bool holds_name(const Map& m, std::string_view name) {
  return m.find(name) != m.end();
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  FX_CHECK(!holds_name(gauges_, name) && !holds_name(histograms_, name),
           "metric '" + std::string(name) +
               "' already registered with a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  FX_CHECK(!holds_name(counters_, name) && !holds_name(histograms_, name),
           "metric '" + std::string(name) +
               "' already registered with a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  FX_CHECK(!holds_name(counters_, name) && !holds_name(gauges_, name),
           "metric '" + std::string(name) +
               "' already registered with a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::vector<Row> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Row r;
    r.name = name;
    r.kind = Row::Kind::Counter;
    r.value = static_cast<double>(c->value());
    out.push_back(std::move(r));
  }
  for (const auto& [name, g] : gauges_) {
    Row r;
    r.name = name;
    r.kind = Row::Kind::Gauge;
    r.value = g->value();
    out.push_back(std::move(r));
  }
  for (const auto& [name, h] : histograms_) {
    Row r;
    r.name = name;
    r.kind = Row::Kind::Histogram;
    r.hist = h->snapshot();
    r.value = static_cast<double>(r.hist.count);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  return out;
}

namespace {

const char* kind_name(MetricsRegistry::Row::Kind k) {
  switch (k) {
    case MetricsRegistry::Row::Kind::Counter: return "counter";
    case MetricsRegistry::Row::Kind::Gauge: return "gauge";
    case MetricsRegistry::Row::Kind::Histogram: return "histogram";
  }
  return "?";
}

std::string num(double v) {
  // Shortest faithful form: integers print without a fraction.
  std::ostringstream os;
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    os.precision(12);
    os << v;
  }
  return os.str();
}

}  // namespace

void MetricsRegistry::dump(std::ostream& os, DumpFormat fmt) const {
  const auto all = rows();
  if (fmt == DumpFormat::Csv) {
    os << "kind,name,value,count,sum,min,max,p50,p95,p99\n";
    for (const auto& r : all) {
      os << kind_name(r.kind) << ',' << r.name << ',' << num(r.value);
      if (r.kind == Row::Kind::Histogram) {
        os << ',' << r.hist.count << ',' << num(r.hist.sum) << ','
           << num(r.hist.min) << ',' << num(r.hist.max) << ','
           << num(r.hist.p50) << ',' << num(r.hist.p95) << ','
           << num(r.hist.p99);
      } else {
        os << ",,,,,,,";
      }
      os << '\n';
    }
    return;
  }
  os << "{\"metrics\": [";
  bool first = true;
  for (const auto& r : all) {
    if (!first) os << ", ";
    first = false;
    os << "{\"kind\": \"" << kind_name(r.kind) << "\", \"name\": \"" << r.name
       << "\", \"value\": " << num(r.value);
    if (r.kind == Row::Kind::Histogram) {
      os << ", \"count\": " << r.hist.count << ", \"sum\": " << num(r.hist.sum)
         << ", \"min\": " << num(r.hist.min)
         << ", \"max\": " << num(r.hist.max)
         << ", \"p50\": " << num(r.hist.p50)
         << ", \"p95\": " << num(r.hist.p95)
         << ", \"p99\": " << num(r.hist.p99);
    }
    os << '}';
  }
  os << "]}\n";
}

void MetricsRegistry::dump(const std::string& path, DumpFormat fmt) const {
  std::ofstream os(path);
  FX_CHECK(os.good(), "cannot open metrics dump file '" + path + "'");
  dump(os, fmt);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

}  // namespace fx::core
