// Minimal string formatting helpers (libstdc++ 12 lacks <format>).
#pragma once

#include <iomanip>
#include <sstream>
#include <string>

namespace fx::core {

/// Concatenate any streamable arguments into a std::string.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Fixed-point decimal with the given number of digits, e.g. fixed(3.14159, 2)
/// -> "3.14".  Used by the table printer to mirror the paper's layout.
inline std::string fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

/// Percentage string matching the paper's tables, e.g. pct(0.9575) -> "95.75 %".
inline std::string pct(double fraction, int digits = 2) {
  return fixed(fraction * 100.0, digits) + " %";
}

}  // namespace fx::core
