#include "core/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/rng.hpp"
#include "core/timer.hpp"

namespace fx::core {

namespace {

bool env_double(const char* name, double& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  out = std::strtod(v, nullptr);
  return true;
}

bool env_int(const char* name, int& out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  out = static_cast<int>(std::strtol(v, nullptr, 10));
  return true;
}

}  // namespace

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  env_int("FFTX_RETRY_MAX_ATTEMPTS", p.max_attempts);
  env_double("FFTX_RETRY_BASE_MS", p.base_delay_ms);
  env_double("FFTX_RETRY_MULT", p.multiplier);
  env_double("FFTX_RETRY_MAX_MS", p.max_delay_ms);
  env_double("FFTX_RETRY_JITTER", p.jitter);
  env_double("FFTX_RETRY_DEADLINE_S", p.deadline_s);
  return p;
}

double RetryPolicy::delay_ms(int attempt, std::uint64_t salt) const {
  double d = base_delay_ms;
  for (int k = 0; k < attempt; ++k) {
    d *= multiplier;
    if (d >= max_delay_ms) break;
  }
  d = std::min(d, max_delay_ms);
  if (jitter > 0.0 && d > 0.0) {
    std::uint64_t x = seed;
    x ^= 0x9e3779b97f4a7c15ULL * (salt + 1);
    x ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(attempt) + 1);
    const std::uint64_t h = splitmix64(x);
    // Uniform in [-jitter, +jitter].
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    d *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return std::max(0.0, d);
}

RetryController::RetryController(const RetryPolicy& policy, std::uint64_t salt)
    : policy_(policy), salt_(salt), t_start_(WallTimer::now()) {}

bool RetryController::should_retry() const {
  if (attempt_ + 1 >= policy_.max_attempts) return false;
  if (policy_.deadline_s > 0.0 &&
      WallTimer::now() - t_start_ >= policy_.deadline_s) {
    return false;
  }
  return true;
}

double RetryController::backoff() {
  const double d = policy_.delay_ms(attempt_, salt_);
  ++attempt_;
  if (d > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(d));
  }
  return d;
}

}  // namespace fx::core
