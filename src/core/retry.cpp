#include "core/retry.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <thread>

#include "core/env.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"

namespace fx::core {

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy p;
  env_int_in("FFTX_RETRY_MAX_ATTEMPTS", p.max_attempts, 1, INT_MAX, "retry");
  env_double_in("FFTX_RETRY_BASE_MS", p.base_delay_ms, 0.0, 1e9, "retry");
  env_double_in("FFTX_RETRY_MULT", p.multiplier, 1.0, 1e6, "retry");
  env_double_in("FFTX_RETRY_MAX_MS", p.max_delay_ms, 0.0, 1e9, "retry");
  env_prob("FFTX_RETRY_JITTER", p.jitter, "retry");
  env_double_in("FFTX_RETRY_DEADLINE_S", p.deadline_s, 0.0, 1e9, "retry");
  return p;
}

double RetryPolicy::merge_deadline_s(double a, double b) {
  if (a <= 0.0) return std::max(b, 0.0);
  if (b <= 0.0) return a;
  return std::min(a, b);
}

double RetryPolicy::delay_ms(int attempt, std::uint64_t salt) const {
  double d = base_delay_ms;
  for (int k = 0; k < attempt; ++k) {
    d *= multiplier;
    if (d >= max_delay_ms) break;
  }
  d = std::min(d, max_delay_ms);
  if (jitter > 0.0 && d > 0.0) {
    std::uint64_t x = seed;
    x ^= 0x9e3779b97f4a7c15ULL * (salt + 1);
    x ^= 0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(attempt) + 1);
    const std::uint64_t h = splitmix64(x);
    // Uniform in [-jitter, +jitter].
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    d *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return std::max(0.0, d);
}

RetryController::RetryController(const RetryPolicy& policy, std::uint64_t salt)
    : policy_(policy), salt_(salt), t_start_(WallTimer::now()) {}

double RetryController::elapsed_s() const { return WallTimer::now() - t_start_; }

bool RetryController::should_retry() const {
  if (attempt_ + 1 >= policy_.max_attempts) return false;
  if (policy_.deadline_s > 0.0 &&
      WallTimer::now() - t_start_ >= policy_.deadline_s) {
    return false;
  }
  return true;
}

double RetryController::backoff() {
  double d = policy_.delay_ms(attempt_, salt_);
  ++attempt_;
  if (policy_.deadline_s > 0.0) {
    // Fail fast at the deadline: sleeping the full jittered delay past the
    // budget only postpones the caller's (inevitable) should_retry() == false
    // verdict.  Clamp to the remaining budget, floored at zero.
    const double remain_ms =
        (policy_.deadline_s - (WallTimer::now() - t_start_)) * 1000.0;
    d = std::clamp(remain_ms, 0.0, d);
  }
  if (d > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(d));
  }
  return d;
}

}  // namespace fx::core
