#include "core/json.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "core/format.hpp"

namespace fx::core::json {

namespace {

[[noreturn]] void kind_error(const char* want, Value::Kind got) {
  throw Error(cat("json: expected ", want, ", value is kind ",
                  static_cast<int>(got)));
}

void write_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void write_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the conventional lossy stand-in.
    out += "null";
    return;
  }
  // Integers in the exact range print without an exponent or trailing
  // zeros, so counters look like counters.
  if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Shortest round-trip would be nicer, but %.17g is always exact; trim the
  // common all-zeros mantissa tail for readability.
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(cat("json parse error at offset ", pos_, ": ", why));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(cat("expected '", std::string(1, c), "'"));
    ++pos_;
  }

  bool consume_word(const char* w) {
    const std::size_t n = std::char_traits<char>::length(w);
    if (s_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (c == 't') {
      if (consume_word("true")) return Value(true);
      fail("bad literal");
    }
    if (c == 'f') {
      if (consume_word("false")) return Value(false);
      fail("bad literal");
    }
    if (c == 'n') {
      if (consume_word("null")) return {};
      fail("bad literal");
    }
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    Object o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(o));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    for (;;) {
      a.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(a));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // recombined -- our own artifacts never emit them).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("number", kind_);
  return num_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return arr_;
}

Array& Value::as_array() {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return obj_;
}

Object& Value::as_object() {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return obj_;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

std::optional<double> Value::number_at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

void Value::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      write_number(out, num_);
      break;
    case Kind::String:
      write_escaped(out, str_);
      break;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : arr_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        v.write(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        write_escaped(out, k);
        out += ": ";
        v.write(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  write(out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::dump_pretty() const {
  std::string out;
  write(out, /*indent=*/2, /*depth=*/0);
  out += '\n';
  return out;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

Value load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error(cat("json: cannot open '", path, "'"));
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void save_file(const Value& v, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) throw Error(cat("json: cannot write '", path, "'"));
  out << v.dump_pretty();
}

}  // namespace fx::core::json
