// Unified retry policy: exponential backoff with deterministic jitter and
// an optional wall-clock deadline.
//
// Every retry loop in the stack (the guarded exchange's corruption retry,
// the recovery driver's repair-and-replay loop) used to carry its own ad-hoc
// bounded counter; this centralizes the schedule so the knobs -- attempt
// budget, backoff curve, deadline -- are configured once (FFTX_RETRY_* env
// vars) and reported uniformly.
//
// Jitter is a pure hash of (seed, salt, attempt), not a shared RNG, for the
// same reason the fault injector hashes: outcomes must not depend on thread
// interleaving.  Pass a per-rank salt to decorrelate ranks.
#pragma once

#include <cstdint>

namespace fx::core {

/// The schedule: delay(k) = min(base * multiplier^k, max) * (1 +- jitter),
/// for attempts k = 0 .. max_attempts-1.  `max_attempts` counts tries, not
/// retries: 4 means one initial try plus up to three repeats.
struct RetryPolicy {
  int max_attempts = 4;
  double base_delay_ms = 0.5;
  double multiplier = 2.0;
  double max_delay_ms = 250.0;
  double jitter = 0.25;    ///< fraction of the delay, symmetric
  double deadline_s = 0.0; ///< total budget from first try; 0 = unlimited
  std::uint64_t seed = 1;

  /// Reads FFTX_RETRY_MAX_ATTEMPTS, FFTX_RETRY_BASE_MS, FFTX_RETRY_MULT,
  /// FFTX_RETRY_MAX_MS, FFTX_RETRY_JITTER, FFTX_RETRY_DEADLINE_S.  Unset
  /// vars keep the defaults above.
  static RetryPolicy from_env();

  /// Backoff delay before repeat `attempt` (0-based), jittered
  /// deterministically by (seed, salt, attempt).
  [[nodiscard]] double delay_ms(int attempt, std::uint64_t salt = 0) const;

  /// The tighter of two deadline budgets in seconds; 0 (unlimited) is
  /// transparent.  Used to fold a request's remaining wall-clock budget into
  /// an env-configured policy.
  [[nodiscard]] static double merge_deadline_s(double a, double b);
};

/// One retry loop's state: tracks the attempt count and the deadline.
///
///   core::RetryController retry(policy, /*salt=*/rank);
///   for (;;) {
///     try { work(); break; }
///     catch (...) { if (!retry.should_retry()) throw; retry.backoff(); }
///   }
class RetryController {
 public:
  explicit RetryController(const RetryPolicy& policy, std::uint64_t salt = 0);

  /// Completed (failed) attempts so far.
  [[nodiscard]] int attempt() const { return attempt_; }

  /// True while another attempt fits the budget: fewer than max_attempts
  /// tries consumed and the deadline (if any) not yet passed.
  [[nodiscard]] bool should_retry() const;

  /// Sleeps this attempt's jittered delay -- clamped so it never overshoots
  /// the deadline budget -- and advances the attempt count.  Returns the
  /// milliseconds slept (for metrics).
  double backoff();

  /// Seconds since the first attempt started.
  [[nodiscard]] double elapsed_s() const;

 private:
  RetryPolicy policy_;
  std::uint64_t salt_;
  int attempt_ = 0;  ///< failures observed == backoffs taken
  double t_start_;
};

}  // namespace fx::core
