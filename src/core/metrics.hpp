// Process-wide runtime metrics: named counters, gauges and log-bucketed
// histograms.
//
// The tracer answers "what happened when" for one run; the metrics registry
// answers "how often / how much / how long" for the whole process, cheaply
// enough to stay on in production.  Recording is lock-free (relaxed atomics
// throughout: a counter add is one fetch_add, a histogram record is two),
// so hot paths -- collective waits, plan-cache lookups, task submission --
// can be instrumented without perturbing what they measure.
//
// Usage pattern: resolve the metric once (registration takes a mutex) and
// keep the reference; references stay valid for the registry's lifetime.
//
//   static core::Counter& hits =
//       core::MetricsRegistry::global().counter("fft.plan_cache.hits");
//   hits.add();
//
// Snapshots (including p50/p95/p99 of every histogram) export as CSV or
// JSON via MetricsRegistry::dump(); examples and benches call it at end of
// run when FFTX_TRACE_DIR is set (see trace/artifacts.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fx::core {

/// Monotonic event count.  Thread-safe, lock-free.
class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, bytes in flight).
/// Thread-safe, lock-free; `max_of` keeps a running peak.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if it exceeds the current value.
  void max_of(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram of positive values (latencies, sizes, depths).
///
/// Buckets are powers of 2^(1/4) (quarter-octaves, ~19 % relative width),
/// spanning 2^-32 .. 2^32 around 1.0 -- microsecond latencies recorded in
/// seconds and gigabyte sizes recorded in bytes both land comfortably
/// inside.  Out-of-range and non-positive values clamp into the edge
/// buckets, so `count` always equals the number of record() calls.
/// Quantiles are read from the bucket boundaries (geometric midpoint), so
/// they carry the bucket's ~19 % resolution and are monotone in q by
/// construction.
class Histogram {
 public:
  void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< exact (not bucketed); 0 when empty
    double max = 0.0;
    double p50 = 0.0;  ///< bucket-resolution quantiles; 0 when empty
    double p95 = 0.0;
    double p99 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Quantile q in [0, 1] at bucket resolution (0 when empty).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  void reset();

  /// 4 sub-buckets per octave over 2^-32 .. 2^32.
  static constexpr int kSubBuckets = 4;
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 32;
  static constexpr int kBuckets = (kMaxExp - kMinExp) * kSubBuckets;

 private:
  static int bucket_of(double v);
  static double bucket_value(int index);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Named metric registry.  Lookup registers on first use and returns a
/// stable reference; a name permanently identifies one metric of one kind
/// (asking for the same name with a different kind throws core::Error).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// One row per metric, sorted by name (histograms carry quantiles).
  struct Row {
    std::string name;
    enum class Kind { Counter, Gauge, Histogram } kind;
    double value = 0.0;  ///< counter / gauge value; histogram count
    Histogram::Snapshot hist;  ///< histograms only
  };
  [[nodiscard]] std::vector<Row> rows() const;

  enum class DumpFormat { Csv, Json };
  /// Writes every metric's snapshot.  CSV columns:
  ///   kind,name,value,count,sum,min,max,p50,p95,p99
  /// JSON: {"metrics": [{"kind": ..., "name": ..., ...}]}.
  void dump(std::ostream& os, DumpFormat fmt) const;
  void dump(const std::string& path, DumpFormat fmt) const;

  /// Zeroes every registered metric (tests and bench repetitions; the
  /// metric objects and references stay valid).
  void reset();

  /// Process-wide shared instance.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fx::core
