// Error handling primitives shared by every module.
//
// The library reports contract violations and unrecoverable conditions via
// fx::core::Error (derived from std::runtime_error).  FX_CHECK is an
// always-on check (release builds included) for conditions that depend on
// user input; FX_ASSERT is for internal invariants and compiles to the same
// thing -- the cost is negligible next to FFT work, and P.7 of the C++ Core
// Guidelines ("catch run-time errors early") wins over micro-savings.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fx::core {

/// Exception type thrown by all FX_CHECK / FX_ASSERT failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Communication-layer failure: collective mismatch, poisoned communicator
/// (a peer rank died), or a recv/send contract violation.  The message names
/// the offending ranks and operations.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Raised by the hang watchdog when no communicator made progress for the
/// configured window; the message is the per-rank dump of blocked
/// operations and missing participants.
class DeadlockError : public CommError {
 public:
  explicit DeadlockError(const std::string& what) : CommError(what) {}
};

/// The communicator was revoked for repair (ULFM-style): the failure is
/// survivable, and the surviving ranks are expected to rendezvous in
/// Comm::agree / Comm::shrink instead of tearing the world down.  Derives
/// from CommError so code that only knows how to unwind keeps working.
class RevokedError : public CommError {
 public:
  explicit RevokedError(const std::string& what) : CommError(what) {}
};

/// Raised by the fault injector when a rank is scheduled to be killed
/// (distinct from CommError so tests can tell an injected death from the
/// induced peer unwinds).
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what) : Error(what) {}
};

/// Silent data corruption caught by the ABFT layer: a checksum-band,
/// Parseval or at-rest-digest invariant failed after the run's collective
/// verdict, so every rank of the world throws it in lockstep.  Distinct
/// from CommError because the *world* is healthy -- only data is wrong --
/// and the recovery driver can repair surgically (replay the corrupted
/// bands) instead of shrinking the communicator.
class SdcError : public Error {
 public:
  explicit SdcError(const std::string& what) : Error(what) {}
};

/// A request's wall-clock budget expired: the work was cancelled cleanly at
/// a collective cancellation point (all ranks throw in lockstep, partial
/// work discarded, communicator left healthy).  Distinct from CommError --
/// nothing failed -- and deliberately NOT survivable by the recovery
/// driver's repair path: running out of time is a terminal verdict for the
/// request, not a fault to retry.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// A task body threw: carries the task label so join points (taskwait /
/// taskloop) can report which task died, not just what it said.
class TaskError : public Error {
 public:
  TaskError(std::string label, const std::string& what)
      : Error("task '" + label + "' failed: " + what),
        label_(std::move(label)) {}
  [[nodiscard]] const std::string& label() const { return label_; }

 private:
  std::string label_;
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fx::core

// NOLINTBEGIN(cppcoreguidelines-macro-usage): assertion macros need
// stringification and source location, which functions cannot provide
// portably before C++20 std::source_location adoption in our toolchain.
#define FX_CHECK(cond, ...)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fx::core::detail::fail("FX_CHECK", #cond, __FILE__, __LINE__,    \
                               ::std::string{__VA_ARGS__});              \
    }                                                                    \
  } while (false)

#define FX_ASSERT(cond, ...)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::fx::core::detail::fail("FX_ASSERT", #cond, __FILE__, __LINE__,   \
                               ::std::string{__VA_ARGS__});              \
    }                                                                    \
  } while (false)
// NOLINTEND(cppcoreguidelines-macro-usage)
