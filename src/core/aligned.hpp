// Cache-line / SIMD aligned storage for FFT working sets.
//
// KNL's AVX-512 units want 64-byte aligned loads; on commodity hosts the
// alignment still avoids split cache lines.  aligned_vector<T> is the
// container used for every numeric buffer in the library.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace fx::core {

inline constexpr std::size_t kAlignment = 64;

/// Standard-conforming allocator returning 64-byte aligned memory.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc{};
    }
    void* p = ::operator new(n * sizeof(T), std::align_val_t{kAlignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace fx::core
