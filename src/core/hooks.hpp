// Process-global hook for rare out-of-band "instant" events.
//
// Low layers (the simmpi watchdog, the recovery driver) sometimes have
// something worth a timeline marker -- a near-miss, a communicator repair --
// but no tracer reference: the tracer lives two library layers above them,
// and threading one through every constructor for events that fire a
// handful of times per run is not worth the coupling.  Instead, whoever
// owns a tracer installs a sink here (see trace::AmbientTracerScope) and
// the low layers call emit_instant(); with no sink installed the call is a
// cheap no-op.
//
// Emission takes a mutex -- these events are rare by contract (never on a
// per-operation hot path).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fx::core {

using InstantSink = std::function<void(const std::string& name)>;

/// Installs `sink` as the process-global instant sink if none is installed.
/// Returns the owner token (nonzero) on success, 0 if another sink is
/// already active (the caller then simply doesn't own it).
std::uint64_t install_instant_sink(InstantSink sink);

/// Removes the sink iff `token` matches the active installation.
void remove_instant_sink(std::uint64_t token);

/// Invokes the installed sink with `name`; no-op when none is installed.
void emit_instant(const std::string& name);

/// Incident sink: same shape as the instant sink, but for *fault-context*
/// events -- an SDC verdict, a recovery shrink, a watchdog near-miss, a
/// guard retry.  The performance observatory (trace/observatory.hpp)
/// installs one so that every incident triggers a flight-recorder dump of
/// the surrounding iterations; layers below trace (simmpi's watchdog, the
/// guard) report through here without seeing the observatory type.
/// Incidents are rare by contract -- emission takes a mutex.
using IncidentSink = std::function<void(const std::string& reason)>;

/// Same single-owner contract as install_instant_sink.
std::uint64_t install_incident_sink(IncidentSink sink);

/// Removes the incident sink iff `token` matches the active installation.
void remove_incident_sink(std::uint64_t token);

/// Invokes the installed incident sink; no-op when none is installed.
void emit_incident(const std::string& reason);

}  // namespace fx::core
