// Process-global hook for rare out-of-band "instant" events.
//
// Low layers (the simmpi watchdog, the recovery driver) sometimes have
// something worth a timeline marker -- a near-miss, a communicator repair --
// but no tracer reference: the tracer lives two library layers above them,
// and threading one through every constructor for events that fire a
// handful of times per run is not worth the coupling.  Instead, whoever
// owns a tracer installs a sink here (see trace::AmbientTracerScope) and
// the low layers call emit_instant(); with no sink installed the call is a
// cheap no-op.
//
// Emission takes a mutex -- these events are rare by contract (never on a
// per-operation hot path).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fx::core {

using InstantSink = std::function<void(const std::string& name)>;

/// Installs `sink` as the process-global instant sink if none is installed.
/// Returns the owner token (nonzero) on success, 0 if another sink is
/// already active (the caller then simply doesn't own it).
std::uint64_t install_instant_sink(InstantSink sink);

/// Removes the sink iff `token` matches the active installation.
void remove_instant_sink(std::uint64_t token);

/// Invokes the installed sink with `name`; no-op when none is installed.
void emit_instant(const std::string& name);

}  // namespace fx::core
