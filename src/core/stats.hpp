// Streaming statistics used by the efficiency analyzer and the benches.
#pragma once

#include <cstddef>
#include <span>

namespace fx::core {

/// Welford single-pass accumulator: numerically stable mean and variance.
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span; 0 for an empty span.
double mean(std::span<const double> xs);

/// Population standard deviation of a span; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// Median (of a copy; the input is not modified).
double median(std::span<const double> xs);

}  // namespace fx::core
