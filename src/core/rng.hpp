// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (wave-function initialization,
// stress-test graphs, workload generators) flows through this xoshiro256**
// generator so that runs are reproducible from a single seed -- a
// prerequisite for regenerating the paper's tables bit-for-bit.
#pragma once

#include <cstdint>

namespace fx::core {

/// splitmix64: used only to expand a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna) -- fast, high-quality, 2^256 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace fx::core
