// Fixed-width console table printer.
//
// The figure/table benches print rows that mirror the paper's layout
// (e.g. Table I "Load Balance  97.31 %  95.04 % ...").  TablePrinter keeps
// the columns aligned regardless of cell width and emits both console text
// and a machine-readable form via core/csv.hpp.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fx::core {

/// Accumulates rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  /// Optional title printed above the table, boxed with '=' rules.
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row (printed with a '-' rule underneath).
  void header(std::vector<std::string> cells);

  /// Appends a data row; rows may have differing cell counts.
  void row(std::vector<std::string> cells);

  /// Renders the table to the stream.
  void print(std::ostream& os) const;

  /// Convenience: renders to a string.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& header_row() const {
    return header_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fx::core
