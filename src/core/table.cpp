#include "core/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace fx::core {

void TablePrinter::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  // Column widths across header and all rows.
  std::vector<std::size_t> width;
  auto widen = [&width](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  if (total >= 2) total -= 2;

  auto rule = [&os](char c, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) os << c;
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << "  ";
      os << cells[i];
      // Pad all but the last column (first column left-aligned, numeric
      // columns right-aligned would need type info; uniform left-align with
      // padding keeps the output diff-stable).
      if (i + 1 < cells.size()) {
        for (std::size_t p = cells[i].size(); p < width[i]; ++p) os << ' ';
      }
    }
    os << '\n';
  };

  if (!title_.empty()) {
    rule('=', std::max(total, title_.size()));
    os << title_ << '\n';
    rule('=', std::max(total, title_.size()));
  }
  if (!header_.empty()) {
    emit(header_);
    rule('-', total);
  }
  for (const auto& r : rows_) emit(r);
}

std::string TablePrinter::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace fx::core
