// Minimal JSON value: parse, build, serialize.
//
// The observability layer needs machine-readable artifacts (flight-recorder
// dumps, bench reports, regression baselines) that downstream tooling can
// both write *and read back* -- the metrics registry's JSON dump is
// write-only.  External JSON libraries are off the table (the build is
// dependency-free by policy), so this is the smallest useful subset:
// null/bool/double/string/array/object, UTF-8 passed through verbatim,
// \uXXXX accepted on input but never emitted.  Numbers are always double
// (exact for the 53-bit integer range, which covers every counter we dump).
//
// Intended for cold paths only -- artifact dumps, baseline loads, bench
// summaries.  Not a streaming parser; inputs are whole strings.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fx::core::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps object keys sorted, so serialization is deterministic --
/// artifact diffs and baseline files stay stable across runs.
using Object = std::map<std::string, Value>;

/// One JSON value.  Default-constructed is null.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Value(double d) : kind_(Kind::Number), num_(d) {}  // NOLINT
  Value(int i) : kind_(Kind::Number), num_(i) {}  // NOLINT
  Value(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(i)) {}
  Value(std::uint64_t u)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}  // NOLINT
  Value(std::string s)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::String), str_(std::move(s)) {}
  Value(Array a)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Array), arr_(std::move(a)) {}
  Value(Object o)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::Object), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; throw core::Error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member lookup; null pointer when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// find() + as_number() in one step (nullopt when absent / wrong kind).
  [[nodiscard]] std::optional<double> number_at(const std::string& key) const;

  /// Compact single-line serialization.
  [[nodiscard]] std::string dump() const;
  /// Pretty serialization, two-space indents (artifact files).
  [[nodiscard]] std::string dump_pretty() const;

 private:
  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Throws core::Error with position information on malformed input.
Value parse(const std::string& text);

/// Reads and parses a JSON file; throws core::Error when unreadable.
Value load_file(const std::string& path);

/// Serializes `v` (pretty) into `path`, creating parent directories.
void save_file(const Value& v, const std::string& path);

}  // namespace fx::core::json
