#include "core/hooks.hpp"

#include <mutex>
#include <utility>

namespace fx::core {

namespace {

std::mutex g_mu;
InstantSink g_sink;
std::uint64_t g_token = 0;
std::uint64_t g_next_token = 1;

std::mutex g_incident_mu;
IncidentSink g_incident_sink;
std::uint64_t g_incident_token = 0;
std::uint64_t g_incident_next_token = 1;

}  // namespace

std::uint64_t install_instant_sink(InstantSink sink) {
  std::lock_guard lock(g_mu);
  if (g_sink) return 0;
  g_sink = std::move(sink);
  g_token = g_next_token++;
  return g_token;
}

void remove_instant_sink(std::uint64_t token) {
  std::lock_guard lock(g_mu);
  if (token != 0 && token == g_token) {
    g_sink = nullptr;
    g_token = 0;
  }
}

void emit_instant(const std::string& name) {
  // Copy the sink out so a slow sink doesn't serialize emitters against
  // install/remove; the copy is cheap at these event rates.
  InstantSink sink;
  {
    std::lock_guard lock(g_mu);
    sink = g_sink;
  }
  if (sink) sink(name);
}

std::uint64_t install_incident_sink(IncidentSink sink) {
  std::lock_guard lock(g_incident_mu);
  if (g_incident_sink) return 0;
  g_incident_sink = std::move(sink);
  g_incident_token = g_incident_next_token++;
  return g_incident_token;
}

void remove_incident_sink(std::uint64_t token) {
  std::lock_guard lock(g_incident_mu);
  if (token != 0 && token == g_incident_token) {
    g_incident_sink = nullptr;
    g_incident_token = 0;
  }
}

void emit_incident(const std::string& reason) {
  IncidentSink sink;
  {
    std::lock_guard lock(g_incident_mu);
    sink = g_incident_sink;
  }
  if (sink) sink(reason);
}

}  // namespace fx::core
