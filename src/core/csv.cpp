#include "core/csv.hpp"

#include <filesystem>

#include "core/error.hpp"

namespace fx::core {

CsvWriter::CsvWriter(const std::string& path) {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A failure here surfaces as the open failure below.
  }
  out_.open(path, std::ios::trunc);
  FX_CHECK(out_.is_open(), "cannot open CSV output file: " + path);
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    const std::string& c = cells[i];
    const bool quote = c.find_first_of(",\"\n") != std::string::npos;
    if (!quote) {
      out_ << c;
      continue;
    }
    out_ << '"';
    for (char ch : c) {
      if (ch == '"') out_ << '"';
      out_ << ch;
    }
    out_ << '"';
  }
  out_ << '\n';
}

}  // namespace fx::core
