#include "core/env.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "core/error.hpp"
#include "core/format.hpp"

namespace fx::core {

void invalid_env(const char* name, const char* value, const char* expected,
                 const char* context) {
  const char* prefix = (context != nullptr && *context != '\0') ? context : "";
  const char* sep = (*prefix != '\0') ? ": " : "";
  throw Error(cat(prefix, sep, "invalid ", name, "='",
                  value != nullptr ? value : "", "': expected ", expected));
}

bool env_u64(const char* name, std::uint64_t& out, const char* context) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long x = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || *v == '-' || errno == ERANGE) {
    invalid_env(name, v, "an unsigned integer", context);
  }
  out = static_cast<std::uint64_t>(x);
  return true;
}

bool env_int(const char* name, int& out, const char* context) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || x < INT_MIN ||
      x > INT_MAX) {
    invalid_env(name, v, "an integer", context);
  }
  out = static_cast<int>(x);
  return true;
}

bool env_double(const char* name, double& out, const char* context) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  if (end == v || *end != '\0' || !std::isfinite(x)) {
    invalid_env(name, v, "a finite number", context);
  }
  out = x;
  return true;
}

bool env_prob(const char* name, double& out, const char* context) {
  double x = out;
  if (!env_double(name, x, context)) return false;
  if (x < 0.0 || x > 1.0) {
    invalid_env(name, std::getenv(name), "a probability in [0, 1]", context);
  }
  out = x;
  return true;
}

bool env_int_in(const char* name, int& out, int lo, int hi,
                const char* context) {
  int x = out;
  if (!env_int(name, x, context)) return false;
  if (x < lo || x > hi) {
    invalid_env(name, std::getenv(name),
                cat("an integer in [", lo, ", ", hi, "]").c_str(), context);
  }
  out = x;
  return true;
}

bool env_double_in(const char* name, double& out, double lo, double hi,
                   const char* context) {
  double x = out;
  if (!env_double(name, x, context)) return false;
  if (x < lo || x > hi) {
    invalid_env(name, std::getenv(name),
                cat("a number in [", lo, ", ", hi, "]").c_str(), context);
  }
  out = x;
  return true;
}

bool env_flag(const char* name, bool& out, const char* context) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    invalid_env(name, v, "an integer flag (0 = off, nonzero = on)", context);
  }
  out = x != 0;
  return true;
}

}  // namespace fx::core
