#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace fx::core {

double Welford::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double Welford::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  const double hi = copy[mid];
  if (copy.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace fx::core
