// Reduced-precision wire formats for the strided view exchange.
//
// The paper's efficiency tables show the transpose Alltoallv dominating
// FFTXlib's wall-clock, and its payload is pure double-precision complex
// data whose low mantissa bits carry no physics at typical SCF tolerances.
// A WireFormat narrows every double to fp32 or to bf16-style truncation
// (upper 16 bits of the float encoding, round-to-nearest-even) for the
// wire, halving or quartering the exchanged bytes.
//
// Because this runtime's "wire" is a peer-direct memcpy, the narrow
// encoding never needs to exist as a staging buffer: the conversion is a
// per-double quantize->dequantize round trip fused into the exchange's
// typed copy loops (see convert_runs in comm.cpp), which is bit-identical
// to encoding on the sender and decoding on the receiver.  Byte metrics
// (simmpi.ialltoallv.bytes, Comm::bytes_sent, CommEvent::bytes) count the
// *wire* size, so the savings are visible to every observer; the
// quantization error is tracked in ulps of the wire mantissa by the
// fftx.exchange.wire_max_ulp_err gauge.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace fx::mpi {

/// Precision of one double on the wire.  Fp64 is lossless; Fp32 rounds to
/// IEEE single (24-bit mantissa); Bf16 keeps the upper 16 bits of the
/// single encoding (8-bit mantissa, fp32's exponent range).
enum class WireFormat : std::uint8_t { Fp64 = 0, Fp32 = 1, Bf16 = 2 };

/// Human-readable name: "fp64", "fp32", "bf16".
const char* to_string(WireFormat f);

/// Parses "fp64" / "fp32" / "bf16"; returns false (out untouched) on
/// anything else.
bool parse_wire_format(const char* s, WireFormat& out);

/// Process-wide default from FFTX_WIRE_PRECISION (read once; unset or
/// unparsable means Fp64).
WireFormat default_wire_format();

/// Bytes one double occupies on the wire.
constexpr std::size_t wire_scalar_bytes(WireFormat f) {
  return f == WireFormat::Fp64 ? 8 : f == WireFormat::Fp32 ? 4 : 2;
}

/// Machine epsilon of the wire mantissa (0 for the lossless Fp64): 2^-23
/// for fp32, 2^-7 for bf16.  The documented round-trip bound is 0.5 ulp
/// for fp32 and 0.51 ulp for bf16 (double rounding through float costs at
/// most an extra 2^-24 relative).
constexpr double wire_rel_eps(WireFormat f) {
  return f == WireFormat::Fp64 ? 0.0
         : f == WireFormat::Fp32 ? 0x1.0p-23
                                 : 0x1.0p-7;
}

/// bf16 encoding of a double: narrow to float, then round-to-nearest-even
/// into the upper 16 bits.  NaN keeps a quiet payload instead of rounding
/// into infinity.
inline std::uint16_t bf16_encode(double x) {
  const float f = static_cast<float>(x);
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  if (std::isnan(f)) return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  return static_cast<std::uint16_t>((bits + 0x7FFFu + ((bits >> 16) & 1u)) >>
                                    16);
}

inline double bf16_decode(std::uint16_t h) {
  return static_cast<double>(
      std::bit_cast<float>(static_cast<std::uint32_t>(h) << 16));
}

/// fp32 encoding for digest purposes: the raw float bit pattern.
inline std::uint32_t fp32_encode(double x) {
  return std::bit_cast<std::uint32_t>(static_cast<float>(x));
}

/// What a double becomes after crossing the wire and being widened back.
/// Idempotent: wire_roundtrip(f, wire_roundtrip(f, x)) == the inner value,
/// which is what lets guarded digests hash re-encoded receive buffers.
inline double wire_roundtrip(WireFormat f, double x) {
  switch (f) {
    case WireFormat::Fp64:
      return x;
    case WireFormat::Fp32:
      return static_cast<double>(static_cast<float>(x));
    case WireFormat::Bf16:
      return bf16_decode(bf16_encode(x));
  }
  return x;
}

/// Quantization error of one round-tripped value in ulps of the wire
/// mantissa, with the denominator floored at the wire's smallest normal
/// (2^-126 for both narrow formats) so subnormal flushes do not divide by
/// ~zero.  0 for Fp64.
inline double wire_ulp_err(WireFormat f, double x, double q) {
  if (f == WireFormat::Fp64) return 0.0;
  const double scale = std::abs(x) > 0x1.0p-126 ? std::abs(x) : 0x1.0p-126;
  return std::abs(x - q) / (scale * wire_rel_eps(f));
}

}  // namespace fx::mpi
