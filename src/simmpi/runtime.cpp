#include "simmpi/runtime.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "simmpi/context.hpp"

namespace fx::mpi {

RunOptions RunOptions::from_env() {
  RunOptions opts;
  opts.faults = FaultPlan::from_env();
  opts.watchdog = WatchdogConfig::from_env();
  core::env_flag("FFTX_VALIDATE", opts.validate_collectives, "simmpi");
  return opts;
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& body) {
  run(nranks, RunOptions::from_env(), body);
}

void Runtime::run(int nranks, const RunOptions& opts,
                  const std::function<void(Comm&)>& body) {
  FX_CHECK(nranks >= 1, "need at least one rank");
  auto ctx = std::make_shared<detail::CommContext>(nranks);
  ctx->validate = opts.validate_collectives;
  ctx->world_ranks.resize(static_cast<std::size_t>(nranks));
  std::iota(ctx->world_ranks.begin(), ctx->world_ranks.end(), 0);
  if (opts.faults.any()) {
    ctx->faults = std::make_shared<FaultInjector>(opts.faults, nranks);
  }

  // The watchdog outlives the rank threads (destroyed after the join) so a
  // world that hangs gets diagnosed and unblocked rather than jamming the
  // join forever.
  std::mutex dog_mu;
  std::exception_ptr dog_error;
  std::unique_ptr<Watchdog> dog;
  if (opts.watchdog.enabled && opts.watchdog.window_ms > 0.0) {
    ctx->board = std::make_shared<ProgressBoard>();
    dog = std::make_unique<Watchdog>(
        opts.watchdog, ctx->board, [&](const std::string& diagnostic) {
          {
            std::lock_guard lock(dog_mu);
            dog_error =
                std::make_exception_ptr(core::DeadlockError(diagnostic));
          }
          ctx->poison(diagnostic);
        });
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::atomic<int> first_failed{-1};
  {
    std::vector<std::jthread> ranks;
    ranks.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      ranks.emplace_back([&, r] {
        try {
          Comm comm(ctx, r);
          body(comm);
        } catch (const std::exception& e) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          int expected = -1;
          first_failed.compare_exchange_strong(expected, r);
          ctx->poison(core::cat("rank ", r, " failed: ", e.what()));
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          int expected = -1;
          first_failed.compare_exchange_strong(expected, r);
          ctx->poison(core::cat("rank ", r,
                                " failed with a non-standard exception"));
        }
      });
    }
  }

  dog.reset();  // join the monitor before reading dog_error
  if (dog_error) std::rethrow_exception(dog_error);
  const int culprit = first_failed.load();
  if (culprit >= 0) {
    std::rethrow_exception(errors[static_cast<std::size_t>(culprit)]);
  }
}

}  // namespace fx::mpi
