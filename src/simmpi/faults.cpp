#include "simmpi/faults.hpp"

#include <cerrno>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

extern "C" {
extern char** environ;  // NOLINT: POSIX environment scan (typo detection)
}

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"

namespace fx::mpi {

namespace {

/// Stateless decision hash: uniform in [0, 1) from (seed, rank, index,
/// salt).  Thread-interleaving independent by construction.
double decide(std::uint64_t seed, int rank, std::uint64_t index,
              std::uint64_t salt) {
  std::uint64_t x = seed;
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(rank) + 1);
  x ^= 0xbf58476d1ce4e5b9ULL * (index + 1);
  x ^= 0x94d049bb133111ebULL * (salt + 1);
  const std::uint64_t h = core::splitmix64(x);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t decide_u64(std::uint64_t seed, int rank, std::uint64_t index,
                         std::uint64_t salt) {
  std::uint64_t x = seed ^ (0xd1b54a32d192ed03ULL * (salt + 1));
  x ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(rank) + 1);
  x ^= 0xbf58476d1ce4e5b9ULL * (index + 1);
  return core::splitmix64(x);
}

// Validated env parsing lives in core/env.hpp (this file's PR 7 helpers,
// generalized); these wrappers pin the subsystem context string.
constexpr const char* kEnvCtx = "fault injection";

void env_u64(const char* name, std::uint64_t& out) {
  core::env_u64(name, out, kEnvCtx);
}
void env_int(const char* name, int& out) { core::env_int(name, out, kEnvCtx); }
void env_double(const char* name, double& out) {
  core::env_double(name, out, kEnvCtx);
}
void env_prob(const char* name, double& out) {
  core::env_prob(name, out, kEnvCtx);
}
[[noreturn]] void invalid_env(const char* name, const char* value,
                              const char* expected) {
  core::invalid_env(name, value, expected, kEnvCtx);
}

/// Every variable name FaultPlan::from_env understands (suffix after
/// FFTX_FAULT_); a set FFTX_FAULT_* variable outside this list is a typo
/// that would otherwise silently run the chaos test fault-free.
constexpr const char* kKnownVars[] = {
    "SEED",       "DELAY_PROB",   "DELAY_US",      "CORRUPT_PROB",
    "CORRUPT_RANK", "CORRUPT_OP", "CORRUPT_COUNT", "STALL_RANK",
    "STALL_OP",   "STALL_MS",     "KILL_RANK",     "KILL_OP",
    "KILL_COUNT", "FLIP_RANK",    "FLIP_OP",       "FLIP_COUNT",
    "FLIP_PROB",  "KIND"};

void check_known_vars() {
  constexpr std::size_t kPrefixLen = 11;  // strlen("FFTX_FAULT_")
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    if (std::strncmp(*e, "FFTX_FAULT_", kPrefixLen) != 0) continue;
    const char* eq = std::strchr(*e, '=');
    if (eq == nullptr) continue;
    const std::string suffix(*e + kPrefixLen,
                             static_cast<std::size_t>(eq - (*e + kPrefixLen)));
    bool known = false;
    for (const char* k : kKnownVars) known = known || suffix == k;
    if (known) continue;
    std::string accepted;
    for (const char* k : kKnownVars) {
      if (!accepted.empty()) accepted += ", ";
      accepted += core::cat("FFTX_FAULT_", k);
    }
    throw core::Error(core::cat("fault injection: unknown variable FFTX_FAULT_",
                                suffix, "; accepted variables: ", accepted));
  }
}

}  // namespace

FaultPlan FaultPlan::from_env() {
  check_known_vars();
  FaultPlan plan;
  env_u64("FFTX_FAULT_SEED", plan.seed);
  env_prob("FFTX_FAULT_DELAY_PROB", plan.delay_prob);
  env_double("FFTX_FAULT_DELAY_US", plan.delay_us);
  env_prob("FFTX_FAULT_CORRUPT_PROB", plan.corrupt_prob);
  env_int("FFTX_FAULT_CORRUPT_RANK", plan.corrupt_rank);
  env_u64("FFTX_FAULT_CORRUPT_OP", plan.corrupt_op);
  env_int("FFTX_FAULT_CORRUPT_COUNT", plan.corrupt_count);
  env_int("FFTX_FAULT_STALL_RANK", plan.stall_rank);
  env_u64("FFTX_FAULT_STALL_OP", plan.stall_op);
  env_double("FFTX_FAULT_STALL_MS", plan.stall_ms);
  env_int("FFTX_FAULT_KILL_RANK", plan.kill_rank);
  env_u64("FFTX_FAULT_KILL_OP", plan.kill_op);
  env_int("FFTX_FAULT_KILL_COUNT", plan.kill_count);
  env_int("FFTX_FAULT_FLIP_RANK", plan.flip_rank);
  env_u64("FFTX_FAULT_FLIP_OP", plan.flip_op);
  env_int("FFTX_FAULT_FLIP_COUNT", plan.flip_count);
  env_prob("FFTX_FAULT_FLIP_PROB", plan.flip_prob);
  env_int("FFTX_FAULT_KIND", plan.only_kind);
  if (plan.only_kind >= 0 &&
      plan.only_kind > static_cast<int>(CommOpKind::Ialltoallv)) {
    invalid_env("FFTX_FAULT_KIND", std::getenv("FFTX_FAULT_KIND"),
                "a CommOpKind integer (0..13) or negative for all kinds");
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int nranks)
    : plan_(plan),
      op_count_(static_cast<std::size_t>(nranks)),
      corrupt_count_(static_cast<std::size_t>(nranks)),
      flip_count_(static_cast<std::size_t>(nranks)) {}

std::uint64_t FaultInjector::on_op(int world_rank, CommOpKind kind) {
  const auto r = static_cast<std::size_t>(world_rank);
  if (!kind_selected(kind)) {
    return op_count_[r].load(std::memory_order_relaxed);
  }
  const std::uint64_t index =
      op_count_[r].fetch_add(1, std::memory_order_relaxed);

  // Activation counters: a fault-injection run's metrics dump records
  // exactly what the injector did (cross-checkable against the seed).
  if (plan_.kill_rank >= 0 && world_rank >= plan_.kill_rank &&
      world_rank < plan_.kill_rank + plan_.kill_count &&
      index == plan_.kill_op) {
    static core::Counter& kills =
        core::MetricsRegistry::global().counter("simmpi.faults.kills");
    kills.add();
    throw core::FaultError(core::cat(
        "fault injection: killed rank ", world_rank, " at operation #", index,
        " (", to_string(kind), "), seed ", plan_.seed));
  }
  if (world_rank == plan_.stall_rank && index == plan_.stall_op &&
      plan_.stall_ms > 0.0) {
    static core::Counter& stalls =
        core::MetricsRegistry::global().counter("simmpi.faults.stalls");
    stalls.add();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(plan_.stall_ms));
  }
  if (plan_.delay_prob > 0.0 &&
      decide(plan_.seed, world_rank, index, /*salt=*/1) < plan_.delay_prob) {
    static core::Counter& delays =
        core::MetricsRegistry::global().counter("simmpi.faults.delays");
    delays.add();
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(plan_.delay_us));
  }
  return index;
}

bool FaultInjector::maybe_corrupt(
    int world_rank, CommOpKind kind, std::size_t bytes,
    const std::function<void(std::size_t, unsigned char)>& flip_bit) {
  if (bytes == 0 || !kind_selected(kind)) return false;
  const auto r = static_cast<std::size_t>(world_rank);
  const std::uint64_t index =
      corrupt_count_[r].fetch_add(1, std::memory_order_relaxed);
  const bool one_shot =
      world_rank == plan_.corrupt_rank && index >= plan_.corrupt_op &&
      index < plan_.corrupt_op +
                  static_cast<std::uint64_t>(plan_.corrupt_count);
  const bool random =
      plan_.corrupt_prob > 0.0 &&
      decide(plan_.seed, world_rank, index, /*salt=*/2) < plan_.corrupt_prob;
  if (!one_shot && !random) return false;
  const std::uint64_t bit =
      decide_u64(plan_.seed, world_rank, index, /*salt=*/3) % (bytes * 8);
  flip_bit(static_cast<std::size_t>(bit / 8),
           static_cast<unsigned char>(1U << (bit % 8)));
  corruptions_.fetch_add(1, std::memory_order_relaxed);
  static core::Counter& corruptions =
      core::MetricsRegistry::global().counter("simmpi.faults.corruptions");
  corruptions.add();
  return true;
}

bool FaultInjector::maybe_corrupt(int world_rank, CommOpKind kind, void* data,
                                  std::size_t bytes) {
  return maybe_corrupt(world_rank, kind, bytes,
                       [data](std::size_t byte, unsigned char mask) {
                         static_cast<unsigned char*>(data)[byte] ^= mask;
                       });
}

bool FaultInjector::maybe_flip(int world_rank, void* data,
                               std::size_t bytes) {
  if (!plan_.flips_active()) return false;
  const auto r = static_cast<std::size_t>(world_rank);
  // Count the opportunity before any bail-out: the per-rank index must
  // advance identically on every run so FFTX_FAULT_FLIP_OP is reproducible
  // even past ranks whose buffers happen to be empty at some stage.
  const std::uint64_t index =
      flip_count_[r].fetch_add(1, std::memory_order_relaxed);
  if (bytes == 0) return false;
  const bool one_shot =
      world_rank == plan_.flip_rank && index >= plan_.flip_op &&
      index < plan_.flip_op + static_cast<std::uint64_t>(plan_.flip_count);
  const bool random =
      plan_.flip_prob > 0.0 &&
      decide(plan_.seed, world_rank, index, /*salt=*/4) < plan_.flip_prob;
  if (!one_shot && !random) return false;
  const std::uint64_t bit =
      decide_u64(plan_.seed, world_rank, index, /*salt=*/5) % (bytes * 8);
  static_cast<unsigned char*>(data)[bit / 8] ^=
      static_cast<unsigned char>(1U << (bit % 8));
  flips_.fetch_add(1, std::memory_order_relaxed);
  static core::Counter& flips =
      core::MetricsRegistry::global().counter("simmpi.faults.flips");
  flips.add();
  return true;
}

std::uint64_t FaultInjector::ops_seen(int world_rank) const {
  return op_count_[static_cast<std::size_t>(world_rank)].load();
}

}  // namespace fx::mpi
