#include "simmpi/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <sstream>
#include <tuple>

#include "core/env.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"

namespace fx::mpi {

WatchdogConfig WatchdogConfig::from_env() {
  WatchdogConfig cfg;
  core::env_flag("FFTX_WATCHDOG", cfg.enabled, "watchdog");
  core::env_double_in("FFTX_WATCHDOG_MS", cfg.window_ms, 1.0, 1e9, "watchdog");
  return cfg;
}

ProgressBoard::Scope::Scope(ProgressBoard* board, const Blocked& info)
    : board_(board) {
  if (board_ == nullptr) return;
  std::lock_guard lock(board_->mu_);
  token_ = board_->next_token_++;
  board_->blocked_.emplace(token_, info);
}

ProgressBoard::Scope::~Scope() {
  if (board_ == nullptr) return;
  std::lock_guard lock(board_->mu_);
  board_->blocked_.erase(token_);
}

std::vector<ProgressBoard::Blocked> ProgressBoard::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<Blocked> out;
  out.reserve(blocked_.size());
  for (const auto& [token, info] : blocked_) out.push_back(info);
  return out;
}

std::string describe_deadlock(const std::vector<ProgressBoard::Blocked>& all,
                              double window_ms) {
  // Group blocked waits per collective instance (comm, kind, tag, seq):
  // every rank that arrived at a hanging instance is blocked in it, so the
  // group *is* the arrived set and its complement the missing set.
  std::map<std::tuple<int, int, int, std::uint64_t>,
           std::vector<ProgressBoard::Blocked>>
      groups;
  for (const auto& b : all) {
    groups[{b.comm_id, static_cast<int>(b.kind), b.tag, b.seq}].push_back(b);
  }

  std::ostringstream os;
  os << "deadlock detected: no communicator progress for "
     << core::fixed(window_ms / 1000.0, 3) << " s; " << all.size()
     << " blocked wait(s) across " << groups.size() << " operation(s):";
  for (const auto& [key, members] : groups) {
    const auto& head = members.front();
    std::set<int> waiting_local;
    std::set<int> waiting_world;
    for (const auto& b : members) {
      waiting_local.insert(b.comm_rank);
      if (b.world_rank >= 0) waiting_world.insert(b.world_rank);
    }
    os << "\n  " << to_string(head.kind) << "(tag " << head.tag << ", seq "
       << head.seq << ") on comm " << head.comm_id << " (size "
       << head.comm_size << "): waiting local ranks {";
    bool first = true;
    for (int r : waiting_local) {
      os << (first ? "" : ", ") << r;
      first = false;
    }
    os << "}";
    if (!waiting_world.empty()) {
      os << " (world {";
      first = true;
      for (int r : waiting_world) {
        os << (first ? "" : ", ") << r;
        first = false;
      }
      os << "})";
    }
    os << ", missing local ranks {";
    first = true;
    for (int r = 0; r < head.comm_size; ++r) {
      if (waiting_local.contains(r)) continue;
      os << (first ? "" : ", ") << r;
      first = false;
    }
    os << "}";
  }
  return os.str();
}

Watchdog::Watchdog(WatchdogConfig cfg, std::shared_ptr<ProgressBoard> board,
                   std::function<void(const std::string&)> on_deadlock)
    : cfg_(cfg),
      board_(std::move(board)),
      on_deadlock_(std::move(on_deadlock)),
      thread_([this](const std::stop_token& stop) { monitor(stop); }) {}

Watchdog::~Watchdog() {
  thread_.request_stop();
  cv_.notify_all();  // wake the monitor's wait_for immediately
}

void Watchdog::monitor(const std::stop_token& stop) {
  using namespace std::chrono;
  const auto poll = duration<double, std::milli>(
      std::max(1.0, cfg_.window_ms / 4.0));
  std::uint64_t last_ops = board_->ops();
  double last_progress = core::WallTimer::now();

  std::unique_lock lock(mu_);
  while (!stop.stop_requested()) {
    cv_.wait_for(lock, stop, poll, [] { return false; });
    if (stop.stop_requested()) return;

    const std::uint64_t ops = board_->ops();
    const double now = core::WallTimer::now();
    const auto blocked = board_->snapshot();
    if (ops != last_ops || blocked.empty()) {
      // Progress resumed.  If the quiet period had already crossed half the
      // window, the run was drifting toward a watchdog abort -- count it so
      // metrics reveal near-deadlocks that never quite fire.
      if (ops != last_ops && now - last_progress >= cfg_.window_ms / 2000.0) {
        const double quiet_ms = (now - last_progress) * 1000.0;
        auto& reg = core::MetricsRegistry::global();
        static core::Counter& near_misses =
            reg.counter("simmpi.watchdog.near_misses");
        near_misses.add();
        static core::Gauge& worst_quiet =
            reg.gauge("simmpi.watchdog.near_miss_quiet_ms");
        worst_quiet.max_of(quiet_ms);
        core::emit_instant(core::cat("watchdog near-miss: quiet ",
                                     core::fixed(quiet_ms, 1), " ms of ",
                                     core::fixed(cfg_.window_ms, 1),
                                     " ms window"));
        core::emit_incident(core::cat("watchdog near-miss: quiet ",
                                      core::fixed(quiet_ms, 1), " ms"));
      }
      last_ops = ops;
      last_progress = now;
      continue;
    }
    // No operation completed since the last poll and at least one wait is
    // pending.  Fire only when the quiet period spans the window AND some
    // wait has been blocked for the whole window (so a long compute phase
    // with a briefly-parked peer does not trip it).
    const double window_s = cfg_.window_ms / 1000.0;
    const bool any_old =
        std::ranges::any_of(blocked, [&](const ProgressBoard::Blocked& b) {
          return now - b.since >= window_s;
        });
    if (now - last_progress >= window_s && any_old) {
      on_deadlock_(describe_deadlock(blocked, cfg_.window_ms));
      return;
    }
  }
}

}  // namespace fx::mpi
