#include "simmpi/wire.hpp"

#include <cstdlib>
#include <cstring>

#include "core/env.hpp"

namespace fx::mpi {

const char* to_string(WireFormat f) {
  switch (f) {
    case WireFormat::Fp64:
      return "fp64";
    case WireFormat::Fp32:
      return "fp32";
    case WireFormat::Bf16:
      return "bf16";
  }
  return "?";
}

bool parse_wire_format(const char* s, WireFormat& out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "fp64") == 0) {
    out = WireFormat::Fp64;
    return true;
  }
  if (std::strcmp(s, "fp32") == 0) {
    out = WireFormat::Fp32;
    return true;
  }
  if (std::strcmp(s, "bf16") == 0) {
    out = WireFormat::Bf16;
    return true;
  }
  return false;
}

WireFormat default_wire_format() {
  static const WireFormat f = [] {
    WireFormat w = WireFormat::Fp64;
    const char* v = std::getenv("FFTX_WIRE_PRECISION");
    if (v != nullptr && *v != '\0' && !parse_wire_format(v, w)) {
      core::invalid_env("FFTX_WIRE_PRECISION", v, "fp64|fp32|bf16", "wire");
    }
    return w;
  }();
  return f;
}

}  // namespace fx::mpi
