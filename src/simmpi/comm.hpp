// In-process message-passing runtime ("simulated MPI").
//
// The paper runs FFTXlib as N MPI ranks on one KNL node; intra-node MPI is
// shared-memory message passing, which this module reproduces directly:
// every rank is a std::thread, a communicator is a shared synchronization
// context, and collectives move bytes between the ranks' buffers.  What the
// analysis (and the KNL model) consume is the *communication pattern* --
// who talks to whom, how many bytes, on which sub-communicator -- and that
// is preserved exactly.
//
// One deliberate extension over MPI: collectives take a `tag`.  Two
// collectives with different tags on the same communicator match
// independently, so dynamically-scheduled tasks may issue them in any order
// (the OmpSs pipeline tags collectives by band index).  Within one tag,
// per-rank call order defines matching, exactly like MPI.  Concurrent
// same-tag collectives from several threads of one rank are a contract
// violation.
//
// All waiting is condition-variable based (never spinning): ranks routinely
// outnumber host cores.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "simmpi/wire.hpp"

namespace fx::mpi {

/// Reduction operators for allreduce.
enum class ReduceOp { Sum, Max, Min };

/// Collective/point-to-point kinds, reported to observers and recorded in
/// traces (the Fig 3 "MPI call" timeline colors by this).
enum class CommOpKind {
  Barrier,
  Bcast,
  Allreduce,
  Allgather,
  Alltoall,
  Alltoallv,
  Split,
  Send,
  Recv,
  Gather,
  Scatter,
  Reduce,
  // Appended (not inserted): the integer values above are serialized in
  // traces and matched by FFTX_FAULT_KIND, so they must stay stable.
  Ialltoall,
  Ialltoallv,
};

/// Human-readable name, e.g. "Alltoallv".
const char* to_string(CommOpKind kind);

/// One completed communication operation, as seen by one rank.
struct CommEvent {
  CommOpKind kind;
  int comm_id;       ///< unique id of the communicator (trace timeline)
  int comm_size;
  int tag;
  std::size_t bytes; ///< payload bytes this rank sent (or received for Recv)
  double t_begin;    ///< wall-clock seconds (core::WallTimer::now())
  double t_end;
};

/// Callback invoked synchronously by the rank that executed the operation.
using CommObserver = std::function<void(const CommEvent&)>;

class FaultInjector;  // faults.hpp (which includes this header)

/// One strided run of a scatter-gather exchange view: elements
/// offset + i*stride of the base pointer, for i in [0, len).  All fields
/// are in elements of the exchange's elem_size.
struct SegRun {
  std::size_t offset;
  std::size_t len;
  std::size_t stride;
};

/// Per-peer view: the runs describing what one peer sends (or where one
/// peer's data lands), traversed in order.  Views are copied at post time,
/// so callers may build them in temporaries.
using SegView = std::span<const SegRun>;

/// Total elements covered by a view.
[[nodiscard]] inline std::size_t seg_elems(SegView view) {
  std::size_t n = 0;
  for (const SegRun& r : view) n += r.len;
  return n;
}

namespace detail {
class CommContext;
struct RankState;
struct RequestState;
}  // namespace detail

/// Handle to a nonblocking operation.  Default-constructed requests are
/// complete.  Copyable; all copies refer to the same operation.
class Request {
 public:
  Request() = default;

  /// Blocks until the operation completed (no-op if already done).
  void wait();
  /// Non-blocking completion poll.
  [[nodiscard]] bool test() const;

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Handle to a communicator, specific to one rank.  Cheap to copy; copies
/// share the per-rank matching state.  Thread-safe for concurrent
/// collectives with distinct tags (see file comment).
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  /// Globally unique communicator id (stable across ranks).
  [[nodiscard]] int id() const;

  // --- Collectives (every rank of the communicator must call) ---

  void barrier();

  /// Broadcasts `bytes` bytes from `root`'s buffer into every other rank's.
  void bcast_bytes(void* data, std::size_t bytes, int root, int tag = 0);

  /// Element-wise reduction of `count` elements of type T over all ranks;
  /// every rank receives the result.  send and recv may alias.
  template <typename T>
  void allreduce(const T* send, T* recv, std::size_t count, ReduceOp op,
                 int tag = 0);

  /// Gathers each rank's `bytes`-byte block; rank r's block lands at offset
  /// r*bytes of every rank's recv buffer.
  void allgather_bytes(const void* send, std::size_t bytes, void* recv,
                       int tag = 0);

  /// Rooted gather: blocks land at the root only (recv ignored elsewhere).
  void gather_bytes(const void* send, std::size_t bytes, void* recv, int root,
                    int tag = 0);

  /// Rooted scatter: the root's buffer holds size() blocks of `bytes`;
  /// rank r receives block r.
  void scatter_bytes(const void* send, std::size_t bytes, void* recv,
                     int root, int tag = 0);

  /// Rooted element-wise reduction; only the root's recv is written.
  template <typename T>
  void reduce(const T* send, T* recv, std::size_t count, ReduceOp op,
              int root, int tag = 0);

  /// Personalized exchange: rank r sends bytes_per_rank bytes starting at
  /// send + p*bytes_per_rank to each peer p, receiving likewise.
  void alltoall_bytes(const void* send, void* recv, std::size_t bytes_per_rank,
                      int tag = 0);

  /// Variable-size personalized exchange (element-typed offsets/counts).
  /// scounts[p]/sdispls[p]: elements sent to p from send + sdispls[p]*elem.
  /// rcounts[p]/rdispls[p]: elements received from p.  Each pair's counts
  /// must agree (checked).
  void alltoallv_bytes(const void* send, const std::size_t* scounts,
                       const std::size_t* sdispls, void* recv,
                       const std::size_t* rcounts, const std::size_t* rdispls,
                       std::size_t elem_size, int tag = 0);

  /// Strided scatter-gather exchange: sends the elements of svuews[p]
  /// (relative to `send_base`) to peer p and receives peer q's payload into
  /// rviews[q] (relative to `recv_base`), both traversed in run order.
  /// Element streams must agree pairwise in length (checked).  Blocking;
  /// equivalent to ialltoallv_view(...).wait().
  ///
  /// A non-Fp64 `wire` format narrows every double of the payload to the
  /// wire precision in flight (elem_size must then be a whole number of
  /// doubles); all ranks must pass the same format (checked pairwise).
  /// Byte accounting and CommEvents count the wire size, and the largest
  /// quantization error feeds the fftx.exchange.wire_max_ulp_err gauge.
  void alltoallv_view(const void* send_base, std::span<const SegView> sviews,
                      void* recv_base, std::span<const SegView> rviews,
                      std::size_t elem_size, int tag = 0,
                      WireFormat wire = WireFormat::Fp64);

  // --- Nonblocking collectives ---
  //
  // Posting registers this rank's buffers and returns immediately; no
  // global rendezvous happens until wait()/test().  Progress runs in the
  // waiter: once every rank of the communicator has posted the matching
  // operation, each waiter pulls its own receive payload directly from the
  // peers' send buffers (peer-direct copies, no barrier).  A request
  // completes only after *every* rank has pulled, so send buffers must stay
  // valid until the local wait() returns -- the same guarantee the blocking
  // collectives give.  Matching follows the blocking rules: (kind, tag,
  // per-rank sequence); several nonblocking exchanges may be in flight on
  // one tag as long as all ranks post them in the same order.

  /// Nonblocking alltoall_bytes.  Buffers (send, recv) must stay valid and
  /// unmodified until the returned request completes.
  [[nodiscard]] Request ialltoall_bytes(const void* send, void* recv,
                                        std::size_t bytes_per_rank,
                                        int tag = 0);

  /// Nonblocking alltoallv_bytes.  The count/displacement arrays are copied
  /// at post time; the payload buffers must stay valid until completion.
  [[nodiscard]] Request ialltoallv_bytes(
      const void* send, const std::size_t* scounts,
      const std::size_t* sdispls, void* recv, const std::size_t* rcounts,
      const std::size_t* rdispls, std::size_t elem_size, int tag = 0);

  /// Nonblocking alltoallv_view.  The views are copied at post time; the
  /// payload regions they describe must stay valid until completion.
  /// `wire` behaves as in alltoallv_view.
  [[nodiscard]] Request ialltoallv_view(const void* send_base,
                                        std::span<const SegView> sviews,
                                        void* recv_base,
                                        std::span<const SegView> rviews,
                                        std::size_t elem_size, int tag = 0,
                                        WireFormat wire = WireFormat::Fp64);

  /// Partitions the communicator: ranks passing the same color form a new
  /// communicator, ordered by (key, old rank).  Collective over all ranks.
  [[nodiscard]] Comm split(int color, int key, int tag = 0) const;

  // --- Fault recovery (ULFM-style revoke / agree / shrink) ---
  //
  // Protocol: when a rank fails survivably, someone (typically the failing
  // rank, or the first survivor to notice) calls revoke(); every pending
  // and future ordinary operation on this communicator and its split
  // children then unwinds with core::RevokedError.  A rank that is truly
  // gone calls mark_dead() and stops using the communicator; every other
  // rank calls agree() and/or shrink(), which complete once each rank has
  // either arrived or been declared dead.  The repair calls are exempt
  // from poisoning and fault injection; they are single-flight (at most
  // one shrink and one agree in progress per communicator).

  /// Marks this communicator and its split children revoked-for-repair.
  /// Idempotent; the first recorded reason wins.
  void revoke(const std::string& reason = "communicator revoked for repair");

  /// Declares this rank dead: it will not participate in any further
  /// operation (including shrink/agree) on this communicator.
  void mark_dead();

  /// Fault-tolerant agreement: returns the minimum of the values
  /// contributed by all surviving ranks.  Works on a revoked communicator.
  [[nodiscard]] long long agree(long long value);

  /// Builds and returns the survivor communicator: the ranks that call
  /// shrink, renumbered densely in old-rank order.  The result is a fresh,
  /// healthy communicator inheriting the fault injector, progress board,
  /// validator switch, and world-rank mapping; it is NOT a child of this
  /// one (a later revoke here cannot poison it).  Works on a revoked
  /// communicator.
  [[nodiscard]] Comm shrink();

  /// True once revoke() (or a revoking peer) marked this communicator.
  [[nodiscard]] bool is_revoked() const;

  /// Ranks declared dead so far.
  [[nodiscard]] int num_dead() const;

  // --- Point-to-point (buffered send; matching by (src, dst, tag)) ---

  void send_bytes(int dst, const void* data, std::size_t bytes, int tag = 0);
  void recv_bytes(int src, void* data, std::size_t bytes, int tag = 0);

  /// Nonblocking buffered send: the payload is captured at the call, so
  /// the request is complete immediately (returned for symmetry).
  Request isend_bytes(int dst, const void* data, std::size_t bytes,
                      int tag = 0);
  /// Nonblocking receive: posts the destination buffer; the request
  /// completes when a matching message is (or becomes) available.  The
  /// buffer must stay valid until wait()/test() reports completion.
  Request irecv_bytes(int src, void* data, std::size_t bytes, int tag = 0);

  // --- Typed convenience wrappers ---

  template <typename T>
  void alltoall(std::span<const T> send, std::span<T> recv, int tag = 0) {
    FX_CHECK(send.size() == recv.size());
    FX_CHECK(send.size() % static_cast<std::size_t>(size()) == 0);
    alltoall_bytes(send.data(), recv.data(),
                   send.size() / static_cast<std::size_t>(size()) * sizeof(T),
                   tag);
  }

  template <typename T>
  void alltoallv(const T* send, const std::size_t* scounts,
                 const std::size_t* sdispls, T* recv,
                 const std::size_t* rcounts, const std::size_t* rdispls,
                 int tag = 0) {
    alltoallv_bytes(send, scounts, sdispls, recv, rcounts, rdispls, sizeof(T),
                    tag);
  }

  template <typename T>
  void send(int dst, std::span<const T> data, int tag = 0) {
    send_bytes(dst, data.data(), data.size_bytes(), tag);
  }
  template <typename T>
  void recv(int src, std::span<T> data, int tag = 0) {
    recv_bytes(src, data.data(), data.size_bytes(), tag);
  }

  // --- Instrumentation ---

  /// Installs an observer receiving a CommEvent after every operation this
  /// rank executes on this communicator (and on communicators split from
  /// it).  Pass nullptr to remove.
  void set_observer(CommObserver observer);

  /// Total payload bytes this rank has sent through this communicator.
  [[nodiscard]] std::size_t bytes_sent() const;

  /// The world-shared fault injector, or nullptr when injection is off.
  /// Compute layers hook their own fault sites into the same deterministic
  /// schedule this way (the FFT pipeline's ABFT flip opportunities).  The
  /// pointer stays valid for the communicator's lifetime.
  [[nodiscard]] FaultInjector* fault_injector() const;

  /// This rank's original world rank: stable across splits and shrinks
  /// (identity for communicators built outside Runtime::run), so
  /// deterministic per-rank fault schedules survive recovery.
  [[nodiscard]] int world_rank() const;

 private:
  friend class Runtime;
  friend class CommTestPeer;
  Comm(std::shared_ptr<detail::CommContext> ctx, int rank);

  void allreduce_bytes(const void* send, void* recv, std::size_t count,
                       std::size_t elem_size,
                       void (*combine)(void*, const void*, std::size_t),
                       int tag);
  void reduce_bytes(const void* send, void* recv, std::size_t count,
                    std::size_t elem_size,
                    void (*combine)(void*, const void*, std::size_t), int root,
                    int tag);
  Request post_recv(int src, void* data, std::size_t bytes, int tag);
  Request post_nb_exchange(CommOpKind kind, const void* send_base,
                           std::span<const SegView> sviews, void* recv_base,
                           std::span<const SegView> rviews,
                           std::size_t elem_size, int tag, WireFormat wire);

  std::shared_ptr<detail::CommContext> ctx_;
  std::shared_ptr<detail::RankState> rank_state_;
  int rank_ = 0;
};

// --- template implementation ---

namespace detail {
template <typename T, ReduceOp OP>
void combine_fn(void* acc, const void* in, std::size_t count) {
  auto* a = static_cast<T*>(acc);
  const auto* b = static_cast<const T*>(in);
  for (std::size_t i = 0; i < count; ++i) {
    if constexpr (OP == ReduceOp::Sum) {
      a[i] += b[i];
    } else if constexpr (OP == ReduceOp::Max) {
      if (b[i] > a[i]) a[i] = b[i];
    } else {
      if (b[i] < a[i]) a[i] = b[i];
    }
  }
}
}  // namespace detail

namespace detail {
template <typename T>
auto combine_for(ReduceOp op) {
  void (*fn)(void*, const void*, std::size_t) = nullptr;
  switch (op) {
    case ReduceOp::Sum:
      fn = combine_fn<T, ReduceOp::Sum>;
      break;
    case ReduceOp::Max:
      fn = combine_fn<T, ReduceOp::Max>;
      break;
    case ReduceOp::Min:
      fn = combine_fn<T, ReduceOp::Min>;
      break;
  }
  return fn;
}
}  // namespace detail

template <typename T>
void Comm::allreduce(const T* send, T* recv, std::size_t count, ReduceOp op,
                     int tag) {
  allreduce_bytes(send, recv, count, sizeof(T), detail::combine_for<T>(op),
                  tag);
}

template <typename T>
void Comm::reduce(const T* send, T* recv, std::size_t count, ReduceOp op,
                  int root, int tag) {
  reduce_bytes(send, recv, count, sizeof(T), detail::combine_for<T>(op), root,
               tag);
}

}  // namespace fx::mpi
