#include "simmpi/comm.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "core/timer.hpp"
#include "simmpi/runtime.hpp"

namespace fx::mpi {

const char* to_string(CommOpKind kind) {
  switch (kind) {
    case CommOpKind::Barrier:
      return "Barrier";
    case CommOpKind::Bcast:
      return "Bcast";
    case CommOpKind::Allreduce:
      return "Allreduce";
    case CommOpKind::Allgather:
      return "Allgather";
    case CommOpKind::Alltoall:
      return "Alltoall";
    case CommOpKind::Alltoallv:
      return "Alltoallv";
    case CommOpKind::Split:
      return "Split";
    case CommOpKind::Send:
      return "Send";
    case CommOpKind::Recv:
      return "Recv";
    case CommOpKind::Gather:
      return "Gather";
    case CommOpKind::Scatter:
      return "Scatter";
    case CommOpKind::Reduce:
      return "Reduce";
  }
  return "?";
}

namespace detail {

namespace {
constexpr const char* kAbortMessage =
    "communicator aborted: a peer rank failed";
}  // namespace

/// Identity of one collective instance: kind + tag disambiguate concurrent
/// operations; seq orders repeated calls with the same (kind, tag).
struct OpKey {
  int kind;
  int tag;
  std::uint64_t seq;
  auto operator<=>(const OpKey&) const = default;
};

/// Shared state of one in-flight collective.  Lifetime: created by the
/// first arriver, erased from the map by the last finisher; participants
/// hold shared_ptr references across the copy phase.
struct OpState {
  explicit OpState(int size)
      : send(static_cast<std::size_t>(size), nullptr),
        recv(static_cast<std::size_t>(size), nullptr),
        pcounts(static_cast<std::size_t>(size), nullptr),
        pdispls(static_cast<std::size_t>(size), nullptr),
        scalar(static_cast<std::size_t>(size), 0),
        scalar2(static_cast<std::size_t>(size), 0),
        child_ctx(static_cast<std::size_t>(size)),
        child_rank(static_cast<std::size_t>(size), -1) {}

  int arrived = 0;
  int done = 0;
  bool ready = false;

  std::vector<const void*> send;
  std::vector<void*> recv;
  std::vector<const std::size_t*> pcounts;  // alltoallv send counts
  std::vector<const std::size_t*> pdispls;  // alltoallv send displs
  std::vector<std::size_t> scalar;          // per-rank scalar (bytes/color)
  std::vector<std::size_t> scalar2;         // second scalar (key)

  // Reduction:
  std::vector<char> acc;
  void (*combine)(void*, const void*, std::size_t) = nullptr;
  std::size_t count = 0;
  std::size_t elem_size = 0;

  // Split results:
  std::vector<std::shared_ptr<CommContext>> child_ctx;
  std::vector<int> child_rank;
};

struct P2pKey {
  int src;
  int dst;
  int tag;
  auto operator<=>(const P2pKey&) const = default;
};

/// Completion flag of a nonblocking operation, synchronized through the
/// owning communicator's mutex/condvar.
struct RequestState {
  std::shared_ptr<CommContext> ctx;
  bool done = false;
};

/// A posted (not yet matched) nonblocking receive.
struct PendingRecv {
  void* data;
  std::size_t bytes;
  std::shared_ptr<RequestState> state;
};

class CommContext {
 public:
  explicit CommContext(int sz) : size(sz), id(next_id().fetch_add(1)) {}

  static std::atomic<int>& next_id() {
    static std::atomic<int> counter{0};
    return counter;
  }

  void abort() {
    std::vector<std::shared_ptr<CommContext>> kids;
    {
      std::lock_guard lock(mu);
      aborted = true;
      for (auto& w : children) {
        if (auto c = w.lock()) kids.push_back(std::move(c));
      }
      cv.notify_all();
    }
    for (auto& k : kids) k->abort();
  }

  const int size;
  const int id;

  std::mutex mu;
  std::condition_variable cv;
  bool aborted = false;

  // Barrier (untagged fast path).
  int bar_count = 0;
  std::uint64_t bar_gen = 0;

  std::map<OpKey, std::shared_ptr<OpState>> ops;
  std::map<P2pKey, std::deque<std::vector<char>>> mail;
  std::map<P2pKey, std::deque<PendingRecv>> posted;
  std::vector<std::weak_ptr<CommContext>> children;
};

/// Per-rank, per-communicator matching state, shared by Comm copies.
struct RankState {
  std::mutex mu;
  std::map<std::pair<int, int>, std::uint64_t> seq;
  CommObserver observer;
  std::atomic<std::size_t> bytes_sent{0};

  std::uint64_t next_seq(int kind, int tag) {
    std::lock_guard lock(mu);
    return seq[{kind, tag}]++;
  }
  CommObserver get_observer() {
    std::lock_guard lock(mu);
    return observer;
  }
};

namespace {

/// Enters a collective: registers this rank's contribution via `setup`,
/// blocks until all ranks arrived (the last arriver runs `finalize` under
/// the lock before releasing everyone).  Returns the op for the copy phase.
template <typename Setup, typename Finalize>
std::shared_ptr<OpState> enter_collective(CommContext& ctx, const OpKey& key,
                                          Setup&& setup, Finalize&& finalize) {
  std::unique_lock lock(ctx.mu);
  FX_CHECK(!ctx.aborted, kAbortMessage);
  auto& slot = ctx.ops[key];
  if (!slot) slot = std::make_shared<OpState>(ctx.size);
  std::shared_ptr<OpState> op = slot;

  setup(*op);
  ++op->arrived;
  FX_ASSERT(op->arrived <= ctx.size, "collective over-subscribed");
  if (op->arrived == ctx.size) {
    finalize(*op);
    op->ready = true;
    ctx.cv.notify_all();
  } else {
    ctx.cv.wait(lock, [&] { return op->ready || ctx.aborted; });
    FX_CHECK(!ctx.aborted, kAbortMessage);
  }
  return op;
}

/// Leaves a collective after the copy phase: waits until every rank is done
/// so send buffers stay valid throughout; the last finisher retires the op.
void leave_collective(CommContext& ctx, const OpKey& key, OpState& op) {
  std::unique_lock lock(ctx.mu);
  ++op.done;
  if (op.done == ctx.size) {
    ctx.ops.erase(key);
    ctx.cv.notify_all();
  } else {
    ctx.cv.wait(lock, [&] { return op.done == ctx.size || ctx.aborted; });
    FX_CHECK(!ctx.aborted, kAbortMessage);
  }
}

}  // namespace
}  // namespace detail

using detail::CommContext;
using detail::OpKey;
using detail::OpState;

Comm::Comm(std::shared_ptr<detail::CommContext> ctx, int rank)
    : ctx_(std::move(ctx)),
      rank_state_(std::make_shared<detail::RankState>()),
      rank_(rank) {}

int Comm::size() const { return ctx_->size; }
int Comm::id() const { return ctx_->id; }

void Comm::set_observer(CommObserver observer) {
  std::lock_guard lock(rank_state_->mu);
  rank_state_->observer = std::move(observer);
}

std::size_t Comm::bytes_sent() const { return rank_state_->bytes_sent.load(); }

namespace {
struct EventScope {
  // Emits the CommEvent on destruction (after the operation completed).
  EventScope(detail::RankState& rs, CommOpKind kind, int comm_id,
             int comm_size, int tag, std::size_t bytes)
      : rs_(rs),
        event_{kind, comm_id, comm_size, tag, bytes, fx::core::WallTimer::now(),
               0.0} {
    rs_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }
  ~EventScope() {
    if (auto obs = rs_.get_observer()) {
      event_.t_end = fx::core::WallTimer::now();
      obs(event_);
    }
  }
  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;
  EventScope(EventScope&&) = delete;
  EventScope& operator=(EventScope&&) = delete;

  detail::RankState& rs_;
  CommEvent event_;
};
}  // namespace

void Comm::barrier() {
  EventScope ev(*rank_state_, CommOpKind::Barrier, id(), size(), 0, 0);
  std::unique_lock lock(ctx_->mu);
  FX_CHECK(!ctx_->aborted, detail::kAbortMessage);
  const std::uint64_t gen = ctx_->bar_gen;
  if (++ctx_->bar_count == ctx_->size) {
    ctx_->bar_count = 0;
    ++ctx_->bar_gen;
    ctx_->cv.notify_all();
  } else {
    ctx_->cv.wait(lock,
                  [&] { return ctx_->bar_gen != gen || ctx_->aborted; });
    FX_CHECK(!ctx_->aborted, detail::kAbortMessage);
  }
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Bcast, id(), size(), tag,
                rank_ == root ? bytes * static_cast<std::size_t>(size() - 1)
                              : 0);
  const OpKey key{static_cast<int>(CommOpKind::Bcast), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Bcast),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = data;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  // Copy phase: everyone but the root pulls the root's buffer.
  FX_CHECK(op->scalar[static_cast<std::size_t>(root)] == bytes,
           "bcast size mismatch across ranks");
  if (rank_ != root) {
    std::memcpy(data, op->send[static_cast<std::size_t>(root)], bytes);
  }
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::allreduce_bytes(const void* send, void* recv, std::size_t count,
                           std::size_t elem_size,
                           void (*combine)(void*, const void*, std::size_t),
                           int tag) {
  const std::size_t bytes = count * elem_size;
  EventScope ev(*rank_state_, CommOpKind::Allreduce, id(), size(), tag, bytes);
  const OpKey key{static_cast<int>(CommOpKind::Allreduce), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Allreduce), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
        o.combine = combine;
        o.count = count;
        o.elem_size = elem_size;
      },
      [&](OpState& o) {
        // Last arriver reduces while every peer is still blocked, so all
        // send buffers are stable.
        o.acc.resize(bytes);
        std::memcpy(o.acc.data(), o.send[0], bytes);
        for (int p = 1; p < ctx_->size; ++p) {
          FX_CHECK(o.scalar[static_cast<std::size_t>(p)] == bytes,
                   "allreduce size mismatch across ranks");
          o.combine(o.acc.data(), o.send[static_cast<std::size_t>(p)],
                    o.count);
        }
      });
  std::memcpy(recv, op->acc.data(), bytes);
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::allgather_bytes(const void* send, std::size_t bytes, void* recv,
                           int tag) {
  EventScope ev(*rank_state_, CommOpKind::Allgather, id(), size(), tag,
                bytes * static_cast<std::size_t>(size() - 1));
  const OpKey key{static_cast<int>(CommOpKind::Allgather), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Allgather), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    FX_CHECK(op->scalar[pu] == bytes, "allgather size mismatch across ranks");
    std::memcpy(out + pu * bytes, op->send[pu], bytes);
  }
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::gather_bytes(const void* send, std::size_t bytes, void* recv,
                        int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Gather, id(), size(), tag,
                rank_ == root ? 0 : bytes);
  const OpKey key{static_cast<int>(CommOpKind::Gather), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Gather),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  if (rank_ == root) {
    auto* out = static_cast<char*>(recv);
    for (int p = 0; p < size(); ++p) {
      const auto pu = static_cast<std::size_t>(p);
      FX_CHECK(op->scalar[pu] == bytes, "gather size mismatch across ranks");
      std::memcpy(out + pu * bytes, op->send[pu], bytes);
    }
  }
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::scatter_bytes(const void* send, std::size_t bytes, void* recv,
                         int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Scatter, id(), size(), tag,
                rank_ == root ? bytes * static_cast<std::size_t>(size() - 1)
                              : 0);
  const OpKey key{static_cast<int>(CommOpKind::Scatter), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Scatter),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;  // only the root's pointer is read
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  FX_CHECK(op->scalar[static_cast<std::size_t>(root)] == bytes,
           "scatter size mismatch across ranks");
  const auto* in =
      static_cast<const char*>(op->send[static_cast<std::size_t>(root)]);
  std::memcpy(recv, in + r * bytes, bytes);
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::reduce_bytes(const void* send, void* recv, std::size_t count,
                        std::size_t elem_size,
                        void (*combine)(void*, const void*, std::size_t),
                        int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  const std::size_t bytes = count * elem_size;
  EventScope ev(*rank_state_, CommOpKind::Reduce, id(), size(), tag,
                rank_ == root ? 0 : bytes);
  const OpKey key{static_cast<int>(CommOpKind::Reduce), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Reduce),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
        o.combine = combine;
        o.count = count;
      },
      [&](OpState& o) {
        o.acc.resize(bytes);
        std::memcpy(o.acc.data(), o.send[0], bytes);
        for (int p = 1; p < ctx_->size; ++p) {
          FX_CHECK(o.scalar[static_cast<std::size_t>(p)] == bytes,
                   "reduce size mismatch across ranks");
          o.combine(o.acc.data(), o.send[static_cast<std::size_t>(p)],
                    o.count);
        }
      });
  if (rank_ == root) {
    std::memcpy(recv, op->acc.data(), bytes);
  }
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::alltoall_bytes(const void* send, void* recv,
                          std::size_t bytes_per_rank, int tag) {
  FX_CHECK(send != recv, "alltoall buffers must not alias");
  EventScope ev(*rank_state_, CommOpKind::Alltoall, id(), size(), tag,
                bytes_per_rank * static_cast<std::size_t>(size()));
  const OpKey key{static_cast<int>(CommOpKind::Alltoall), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Alltoall),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes_per_rank;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    FX_CHECK(op->scalar[pu] == bytes_per_rank,
             "alltoall size mismatch across ranks");
    const auto* in = static_cast<const char*>(op->send[pu]);
    std::memcpy(out + pu * bytes_per_rank, in + r * bytes_per_rank,
                bytes_per_rank);
  }
  detail::leave_collective(*ctx_, key, *op);
}

void Comm::alltoallv_bytes(const void* send, const std::size_t* scounts,
                           const std::size_t* sdispls, void* recv,
                           const std::size_t* rcounts,
                           const std::size_t* rdispls, std::size_t elem_size,
                           int tag) {
  std::size_t sent_elems = 0;
  for (int p = 0; p < size(); ++p) {
    sent_elems += scounts[static_cast<std::size_t>(p)];
  }
  EventScope ev(*rank_state_, CommOpKind::Alltoallv, id(), size(), tag,
                sent_elems * elem_size);
  const OpKey key{static_cast<int>(CommOpKind::Alltoallv), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Alltoallv), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key,
      [&](OpState& o) {
        o.send[r] = send;
        o.pcounts[r] = scounts;
        o.pdispls[r] = sdispls;
        o.scalar[r] = elem_size;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    FX_CHECK(op->scalar[pu] == elem_size,
             "alltoallv element size mismatch across ranks");
    FX_CHECK(op->pcounts[pu][r] == rcounts[pu],
             "alltoallv count mismatch: peer's sendcount != my recvcount");
    const auto* in = static_cast<const char*>(op->send[pu]);
    std::memcpy(out + rdispls[pu] * elem_size,
                in + op->pdispls[pu][r] * elem_size,
                rcounts[pu] * elem_size);
  }
  detail::leave_collective(*ctx_, key, *op);
}

Comm Comm::split(int color, int key, int tag) const {
  EventScope ev(*rank_state_, CommOpKind::Split, id(), size(), tag, 0);
  const OpKey opkey{static_cast<int>(CommOpKind::Split), tag,
                    rank_state_->next_seq(static_cast<int>(CommOpKind::Split),
                                          tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, opkey,
      [&](OpState& o) {
        o.scalar[r] = static_cast<std::size_t>(color);
        o.scalar2[r] = static_cast<std::size_t>(key);
      },
      [&](OpState& o) {
        // Group ranks by color; order members by (key, world rank).
        std::map<std::size_t, std::vector<int>> groups;
        for (int p = 0; p < ctx_->size; ++p) {
          groups[o.scalar[static_cast<std::size_t>(p)]].push_back(p);
        }
        for (auto& [c, members] : groups) {
          // Keys were stored via size_t; recover the signed value so
          // negative keys order correctly.
          auto key_of = [&](int p) {
            return static_cast<long long>(
                static_cast<std::int64_t>(o.scalar2[static_cast<std::size_t>(p)]));
          };
          std::ranges::sort(members, [&](int a, int b) {
            return std::tuple(key_of(a), a) < std::tuple(key_of(b), b);
          });
          auto child =
              std::make_shared<CommContext>(static_cast<int>(members.size()));
          ctx_->children.push_back(child);
          for (std::size_t i = 0; i < members.size(); ++i) {
            const auto m = static_cast<std::size_t>(members[i]);
            o.child_ctx[m] = child;
            o.child_rank[m] = static_cast<int>(i);
          }
        }
      });
  Comm child(op->child_ctx[r], op->child_rank[r]);
  child.set_observer(rank_state_->get_observer());
  detail::leave_collective(*ctx_, opkey, *op);
  return child;
}

void Comm::send_bytes(int dst, const void* data, std::size_t bytes, int tag) {
  FX_CHECK(dst >= 0 && dst < size());
  EventScope ev(*rank_state_, CommOpKind::Send, id(), size(), tag, bytes);
  const detail::P2pKey key{rank_, dst, tag};
  std::lock_guard lock(ctx_->mu);
  FX_CHECK(!ctx_->aborted, detail::kAbortMessage);
  // Posted receives match first (there is never both a posted receive and
  // a queued message for one key); otherwise buffer the payload.
  auto posted_it = ctx_->posted.find(key);
  if (posted_it != ctx_->posted.end() && !posted_it->second.empty()) {
    detail::PendingRecv pending = std::move(posted_it->second.front());
    posted_it->second.pop_front();
    FX_CHECK(pending.bytes == bytes,
             "recv size does not match matching send");
    std::memcpy(pending.data, data, bytes);
    pending.state->done = true;
  } else {
    const auto* bytes_ptr = static_cast<const char*>(data);
    ctx_->mail[key].emplace_back(bytes_ptr, bytes_ptr + bytes);
  }
  ctx_->cv.notify_all();
}

Request Comm::isend_bytes(int dst, const void* data, std::size_t bytes,
                          int tag) {
  // Buffered semantics: the payload is captured here, so the operation is
  // already complete from the sender's point of view.
  send_bytes(dst, data, bytes, tag);
  return Request{};
}

Request Comm::post_recv(int src, void* data, std::size_t bytes, int tag) {
  FX_CHECK(src >= 0 && src < size());
  const detail::P2pKey key{src, rank_, tag};
  auto state = std::make_shared<detail::RequestState>();
  state->ctx = ctx_;
  std::lock_guard lock(ctx_->mu);
  FX_CHECK(!ctx_->aborted, detail::kAbortMessage);
  auto& queue = ctx_->mail[key];
  if (!queue.empty()) {
    FX_CHECK(queue.front().size() == bytes,
             "recv size does not match matching send");
    std::memcpy(data, queue.front().data(), bytes);
    queue.pop_front();
    state->done = true;
  } else {
    ctx_->posted[key].push_back(detail::PendingRecv{data, bytes, state});
  }
  return Request{state};
}

Request Comm::irecv_bytes(int src, void* data, std::size_t bytes, int tag) {
  EventScope ev(*rank_state_, CommOpKind::Recv, id(), size(), tag, bytes);
  return post_recv(src, data, bytes, tag);
}

void Comm::recv_bytes(int src, void* data, std::size_t bytes, int tag) {
  EventScope ev(*rank_state_, CommOpKind::Recv, id(), size(), tag, bytes);
  // A blocking receive is a posted receive awaited immediately; routing it
  // through the same path keeps one matching order for both flavors.
  post_recv(src, data, bytes, tag).wait();
}

void Request::wait() {
  if (!state_ || state_->done) return;
  auto& ctx = *state_->ctx;
  std::unique_lock lock(ctx.mu);
  ctx.cv.wait(lock, [&] { return state_->done || ctx.aborted; });
  FX_CHECK(!ctx.aborted, detail::kAbortMessage);
}

bool Request::test() const {
  if (!state_) return true;
  std::lock_guard lock(state_->ctx->mu);
  return state_->done;
}

void Runtime::run(int nranks, const std::function<void(Comm&)>& body) {
  FX_CHECK(nranks >= 1, "need at least one rank");
  auto ctx = std::make_shared<CommContext>(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  // The first rank to fail is the root cause; peers that die afterwards
  // only report the induced "communicator aborted" error.
  std::atomic<int> first_failed{-1};

  {
    std::vector<std::jthread> ranks;
    ranks.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      ranks.emplace_back([&, r] {
        try {
          Comm comm(ctx, r);
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          int expected = -1;
          first_failed.compare_exchange_strong(expected, r);
          ctx->abort();
        }
      });
    }
  }

  const int culprit = first_failed.load();
  if (culprit >= 0) {
    std::rethrow_exception(errors[static_cast<std::size_t>(culprit)]);
  }
}

}  // namespace fx::mpi
