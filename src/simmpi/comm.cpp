#include "simmpi/comm.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <sstream>
#include <tuple>
#include <utility>

#include "core/format.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "simmpi/context.hpp"

namespace fx::mpi {

const char* to_string(CommOpKind kind) {
  switch (kind) {
    case CommOpKind::Barrier:
      return "Barrier";
    case CommOpKind::Bcast:
      return "Bcast";
    case CommOpKind::Allreduce:
      return "Allreduce";
    case CommOpKind::Allgather:
      return "Allgather";
    case CommOpKind::Alltoall:
      return "Alltoall";
    case CommOpKind::Alltoallv:
      return "Alltoallv";
    case CommOpKind::Split:
      return "Split";
    case CommOpKind::Send:
      return "Send";
    case CommOpKind::Recv:
      return "Recv";
    case CommOpKind::Gather:
      return "Gather";
    case CommOpKind::Scatter:
      return "Scatter";
    case CommOpKind::Reduce:
      return "Reduce";
    case CommOpKind::Ialltoall:
      return "Ialltoall";
    case CommOpKind::Ialltoallv:
      return "Ialltoallv";
  }
  return "?";
}

namespace detail {

/// Per-rank, per-communicator matching state, shared by Comm copies.
struct RankState {
  std::mutex mu;
  std::map<std::pair<int, int>, std::uint64_t> seq;
  CommObserver observer;
  std::atomic<std::size_t> bytes_sent{0};

  std::uint64_t next_seq(int kind, int tag) {
    std::lock_guard lock(mu);
    return seq[{kind, tag}]++;
  }
  CommObserver get_observer() {
    std::lock_guard lock(mu);
    return observer;
  }
};

namespace {

/// World rank of `rank` in `ctx` (local rank when unknown, i.e. the
/// context was built outside Runtime::run).
int wrank(const CommContext& ctx, int rank) {
  return ctx.world_ranks.empty()
             ? rank
             : ctx.world_ranks[static_cast<std::size_t>(rank)];
}

/// Must hold ctx.mu.  Unwinds with the poisoning rank's error; a revoked
/// (repairable) communicator raises the RevokedError subclass so recovery
/// drivers can rendezvous in agree/shrink instead of tearing down.
void check_alive_locked(const CommContext& ctx) {
  if (ctx.aborted) {
    if (ctx.revoked) throw core::RevokedError(ctx.poison_reason);
    throw core::CommError(ctx.poison_reason);
  }
}

/// Fault-injection entry hook: may sleep (delay/stall) or throw
/// core::FaultError (kill).  Call before taking ctx.mu.
void inject(CommContext& ctx, int rank, CommOpKind kind) {
  if (ctx.faults) ctx.faults->on_op(wrank(ctx, rank), kind);
}

/// Fault-injection payload hook for received data.
void inject_corrupt(CommContext& ctx, int rank, CommOpKind kind, void* data,
                    std::size_t bytes) {
  if (ctx.faults) {
    ctx.faults->maybe_corrupt(wrank(ctx, rank), kind, data, bytes);
  }
}

void note_progress(CommContext& ctx) {
  if (ctx.board) ctx.board->op_completed();
}

ProgressBoard::Blocked blocked_info(const CommContext& ctx, int rank,
                                    CommOpKind kind, int tag,
                                    std::uint64_t seq) {
  return ProgressBoard::Blocked{wrank(ctx, rank), ctx.id,   ctx.size,
                                rank,             kind,     tag,
                                seq,              fx::core::WallTimer::now()};
}

/// Collective-matching validator.  Must hold ctx.mu; called before this
/// rank registers in its own op.  Two simultaneously-incomplete ops with
/// the same tag on one communicator can only arise when the ranks disagree
/// on the kind or the per-tag order of collectives (an incomplete op pins
/// every earlier same-tag op incomplete on all its participants), so raise
/// a structured error naming both sides instead of letting both sides hang.
/// Nonblocking collective kinds: posts return immediately, so an entry of
/// theirs staying incomplete while other collectives run is the *intended*
/// overlap, not a matching bug -- the validator exempts them both as the
/// entering op and as the pinned-incomplete witness.
bool is_nonblocking_kind(int kind) {
  return kind == static_cast<int>(CommOpKind::Ialltoall) ||
         kind == static_cast<int>(CommOpKind::Ialltoallv);
}

void validate_entry_locked(const CommContext& ctx, const OpKey& key,
                           int rank) {
  if (!ctx.validate || is_nonblocking_kind(key.kind)) return;
  for (const auto& [other_key, other] : ctx.ops) {
    if (other_key.tag != key.tag || other_key == key) continue;
    if (is_nonblocking_kind(other_key.kind)) continue;
    if (other->ready || other->arrived == 0) continue;
    std::ostringstream os;
    os << "collective mismatch on comm " << ctx.id << " (size " << ctx.size
       << "): rank " << rank << " (world " << wrank(ctx, rank) << ") entered "
       << to_string(static_cast<CommOpKind>(key.kind)) << "(tag " << key.tag
       << ", seq " << key.seq << ") while "
       << to_string(static_cast<CommOpKind>(other_key.kind)) << "(tag "
       << other_key.tag << ", seq " << other_key.seq
       << ") is still incomplete with arrived local ranks {";
    for (std::size_t i = 0; i < other->arrived_ranks.size(); ++i) {
      os << (i > 0 ? ", " : "") << other->arrived_ranks[i];
    }
    os << "} -- the ranks disagree on the kind or per-tag order of "
          "collectives";
    throw core::CommError(os.str());
  }
}

/// Enters a collective: registers this rank's contribution via `setup`,
/// blocks until all ranks arrived (the last arriver runs `finalize` under
/// the lock before releasing everyone).  Returns the op for the copy phase.
template <typename Setup, typename Finalize>
std::shared_ptr<OpState> enter_collective(CommContext& ctx, const OpKey& key,
                                          int rank, Setup&& setup,
                                          Finalize&& finalize) {
  std::unique_lock lock(ctx.mu);
  check_alive_locked(ctx);
  validate_entry_locked(ctx, key, rank);
  auto& slot = ctx.ops[key];
  if (!slot) slot = std::make_shared<OpState>(ctx.size);
  std::shared_ptr<OpState> op = slot;

  setup(*op);
  ++op->arrived;
  op->arrived_ranks.push_back(rank);
  FX_ASSERT(op->arrived <= ctx.size, "collective over-subscribed");
  if (op->arrived == ctx.size) {
    finalize(*op);
    op->ready = true;
    ctx.cv.notify_all();
  } else {
    ProgressBoard::Scope blocked(
        ctx.board.get(),
        blocked_info(ctx, rank, static_cast<CommOpKind>(key.kind), key.tag,
                     key.seq));
    ctx.cv.wait(lock, [&] { return op->ready || ctx.aborted; });
    check_alive_locked(ctx);
  }
  return op;
}

/// Leaves a collective after the copy phase: waits until every rank is done
/// so send buffers stay valid throughout; the last finisher retires the op.
void leave_collective(CommContext& ctx, const OpKey& key, int rank,
                      OpState& op) {
  {
    std::unique_lock lock(ctx.mu);
    ++op.done;
    if (op.done == ctx.size) {
      ctx.ops.erase(key);
      ctx.cv.notify_all();
    } else {
      ProgressBoard::Scope blocked(
          ctx.board.get(),
          blocked_info(ctx, rank, static_cast<CommOpKind>(key.kind), key.tag,
                       key.seq));
      ctx.cv.wait(lock, [&] { return op.done == ctx.size || ctx.aborted; });
      check_alive_locked(ctx);
    }
  }
  note_progress(ctx);
}

}  // namespace
}  // namespace detail

using detail::CommContext;
using detail::OpKey;
using detail::OpState;

Comm::Comm(std::shared_ptr<detail::CommContext> ctx, int rank)
    : ctx_(std::move(ctx)),
      rank_state_(std::make_shared<detail::RankState>()),
      rank_(rank) {}

int Comm::size() const { return ctx_->size; }
int Comm::id() const { return ctx_->id; }

void Comm::set_observer(CommObserver observer) {
  std::lock_guard lock(rank_state_->mu);
  rank_state_->observer = std::move(observer);
}

std::size_t Comm::bytes_sent() const { return rank_state_->bytes_sent.load(); }

FaultInjector* Comm::fault_injector() const { return ctx_->faults.get(); }

int Comm::world_rank() const { return detail::wrank(*ctx_, rank_); }

namespace {

// The transpose collectives are the paper's scaling limiter, so their
// volume and wait-time distributions are always-on metrics (lock-free
// records; resolved once per process).
struct AlltoallMetrics {
  fx::core::Counter& bytes;
  fx::core::Histogram& wait_us;
};

AlltoallMetrics& alltoall_metrics(CommOpKind kind) {
  auto& reg = fx::core::MetricsRegistry::global();
  static AlltoallMetrics a2a{reg.counter("simmpi.alltoall.bytes"),
                             reg.histogram("simmpi.alltoall.wait_us")};
  static AlltoallMetrics a2av{reg.counter("simmpi.alltoallv.bytes"),
                              reg.histogram("simmpi.alltoallv.wait_us")};
  return kind == CommOpKind::Alltoall ? a2a : a2av;
}

struct EventScope {
  // Emits the CommEvent on destruction (after the operation completed).
  EventScope(detail::RankState& rs, CommOpKind kind, int comm_id,
             int comm_size, int tag, std::size_t bytes)
      : rs_(rs),
        event_{kind, comm_id, comm_size, tag, bytes, fx::core::WallTimer::now(),
               0.0} {
    rs_.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }
  ~EventScope() {
    event_.t_end = fx::core::WallTimer::now();
    if (event_.kind == CommOpKind::Alltoall ||
        event_.kind == CommOpKind::Alltoallv) {
      AlltoallMetrics& m = alltoall_metrics(event_.kind);
      m.bytes.add(event_.bytes);
      m.wait_us.record((event_.t_end - event_.t_begin) * 1e6);
    }
    if (auto obs = rs_.get_observer()) {
      obs(event_);
    }
  }
  EventScope(const EventScope&) = delete;
  EventScope& operator=(const EventScope&) = delete;
  EventScope(EventScope&&) = delete;
  EventScope& operator=(EventScope&&) = delete;

  detail::RankState& rs_;
  CommEvent event_;
};

/// Lazy-message cross-rank size check: `mine` is this rank's expectation,
/// `theirs` what rank `peer` contributed.  Cold path builds the string.
void check_peer_bytes(const char* what, const detail::CommContext& ctx,
                      int rank, int peer, int tag, std::size_t mine,
                      std::size_t theirs) {
  if (mine == theirs) return;
  throw fx::core::CommError(fx::core::cat(
      what, " size mismatch on comm ", ctx.id, " (tag ", tag, "): rank ",
      rank, " (world ", detail::wrank(ctx, rank), ") expects ", mine,
      " B but rank ", peer, " (world ", detail::wrank(ctx, peer),
      ") contributed ", theirs, " B"));
}
}  // namespace

void Comm::barrier() {
  EventScope ev(*rank_state_, CommOpKind::Barrier, id(), size(), 0, 0);
  detail::inject(*ctx_, rank_, CommOpKind::Barrier);
  {
    std::unique_lock lock(ctx_->mu);
    detail::check_alive_locked(*ctx_);
    const std::uint64_t gen = ctx_->bar_gen;
    if (++ctx_->bar_count == ctx_->size) {
      ctx_->bar_count = 0;
      ++ctx_->bar_gen;
      ctx_->cv.notify_all();
    } else {
      ProgressBoard::Scope blocked(
          ctx_->board.get(),
          detail::blocked_info(*ctx_, rank_, CommOpKind::Barrier, 0, gen));
      ctx_->cv.wait(lock,
                    [&] { return ctx_->bar_gen != gen || ctx_->aborted; });
      detail::check_alive_locked(*ctx_);
    }
  }
  detail::note_progress(*ctx_);
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Bcast, id(), size(), tag,
                rank_ == root ? bytes * static_cast<std::size_t>(size() - 1)
                              : 0);
  detail::inject(*ctx_, rank_, CommOpKind::Bcast);
  const OpKey key{static_cast<int>(CommOpKind::Bcast), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Bcast),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = data;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  // Copy phase: everyone but the root pulls the root's buffer.
  check_peer_bytes("bcast", *ctx_, rank_, root, tag, bytes,
                   op->scalar[static_cast<std::size_t>(root)]);
  if (rank_ != root) {
    std::memcpy(data, op->send[static_cast<std::size_t>(root)], bytes);
    detail::inject_corrupt(*ctx_, rank_, CommOpKind::Bcast, data, bytes);
  }
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::allreduce_bytes(const void* send, void* recv, std::size_t count,
                           std::size_t elem_size,
                           void (*combine)(void*, const void*, std::size_t),
                           int tag) {
  const std::size_t bytes = count * elem_size;
  EventScope ev(*rank_state_, CommOpKind::Allreduce, id(), size(), tag, bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Allreduce);
  const OpKey key{static_cast<int>(CommOpKind::Allreduce), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Allreduce), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
        o.combine = combine;
        o.count = count;
        o.elem_size = elem_size;
      },
      [&](OpState& o) {
        // Last arriver reduces while every peer is still blocked, so all
        // send buffers are stable.
        o.acc.resize(bytes);
        std::memcpy(o.acc.data(), o.send[0], bytes);
        for (int p = 1; p < ctx_->size; ++p) {
          check_peer_bytes("allreduce", *ctx_, rank_, p, tag, bytes,
                           o.scalar[static_cast<std::size_t>(p)]);
          o.combine(o.acc.data(), o.send[static_cast<std::size_t>(p)],
                    o.count);
        }
      });
  std::memcpy(recv, op->acc.data(), bytes);
  detail::inject_corrupt(*ctx_, rank_, CommOpKind::Allreduce, recv, bytes);
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::allgather_bytes(const void* send, std::size_t bytes, void* recv,
                           int tag) {
  EventScope ev(*rank_state_, CommOpKind::Allgather, id(), size(), tag,
                bytes * static_cast<std::size_t>(size() - 1));
  detail::inject(*ctx_, rank_, CommOpKind::Allgather);
  const OpKey key{static_cast<int>(CommOpKind::Allgather), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Allgather), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    check_peer_bytes("allgather", *ctx_, rank_, p, tag, bytes,
                     op->scalar[pu]);
    std::memcpy(out + pu * bytes, op->send[pu], bytes);
  }
  detail::inject_corrupt(*ctx_, rank_, CommOpKind::Allgather, recv,
                         bytes * static_cast<std::size_t>(size()));
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::gather_bytes(const void* send, std::size_t bytes, void* recv,
                        int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Gather, id(), size(), tag,
                rank_ == root ? 0 : bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Gather);
  const OpKey key{static_cast<int>(CommOpKind::Gather), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Gather),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  if (rank_ == root) {
    auto* out = static_cast<char*>(recv);
    for (int p = 0; p < size(); ++p) {
      const auto pu = static_cast<std::size_t>(p);
      check_peer_bytes("gather", *ctx_, rank_, p, tag, bytes, op->scalar[pu]);
      std::memcpy(out + pu * bytes, op->send[pu], bytes);
    }
    detail::inject_corrupt(*ctx_, rank_, CommOpKind::Gather, recv,
                           bytes * static_cast<std::size_t>(size()));
  }
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::scatter_bytes(const void* send, std::size_t bytes, void* recv,
                         int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  EventScope ev(*rank_state_, CommOpKind::Scatter, id(), size(), tag,
                rank_ == root ? bytes * static_cast<std::size_t>(size() - 1)
                              : 0);
  detail::inject(*ctx_, rank_, CommOpKind::Scatter);
  const OpKey key{static_cast<int>(CommOpKind::Scatter), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Scatter),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;  // only the root's pointer is read
        o.scalar[r] = bytes;
      },
      [&](OpState&) {});
  check_peer_bytes("scatter", *ctx_, rank_, root, tag, bytes,
                   op->scalar[static_cast<std::size_t>(root)]);
  const auto* in =
      static_cast<const char*>(op->send[static_cast<std::size_t>(root)]);
  std::memcpy(recv, in + r * bytes, bytes);
  detail::inject_corrupt(*ctx_, rank_, CommOpKind::Scatter, recv, bytes);
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::reduce_bytes(const void* send, void* recv, std::size_t count,
                        std::size_t elem_size,
                        void (*combine)(void*, const void*, std::size_t),
                        int root, int tag) {
  FX_CHECK(root >= 0 && root < size());
  const std::size_t bytes = count * elem_size;
  EventScope ev(*rank_state_, CommOpKind::Reduce, id(), size(), tag,
                rank_ == root ? 0 : bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Reduce);
  const OpKey key{static_cast<int>(CommOpKind::Reduce), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Reduce),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes;
        o.combine = combine;
        o.count = count;
      },
      [&](OpState& o) {
        o.acc.resize(bytes);
        std::memcpy(o.acc.data(), o.send[0], bytes);
        for (int p = 1; p < ctx_->size; ++p) {
          check_peer_bytes("reduce", *ctx_, rank_, p, tag, bytes,
                           o.scalar[static_cast<std::size_t>(p)]);
          o.combine(o.acc.data(), o.send[static_cast<std::size_t>(p)],
                    o.count);
        }
      });
  if (rank_ == root) {
    std::memcpy(recv, op->acc.data(), bytes);
    detail::inject_corrupt(*ctx_, rank_, CommOpKind::Reduce, recv, bytes);
  }
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::alltoall_bytes(const void* send, void* recv,
                          std::size_t bytes_per_rank, int tag) {
  FX_CHECK(send != recv, "alltoall buffers must not alias");
  EventScope ev(*rank_state_, CommOpKind::Alltoall, id(), size(), tag,
                bytes_per_rank * static_cast<std::size_t>(size()));
  detail::inject(*ctx_, rank_, CommOpKind::Alltoall);
  const OpKey key{static_cast<int>(CommOpKind::Alltoall), tag,
                  rank_state_->next_seq(static_cast<int>(CommOpKind::Alltoall),
                                        tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.scalar[r] = bytes_per_rank;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    check_peer_bytes("alltoall", *ctx_, rank_, p, tag, bytes_per_rank,
                     op->scalar[pu]);
    const auto* in = static_cast<const char*>(op->send[pu]);
    std::memcpy(out + pu * bytes_per_rank, in + r * bytes_per_rank,
                bytes_per_rank);
  }
  detail::inject_corrupt(*ctx_, rank_, CommOpKind::Alltoall, recv,
                         bytes_per_rank * static_cast<std::size_t>(size()));
  detail::leave_collective(*ctx_, key, rank_, *op);
}

void Comm::alltoallv_bytes(const void* send, const std::size_t* scounts,
                           const std::size_t* sdispls, void* recv,
                           const std::size_t* rcounts,
                           const std::size_t* rdispls, std::size_t elem_size,
                           int tag) {
  FX_CHECK(send != recv, "alltoallv buffers must not alias");
  std::size_t sent_elems = 0;
  for (int p = 0; p < size(); ++p) {
    sent_elems += scounts[static_cast<std::size_t>(p)];
  }
  EventScope ev(*rank_state_, CommOpKind::Alltoallv, id(), size(), tag,
                sent_elems * elem_size);
  detail::inject(*ctx_, rank_, CommOpKind::Alltoallv);
  const OpKey key{static_cast<int>(CommOpKind::Alltoallv), tag,
                  rank_state_->next_seq(
                      static_cast<int>(CommOpKind::Alltoallv), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, key, rank_,
      [&](OpState& o) {
        o.send[r] = send;
        o.pcounts[r] = scounts;
        o.pdispls[r] = sdispls;
        o.scalar[r] = elem_size;
      },
      [&](OpState&) {});
  auto* out = static_cast<char*>(recv);
  std::size_t recv_end = 0;
  for (int p = 0; p < size(); ++p) {
    const auto pu = static_cast<std::size_t>(p);
    check_peer_bytes("alltoallv element", *ctx_, rank_, p, tag, elem_size,
                     op->scalar[pu]);
    if (op->pcounts[pu][r] != rcounts[pu]) {
      throw core::CommError(core::cat(
          "alltoallv count mismatch on comm ", id(), " (tag ", tag,
          "): rank ", p, " (world ", detail::wrank(*ctx_, p), ") sends ",
          op->pcounts[pu][r], " element(s) of ", elem_size, " B to rank ",
          rank_, " (world ", detail::wrank(*ctx_, rank_), "), which expects ",
          rcounts[pu], " element(s)"));
    }
    const auto* in = static_cast<const char*>(op->send[pu]);
    std::memcpy(out + rdispls[pu] * elem_size,
                in + op->pdispls[pu][r] * elem_size,
                rcounts[pu] * elem_size);
    recv_end = std::max(recv_end, (rdispls[pu] + rcounts[pu]) * elem_size);
  }
  detail::inject_corrupt(*ctx_, rank_, CommOpKind::Alltoallv, recv, recv_end);
  detail::leave_collective(*ctx_, key, rank_, *op);
}

Comm Comm::split(int color, int key, int tag) const {
  EventScope ev(*rank_state_, CommOpKind::Split, id(), size(), tag, 0);
  detail::inject(*ctx_, rank_, CommOpKind::Split);
  const OpKey opkey{static_cast<int>(CommOpKind::Split), tag,
                    rank_state_->next_seq(static_cast<int>(CommOpKind::Split),
                                          tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);
  auto op = detail::enter_collective(
      *ctx_, opkey, rank_,
      [&](OpState& o) {
        o.scalar[r] = static_cast<std::size_t>(color);
        o.scalar2[r] = static_cast<std::size_t>(key);
      },
      [&](OpState& o) {
        // Group ranks by color; order members by (key, world rank).
        std::map<std::size_t, std::vector<int>> groups;
        for (int p = 0; p < ctx_->size; ++p) {
          groups[o.scalar[static_cast<std::size_t>(p)]].push_back(p);
        }
        for (auto& [c, members] : groups) {
          // Keys were stored via size_t; recover the signed value so
          // negative keys order correctly.
          auto key_of = [&](int p) {
            return static_cast<long long>(
                static_cast<std::int64_t>(o.scalar2[static_cast<std::size_t>(p)]));
          };
          std::ranges::sort(members, [&](int a, int b) {
            return std::tuple(key_of(a), a) < std::tuple(key_of(b), b);
          });
          auto child =
              std::make_shared<CommContext>(static_cast<int>(members.size()));
          // Children inherit the world's hardening state so faults,
          // watchdog registration and poisoning span every communicator.
          child->faults = ctx_->faults;
          child->board = ctx_->board;
          child->validate = ctx_->validate;
          if (!ctx_->world_ranks.empty()) {
            child->world_ranks.reserve(members.size());
            for (int m : members) {
              child->world_ranks.push_back(
                  ctx_->world_ranks[static_cast<std::size_t>(m)]);
            }
          }
          ctx_->children.push_back(child);
          for (std::size_t i = 0; i < members.size(); ++i) {
            const auto m = static_cast<std::size_t>(members[i]);
            o.child_ctx[m] = child;
            o.child_rank[m] = static_cast<int>(i);
          }
        }
      });
  Comm child(op->child_ctx[r], op->child_rank[r]);
  child.set_observer(rank_state_->get_observer());
  detail::leave_collective(*ctx_, opkey, rank_, *op);
  return child;
}

// --- Fault recovery (revoke / mark_dead / agree / shrink) ---

namespace {

/// Core of the repair rendezvous shared by agree() and shrink(): completes
/// once every rank has either joined or been declared dead, so it works on
/// a revoked (poisoned) context.  Repair operations are exempt from the
/// alive check and from fault injection.  `join` folds this rank's
/// contribution in (under the lock; `first` is true for the round's first
/// arriver), `finish` runs exactly once when the round completes, and
/// `extract` reads this rank's result before the round is retired.
template <typename Join, typename Finish, typename Extract>
auto repair_rendezvous(detail::CommContext& ctx, detail::RepairState& st,
                       int rank, CommOpKind kind, Join&& join, Finish&& finish,
                       Extract&& extract) {
  std::unique_lock lock(ctx.mu);
  FX_CHECK(!ctx.dead[static_cast<std::size_t>(rank)],
           "a rank declared dead cannot join a repair collective");
  // A previous round may still be draining (ready but not yet retired by
  // its last participant); wait for its reset before joining the next one.
  ctx.cv.wait(lock, [&] { return !st.ready; });
  if (st.arrived == 0) {
    st.joined.assign(static_cast<std::size_t>(ctx.size), 0);
  }
  FX_CHECK(!st.joined[static_cast<std::size_t>(rank)],
           "rank entered a repair collective twice in one round");
  join(st, st.arrived == 0);
  st.joined[static_cast<std::size_t>(rank)] = 1;
  ++st.arrived;
  auto try_finish = [&] {
    if (!st.ready && st.arrived + ctx.ndead >= ctx.size) {
      finish(st);
      st.ready = true;
      ctx.cv.notify_all();
    }
  };
  try_finish();
  if (!st.ready) {
    // mark_dead() notifies the condvar, so a late death re-runs try_finish
    // from whichever waiter wakes first.
    ProgressBoard::Scope blocked(
        ctx.board.get(),
        detail::blocked_info(ctx, rank, kind, /*tag=*/-1, st.gen));
    ctx.cv.wait(lock, [&] {
      try_finish();
      return st.ready;
    });
  }
  auto result = extract(st);
  ++st.done;
  if (st.done == st.arrived) {
    detail::RepairState fresh;
    fresh.gen = st.gen + 1;
    st = std::move(fresh);
    ctx.cv.notify_all();
  }
  return result;
}

}  // namespace

void Comm::revoke(const std::string& reason) {
  ctx_->revoke(core::cat("comm ", id(), " revoked by rank ", rank_, " (world ",
                         detail::wrank(*ctx_, rank_), "): ", reason));
}

void Comm::mark_dead() {
  std::lock_guard lock(ctx_->mu);
  auto& flag = ctx_->dead[static_cast<std::size_t>(rank_)];
  if (!flag) {
    flag = 1;
    ++ctx_->ndead;
  }
  ctx_->cv.notify_all();
}

long long Comm::agree(long long value) {
  const long long result = repair_rendezvous(
      *ctx_, ctx_->agree_st, rank_, CommOpKind::Allreduce,
      [&](detail::RepairState& st, bool first) {
        st.value = first ? value : std::min(st.value, value);
      },
      [](detail::RepairState&) {},
      [](const detail::RepairState& st) { return st.value; });
  detail::note_progress(*ctx_);
  return result;
}

Comm Comm::shrink() {
  auto [child_ctx, child_rank] = repair_rendezvous(
      *ctx_, ctx_->shrink_st, rank_, CommOpKind::Split,
      [](detail::RepairState&, bool) {},
      [&](detail::RepairState& st) {
        std::vector<int> members;
        for (int p = 0; p < ctx_->size; ++p) {
          if (st.joined[static_cast<std::size_t>(p)]) members.push_back(p);
        }
        auto child =
            std::make_shared<CommContext>(static_cast<int>(members.size()));
        // The survivor communicator inherits the hardening state like a
        // split child would, but is NOT registered in `children`: a late
        // revoke of the broken parent must not poison the repaired comm.
        child->faults = ctx_->faults;
        child->board = ctx_->board;
        child->validate = ctx_->validate;
        if (!ctx_->world_ranks.empty()) {
          child->world_ranks.reserve(members.size());
          for (int m : members) {
            child->world_ranks.push_back(
                ctx_->world_ranks[static_cast<std::size_t>(m)]);
          }
        }
        st.child_rank.assign(static_cast<std::size_t>(ctx_->size), -1);
        for (std::size_t i = 0; i < members.size(); ++i) {
          st.child_rank[static_cast<std::size_t>(members[i])] =
              static_cast<int>(i);
        }
        st.child = std::move(child);
      },
      [&](const detail::RepairState& st) {
        return std::pair(st.child,
                         st.child_rank[static_cast<std::size_t>(rank_)]);
      });
  Comm out(std::move(child_ctx), child_rank);
  out.set_observer(rank_state_->get_observer());
  detail::note_progress(*ctx_);
  return out;
}

bool Comm::is_revoked() const {
  std::lock_guard lock(ctx_->mu);
  return ctx_->revoked;
}

int Comm::num_dead() const {
  std::lock_guard lock(ctx_->mu);
  return ctx_->ndead;
}

void Comm::send_bytes(int dst, const void* data, std::size_t bytes, int tag) {
  FX_CHECK(dst >= 0 && dst < size());
  EventScope ev(*rank_state_, CommOpKind::Send, id(), size(), tag, bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Send);
  const detail::P2pKey key{rank_, dst, tag};
  {
    std::lock_guard lock(ctx_->mu);
    detail::check_alive_locked(*ctx_);
    // Posted receives match first (there is never both a posted receive and
    // a queued message for one key); otherwise buffer the payload.
    auto posted_it = ctx_->posted.find(key);
    if (posted_it != ctx_->posted.end() && !posted_it->second.empty()) {
      detail::PendingRecv pending = std::move(posted_it->second.front());
      posted_it->second.pop_front();
      if (pending.bytes != bytes) {
        throw core::CommError(core::cat(
            "recv size does not match matching send on comm ", id(), " (tag ",
            tag, "): rank ", dst, " posted a ", pending.bytes,
            " B receive but rank ", rank_, " sent ", bytes, " B"));
      }
      std::memcpy(pending.data, data, bytes);
      detail::inject_corrupt(*ctx_, dst, CommOpKind::Recv, pending.data,
                             bytes);
      pending.state->done = true;
      detail::note_progress(*ctx_);  // the receiver's operation completed
    } else {
      const auto* bytes_ptr = static_cast<const char*>(data);
      ctx_->mail[key].emplace_back(bytes_ptr, bytes_ptr + bytes);
    }
    ctx_->cv.notify_all();
  }
  detail::note_progress(*ctx_);
}

Request Comm::isend_bytes(int dst, const void* data, std::size_t bytes,
                          int tag) {
  // Buffered semantics: the payload is captured here, so the operation is
  // already complete from the sender's point of view.
  send_bytes(dst, data, bytes, tag);
  return Request{};
}

Request Comm::post_recv(int src, void* data, std::size_t bytes, int tag) {
  FX_CHECK(src >= 0 && src < size());
  const detail::P2pKey key{src, rank_, tag};
  auto state = std::make_shared<detail::RequestState>();
  state->ctx = ctx_;
  state->src = src;
  state->comm_rank = rank_;
  state->tag = tag;
  bool matched = false;
  {
    std::lock_guard lock(ctx_->mu);
    detail::check_alive_locked(*ctx_);
    auto& queue = ctx_->mail[key];
    if (!queue.empty()) {
      if (queue.front().size() != bytes) {
        throw core::CommError(core::cat(
            "recv size does not match matching send on comm ", id(), " (tag ",
            tag, "): rank ", rank_, " expects ", bytes, " B but rank ", src,
            " sent ", queue.front().size(), " B"));
      }
      std::memcpy(data, queue.front().data(), bytes);
      detail::inject_corrupt(*ctx_, rank_, CommOpKind::Recv, data, bytes);
      queue.pop_front();
      state->done = true;
      matched = true;
    } else {
      ctx_->posted[key].push_back(detail::PendingRecv{data, bytes, state});
    }
  }
  if (matched) detail::note_progress(*ctx_);
  return Request{state};
}

Request Comm::irecv_bytes(int src, void* data, std::size_t bytes, int tag) {
  EventScope ev(*rank_state_, CommOpKind::Recv, id(), size(), tag, bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Recv);
  return post_recv(src, data, bytes, tag);
}

void Comm::recv_bytes(int src, void* data, std::size_t bytes, int tag) {
  EventScope ev(*rank_state_, CommOpKind::Recv, id(), size(), tag, bytes);
  detail::inject(*ctx_, rank_, CommOpKind::Recv);
  // A blocking receive is a posted receive awaited immediately; routing it
  // through the same path keeps one matching order for both flavors.
  post_recv(src, data, bytes, tag).wait();
}

// --- Nonblocking collectives (waiter-driven progress) ---

namespace {

// The nonblocking exchange engine's health counters: posted/completed pair
// up in a quiescence check, wait_us is the *blocked* time only (post-to-
// completion latency hidden behind compute never shows up here -- that is
// the whole point of the engine).
struct NbMetrics {
  fx::core::Counter& posted;
  fx::core::Counter& completed;
  fx::core::Counter& bytes;
  fx::core::Histogram& wait_us;
};

NbMetrics& nb_metrics() {
  auto& reg = fx::core::MetricsRegistry::global();
  static NbMetrics m{reg.counter("simmpi.ialltoallv.posted"),
                     reg.counter("simmpi.ialltoallv.completed"),
                     reg.counter("simmpi.ialltoallv.bytes"),
                     reg.histogram("simmpi.ialltoallv.wait_us")};
  return m;
}

/// Running peak of the wire quantization error, in ulps of the wire
/// mantissa -- the runtime half of the reduced-precision error oracle (the
/// other half is the ULP-bound tests).  Named for the exchange layer that
/// opts into narrow wire formats.
fx::core::Gauge& wire_ulp_gauge() {
  static fx::core::Gauge& g =
      fx::core::MetricsRegistry::global().gauge("fftx.exchange.wire_max_ulp_err");
  return g;
}

/// Copies a logical element stream between two run lists whose total
/// lengths agree (checked by the caller).  Contiguous stretches on both
/// sides coalesce into single memcpys, so the fully-contiguous case
/// degenerates to the blocking collectives' copy.  Elem is a compile-time
/// constant where it matters: the strided inner loop's memcpy then inlines
/// to plain moves (a runtime-size memcpy call per element is what made
/// early fused exchanges lose to the staged path's typed marshal loops);
/// Elem == 0 is the generic runtime-size fallback.
template <std::size_t Elem>
void copy_runs_impl(const unsigned char* sbase, const SegRun* srun,
                    std::size_t nsrun, unsigned char* dbase,
                    const SegRun* drun, std::size_t ndrun,
                    std::size_t elem_rt) {
  const std::size_t elem = Elem != 0 ? Elem : elem_rt;
  std::size_t si = 0;
  std::size_t so = 0;
  std::size_t di = 0;
  std::size_t dof = 0;
  while (si < nsrun && di < ndrun) {
    const SegRun& s = srun[si];
    const SegRun& d = drun[di];
    if (s.len == 0) {
      ++si;
      continue;
    }
    if (d.len == 0) {
      ++di;
      continue;
    }
    const std::size_t k = std::min(s.len - so, d.len - dof);
    const unsigned char* sp = sbase + (s.offset + so * s.stride) * elem;
    unsigned char* dp = dbase + (d.offset + dof * d.stride) * elem;
    if (s.stride == 1 && d.stride == 1) {
      std::memcpy(dp, sp, k * elem);
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        std::memcpy(dp + i * d.stride * elem, sp + i * s.stride * elem,
                    Elem != 0 ? Elem : elem);
      }
    }
    so += k;
    dof += k;
    if (so == s.len) {
      ++si;
      so = 0;
    }
    if (dof == d.len) {
      ++di;
      dof = 0;
    }
  }
}

void copy_runs(const unsigned char* sbase, const SegRun* srun,
               std::size_t nsrun, unsigned char* dbase, const SegRun* drun,
               std::size_t ndrun, std::size_t elem) {
  switch (elem) {
    case 16:  // complex<double>, the FFT pipeline's element
      copy_runs_impl<16>(sbase, srun, nsrun, dbase, drun, ndrun, elem);
      return;
    case 8:
      copy_runs_impl<8>(sbase, srun, nsrun, dbase, drun, ndrun, elem);
      return;
    case 4:
      copy_runs_impl<4>(sbase, srun, nsrun, dbase, drun, ndrun, elem);
      return;
    default:
      copy_runs_impl<0>(sbase, srun, nsrun, dbase, drun, ndrun, elem);
  }
}

/// copy_runs for a reduced-precision wire: the same two-pointer run walk,
/// but every double of the payload passes through the wire format's
/// quantize->dequantize round trip in flight.  This IS the narrow wire --
/// shipping encoded bytes and widening on arrival would land bit-identical
/// values -- fused into the typed copy so no staging buffer reappears.
/// Returns the largest quantization error seen, in wire-mantissa ulps.
template <WireFormat W>
double convert_runs_impl(const unsigned char* sbase, const SegRun* srun,
                         std::size_t nsrun, unsigned char* dbase,
                         const SegRun* drun, std::size_t ndrun,
                         std::size_t elem) {
  const std::size_t nd = elem / sizeof(double);
  double max_err = 0.0;
  auto move = [&max_err](unsigned char* dp, const unsigned char* sp,
                         std::size_t doubles) {
    for (std::size_t w = 0; w < doubles; ++w) {
      double x;
      std::memcpy(&x, sp + w * sizeof(double), sizeof(double));
      const double q = wire_roundtrip(W, x);
      const double e = wire_ulp_err(W, x, q);
      if (e > max_err) max_err = e;
      std::memcpy(dp + w * sizeof(double), &q, sizeof(double));
    }
  };
  std::size_t si = 0;
  std::size_t so = 0;
  std::size_t di = 0;
  std::size_t dof = 0;
  while (si < nsrun && di < ndrun) {
    const SegRun& s = srun[si];
    const SegRun& d = drun[di];
    if (s.len == 0) {
      ++si;
      continue;
    }
    if (d.len == 0) {
      ++di;
      continue;
    }
    const std::size_t k = std::min(s.len - so, d.len - dof);
    const unsigned char* sp = sbase + (s.offset + so * s.stride) * elem;
    unsigned char* dp = dbase + (d.offset + dof * d.stride) * elem;
    if (s.stride == 1 && d.stride == 1) {
      move(dp, sp, k * nd);
    } else {
      for (std::size_t i = 0; i < k; ++i) {
        move(dp + i * d.stride * elem, sp + i * s.stride * elem, nd);
      }
    }
    so += k;
    dof += k;
    if (so == s.len) {
      ++si;
      so = 0;
    }
    if (dof == d.len) {
      ++di;
      dof = 0;
    }
  }
  return max_err;
}

/// Dispatches a pairwise transfer to the plain copy (Fp64) or the fused
/// converting copy; returns the transfer's peak wire quantization error.
double move_runs(const unsigned char* sbase, const SegRun* srun,
                 std::size_t nsrun, unsigned char* dbase, const SegRun* drun,
                 std::size_t ndrun, std::size_t elem, WireFormat wire) {
  switch (wire) {
    case WireFormat::Fp64:
      copy_runs(sbase, srun, nsrun, dbase, drun, ndrun, elem);
      return 0.0;
    case WireFormat::Fp32:
      return convert_runs_impl<WireFormat::Fp32>(sbase, srun, nsrun, dbase,
                                                 drun, ndrun, elem);
    case WireFormat::Bf16:
      return convert_runs_impl<WireFormat::Bf16>(sbase, srun, nsrun, dbase,
                                                 drun, ndrun, elem);
  }
  return 0.0;
}

std::size_t run_span_elems(const std::vector<SegRun>& runs, std::size_t lo,
                           std::size_t hi) {
  std::size_t n = 0;
  for (std::size_t i = lo; i < hi; ++i) n += runs[i].len;
  return n;
}

/// Drives a nonblocking collective toward completion from the waiter's
/// thread.  The payload moves at post time (every pairwise transfer is
/// executed by whichever endpoint posted later), so this only
///   1. blocks until every transfer touching this rank is done -- its
///      sends consumed (the send buffer becomes reusable) and its
///      receives landed.  Crucially this never waits on transfers between
///      two OTHER ranks: there is no global all-ranks barrier, which is
///      what lets a chunked exchange's waits collapse to near zero when
///      the posts were spread across compute;
///   2. finalizes once per request: fault injection over the completed
///      receive stream, then completion accounting, with the last
///      finalizer retiring the matching-table entry.
/// Blocking mode waits watchdog-registered; test mode returns false
/// instead.  Unwinds with the poison error when the communicator dies or
/// is revoked mid-flight, and with the recorded pair mismatch when any
/// two endpoints disagreed on exchange metadata.
bool complete_nb(detail::RequestState& st, bool blocking) {
  auto& ctx = *st.ctx;
  auto& op = *st.op;
  const auto r = static_cast<std::size_t>(st.comm_rank);
  const double t_wait = fx::core::WallTimer::now();

  std::unique_lock lock(ctx.mu);
  if (st.done) return true;
  auto check_failed = [&] {
    if (!op.failed.empty()) throw core::CommError(op.failed);
  };
  check_failed();
  auto mine_done = [&] {
    return op.done_out[r] == ctx.size && op.done_in[r] == ctx.size;
  };
  if (!mine_done()) {
    if (!blocking) {
      detail::check_alive_locked(ctx);
      return false;
    }
    ProgressBoard::Scope blocked(
        ctx.board.get(), detail::blocked_info(ctx, st.comm_rank, st.kind,
                                              st.tag, st.key.seq));
    ctx.cv.wait(lock, [&] {
      return mine_done() || !op.failed.empty() || ctx.aborted;
    });
    check_failed();
    if (!mine_done()) detail::check_alive_locked(ctx);
  }

  if (!st.pulled) {
    st.pulled = true;
    if (ctx.faults) {
      // Corruption injection over the logical receive stream, after all of
      // it landed: the flip maps the chosen byte through the run layout,
      // so the decision and the per-rank counting match the contiguous
      // overload exactly.
      std::size_t total_elems = 0;
      for (const SegRun& run : st.rruns) total_elems += run.len;
      auto flip = [&st](std::size_t byte, unsigned char mask) {
        const std::size_t e = byte / st.elem_size;
        const std::size_t off = byte % st.elem_size;
        std::size_t seen = 0;
        for (const SegRun& run : st.rruns) {
          if (e < seen + run.len) {
            auto* base = static_cast<unsigned char*>(st.recv_base);
            base[(run.offset + (e - seen) * run.stride) * st.elem_size +
                 off] ^= mask;
            return;
          }
          seen += run.len;
        }
      };
      ctx.faults->maybe_corrupt(detail::wrank(ctx, st.comm_rank), st.kind,
                                total_elems * st.elem_size, flip);
    }
    ++op.observed;
  }

  // The last finalizer retires the matching-table entry; idempotent (only
  // while the slot still maps to this very op -- a same-key successor may
  // already occupy it).
  if (op.observed == ctx.size) {
    auto it = ctx.ops.find(st.key);
    if (it != ctx.ops.end() && it->second.get() == &op) ctx.ops.erase(it);
  }
  st.done = true;
  lock.unlock();

  const double t_end = fx::core::WallTimer::now();
  NbMetrics& m = nb_metrics();
  m.completed.add();
  m.bytes.add(st.bytes);
  m.wait_us.record((t_end - t_wait) * 1e6);
  if (st.rank_state) {
    if (auto obs = st.rank_state->get_observer()) {
      obs(CommEvent{st.kind, ctx.id, ctx.size, st.tag, st.bytes, st.t_post,
                    t_end});
    }
  }
  detail::note_progress(ctx);
  return true;
}

}  // namespace

Request Comm::post_nb_exchange(CommOpKind kind, const void* send_base,
                               std::span<const SegView> sviews,
                               void* recv_base,
                               std::span<const SegView> rviews,
                               std::size_t elem_size, int tag,
                               WireFormat wire) {
  const auto n = static_cast<std::size_t>(size());
  FX_CHECK(send_base != recv_base,
           "nonblocking exchange buffers must not alias");
  FX_CHECK(sviews.size() == n && rviews.size() == n,
           "exchange views need one entry per peer");
  FX_CHECK(elem_size > 0, "exchange element size must be positive");
  FX_CHECK(wire == WireFormat::Fp64 || elem_size % sizeof(double) == 0,
           "reduced wire precision needs double-typed elements");
  detail::inject(*ctx_, rank_, kind);
  const OpKey key{static_cast<int>(kind), tag,
                  rank_state_->next_seq(static_cast<int>(kind), tag)};
  const std::size_t r = static_cast<std::size_t>(rank_);

  auto state = std::make_shared<detail::RequestState>();
  state->ctx = ctx_;
  state->comm_rank = rank_;
  state->tag = tag;
  state->key = key;
  state->kind = kind;
  state->recv_base = recv_base;
  state->elem_size = elem_size;
  state->rank_state = rank_state_;
  state->t_post = fx::core::WallTimer::now();
  state->rfirst.resize(n + 1, 0);
  std::size_t sent_elems = 0;
  for (std::size_t p = 0; p < n; ++p) {
    state->rruns.insert(state->rruns.end(), rviews[p].begin(),
                        rviews[p].end());
    state->rfirst[p + 1] = state->rruns.size();
    sent_elems += seg_elems(sviews[p]);
  }
  // Byte accounting is at *wire* size: a narrowed double costs 4 or 2
  // bytes, which is the whole point of the reduced formats.
  state->bytes = wire == WireFormat::Fp64
                     ? sent_elems * elem_size
                     : sent_elems * (elem_size / sizeof(double)) *
                           wire_scalar_bytes(wire);

  std::shared_ptr<OpState> op;
  // Transfers this post enables, claimed under the lock and copied below
  // with it released: (sender, receiver) pairs where both endpoints have
  // now posted.  The later-posting endpoint always carries the pair's
  // traffic, so waits only synchronize -- they never copy.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;
  {
    std::unique_lock lock(ctx_->mu);
    detail::check_alive_locked(*ctx_);
    detail::validate_entry_locked(*ctx_, key, rank_);
    auto& slot = ctx_->ops[key];
    if (!slot) slot = std::make_shared<OpState>(ctx_->size);
    op = slot;
    if (op->nb_send.empty()) {
      op->nb_send.resize(n);
      op->nb_recv.resize(n);
      op->nb_recv_base.assign(n, nullptr);
      op->nb_posted.assign(n, 0);
      op->xfer.assign(n * n, 0);
      op->done_out.assign(n, 0);
      op->done_in.assign(n, 0);
    }
    auto& side = op->nb_send[r];
    side.first.assign(n + 1, 0);
    for (std::size_t p = 0; p < n; ++p) {
      side.runs.insert(side.runs.end(), sviews[p].begin(), sviews[p].end());
      side.first[p + 1] = side.runs.size();
    }
    auto& rside = op->nb_recv[r];
    rside.first.assign(n + 1, 0);
    for (std::size_t p = 0; p < n; ++p) {
      rside.runs.insert(rside.runs.end(), rviews[p].begin(), rviews[p].end());
      rside.first[p + 1] = rside.runs.size();
    }
    op->nb_recv_base[r] = recv_base;
    op->send[r] = send_base;
    op->scalar[r] = elem_size;
    op->scalar2[r] = static_cast<std::size_t>(wire);
    op->nb_posted[r] = 1;
    ++op->arrived;
    op->arrived_ranks.push_back(rank_);
    FX_ASSERT(op->arrived <= ctx_->size, "collective over-subscribed");
    if (op->arrived == ctx_->size) op->ready = true;

    // Metadata agreement per enabled pair (cheap, under the lock): element
    // sizes and pairwise stream lengths.  A mismatch poisons the whole op
    // so every participant unwinds with the same diagnosis instead of
    // hanging into the watchdog.
    auto pair_error = [&](std::size_t p, std::size_t q) -> std::string {
      if (op->scalar[p] != op->scalar[q]) {
        return core::cat(
            "nonblocking exchange element size mismatch on comm ", ctx_->id,
            " (tag ", tag, "): rank ", p, " (world ",
            detail::wrank(*ctx_, static_cast<int>(p)), ") uses ",
            op->scalar[p], " B, but rank ", q, " (world ",
            detail::wrank(*ctx_, static_cast<int>(q)), ") uses ",
            op->scalar[q], " B");
      }
      if (op->scalar2[p] != op->scalar2[q]) {
        return core::cat(
            "nonblocking exchange wire format mismatch on comm ", ctx_->id,
            " (tag ", tag, "): rank ", p, " (world ",
            detail::wrank(*ctx_, static_cast<int>(p)), ") uses ",
            to_string(static_cast<WireFormat>(op->scalar2[p])), ", but rank ",
            q, " (world ", detail::wrank(*ctx_, static_cast<int>(q)),
            ") uses ", to_string(static_cast<WireFormat>(op->scalar2[q])));
      }
      const auto& ss = op->nb_send[p];
      const auto& rs = op->nb_recv[q];
      const std::size_t theirs =
          run_span_elems(ss.runs, ss.first[q], ss.first[q + 1]);
      const std::size_t mine =
          run_span_elems(rs.runs, rs.first[p], rs.first[p + 1]);
      if (theirs != mine) {
        return core::cat(
            "nonblocking exchange count mismatch on comm ", ctx_->id,
            " (tag ", tag, "): rank ", p, " (world ",
            detail::wrank(*ctx_, static_cast<int>(p)), ") sends ", theirs,
            " element(s) of ", op->scalar[p], " B to rank ", q, " (world ",
            detail::wrank(*ctx_, static_cast<int>(q)), "), which expects ",
            mine, " element(s)");
      }
      return {};
    };
    auto claim = [&](std::size_t p, std::size_t q) {
      std::uint8_t& s = op->xfer[p * n + q];
      if (s != 0) return;
      std::string err = pair_error(p, q);
      if (!err.empty()) {
        op->failed = err;
        ctx_->cv.notify_all();
        throw core::CommError(err);
      }
      s = 1;
      jobs.emplace_back(p, q);
    };
    for (std::size_t q = 0; q < n; ++q) {
      if (!op->nb_posted[q]) continue;
      claim(r, q);
      if (q != r) claim(q, r);
    }
    state->op = op;
  }
  // Execute the claimed transfers peer-direct with the lock released: the
  // posted views and buffers are immutable, both endpoints' buffers stay
  // valid until their waits return, and distinct transfers never overlap
  // (each receiver's per-peer views are disjoint by contract).
  double max_ulp = 0.0;
  for (const auto& [p, q] : jobs) {
    const auto& ss = op->nb_send[p];
    const auto& rs = op->nb_recv[q];
    const double e = move_runs(
        static_cast<const unsigned char*>(op->send[p]),
        ss.runs.data() + ss.first[q], ss.first[q + 1] - ss.first[q],
        static_cast<unsigned char*>(op->nb_recv_base[q]),
        rs.runs.data() + rs.first[p], rs.first[p + 1] - rs.first[p],
        elem_size, wire);
    if (e > max_ulp) max_ulp = e;
  }
  // One gauge update per post, not per double: the copy loops accumulate
  // locally and the peak lands here.
  if (wire != WireFormat::Fp64 && !jobs.empty()) {
    wire_ulp_gauge().max_of(max_ulp);
  }
  if (!jobs.empty()) {
    std::lock_guard lock(ctx_->mu);
    for (const auto& [p, q] : jobs) {
      op->xfer[p * n + q] = 2;
      ++op->done_out[p];
      ++op->done_in[q];
    }
    ctx_->cv.notify_all();
  }
  rank_state_->bytes_sent.fetch_add(state->bytes, std::memory_order_relaxed);
  nb_metrics().posted.add();
  return Request{std::move(state)};
}

Request Comm::ialltoall_bytes(const void* send, void* recv,
                              std::size_t bytes_per_rank, int tag) {
  const auto n = static_cast<std::size_t>(size());
  std::vector<SegRun> sruns(n);
  std::vector<SegRun> rruns(n);
  std::vector<SegView> sviews(n);
  std::vector<SegView> rviews(n);
  for (std::size_t p = 0; p < n; ++p) {
    sruns[p] = SegRun{p * bytes_per_rank, bytes_per_rank, 1};
    rruns[p] = SegRun{p * bytes_per_rank, bytes_per_rank, 1};
    sviews[p] = SegView(&sruns[p], 1);
    rviews[p] = SegView(&rruns[p], 1);
  }
  return post_nb_exchange(CommOpKind::Ialltoall, send, sviews, recv, rviews,
                          /*elem_size=*/1, tag, WireFormat::Fp64);
}

Request Comm::ialltoallv_bytes(const void* send, const std::size_t* scounts,
                               const std::size_t* sdispls, void* recv,
                               const std::size_t* rcounts,
                               const std::size_t* rdispls,
                               std::size_t elem_size, int tag) {
  const auto n = static_cast<std::size_t>(size());
  std::vector<SegRun> sruns(n);
  std::vector<SegRun> rruns(n);
  std::vector<SegView> sviews(n);
  std::vector<SegView> rviews(n);
  for (std::size_t p = 0; p < n; ++p) {
    sruns[p] = SegRun{sdispls[p], scounts[p], 1};
    rruns[p] = SegRun{rdispls[p], rcounts[p], 1};
    sviews[p] = SegView(&sruns[p], 1);
    rviews[p] = SegView(&rruns[p], 1);
  }
  return post_nb_exchange(CommOpKind::Ialltoallv, send, sviews, recv, rviews,
                          elem_size, tag, WireFormat::Fp64);
}

Request Comm::ialltoallv_view(const void* send_base,
                              std::span<const SegView> sviews,
                              void* recv_base,
                              std::span<const SegView> rviews,
                              std::size_t elem_size, int tag,
                              WireFormat wire) {
  return post_nb_exchange(CommOpKind::Ialltoallv, send_base, sviews,
                          recv_base, rviews, elem_size, tag, wire);
}

void Comm::alltoallv_view(const void* send_base,
                          std::span<const SegView> sviews, void* recv_base,
                          std::span<const SegView> rviews,
                          std::size_t elem_size, int tag, WireFormat wire) {
  post_nb_exchange(CommOpKind::Ialltoallv, send_base, sviews, recv_base,
                   rviews, elem_size, tag, wire)
      .wait();
}

void Request::wait() {
  if (!state_) return;
  if (state_->op) {
    complete_nb(*state_, /*blocking=*/true);
    return;
  }
  auto& ctx = *state_->ctx;
  std::unique_lock lock(ctx.mu);
  if (state_->done) return;
  detail::check_alive_locked(ctx);
  ProgressBoard::Scope blocked(
      ctx.board.get(),
      detail::blocked_info(ctx, state_->comm_rank, CommOpKind::Recv,
                           state_->tag, 0));
  ctx.cv.wait(lock, [&] { return state_->done || ctx.aborted; });
  if (!state_->done) detail::check_alive_locked(ctx);
}

bool Request::test() const {
  if (!state_) return true;
  if (state_->op) return complete_nb(*state_, /*blocking=*/false);
  std::lock_guard lock(state_->ctx->mu);
  if (!state_->done) detail::check_alive_locked(*state_->ctx);
  return state_->done;
}

}  // namespace fx::mpi
