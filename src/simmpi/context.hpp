// Internal shared state of the simulated-MPI runtime (not part of the
// public API; include only from src/simmpi/*.cpp).
//
// A CommContext is the rank-shared half of a communicator: the collective
// matching table, the point-to-point mailbox, and -- since the hardening
// subsystem -- the world-shared failure machinery: a poison flag + reason
// (set when any rank dies, so every blocked or future operation unwinds
// with the originating rank's error instead of hanging), the fault
// injector, the watchdog progress board, and the collective-matching
// validator switch.  Children created by split() inherit all of it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/watchdog.hpp"

namespace fx::mpi::detail {

/// Identity of one collective instance: kind + tag disambiguate concurrent
/// operations; seq orders repeated calls with the same (kind, tag).
struct OpKey {
  int kind;
  int tag;
  std::uint64_t seq;
  auto operator<=>(const OpKey&) const = default;
};

/// Shared state of one in-flight collective.  Lifetime: created by the
/// first arriver, erased from the map by the last finisher; participants
/// hold shared_ptr references across the copy phase.
struct OpState {
  explicit OpState(int size)
      : send(static_cast<std::size_t>(size), nullptr),
        recv(static_cast<std::size_t>(size), nullptr),
        pcounts(static_cast<std::size_t>(size), nullptr),
        pdispls(static_cast<std::size_t>(size), nullptr),
        scalar(static_cast<std::size_t>(size), 0),
        scalar2(static_cast<std::size_t>(size), 0),
        child_ctx(static_cast<std::size_t>(size)),
        child_rank(static_cast<std::size_t>(size), -1) {}

  int arrived = 0;
  int done = 0;
  bool ready = false;
  std::vector<int> arrived_ranks;  ///< local ranks, arrival order (diagnostics)

  std::vector<const void*> send;
  std::vector<void*> recv;
  std::vector<const std::size_t*> pcounts;  // alltoallv send counts
  std::vector<const std::size_t*> pdispls;  // alltoallv send displs
  std::vector<std::size_t> scalar;          // per-rank scalar (bytes/color)
  std::vector<std::size_t> scalar2;         // second scalar (key)

  // Reduction:
  std::vector<char> acc;
  void (*combine)(void*, const void*, std::size_t) = nullptr;
  std::size_t count = 0;
  std::size_t elem_size = 0;

  // Split results:
  std::vector<std::shared_ptr<class CommContext>> child_ctx;
  std::vector<int> child_rank;

  // Nonblocking exchange (Ialltoall/Ialltoallv): per-rank send AND recv
  // views, copied at post time so the engine can move payload long after
  // the posting frame returned.  Each pairwise transfer p->q executes
  // eagerly, claimed at post time by whichever endpoint posts later, so a
  // rank's wait blocks only until its own row (sends consumed) and column
  // (receives landed) are done -- never on a global all-ranks-pulled
  // barrier.  Send and recv buffers stay valid until the local wait
  // returns, which the row/column condition guarantees.
  struct NbSide {
    std::vector<SegRun> runs;        ///< all peers' runs, concatenated
    std::vector<std::size_t> first;  ///< size n+1: peer p's runs span
                                     ///< [first[p], first[p+1])
  };
  std::vector<NbSide> nb_send;  ///< sized by the first nonblocking poster
  std::vector<NbSide> nb_recv;
  std::vector<void*> nb_recv_base;  ///< per-rank recv buffer base
  std::vector<char> nb_posted;      ///< per-rank: views registered
  std::vector<std::uint8_t> xfer;   ///< [p*n+q]: 0 pending / 1 claimed /
                                    ///< 2 done, transfer p -> q
  std::vector<int> done_out;        ///< per sender p: done transfers p -> *
  std::vector<int> done_in;         ///< per receiver q: done transfers * -> q
  int observed = 0;    ///< ranks whose wait/test finalized the request
  std::string failed;  ///< metadata-mismatch poison (empty = healthy)
};

struct P2pKey {
  int src;
  int dst;
  int tag;
  auto operator<=>(const P2pKey&) const = default;
};

/// Completion flag of a nonblocking operation, synchronized through the
/// owning communicator's mutex/condvar.  src/tag/comm_rank identify the
/// operation for watchdog diagnostics.
///
/// For nonblocking collectives (op != nullptr) the state additionally
/// carries this rank's receive-side view (copied at post time, also
/// registered in the OpState for peer-side eager transfers) and the
/// finalization flag `pulled` (corruption injection + completion
/// accounting run once per request).  The OpState is shared; this struct
/// holds only per-rank state, so there is no ownership cycle.
struct RequestState {
  std::shared_ptr<class CommContext> ctx;
  bool done = false;
  int src = -1;
  int comm_rank = -1;  ///< the posting (receiving) rank
  int tag = 0;

  // --- Nonblocking collective fields (unused for point-to-point) ---
  std::shared_ptr<OpState> op;
  OpKey key{};
  CommOpKind kind = CommOpKind::Recv;
  void* recv_base = nullptr;
  std::size_t elem_size = 0;
  std::vector<SegRun> rruns;        ///< recv runs, concatenated per peer
  std::vector<std::size_t> rfirst;  ///< size n+1
  bool pulled = false;  ///< finalization (injection + accounting) ran
  double t_post = 0.0;              ///< post wall time (event/metrics)
  std::size_t bytes = 0;            ///< payload bytes this rank sends
  std::shared_ptr<struct RankState> rank_state;  ///< event emission at wait
};

/// A posted (not yet matched) nonblocking receive.
struct PendingRecv {
  void* data;
  std::size_t bytes;
  std::shared_ptr<RequestState> state;
};

/// Rendezvous state of one repair collective (Comm::shrink / Comm::agree).
/// Unlike ordinary collectives these complete when every rank has either
/// arrived or been declared dead, so they run on a revoked context.  One
/// instance per context and kind; the repair protocol is single-flight
/// (the recovery driver serializes shrink/agree rounds).
struct RepairState {
  std::uint64_t gen = 0;  ///< bumped on reset; reused for repeated rounds
  int arrived = 0;
  int done = 0;
  bool ready = false;
  std::vector<char> joined;  ///< local rank -> arrived this round

  // agree: running Min of the contributed values.
  long long value = 0;

  // shrink: the survivor communicator under construction.
  std::shared_ptr<class CommContext> child;
  std::vector<int> child_rank;  ///< local rank -> rank in child (-1 = dead)
};

class CommContext {
 public:
  explicit CommContext(int sz)
      : size(sz),
        id(next_id().fetch_add(1)),
        dead(static_cast<std::size_t>(sz), 0) {}

  static std::atomic<int>& next_id() {
    static std::atomic<int> counter{0};
    return counter;
  }

  /// Marks the communicator (and, recursively, every communicator split
  /// from it) dead with `reason`: all pending and future operations throw
  /// core::CommError(reason).  The first reason wins; later poisons keep it.
  void poison(const std::string& reason) { poison_impl(reason, false); }

  /// Like poison, but flags the failure as survivable: unwinds raise
  /// core::RevokedError and survivors may rendezvous in shrink/agree on
  /// this context.  A revoke upgrades an existing plain poison (the
  /// unwind class changes; the first reason still wins).
  void revoke(const std::string& reason) { poison_impl(reason, true); }

  void abort() { poison("communicator aborted: a peer rank failed"); }

  const int size;
  const int id;

  std::mutex mu;
  std::condition_variable cv;
  bool aborted = false;
  bool revoked = false;  ///< aborted-for-repair: unwinds throw RevokedError
  std::string poison_reason;

  // --- Repair state (ULFM-style revoke/shrink/agree; see comm.hpp) ---
  std::vector<char> dead;  ///< local rank -> declared dead via mark_dead()
  int ndead = 0;
  RepairState shrink_st;
  RepairState agree_st;

  // Barrier (untagged fast path).
  int bar_count = 0;
  std::uint64_t bar_gen = 0;

  std::map<OpKey, std::shared_ptr<OpState>> ops;
  std::map<P2pKey, std::deque<std::vector<char>>> mail;
  std::map<P2pKey, std::deque<PendingRecv>> posted;
  std::vector<std::weak_ptr<CommContext>> children;

  // --- Hardening state, shared by the whole world (null/default when the
  // feature is off) and inherited by split() children. ---
  std::shared_ptr<FaultInjector> faults;
  std::shared_ptr<ProgressBoard> board;
  bool validate = true;
  /// local rank -> world rank; empty when the context was built outside
  /// Runtime::run (diagnostics then report local ranks only).
  std::vector<int> world_ranks;

 private:
  void poison_impl(const std::string& reason, bool as_revoke) {
    std::vector<std::shared_ptr<CommContext>> kids;
    {
      std::lock_guard lock(mu);
      if (!aborted) {
        aborted = true;
        poison_reason = reason;
      }
      if (as_revoke) revoked = true;
      // A shrink child is deliberately NOT in `children` (it must outlive
      // its revoked parent), so this recursion can never poison a repaired
      // communicator -- only ordinary split() offspring.
      for (auto& w : children) {
        if (auto c = w.lock()) kids.push_back(std::move(c));
      }
      cv.notify_all();
    }
    for (auto& k : kids) k->poison_impl(reason, as_revoke);
  }
};

}  // namespace fx::mpi::detail
