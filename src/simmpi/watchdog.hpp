// Hang watchdog and deadlock diagnoser for the simulated-MPI runtime.
//
// With 64+ rank threads interleaving tagged collectives and dynamically
// scheduled tasks, one mismatched collective turns into a silent hang that
// blocks ctest forever.  The watchdog converts that hang into a prompt,
// structured failure: every blocking communicator wait registers itself on
// a shared ProgressBoard; a monitor thread watches a global completed-ops
// counter, and when nothing completed for the configured window while at
// least one rank sat blocked the whole time, it composes a per-rank dump
// -- which collective/tag/comm each rank is blocked in, and which local
// ranks of that communicator are missing -- and fires a callback that
// poisons the world so every blocked wait unwinds with a
// core::DeadlockError instead of hanging.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "simmpi/comm.hpp"

namespace fx::mpi {

struct WatchdogConfig {
  bool enabled = true;
  /// No-global-progress window before the watchdog fires, in milliseconds.
  /// Generous by default: the window must exceed the longest legitimate
  /// compute phase between two communication completions.
  double window_ms = 60000.0;

  /// Reads FFTX_WATCHDOG (0 disables) and FFTX_WATCHDOG_MS (window).
  static WatchdogConfig from_env();
};

/// Shared blocked-operation registry plus the global progress counter.
/// Ranks (or task workers acting for a rank) register a Blocked entry for
/// the duration of every blocking communicator wait.
class ProgressBoard {
 public:
  struct Blocked {
    int world_rank;  ///< -1 if unknown (never for Runtime-spawned worlds)
    int comm_id;
    int comm_size;
    int comm_rank;  ///< local rank within the communicator
    CommOpKind kind;
    int tag;
    std::uint64_t seq;  ///< per-rank occurrence of (kind, tag)
    double since;       ///< WallTimer::now() when the wait began
  };

  /// RAII registration of one blocking wait; no-op when `board` is null.
  class Scope {
   public:
    Scope(ProgressBoard* board, const Blocked& info);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&&) = delete;
    Scope& operator=(Scope&&) = delete;

   private:
    ProgressBoard* board_;
    std::uint64_t token_ = 0;
  };

  /// Called once per completed communication operation per rank.
  void op_completed() { ops_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t ops() const {
    return ops_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::vector<Blocked> snapshot() const;

 private:
  friend class Scope;
  std::atomic<std::uint64_t> ops_{0};
  mutable std::mutex mu_;
  std::uint64_t next_token_ = 0;
  std::map<std::uint64_t, Blocked> blocked_;
};

/// Renders the deadlock diagnostic: blocked entries grouped per collective
/// instance, with waiting and missing local ranks named on both sides.
std::string describe_deadlock(const std::vector<ProgressBoard::Blocked>& all,
                              double window_ms);

/// The monitor thread.  Fires `on_deadlock(diagnostic)` at most once, then
/// exits.  Destruction stops the thread.
class Watchdog {
 public:
  Watchdog(WatchdogConfig cfg, std::shared_ptr<ProgressBoard> board,
           std::function<void(const std::string&)> on_deadlock);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  Watchdog(Watchdog&&) = delete;
  Watchdog& operator=(Watchdog&&) = delete;

 private:
  void monitor(const std::stop_token& stop);

  WatchdogConfig cfg_;
  std::shared_ptr<ProgressBoard> board_;
  std::function<void(const std::string&)> on_deadlock_;
  std::mutex mu_;
  std::condition_variable_any cv_;
  std::jthread thread_;
};

}  // namespace fx::mpi
