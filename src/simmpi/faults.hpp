// Deterministic fault injection for the simulated-MPI runtime.
//
// Production distributed-FFT stacks live or die by how they fail: a flipped
// bit in an exchange, a rank that stalls in a collective, or a rank that
// dies outright must turn into a diagnosable error, not a silent hang or a
// wrong answer.  This module injects exactly those faults, deterministically
// from a single seed, so the hardening machinery (watchdog, validator,
// poisoning, guarded exchanges) can be exercised by ordinary unit tests and
// by the CI seed-sweep stress job.
//
// Every decision is a pure hash of (seed, world rank, per-rank operation
// index) -- no shared RNG state -- so outcomes do not depend on thread
// interleaving: the same seed injects the same faults at the same per-rank
// operation indices on every run.
//
// Configuration comes from the API (FaultPlan) or from FFTX_FAULT_* env
// vars (see FaultPlan::from_env and the README table).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simmpi/comm.hpp"

namespace fx::mpi {

/// What to inject and where.  Ranks are world ranks.  Operation indices
/// count communication operations of the selected kind (all kinds when no
/// `only_kind` filter) executed by that rank; corruption indices likewise
/// count only corruptible (payload-receiving) operations of the selected
/// kind, so "corrupt_op = 0 with only_kind = Alltoallv" means "the first
/// Alltoallv payload that rank receives".
struct FaultPlan {
  std::uint64_t seed = 1;

  // Probabilistic per-op latency: with `delay_prob`, sleep `delay_us`.
  double delay_prob = 0.0;
  double delay_us = 0.0;

  // Probabilistic payload corruption: with `corrupt_prob`, flip one
  // deterministically chosen bit of the received payload.
  double corrupt_prob = 0.0;

  // Deterministic corruption: flip a bit in the payload of each of the
  // `corrupt_count` corruptible operations starting at the `corrupt_op`-th
  // one executed by `corrupt_rank`.  `corrupt_count` > 1 models persistent
  // corruption (e.g. a bad link) that outlasts bounded retries but
  // eventually clears.
  int corrupt_rank = -1;
  std::uint64_t corrupt_op = 0;
  int corrupt_count = 1;

  // Rank stall: the `stall_op`-th operation of `stall_rank` sleeps
  // `stall_ms` before proceeding (models a straggler / OS-jitter spike).
  int stall_rank = -1;
  std::uint64_t stall_op = 0;
  double stall_ms = 0.0;

  // Rank kill: the `kill_op`-th operation of each of the `kill_count`
  // consecutive world ranks starting at `kill_rank` throws core::FaultError
  // instead of executing (multi-kill exercises cascaded shrink recovery).
  int kill_rank = -1;
  std::uint64_t kill_op = 0;
  int kill_count = 1;

  // Compute bit flips: flip one deterministically chosen bit (any of sign /
  // exponent / mantissa) of a compute buffer at a flip *opportunity* -- a
  // stage boundary where the FFT pipeline offers its pencil/planes buffer
  // via FaultInjector::maybe_flip.  Selection mirrors corruption: each of
  // the `flip_count` opportunities starting at the `flip_op`-th one seen by
  // `flip_rank` flips, or `flip_prob` selects opportunities at random.
  // Unlike the fields above, flips never touch communication payloads --
  // they model silent data corruption inside the compute that only the
  // ABFT layer (fftx/abft.hpp) can see; `only_kind` does not apply.
  int flip_rank = -1;
  std::uint64_t flip_op = 0;
  int flip_count = 1;
  double flip_prob = 0.0;

  /// Restrict injection to one operation kind (e.g. only Alltoallv);
  /// negative = all kinds.  Compared against static_cast<int>(CommOpKind).
  int only_kind = -1;

  /// True if the plan injects anything at all.
  [[nodiscard]] bool any() const {
    return delay_prob > 0.0 || corrupt_prob > 0.0 || corrupt_rank >= 0 ||
           stall_rank >= 0 || kill_rank >= 0 || flips_active();
  }

  /// True if the plan can inject compute bit flips (lets the pipeline skip
  /// the per-stage maybe_flip hook entirely otherwise).
  [[nodiscard]] bool flips_active() const {
    return flip_rank >= 0 || flip_prob > 0.0;
  }

  /// Reads FFTX_FAULT_SEED, FFTX_FAULT_DELAY_PROB, FFTX_FAULT_DELAY_US,
  /// FFTX_FAULT_CORRUPT_PROB, FFTX_FAULT_CORRUPT_RANK, FFTX_FAULT_CORRUPT_OP,
  /// FFTX_FAULT_CORRUPT_COUNT, FFTX_FAULT_STALL_RANK, FFTX_FAULT_STALL_OP,
  /// FFTX_FAULT_STALL_MS, FFTX_FAULT_KILL_RANK, FFTX_FAULT_KILL_OP,
  /// FFTX_FAULT_KILL_COUNT, FFTX_FAULT_FLIP_RANK, FFTX_FAULT_FLIP_OP,
  /// FFTX_FAULT_FLIP_COUNT, FFTX_FAULT_FLIP_PROB, FFTX_FAULT_KIND.
  /// Unset vars keep the defaults above (an inactive plan).  Malformed
  /// values (unparseable numbers, probabilities outside [0, 1], an unknown
  /// FFTX_FAULT_KIND) and unrecognized FFTX_FAULT_* variable names throw
  /// core::Error naming the variable and the accepted values -- a typo in a
  /// chaos-test matrix must fail loudly, not silently run fault-free.
  static FaultPlan from_env();
};

/// Per-world fault state: one instance is shared by every communicator of a
/// Runtime::run world and consulted from whatever thread executes the
/// operation (rank threads or task workers).
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int nranks);

  /// Called by `world_rank` when it begins a communication operation of
  /// `kind`.  Applies delay/stall (sleeps) and kill (throws
  /// core::FaultError).  Returns the operation's per-rank index.
  std::uint64_t on_op(int world_rank, CommOpKind kind);

  /// Called by `world_rank` after it assembled a received payload.  Flips
  /// one deterministic bit and returns true when this corruptible op is
  /// selected by the plan; `bytes` must be > 0 for a flip to land.
  bool maybe_corrupt(int world_rank, CommOpKind kind, void* data,
                     std::size_t bytes);

  /// Like maybe_corrupt for payloads that are not contiguous in memory
  /// (scatter-gather views): identical selection, counting and bit choice
  /// over a logical `bytes`-long stream; when selected, `flip_bit(byte,
  /// mask)` must XOR `mask` into logical byte `byte` of that stream.
  bool maybe_corrupt(
      int world_rank, CommOpKind kind, std::size_t bytes,
      const std::function<void(std::size_t, unsigned char)>& flip_bit);

  /// Called by `world_rank` at a compute-stage boundary with the stage's
  /// output buffer (a flip *opportunity*).  Flips one deterministic bit of
  /// the buffer and returns true when the plan selects this opportunity;
  /// every call counts toward the per-rank opportunity index, selected or
  /// not, so FFTX_FAULT_FLIP_OP addresses a reproducible pipeline stage.
  bool maybe_flip(int world_rank, void* data, std::size_t bytes);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Operations seen so far by `world_rank` (determinism tests).
  [[nodiscard]] std::uint64_t ops_seen(int world_rank) const;
  /// Total bit flips injected (guarded-exchange tests).
  [[nodiscard]] std::uint64_t corruptions() const {
    return corruptions_.load();
  }
  /// Total compute bit flips injected (ABFT coverage tests).
  [[nodiscard]] std::uint64_t flips() const { return flips_.load(); }

 private:
  [[nodiscard]] bool kind_selected(CommOpKind kind) const {
    return plan_.only_kind < 0 || plan_.only_kind == static_cast<int>(kind);
  }

  const FaultPlan plan_;
  std::vector<std::atomic<std::uint64_t>> op_count_;       // per world rank
  std::vector<std::atomic<std::uint64_t>> corrupt_count_;  // per world rank
  std::vector<std::atomic<std::uint64_t>> flip_count_;     // per world rank
  std::atomic<std::uint64_t> corruptions_{0};
  std::atomic<std::uint64_t> flips_{0};
};

}  // namespace fx::mpi
