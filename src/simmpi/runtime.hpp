// Entry point of the simulated-MPI world.
#pragma once

#include <functional>

#include "simmpi/comm.hpp"

namespace fx::mpi {

/// Spawns `nranks` rank threads, hands each its world communicator, and
/// joins them.  If any rank throws, all pending communicator waits abort
/// (so no rank deadlocks on a dead peer) and the first failing rank's
/// exception is rethrown here.
class Runtime {
 public:
  static void run(int nranks, const std::function<void(Comm&)>& body);
};

}  // namespace fx::mpi
