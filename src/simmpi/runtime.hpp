// Entry point of the simulated-MPI world.
#pragma once

#include <functional>

#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/watchdog.hpp"

namespace fx::mpi {

/// Hardening knobs of one simulated world.
struct RunOptions {
  /// Fault injection plan; the default plan injects nothing.
  FaultPlan faults{};
  /// Hang watchdog; enabled with a 60 s window by default.
  WatchdogConfig watchdog{};
  /// Cross-rank collective-matching validator: detects ranks entering
  /// different collectives (kind/seq) under one tag and raises a structured
  /// error naming both sides instead of letting the world hang.
  bool validate_collectives = true;

  /// Environment-driven options: FFTX_FAULT_* (FaultPlan::from_env),
  /// FFTX_WATCHDOG / FFTX_WATCHDOG_MS (WatchdogConfig::from_env) and
  /// FFTX_VALIDATE (0 disables the matching validator).
  static RunOptions from_env();
};

/// Spawns `nranks` rank threads, hands each its world communicator, and
/// joins them.  If any rank throws, the world is poisoned -- every pending
/// and future communicator wait on every rank unwinds with the originating
/// rank's error -- and the first failing rank's exception is rethrown here
/// (a watchdog-detected deadlock is rethrown as core::DeadlockError in
/// preference to the unwind errors it induces).
class Runtime {
 public:
  /// Runs with RunOptions::from_env().
  static void run(int nranks, const std::function<void(Comm&)>& body);
  static void run(int nranks, const RunOptions& opts,
                  const std::function<void(Comm&)>& body);
};

}  // namespace fx::mpi
