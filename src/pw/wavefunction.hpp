// Deterministic, layout-independent workload generation.
//
// The paper's FFTXlib run transforms 128 wave-function bands.  We have no
// DFT ground state to draw coefficients from, so bands are synthesized from
// a hash of (band, Miller indices): every rank layout, task-group count and
// pipeline mode sees the *same* logical wave function, which lets tests
// compare any distributed result bit-for-bit against the serial oracle.
// Coefficients decay as 1/(1+|m|^2), qualitatively matching the decay of
// smooth Kohn-Sham states.
//
// The real-space potential V(r) is likewise a fixed smooth function of the
// grid coordinates (the paper's VOFR applies an operator diagonal in real
// space; its values are irrelevant to performance, only its application
// pattern matters).
#pragma once

#include <complex>

#include "fft/types.hpp"
#include "pw/grid.hpp"
#include "pw/gvectors.hpp"

namespace fx::pw {

/// Coefficient of band `band` at G-vector `g`; deterministic pure function.
fft::cplx wf_coefficient(int band, const GVector& g);

/// Real-space potential at grid node (ix, iy, iz); smooth, O(1) magnitude,
/// deterministic pure function.
double potential_value(std::size_t ix, std::size_t iy, std::size_t iz,
                       const GridDims& dims);

}  // namespace fx::pw
