// FFT grid dimensions derived from the cell and the energy cutoff.
#pragma once

#include <cstddef>

#include "pw/lattice.hpp"

namespace fx::pw {

/// Dimensions of the (cubic-cell) FFT grid.  Row-major storage with x
/// fastest: index = ix + nx*(iy + ny*iz).
struct GridDims {
  std::size_t nx;
  std::size_t ny;
  std::size_t nz;

  [[nodiscard]] std::size_t volume() const { return nx * ny * nz; }
  [[nodiscard]] std::size_t plane() const { return nx * ny; }

  /// Folds a (possibly negative) Miller index into [0, n).
  [[nodiscard]] static std::size_t fold(int m, std::size_t n);

  /// Linear grid index of a Miller triplet.
  [[nodiscard]] std::size_t index_of(int mx, int my, int mz) const {
    return fold(mx, nx) + nx * (fold(my, ny) + ny * fold(mz, nz));
  }
};

/// Smallest good-FFT-size grid that holds the wave-function sphere for the
/// given cutoff: each dimension >= 2*floor(miller_radius) + 1.
GridDims wave_grid(const Cell& cell, double ecutwfc_ry);

/// The dense (charge-density) grid: products of wave functions carry
/// G-vectors up to twice the wave cutoff radius, i.e. ecutrho = 4*ecutwfc
/// -- QE's default dual.  Each dimension is roughly twice the wave grid's.
GridDims dense_grid(const Cell& cell, double ecutwfc_ry);

}  // namespace fx::pw
