// Simulation cell and reciprocal-lattice conventions.
//
// The paper's workload is Quantum ESPRESSO's FFTXlib test case: a cubic
// cell with lattice parameter `alat` (bohr) and a plane-wave kinetic-energy
// cutoff in Rydberg.  In Rydberg atomic units the kinetic energy of a plane
// wave is E[Ry] = |G|^2 with G in bohr^-1.  The cell may be orthorhombic:
// G = 2*pi*(mx/ax, my/ay, mz/az) for integer Miller triplets.
#pragma once

#include <cmath>
#include <numbers>

#include "core/error.hpp"

namespace fx::pw {

/// Orthorhombic simulation cell (cubic when all edges are equal).
struct Cell {
  double ax;  ///< lattice parameter along x, in bohr
  double ay;
  double az;

  /// Cubic cell of edge `alat` -- the common (and the paper's) case.
  explicit constexpr Cell(double alat) : ax(alat), ay(alat), az(alat) {}
  constexpr Cell(double x, double y, double z) : ax(x), ay(y), az(z) {}

  [[nodiscard]] bool is_cubic() const { return ax == ay && ay == az; }

  /// 2*pi/a along each axis: the reciprocal-lattice units in bohr^-1.
  [[nodiscard]] double bx() const { return 2.0 * std::numbers::pi / ax; }
  [[nodiscard]] double by() const { return 2.0 * std::numbers::pi / ay; }
  [[nodiscard]] double bz() const { return 2.0 * std::numbers::pi / az; }

  /// 2*pi/ax (the "tpiba" unit of the cubic case).
  [[nodiscard]] double tpiba() const { return bx(); }

  /// |G|^2 in bohr^-2 of Miller triplet (mx, my, mz).
  [[nodiscard]] double g2(int mx, int my, int mz) const {
    const double gx = bx() * mx;
    const double gy = by() * my;
    const double gz = bz() * mz;
    return gx * gx + gy * gy + gz * gz;
  }

  void validate() const {
    FX_CHECK(ax > 0.0 && ay > 0.0 && az > 0.0,
             "lattice parameters must be positive");
  }

  /// Maximum Miller index along x admitted by the cutoff: |G| <= sqrt(ecut)
  /// (used for grid sizing; per-axis variants below).
  [[nodiscard]] double miller_radius(double ecut_ry) const {
    return miller_radius_x(ecut_ry);
  }
  [[nodiscard]] double miller_radius_x(double ecut_ry) const {
    validate();
    FX_CHECK(ecut_ry > 0.0, "cutoff must be positive");
    return std::sqrt(ecut_ry) / bx();
  }
  [[nodiscard]] double miller_radius_y(double ecut_ry) const {
    validate();
    FX_CHECK(ecut_ry > 0.0, "cutoff must be positive");
    return std::sqrt(ecut_ry) / by();
  }
  [[nodiscard]] double miller_radius_z(double ecut_ry) const {
    validate();
    FX_CHECK(ecut_ry > 0.0, "cutoff must be positive");
    return std::sqrt(ecut_ry) / bz();
  }
};

}  // namespace fx::pw
