// Stick decomposition and plane distribution.
//
// A "stick" is the set of sphere G-vectors sharing one (mx, my) column: a
// 1D pencil along Z on the FFT grid.  The distributed transform assigns
// whole sticks to ranks (balanced by G count, QE's heuristic), performs the
// Z FFTs locally, then scatters stick sections to the ranks owning the
// corresponding Z planes for the XY transforms.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pw/gvectors.hpp"

namespace fx::pw {

/// One Z column of the sphere.
struct Stick {
  int mx;
  int my;
  std::size_t ng;        ///< G-vectors in this stick
  std::size_t g_offset;  ///< offset of this stick's run in stick_ordered_g()
};

/// Groups the sphere into sticks and distributes them over `nproc` ranks.
class StickMap {
 public:
  StickMap(const GSphere& sphere, int nproc);

  /// Rebalance: the same sticks (same order, same stick_ordered_g) spread
  /// over a different rank count.  Used by elastic re-decomposition after a
  /// communicator shrink -- the global coefficient order is preserved, only
  /// ownership moves.
  StickMap(const StickMap& base, int nproc);

  [[nodiscard]] std::span<const Stick> sticks() const { return sticks_; }
  [[nodiscard]] std::size_t num_sticks() const { return sticks_.size(); }
  [[nodiscard]] int nproc() const { return nproc_; }

  /// Owning rank of stick s.
  [[nodiscard]] int owner(std::size_t s) const {
    return owner_[s];
  }
  /// Stick indices owned by `rank`, in ascending stick order.
  [[nodiscard]] std::span<const std::size_t> sticks_of(int rank) const {
    return sticks_of_[static_cast<std::size_t>(rank)];
  }
  /// Total sphere G-vectors owned by `rank`.
  [[nodiscard]] std::size_t ng_of(int rank) const {
    return ng_of_[static_cast<std::size_t>(rank)];
  }

  /// The sphere re-ordered stick by stick (each stick's G-vectors
  /// contiguous, ascending mz inside a stick).  The canonical coefficient
  /// order used by the pipeline's packed wave-function storage.
  [[nodiscard]] std::span<const GVector> stick_ordered_g() const {
    return ordered_;
  }

 private:
  /// Greedy balance of sticks_ over nproc_ ranks (heaviest stick to the
  /// least-loaded rank); fills owner_/sticks_of_/ng_of_.
  void balance();

  int nproc_;
  std::vector<Stick> sticks_;
  std::vector<int> owner_;
  std::vector<std::vector<std::size_t>> sticks_of_;
  std::vector<std::size_t> ng_of_;
  std::vector<GVector> ordered_;
};

/// Block distribution of the nz grid planes over ranks (first nz%nproc
/// ranks hold one extra plane).
class PlaneDist {
 public:
  PlaneDist(std::size_t nz, int nproc);

  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] int nproc() const { return nproc_; }
  [[nodiscard]] std::size_t first(int rank) const {
    return first_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::size_t count(int rank) const {
    return first_[static_cast<std::size_t>(rank) + 1] -
           first_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] int owner(std::size_t iz) const;

 private:
  std::size_t nz_;
  int nproc_;
  std::vector<std::size_t> first_;  // nproc+1 prefix offsets
};

}  // namespace fx::pw
