#include "pw/gvectors.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <tuple>

#include "core/error.hpp"

namespace fx::pw {

GSphere::GSphere(const Cell& cell, double ecutwfc_ry)
    : radius_(cell.miller_radius_x(ecutwfc_ry)),
      radius_y_(cell.miller_radius_y(ecutwfc_ry)),
      radius_z_(cell.miller_radius_z(ecutwfc_ry)) {
  const int bx = static_cast<int>(std::floor(radius_));
  const int by = static_cast<int>(std::floor(radius_y_));
  const int bz = static_cast<int>(std::floor(radius_z_));
  g_.reserve(static_cast<std::size_t>(analytic_count() * 1.1) + 16);
  for (int mx = -bx; mx <= bx; ++mx) {
    for (int my = -by; my <= by; ++my) {
      for (int mz = -bz; mz <= bz; ++mz) {
        // Physical cutoff: E[Ry] = |G|^2 <= ecut (ellipsoid in Miller
        // space for orthorhombic cells).
        if (cell.g2(mx, my, mz) > ecutwfc_ry * (1.0 + 1e-12)) continue;
        const long m2 = static_cast<long>(mx) * mx +
                        static_cast<long>(my) * my +
                        static_cast<long>(mz) * mz;
        g_.push_back(GVector{mx, my, mz, m2});
        mmax_ = std::max({mmax_, std::abs(mx), std::abs(my), std::abs(mz)});
      }
    }
  }
  FX_ASSERT(!g_.empty(), "cutoff sphere contains at least G = 0");
  std::ranges::sort(g_, [](const GVector& a, const GVector& b) {
    return std::tuple(a.m2, a.mx, a.my, a.mz) <
           std::tuple(b.m2, b.mx, b.my, b.mz);
  });
}

double GSphere::analytic_count() const {
  // Lattice points inside the cutoff ellipsoid ~ its volume.
  return 4.0 / 3.0 * std::numbers::pi * radius_ * radius_y_ * radius_z_;
}

}  // namespace fx::pw
