// The G-vector sphere: every reciprocal-lattice vector whose plane wave
// fits under the kinetic-energy cutoff.
//
// Because the cutoff bounds |G| (not the Miller indices separately), the
// FFT domain is a *sphere* embedded in the cubic grid -- the reason the
// distributed transform works on Z "sticks" instead of full planes, and
// ultimately the reason FFTXlib's communication structure exists.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pw/grid.hpp"
#include "pw/lattice.hpp"

namespace fx::pw {

/// One reciprocal-lattice vector (Miller indices + |m|^2).
struct GVector {
  int mx;
  int my;
  int mz;
  long m2;  ///< mx^2 + my^2 + mz^2 (|G|^2 in tpiba^2 units)
};

/// The sorted G-vector sphere for a cutoff.  Deterministic ordering
/// (by shell |m|^2, then mx, my, mz) so every rank enumerates identically.
class GSphere {
 public:
  GSphere(const Cell& cell, double ecutwfc_ry);

  [[nodiscard]] std::span<const GVector> gvectors() const { return g_; }
  [[nodiscard]] std::size_t size() const { return g_.size(); }

  /// Maximum Miller-index magnitude appearing in the sphere.
  [[nodiscard]] int mmax() const { return mmax_; }

  /// Analytic estimate of the sphere cardinality: the volume of the
  /// cutoff ellipsoid in Miller space.  Tests check the count against it.
  [[nodiscard]] double analytic_count() const;

 private:
  double radius_;
  double radius_y_;
  double radius_z_;
  int mmax_ = 0;
  std::vector<GVector> g_;
};

}  // namespace fx::pw
