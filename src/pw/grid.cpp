#include "pw/grid.hpp"

#include <cmath>

#include "fft/good_size.hpp"

namespace fx::pw {

std::size_t GridDims::fold(int m, std::size_t n) {
  const int ni = static_cast<int>(n);
  int f = m % ni;
  if (f < 0) f += ni;
  return static_cast<std::size_t>(f);
}

GridDims wave_grid(const Cell& cell, double ecutwfc_ry) {
  auto dim = [&](double radius) {
    const auto mmax = static_cast<std::size_t>(std::floor(radius));
    return fft::good_fft_size(2 * mmax + 1);
  };
  return GridDims{dim(cell.miller_radius_x(ecutwfc_ry)),
                  dim(cell.miller_radius_y(ecutwfc_ry)),
                  dim(cell.miller_radius_z(ecutwfc_ry))};
}

GridDims dense_grid(const Cell& cell, double ecutwfc_ry) {
  return wave_grid(cell, 4.0 * ecutwfc_ry);
}

}  // namespace fx::pw
