#include "pw/sticks.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <tuple>

#include "core/error.hpp"

namespace fx::pw {

StickMap::StickMap(const GSphere& sphere, int nproc) : nproc_(nproc) {
  FX_CHECK(nproc >= 1, "stick map needs at least one rank");

  // Group the sphere by (mx, my); map iteration gives a deterministic
  // stick order.
  std::map<std::pair<int, int>, std::vector<GVector>> columns;
  for (const GVector& g : sphere.gvectors()) {
    columns[{g.mx, g.my}].push_back(g);
  }

  sticks_.reserve(columns.size());
  ordered_.reserve(sphere.size());
  for (auto& [xy, gs] : columns) {
    std::ranges::sort(gs, [](const GVector& a, const GVector& b) {
      return a.mz < b.mz;
    });
    sticks_.push_back(
        Stick{xy.first, xy.second, gs.size(), ordered_.size()});
    ordered_.insert(ordered_.end(), gs.begin(), gs.end());
  }

  balance();
}

StickMap::StickMap(const StickMap& base, int nproc)
    : nproc_(nproc), sticks_(base.sticks_), ordered_(base.ordered_) {
  FX_CHECK(nproc >= 1, "stick map needs at least one rank");
  balance();
}

// Greedy balance: heaviest stick to the least-loaded rank (ties by rank).
void StickMap::balance() {
  owner_.assign(sticks_.size(), 0);
  sticks_of_.assign(static_cast<std::size_t>(nproc_), {});
  ng_of_.assign(static_cast<std::size_t>(nproc_), 0);

  std::vector<std::size_t> order(sticks_.size());
  std::iota(order.begin(), order.end(), 0);
  std::ranges::sort(order, [&](std::size_t a, std::size_t b) {
    return std::tuple(sticks_[b].ng, b) < std::tuple(sticks_[a].ng, a);
  });
  for (std::size_t s : order) {
    int best = 0;
    for (int r = 1; r < nproc_; ++r) {
      if (ng_of_[static_cast<std::size_t>(r)] <
          ng_of_[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    owner_[s] = best;
    ng_of_[static_cast<std::size_t>(best)] += sticks_[s].ng;
  }
  for (std::size_t s = 0; s < sticks_.size(); ++s) {
    sticks_of_[static_cast<std::size_t>(owner_[s])].push_back(s);
  }
}

PlaneDist::PlaneDist(std::size_t nz, int nproc) : nz_(nz), nproc_(nproc) {
  FX_CHECK(nproc >= 1, "plane distribution needs at least one rank");
  first_.resize(static_cast<std::size_t>(nproc) + 1, 0);
  const std::size_t base = nz / static_cast<std::size_t>(nproc);
  const std::size_t extra = nz % static_cast<std::size_t>(nproc);
  for (int r = 0; r < nproc; ++r) {
    const auto ru = static_cast<std::size_t>(r);
    first_[ru + 1] = first_[ru] + base + (ru < extra ? 1 : 0);
  }
  FX_ASSERT(first_.back() == nz);
}

int PlaneDist::owner(std::size_t iz) const {
  FX_CHECK(iz < nz_);
  const auto it = std::upper_bound(first_.begin(), first_.end(), iz);
  return static_cast<int>(it - first_.begin()) - 1;
}

}  // namespace fx::pw
