#include "pw/wavefunction.hpp"

#include <cmath>
#include <numbers>

#include "core/rng.hpp"

namespace fx::pw {

fft::cplx wf_coefficient(int band, const GVector& g) {
  // Two splitmix64 draws keyed by (band, mx, my, mz); stateless and
  // independent of enumeration order.
  std::uint64_t key = 0x9e3779b97f4a7c15ULL;
  key ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(band) + 4096);
  key = core::splitmix64(key);
  key ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(g.mx) + 4096);
  key = core::splitmix64(key);
  key ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(g.my) + 4096);
  key = core::splitmix64(key);
  key ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(g.mz) + 4096);
  const std::uint64_t h1 = core::splitmix64(key);
  const std::uint64_t h2 = core::splitmix64(key);

  auto unit = [](std::uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  };
  const double decay = 1.0 / (1.0 + static_cast<double>(g.m2));
  return fft::cplx{unit(h1) * decay, unit(h2) * decay};
}

double potential_value(std::size_t ix, std::size_t iy, std::size_t iz,
                       const GridDims& dims) {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  const double x = static_cast<double>(ix) / static_cast<double>(dims.nx);
  const double y = static_cast<double>(iy) / static_cast<double>(dims.ny);
  const double z = static_cast<double>(iz) / static_cast<double>(dims.nz);
  return 1.0 + 0.25 * std::sin(kTwoPi * x) * std::cos(kTwoPi * y) +
         0.15 * std::cos(kTwoPi * (x + z)) + 0.1 * std::sin(kTwoPi * 2.0 * y) * std::sin(kTwoPi * z);
}

}  // namespace fx::pw
