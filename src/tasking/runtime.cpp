#include "tasking/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "trace/tracer.hpp"

namespace fx::task {

namespace detail {

/// Completion counter of one taskloop invocation (lives on the waiter's
/// stack; all children finish before the waiter returns).  `error` holds
/// the first chunk failure, rethrown at the loop's join.
struct LoopSync {
  std::size_t pending = 0;
  std::exception_ptr error;
};

struct TaskNode {
  std::string label;
  std::function<void()> fn;
  std::function<bool(bool)> poll;  ///< waitable tasks; empty otherwise
  int pending = 0;      ///< unfinished predecessor count
  int priority = 0;     ///< scheduling hint (Priority policy only)
  bool finished = false;
  double t_ready = -1.0;         ///< queue-wait stamp; < 0 once reported
  std::uint64_t submit_seq = 0;  ///< submission order, for blocking escalation
  std::vector<std::shared_ptr<TaskNode>> successors;
  std::shared_ptr<TaskNode> parent;  ///< submitting task (keeps it alive)
  LoopSync* sync = nullptr;          ///< taskloop group, if a loop child
};

namespace {
// The task currently executing on this thread (nullptr on the orchestrator
// and on idle workers); used to parent nested submissions and to restrict
// taskloop helping to own children.
thread_local std::shared_ptr<TaskNode> tl_current;
thread_local int tl_worker_id = -1;
}  // namespace

}  // namespace detail

int current_worker_id() { return detail::tl_worker_id; }

int default_task_threads() {
  int n = 1;
  core::env_int_in("FFTX_TASK_THREADS", n, 1, 1024, "tasking");
  return n;
}

using detail::TaskNode;

namespace {
// Ready-queue depth sampled at every push; the histogram's quantiles show
// how much parallel slack the scheduler typically has.
core::Histogram& queue_depth_metric() {
  static core::Histogram& h =
      core::MetricsRegistry::global().histogram("task.queue_depth");
  return h;
}
}  // namespace

TaskRuntime::TaskRuntime(int nthreads, SchedulerPolicy policy)
    : nthreads_(nthreads), policy_(policy) {
  FX_CHECK(nthreads >= 1, "task runtime needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

TaskRuntime::~TaskRuntime() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    cv_ready_.notify_all();
  }
  workers_.clear();  // joins
}

void TaskRuntime::set_observer(TaskObserver observer) {
  std::lock_guard lock(mu_);
  observer_ = std::move(observer);
  want_queue_wait_ = static_cast<bool>(observer_.on_queue_wait);
}

void TaskRuntime::set_tracer(trace::Tracer* tracer, int rank) {
  std::lock_guard lock(mu_);
  tracer_ = tracer;
  trace_rank_ = rank;
}

std::size_t TaskRuntime::tasks_executed() const {
  std::lock_guard lock(mu_);
  return executed_;
}

std::size_t TaskRuntime::edges_created() const {
  std::lock_guard lock(mu_);
  return edges_;
}

void TaskRuntime::link_dependencies_locked(const NodePtr& node,
                                           const std::vector<Dep>& deps) {
  auto add_edge = [&](const NodePtr& pred) {
    if (!pred || pred.get() == node.get() || pred->finished) return;
    pred->successors.push_back(node);
    ++node->pending;
    ++edges_;
  };

  for (const Dep& dep : deps) {
    if (dep.len == 0) continue;
    const char* b = static_cast<const char*>(dep.addr);
    const char* e = b + dep.len;
    const bool writes = dep.mode != DepMode::In;
    bool exact_found = false;

    for (Range& range : ranges_) {
      const bool overlap = b < range.end && range.begin < e;
      if (!overlap) continue;
      // Reader-after-writer always; writers additionally order after the
      // existing readers (WAR) and writer (WAW).
      add_edge(range.last_writer);
      if (writes) {
        for (const NodePtr& r : range.readers) add_edge(r);
      }
      const bool exact = range.begin == b && range.end == e;
      if (writes) {
        // Conservative: the new writer supersedes ordering state of every
        // overlapping range (may over-serialize partial overlaps; never
        // under-serializes).
        range.last_writer = node;
        range.readers.clear();
      } else if (exact) {
        range.readers.push_back(node);
      } else {
        range.readers.push_back(node);  // conservative reader registration
      }
      exact_found = exact_found || exact;
    }
    if (!exact_found) {
      Range fresh{b, e, nullptr, {}};
      if (writes) {
        fresh.last_writer = node;
      } else {
        fresh.readers.push_back(node);
      }
      ranges_.push_back(std::move(fresh));
    }
  }
}

void TaskRuntime::submit(std::string label, std::vector<Dep> deps,
                         std::function<void()> fn, int priority) {
  auto node = std::make_shared<TaskNode>();
  node->label = std::move(label);
  node->fn = std::move(fn);
  node->priority = priority;
  node->parent = detail::tl_current;

  std::lock_guard lock(mu_);
  FX_CHECK(!stop_, "submit after TaskRuntime shutdown");
  node->submit_seq = ++submit_next_;
  ++outstanding_;
  link_dependencies_locked(node, deps);
  if (node->pending == 0) {
    stamp_ready_locked(node);
    ready_.push_back(node);
    queue_depth_metric().record(static_cast<double>(ready_.size()));
    cv_ready_.notify_one();
  }
}

void TaskRuntime::submit_waitable(std::string label, std::vector<Dep> deps,
                                  std::function<bool(bool)> poll,
                                  int priority) {
  FX_CHECK(static_cast<bool>(poll), "waitable task needs a poll function");
  auto node = std::make_shared<TaskNode>();
  node->label = std::move(label);
  node->poll = std::move(poll);
  node->priority = priority;
  node->parent = detail::tl_current;

  std::lock_guard lock(mu_);
  FX_CHECK(!stop_, "submit after TaskRuntime shutdown");
  node->submit_seq = ++submit_next_;
  ++outstanding_;
  link_dependencies_locked(node, deps);
  if (node->pending == 0) {
    stamp_ready_locked(node);
    ready_.push_back(node);
    queue_depth_metric().record(static_cast<double>(ready_.size()));
    cv_ready_.notify_one();
  }
}

void TaskRuntime::stamp_ready_locked(const NodePtr& node) {
  if (want_queue_wait_) node->t_ready = core::WallTimer::now();
}

TaskRuntime::NodePtr TaskRuntime::pop_ready_locked() {
  if (ready_.empty()) return nullptr;
  NodePtr node;
  switch (policy_) {
    case SchedulerPolicy::Fifo: {
      node = ready_.front();
      ready_.pop_front();
      break;
    }
    case SchedulerPolicy::Lifo: {
      node = ready_.back();
      ready_.pop_back();
      break;
    }
    case SchedulerPolicy::Priority: {
      // Highest priority wins; FIFO among equals.
      auto best = ready_.begin();
      for (auto it = std::next(ready_.begin()); it != ready_.end(); ++it) {
        if ((*it)->priority > (*best)->priority) best = it;
      }
      node = *best;
      ready_.erase(best);
      break;
    }
  }
  return node;
}

TaskRuntime::NodePtr TaskRuntime::pop_child_of_locked(
    const detail::TaskNode* parent) {
  // Scan for a ready task spawned by `parent`'s active taskloop.  The scan
  // is linear but the ready queue is short in practice.
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    if ((*it)->parent.get() == parent && (*it)->sync != nullptr) {
      NodePtr node = *it;
      ready_.erase(it);
      return node;
    }
  }
  return nullptr;
}

void TaskRuntime::run_task(const NodePtr& node, int worker_id) {
  TaskObserver observer;
  trace::Tracer* tracer = nullptr;
  int trace_rank = 0;
  double t_ready = -1.0;
  {
    std::lock_guard lock(mu_);
    observer = observer_;
    tracer = tracer_;
    trace_rank = trace_rank_;
    t_ready = std::exchange(node->t_ready, -1.0);
  }
  if (t_ready >= 0.0 && observer.on_queue_wait) {
    observer.on_queue_wait(worker_id, node->label,
                           core::WallTimer::now() - t_ready);
  }
  // A helping worker suspends its current task; restore it afterwards.
  NodePtr previous = std::exchange(detail::tl_current, node);
  const double t_begin =
      (tracer != nullptr || observer.on_start || observer.on_end)
          ? core::WallTimer::now()
          : 0.0;
  if (observer.on_start) observer.on_start(worker_id, node->label, t_begin);
  try {
    node->fn();
  } catch (...) {
    // Wrap in TaskError so join points report which task died; exceptions
    // that already carry a task label (nested taskloop joins) pass through.
    std::exception_ptr err;
    try {
      throw;
    } catch (const core::TaskError&) {
      err = std::current_exception();
    } catch (const std::exception& e) {
      err = std::make_exception_ptr(core::TaskError(node->label, e.what()));
    } catch (...) {
      err = std::make_exception_ptr(
          core::TaskError(node->label, "unknown exception"));
    }
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = err;
    if (node->sync != nullptr && !node->sync->error) node->sync->error = err;
  }
  if (tracer != nullptr || observer.on_end) {
    const double t_end = core::WallTimer::now();
    if (observer.on_end) observer.on_end(worker_id, node->label, t_end);
    if (tracer != nullptr) {
      tracer->record_task(
          {trace_rank, worker_id, node->label, t_begin, t_end});
    }
  }
  detail::tl_current = std::move(previous);
  finish_task(node);
}

bool TaskRuntime::run_waitable(const NodePtr& node, int worker_id,
                               bool last_chance) {
  TaskObserver observer;
  trace::Tracer* tracer = nullptr;
  int trace_rank = 0;
  double t_ready = -1.0;
  {
    std::lock_guard lock(mu_);
    observer = observer_;
    tracer = tracer_;
    trace_rank = trace_rank_;
    t_ready = std::exchange(node->t_ready, -1.0);
  }
  if (t_ready >= 0.0 && observer.on_queue_wait) {
    observer.on_queue_wait(worker_id, node->label,
                           core::WallTimer::now() - t_ready);
  }
  const double t_begin =
      (tracer != nullptr || observer.on_start || observer.on_end)
          ? core::WallTimer::now()
          : 0.0;
  bool completed = true;
  NodePtr previous = std::exchange(detail::tl_current, node);
  try {
    completed = node->poll(last_chance);
  } catch (...) {
    // A throwing poll retires the task with that error, exactly like a
    // throwing fn in run_task.
    std::exception_ptr err;
    try {
      throw;
    } catch (const core::TaskError&) {
      err = std::current_exception();
    } catch (const std::exception& e) {
      err = std::make_exception_ptr(core::TaskError(node->label, e.what()));
    } catch (...) {
      err = std::make_exception_ptr(
          core::TaskError(node->label, "unknown exception"));
    }
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = err;
    if (node->sync != nullptr && !node->sync->error) node->sync->error = err;
  }
  detail::tl_current = std::move(previous);
  if (!completed) {
    std::lock_guard lock(mu_);
    parked_.push_back(node);
    return false;
  }
  // Lifecycle events fire once, around the completing attempt only; the
  // span then measures the *unhidden* wait (near zero when peers posted
  // during other bands' compute, which is the overlap win being measured).
  if (observer.on_start) observer.on_start(worker_id, node->label, t_begin);
  if (tracer != nullptr || observer.on_end) {
    const double t_end = core::WallTimer::now();
    if (observer.on_end) observer.on_end(worker_id, node->label, t_end);
    if (tracer != nullptr) {
      tracer->record_task({trace_rank, worker_id, node->label, t_begin,
                           t_end});
    }
  }
  finish_task(node);
  return true;
}

void TaskRuntime::sweep_parked(int worker_id) {
  // One nonblocking completion check per currently-parked task; a task
  // that stays incomplete re-parks at the back, so the budget taken up
  // front bounds the sweep even as polls rotate the deque.
  std::size_t budget;
  {
    std::lock_guard lock(mu_);
    budget = parked_.size();
  }
  while (budget-- > 0) {
    NodePtr node;
    {
      std::lock_guard lock(mu_);
      if (parked_.empty()) return;
      node = parked_.front();
      parked_.pop_front();
    }
    run_waitable(node, worker_id, /*last_chance=*/false);
  }
}

TaskRuntime::NodePtr TaskRuntime::take_oldest_parked_locked() {
  // Oldest by SUBMISSION order, not by when the task first parked: in SPMD
  // use every rank submits the same graph in the same order, so this picks
  // the same (globally oldest) in-flight operation on every rank -- the one
  // op whose peers have all posted or can still post.  Park order is a
  // scheduling accident and may differ per rank; escalating by it can block
  // rank A on a young op whose completion needs rank B to poll an older,
  // already-completable parked wait that no idle worker ever revisits.
  auto best = parked_.begin();
  for (auto it = std::next(parked_.begin()); it != parked_.end(); ++it) {
    if ((*it)->submit_seq < (*best)->submit_seq) best = it;
  }
  NodePtr node = *best;
  parked_.erase(best);
  return node;
}

void TaskRuntime::finish_task(const NodePtr& node) {
  std::lock_guard lock(mu_);
  node->finished = true;
  node->fn = nullptr;
  node->poll = nullptr;
  for (const NodePtr& succ : node->successors) {
    if (--succ->pending == 0) {
      stamp_ready_locked(succ);
      ready_.push_back(succ);
      queue_depth_metric().record(static_cast<double>(ready_.size()));
      cv_ready_.notify_one();
    }
  }
  node->successors.clear();
  ++executed_;
  --outstanding_;
  if (node->sync != nullptr) {
    --node->sync->pending;
  }
  if (outstanding_ == 0) {
    // Graph drained: dependency history can never order anything again.
    ranges_.clear();
  }
  cv_done_.notify_all();
}

void TaskRuntime::worker_loop(int worker_id) {
  detail::tl_worker_id = worker_id;
  for (;;) {
    NodePtr node;
    bool last_chance = false;
    {
      std::unique_lock lock(mu_);
      const auto runnable = [&] {
        return stop_ || !ready_.empty() ||
               (!parked_.empty() && !blocking_waiter_);
      };
      while (!runnable()) {
        if (parked_.empty()) {
          cv_ready_.wait(lock);
        } else {
          // The blocking slot is taken and nothing is ready.  The claimed
          // wait was the oldest *at claim time*; an older or newer wait that
          // parked afterwards can become completable with no task completion
          // ever waking a worker to poll it (its peers may in turn be
          // blocked on ops this rank's parked chain must post).  So idle
          // workers keep nonblocking sweeps flowing instead of sleeping.
          cv_ready_.wait_for(lock, std::chrono::microseconds(200));
          if (!runnable() && !parked_.empty()) {
            lock.unlock();
            sweep_parked(worker_id);
            lock.lock();
          }
        }
      }
      if (!ready_.empty()) {
        node = pop_ready_locked();
      } else if (stop_) {
        return;  // drained (parked tasks are abandoned at shutdown)
      } else if (!parked_.empty() && !blocking_waiter_) {
        // Nothing runnable: escalate the oldest parked wait to a blocking
        // one.  Exactly one blocking waiter at a time keeps the other
        // workers available for tasks whose posts the oldest collective's
        // completion may transitively require on peer ranks.
        node = take_oldest_parked_locked();
        blocking_waiter_ = true;
        last_chance = true;
      } else {
        continue;  // lost the race for the blocking slot
      }
    }
    if (node->poll) {
      run_waitable(node, worker_id, last_chance);
      if (last_chance) {
        std::lock_guard lock(mu_);
        blocking_waiter_ = false;
        if (!parked_.empty()) cv_ready_.notify_one();
      }
    } else {
      run_task(node, worker_id);
    }
    sweep_parked(worker_id);
  }
}

void TaskRuntime::taskwait() {
  FX_CHECK(detail::tl_current == nullptr,
           "taskwait must be called from the orchestrator thread; "
           "inside a task use taskloop for nested joins");
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return outstanding_ == 0; });
  ranges_.clear();
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void TaskRuntime::taskloop(const std::string& label, std::size_t begin,
                           std::size_t end, std::size_t grain,
                           const std::function<void(std::size_t, std::size_t)>&
                               body) {
  FX_CHECK(grain >= 1, "taskloop grain must be positive");
  if (begin >= end) return;

  detail::LoopSync sync;
  const NodePtr caller = detail::tl_current;

  {
    std::lock_guard lock(mu_);
    FX_CHECK(!stop_, "taskloop after TaskRuntime shutdown");
    std::size_t index = 0;
    for (std::size_t lo = begin; lo < end; lo += grain, ++index) {
      const std::size_t hi = std::min(end, lo + grain);
      auto node = std::make_shared<TaskNode>();
      node->label = core::cat(label, "#", index);
      node->fn = [&body, lo, hi] { body(lo, hi); };
      node->parent = caller;
      node->sync = &sync;
      ++sync.pending;
      ++outstanding_;
      stamp_ready_locked(node);
      ready_.push_back(node);
    }
    queue_depth_metric().record(static_cast<double>(ready_.size()));
    cv_ready_.notify_all();
  }

  // Help execute our own chunks; idle workers pick them up from the global
  // ready queue concurrently.  We never run foreign tasks here (they might
  // block on a collective that transitively needs the task we suspended).
  const int worker_id = detail::tl_worker_id;
  for (;;) {
    NodePtr chunk;
    {
      std::unique_lock lock(mu_);
      for (;;) {
        if (sync.pending == 0) {
          if (sync.error) {
            std::exception_ptr e = sync.error;
            // Delivered here; don't report the same failure again at
            // taskwait (a caller task that lets it escape re-records it).
            if (first_error_ == e) first_error_ = nullptr;
            lock.unlock();
            std::rethrow_exception(e);  // first failing chunk, TaskError
          }
          return;
        }
        chunk = pop_child_of_locked(caller.get());
        if (chunk) break;
        cv_done_.wait(lock);
      }
    }
    run_task(chunk, worker_id);
  }
}

}  // namespace fx::task
