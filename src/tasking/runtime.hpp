// OmpSs-style task runtime with data dependencies.
//
// This substrate plays the role of OmpSs/Nanos++ in the paper: tasks are
// submitted with in/out/inout address-range clauses; the runtime builds the
// dependency graph dynamically and a pool of worker threads executes tasks
// as their predecessors retire.  Figures 4 and 5 of the paper map onto
// submit() calls with the corresponding dep lists.
//
// Scheduling policy and deadlock freedom
// --------------------------------------
// Ready tasks are dispatched FIFO (creation order) by default.  This is not
// a style choice: pipeline tasks block inside simmpi collectives, and FIFO
// dispatch guarantees that the globally-oldest unfinished band is started
// on every rank, so some collective always has all participants and the
// system cannot deadlock (see tests/tasking and DESIGN.md).  The LIFO
// policy exists for the scheduler ablation bench and must only be used for
// non-communicating task graphs.
//
// taskloop() submits child tasks of the calling task and blocks until they
// finish; while blocked, the calling worker executes only its *own*
// children (never arbitrary ready tasks, which might block on a collective
// the waiting task itself is upstream of).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

namespace fx::trace {
class Tracer;
}

namespace fx::task {

/// Access mode of a dependency clause.
enum class DepMode { In, Out, InOut };

/// One dependency clause: a byte range and how the task accesses it.
/// Overlapping ranges are serialized conservatively (reader-after-writer,
/// writer-after-writer, writer-after-reader).
struct Dep {
  const void* addr;
  std::size_t len;
  DepMode mode;
};

/// Clause helpers mirroring the paper's pragma spelling:
///   submit(label, {in(aux), out(psis)}, fn);
template <typename T>
Dep in(const T& x) {
  return {&x, sizeof(T), DepMode::In};
}
template <typename T>
Dep out(T& x) {
  return {&x, sizeof(T), DepMode::Out};
}
template <typename T>
Dep inout(T& x) {
  return {&x, sizeof(T), DepMode::InOut};
}
template <typename T>
Dep in(std::span<const T> s) {
  return {s.data(), s.size_bytes(), DepMode::In};
}
template <typename T>
Dep out(std::span<T> s) {
  return {s.data(), s.size_bytes(), DepMode::Out};
}
template <typename T>
Dep inout(std::span<T> s) {
  return {s.data(), s.size_bytes(), DepMode::InOut};
}

/// Dispatch order of the ready queue (see file comment).  Priority picks
/// the highest-priority ready task (FIFO among equals, so priority 0
/// everywhere degenerates to FIFO and keeps the deadlock-freedom argument);
/// Lifo is for non-communicating graphs only.
enum class SchedulerPolicy { Fifo, Lifo, Priority };

/// Worker id of the calling thread (0-based), or -1 when called outside a
/// task worker (e.g. on the orchestrator thread).  Tracing uses this to
/// attribute compute phases to timeline rows.
int current_worker_id();

/// Default worker-thread count from the validated FFTX_TASK_THREADS knob
/// (1 when unset; garbage and out-of-range values throw core::Error).
int default_task_threads();

/// Task lifecycle callbacks (consumed by the tracer).  Invoked on the
/// executing worker thread.  on_queue_wait fires once per task at its
/// first dispatch with the seconds it sat ready-but-unscheduled, so the
/// observatory can blame scheduling delay separately from compute.
struct TaskObserver {
  std::function<void(int worker, const std::string& label, double t)> on_start;
  std::function<void(int worker, const std::string& label, double t)> on_end;
  std::function<void(int worker, const std::string& label, double wait_s)>
      on_queue_wait;
};

namespace detail {
struct TaskNode;
}

class TaskRuntime {
 public:
  /// Spawns `nthreads` workers (>= 1).  The constructing thread is the
  /// orchestrator; it submits tasks and calls taskwait() but does not
  /// execute tasks itself.
  explicit TaskRuntime(int nthreads,
                       SchedulerPolicy policy = SchedulerPolicy::Fifo);
  ~TaskRuntime();

  TaskRuntime(const TaskRuntime&) = delete;
  TaskRuntime& operator=(const TaskRuntime&) = delete;
  TaskRuntime(TaskRuntime&&) = delete;
  TaskRuntime& operator=(TaskRuntime&&) = delete;

  /// Submits a task.  Dependencies are evaluated against all previously
  /// submitted tasks' clauses, exactly like OmpSs's dynamic dependency
  /// graph.  Thread-safe (tasks may submit tasks).  `priority` matters
  /// only under SchedulerPolicy::Priority (higher runs earlier).
  void submit(std::string label, std::vector<Dep> deps,
              std::function<void()> fn, int priority = 0);

  /// Convenience for dependency-free tasks.
  void submit(std::string label, std::function<void()> fn,
              int priority = 0) {
    submit(std::move(label), {}, std::move(fn), priority);
  }

  /// Submits a completion-waitable task: `poll(false)` must make a cheap
  /// nonblocking completion check (e.g. mpi::Request::test) and return
  /// whether the task retired; incomplete tasks are parked off-worker and
  /// re-polled opportunistically instead of pinning a thread.  When the
  /// runtime has nothing else to run, ONE worker re-dispatches the parked
  /// task with the lowest SUBMISSION sequence with `poll(true)`, which must
  /// block until done (e.g. mpi::Request::wait).  Restricting the blocking
  /// slot to the earliest-submitted parked task preserves the FIFO
  /// deadlock-freedom argument: ranks submitting identical graphs escalate
  /// the same (globally oldest) in-flight collective, which every rank has
  /// posted or can still post without blocking on a younger one.  (Park
  /// order would not do: it is a per-rank scheduling accident, and
  /// escalating by it can block one rank on a young op while an older,
  /// already-completable wait sits parked with no idle worker to poll it.)
  /// While the blocking slot is held, idle workers keep periodic
  /// nonblocking sweeps over the parked set, so a wait that parks (or
  /// completes) after the slot was claimed still retires without any task
  /// completion to wake a worker.  Successors release at whichever poll
  /// returns true; a throwing poll completes the task with that error.
  void submit_waitable(std::string label, std::vector<Dep> deps,
                       std::function<bool(bool last_chance)> poll,
                       int priority = 0);

  /// Blocks until every task submitted so far (including transitively
  /// spawned ones) has finished.  Rethrows the first task exception,
  /// wrapped in core::TaskError carrying the failing task's label.
  /// Must be called from the orchestrator thread.
  void taskwait();

  /// OmpSs/OpenMP `taskloop`: splits [begin, end) into chunks of `grain`
  /// iterations, runs each chunk as a child task of the calling task, and
  /// returns when all chunks are done, rethrowing the first chunk failure
  /// (as core::TaskError) at the join.  Callable from inside a task (the
  /// paper's nested cft_2z / cft_2xy loops) or from the orchestrator.
  void taskloop(const std::string& label, std::size_t begin, std::size_t end,
                std::size_t grain,
                const std::function<void(std::size_t, std::size_t)>& body);

  void set_observer(TaskObserver observer);

  /// Routes task lifecycle events straight into `tracer` as TaskEvents
  /// attributed to `rank` (the idiomatic replacement for hand-rolled
  /// start/end observers).  Events are recorded on the executing worker's
  /// lock-free tracer shard.  Pass nullptr to detach.
  void set_tracer(trace::Tracer* tracer, int rank);

  [[nodiscard]] int num_threads() const { return nthreads_; }
  [[nodiscard]] SchedulerPolicy policy() const { return policy_; }

  /// Total tasks executed and dependency edges created (for tests/benches).
  [[nodiscard]] std::size_t tasks_executed() const;
  [[nodiscard]] std::size_t edges_created() const;

 private:
  using NodePtr = std::shared_ptr<detail::TaskNode>;

  void worker_loop(int worker_id);
  void run_task(const NodePtr& node, int worker_id);
  bool run_waitable(const NodePtr& node, int worker_id, bool last_chance);
  void sweep_parked(int worker_id);
  void finish_task(const NodePtr& node);
  NodePtr pop_ready_locked();
  NodePtr pop_child_of_locked(const detail::TaskNode* parent);
  NodePtr take_oldest_parked_locked();
  void stamp_ready_locked(const NodePtr& node);
  void link_dependencies_locked(const NodePtr& node,
                                const std::vector<Dep>& deps);

  const int nthreads_;
  const SchedulerPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_ready_;  // workers wait for ready tasks
  std::condition_variable cv_done_;   // taskwait / taskloop completion
  bool stop_ = false;

  std::deque<NodePtr> ready_;
  std::deque<NodePtr> parked_;   // incomplete waitable tasks
  bool blocking_waiter_ = false;  // one worker at a time may poll(true)
  std::uint64_t submit_next_ = 0;  // submission stamps (blocking escalation)
  bool want_queue_wait_ = false;  // observer_.on_queue_wait installed
  std::size_t outstanding_ = 0;  // submitted but not yet finished
  std::size_t executed_ = 0;
  std::size_t edges_ = 0;
  std::exception_ptr first_error_;

  // Live address ranges with their last writer / readers (dependency state).
  struct Range {
    const char* begin;
    const char* end;
    NodePtr last_writer;
    std::vector<NodePtr> readers;
  };
  std::vector<Range> ranges_;

  TaskObserver observer_;
  trace::Tracer* tracer_ = nullptr;  // guarded by mu_; shards are lock-free
  int trace_rank_ = 0;
  std::vector<std::jthread> workers_;
};

}  // namespace fx::task
