// Discrete-event simulator of the virtual program on the machine model.
//
// Time advances between *events* (a compute step finishing, a collective's
// latency or payload stage completing).  Between events every running
// activity progresses at a piecewise-constant rate:
//
//   rate_i = weight_i * base_ipc(phase_i) * issue_share * bw_factor_i * freq
//
// where issue_share = min(1, cores / active_threads) models hyper-thread
// issue sharing, and bw_factor_i comes from max-min fair (water-filling)
// allocation of the node memory bandwidth across the activities' byte
// demands -- the resource-contention mechanism at the heart of the paper.
//
// Scheduling mirrors the real runtimes: each rank has `threads_per_rank`
// virtual workers; iteration chains dispatch FIFO; collectives block the
// issuing worker until all participants arrive and the shared-bandwidth
// transfer completes; parallelizable steps (taskloop'd FFTs) fan out over
// currently idle workers when the rank's ready queue is empty, exactly
// like the help-first taskloop of the tasking runtime.
//
// The simulator emits the same trace event streams as the real backend
// (with virtual timestamps), so the efficiency analyzer and the timeline
// renderers run unchanged on model output -- that is how every table and
// figure of the paper is regenerated deterministically.
#pragma once

#include "fftx/pipeline.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/program.hpp"
#include "trace/tracer.hpp"

namespace fx::model {

struct SimConfig {
  int threads_per_rank = 1;  ///< 1 for the Original mode
  /// TaskPerStep re-queues a chain after every step (steps are separate
  /// tasks); the other modes keep a chain on its worker start to finish.
  fftx::PipelineMode mode = fftx::PipelineMode::Original;
};

struct SimResult {
  double makespan = 0.0;        ///< virtual seconds for the full band loop
  double total_compute = 0.0;   ///< sum of all compute activity durations
  double total_transfer = 0.0;  ///< sum of all collective transfer stages
  std::size_t events = 0;       ///< DES events processed
};

/// Runs the bundle to completion.  If `tracer` is non-null it receives
/// compute and communication events with virtual timestamps.
SimResult simulate(const ProgramBundle& bundle, const MachineConfig& machine,
                   const SimConfig& cfg, trace::Tracer* tracer);

}  // namespace fx::model
