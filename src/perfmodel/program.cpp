#include "perfmodel/program.hpp"

#include "core/error.hpp"

namespace fx::model {

using trace::PhaseKind;

ProgramBundle build_program(const fftx::Descriptor& desc,
                            const ProgramConfig& cfg) {
  FX_CHECK(cfg.num_bands >= 1 && cfg.num_bands % desc.ntg() == 0,
           "num_bands must be a positive multiple of ntg");
  const int P = desc.nproc();
  const int T = desc.ntg();
  const int R = desc.group_size();
  const std::size_t nz = desc.dims().nz;
  const std::size_t nxny = desc.dims().plane();
  const bool fanout = cfg.mode == fftx::PipelineMode::TaskPerStep ||
                      cfg.mode == fftx::PipelineMode::Combined;

  ProgramBundle bundle;
  bundle.num_bands = cfg.num_bands;
  bundle.ntg = T;

  // Communicator groups: pack comms first (one per group rank b), then
  // scatter comms (one per task group g).
  bundle.comm_members.resize(static_cast<std::size_t>(R + T));
  for (int b = 0; b < R; ++b) {
    for (int m = 0; m < T; ++m) {
      bundle.comm_members[static_cast<std::size_t>(b)].push_back(
          desc.world_rank(b, m));
    }
  }
  for (int g = 0; g < T; ++g) {
    for (int b = 0; b < R; ++b) {
      bundle.comm_members[static_cast<std::size_t>(R + g)].push_back(
          desc.world_rank(b, g));
    }
  }

  const int iters = cfg.num_bands / T;
  bundle.programs.resize(static_cast<std::size_t>(P));

  for (int w = 0; w < P; ++w) {
    const int g = desc.group_of(w);
    const int b = desc.group_rank_of(w);
    const std::size_t ng_w = desc.ng_world(w);
    const std::size_t ng_grp = desc.ng_group(b);
    const std::size_t nst = desc.nsticks_group(b);
    const std::size_t npz = desc.npz(b);
    const std::size_t stot = desc.total_sticks();
    const int pack_comm = b;
    const int scat_comm = R + g;

    auto& prog = bundle.programs[static_cast<std::size_t>(w)];
    prog.resize(static_cast<std::size_t>(iters));
    for (int it = 0; it < iters; ++it) {
      auto& chain = prog[static_cast<std::size_t>(it)];

      auto compute = [&](PhaseKind phase, trace::PhaseCost cost,
                         bool parallel = false, std::size_t chunks = 1) {
        Step s;
        s.kind = Step::Kind::Compute;
        s.phase = phase;
        s.instructions = cost.instructions;
        s.bytes = cost.bytes;
        s.parallelizable = parallel && fanout;
        s.chunks = chunks;
        chain.push_back(s);
      };
      auto collective = [&](int group, std::size_t elems) {
        Step s;
        s.kind = Step::Kind::Collective;
        s.op = mpi::CommOpKind::Alltoallv;
        s.comm_group = group;
        s.comm_bytes = elems * sizeof(fft::cplx);
        chain.push_back(s);
      };
      auto ceil_div = [](std::size_t a, std::size_t d) {
        return d == 0 ? std::size_t{1} : (a + d - 1) / d;
      };

      // Mirrors BandFftPipeline::do_iteration step for step (including the
      // ntg == 1 shortcut that elides the band-grouping layer).
      if (T == 1) {
        compute(PhaseKind::Pack, trace::copy_cost(ng_w));
      } else {
        compute(PhaseKind::Pack,
                trace::copy_cost(static_cast<std::size_t>(T) * ng_w));
        collective(pack_comm, static_cast<std::size_t>(T) * ng_w);
      }
      compute(PhaseKind::PsiPrep, trace::copy_cost(nst * nz + ng_grp));
      compute(PhaseKind::FftZ, trace::fft_cost(nst * nz, nz), true,
              ceil_div(nst, cfg.grain_z));
      compute(PhaseKind::Scatter, trace::copy_cost(nst * nz));
      collective(scat_comm, nst * nz);
      compute(PhaseKind::Scatter, trace::copy_cost(npz * nxny + stot * npz));
      compute(PhaseKind::FftXy, trace::fft_cost(npz * nxny, nxny), true,
              ceil_div(npz, cfg.grain_xy));
      if (cfg.apply_potential) {
        compute(PhaseKind::Vofr, trace::vofr_cost(npz * nxny));
      }
      compute(PhaseKind::FftXy, trace::fft_cost(npz * nxny, nxny), true,
              ceil_div(npz, cfg.grain_xy));
      compute(PhaseKind::Scatter, trace::copy_cost(stot * npz));
      collective(scat_comm, stot * npz);
      compute(PhaseKind::Scatter, trace::copy_cost(nst * nz));
      compute(PhaseKind::FftZ, trace::fft_cost(nst * nz, nz), true,
              ceil_div(nst, cfg.grain_z));
      compute(PhaseKind::Unpack, trace::copy_cost(ng_grp));
      if (T > 1) {
        collective(pack_comm, ng_grp);
        compute(PhaseKind::Unpack,
                trace::copy_cost(static_cast<std::size_t>(T) * ng_w));
      }
    }
  }
  return bundle;
}

}  // namespace fx::model
