// Virtual program construction: the pipeline's logical work, expressed as
// per-rank, per-iteration step chains for the discrete-event simulator.
//
// The builder walks the same Descriptor the real pipeline uses and emits
// one Step per pipeline phase with the *same* element counts and the same
// communication pattern (communicator membership, payload bytes, tags).
// Both backends therefore execute the identical logical program; only the
// notion of time differs.
#pragma once

#include <cstddef>
#include <vector>

#include "fftx/descriptor.hpp"
#include "fftx/pipeline.hpp"
#include "simmpi/comm.hpp"
#include "trace/phases.hpp"

namespace fx::model {

/// One unit of a rank's iteration chain.
struct Step {
  enum class Kind { Compute, Collective };
  Kind kind = Kind::Compute;

  // Compute:
  trace::PhaseKind phase = trace::PhaseKind::Other;
  double instructions = 0.0;
  double bytes = 0.0;          ///< memory traffic (feeds contention)
  bool parallelizable = false; ///< can fan out over idle workers (taskloop)
  std::size_t chunks = 1;      ///< taskloop chunk count at the paper grains

  // Collective:
  mpi::CommOpKind op = mpi::CommOpKind::Alltoallv;
  int comm_group = -1;         ///< index into ProgramBundle::comm_members
  std::size_t comm_bytes = 0;  ///< payload this rank contributes
};

/// The whole virtual program: programs[w].iterations[i] is world rank w's
/// step chain for iteration i (processing bands i*ntg .. i*ntg+ntg-1).
struct ProgramBundle {
  std::vector<std::vector<std::vector<Step>>> programs;  // [rank][iter][step]
  std::vector<std::vector<int>> comm_members;            // per comm group
  int num_bands = 0;
  int ntg = 1;
};

struct ProgramConfig {
  int num_bands = 128;
  fftx::PipelineMode mode = fftx::PipelineMode::Original;
  bool apply_potential = true;
  std::size_t grain_z = 200;
  std::size_t grain_xy = 10;
};

/// Builds the bundle.  Iterations step by desc.ntg() exactly like the
/// pipeline; communicator groups 0..R-1 are the pack comms, R..R+T-1 the
/// scatter comms.
ProgramBundle build_program(const fftx::Descriptor& desc,
                            const ProgramConfig& cfg);

}  // namespace fx::model
