#include "perfmodel/machine.hpp"

namespace fx::model {

MachineConfig MachineConfig::knl() {
  MachineConfig m;
  m.cores = 68;
  m.smt = 4;
  m.freq_ghz = 1.4;
  m.mem_bw_gbps = 190.0;
  m.alpha_us = 2.0;
  m.net_bw_gbps = 180.0;
  m.link_bw_gbps = 8.0;
  m.per_member_us = 15.0;
  m.mesh_contention = 0.012;
  m.same_phase_contention = 0.0015;
  m.noise_amp = 0.03;
  m.noise_band_frac = 0.1;

  auto set = [&m](trace::PhaseKind kind, double ipc) {
    m.base_ipc[static_cast<std::size_t>(kind)] = ipc;
  };
  // Calibration targets (paper Sec. III / Fig. 3): psi preparation ~0.06
  // IPC even uncontended (gather/scatter bound); FFT along Z ~0.5-0.7;
  // the central FFT-XY block ~0.8-1.3; marshalling phases in between.
  set(trace::PhaseKind::PsiPrep, 0.30);
  set(trace::PhaseKind::Pack, 0.70);
  set(trace::PhaseKind::FftZ, 0.90);
  set(trace::PhaseKind::Scatter, 0.70);
  set(trace::PhaseKind::FftXy, 1.40);
  set(trace::PhaseKind::Vofr, 0.90);
  set(trace::PhaseKind::Unpack, 0.70);
  set(trace::PhaseKind::Other, 1.0);
  // Integrity checks stream buffers linearly (digest + weighted sums).
  set(trace::PhaseKind::Abft, 1.0);
  // Queue wait is idle time, not execution; IPC is a placeholder.
  set(trace::PhaseKind::TaskWait, 1.0);
  return m;
}

MachineConfig MachineConfig::xeon() {
  MachineConfig m = knl();
  m.cores = 36;
  m.smt = 2;
  m.freq_ghz = 2.3;
  m.mem_bw_gbps = 150.0;      // two sockets of DDR4
  m.net_bw_gbps = 160.0;
  m.link_bw_gbps = 10.0;
  m.per_member_us = 4.0;      // faster cores drive the MPI stack faster
  m.mesh_contention = 0.006;  // ring interconnect, fewer agents
  m.smt_eff = 1.05;           // 2-way SMT on a wide OoO core gains a little
  // Wide out-of-order cores roughly double the per-phase IPC.
  for (auto& ipc : m.base_ipc) ipc *= 2.0;
  return m;
}

}  // namespace fx::model
