// Machine model of the paper's test system: one Intel Knights Landing node
// (68 cores, 1.4 GHz, 4-way hyper-threading, MCDRAM).
//
// The model is deliberately first-order -- exactly rich enough to carry the
// two effects the paper measures:
//
//  * Memory-bandwidth contention.  Every compute phase has a nominal IPC
//    (calibrated against the paper's Fig. 3 per-phase IPC readings) and a
//    bytes-per-instruction intensity from the cost model.  Concurrent
//    phases share the node bandwidth with max-min fairness (water-
//    filling); when demand exceeds the node bandwidth, the heavy phases
//    throttle -- reproducing the IPC collapse of Table I and the benefit
//    of de-synchronizing heavy and light phases (Fig. 7).
//
//  * Issue-slot sharing.  When active threads exceed physical cores,
//    per-thread issue drops proportionally (two-way hyper-threading halves
//    per-thread IPC, as the paper observes between 8x8 and 16x8).
//
//  * A latency/bandwidth collective model: a collective over k ranks costs
//    alpha*ceil(log2 k) latency plus its payload over a shared network
//    bandwidth, with per-rank injection limits.
#pragma once

#include <array>

#include "trace/phases.hpp"

namespace fx::model {

struct MachineConfig {
  int cores = 68;
  int smt = 4;             ///< hardware threads per core
  double freq_ghz = 1.4;
  double mem_bw_gbps = 360.0;  ///< sustained node memory bandwidth (MCDRAM)

  // Collective cost model (intra-node MPI through shared memory).
  double alpha_us = 2.0;       ///< per-stage latency of a collective
  double net_bw_gbps = 90.0;   ///< aggregate exchange bandwidth of the node
  double link_bw_gbps = 6.0;   ///< per-rank injection/extraction bandwidth
  /// Software cost each participant adds to a collective (matching,
  /// progress engine).  Makes collectives over more ranks slower even at
  /// constant total payload -- the paper's "increasing communication cost".
  double per_member_us = 6.0;

  /// Mesh/coherence degradation: every active hardware thread slows all
  /// others slightly (KNL tile mesh, shared L2).  Applied as
  /// 1/(1 + mesh_contention*(active_threads-1)).
  double mesh_contention = 0.010;

  /// Same-phase interference: threads executing the *same* phase issue
  /// identical strided access patterns and collide on cache sets and
  /// memory banks far more than a heterogeneous mix does.  Applied per
  /// activity as 1/(1 + same_phase_contention*(same_phase_threads-1)).
  /// This is the asymmetry behind the paper's Fig. 7: de-synchronizing the
  /// schedule raises the main compute phase's IPC because fewer cores run
  /// it at the same instant.
  double same_phase_contention = 0.006;

  /// Deterministic execution-speed variation (system noise, core binning,
  /// per-task data variability).  Induces the small load-balance and
  /// synchronization losses every real trace shows, and seeds the task
  /// version's de-synchronization.  Amplitude as a fraction of the nominal
  /// rate; noise_band_frac is the share that varies per band (the rest is
  /// static per stream).
  double noise_amp = 0.02;
  double noise_band_frac = 0.3;

  /// Aggregate issue efficiency when hardware threads are oversubscribed:
  /// two hyper-threads of a KNL core deliver slightly less than one
  /// full core's issue (per-thread IPC a bit worse than half -- the
  /// paper's 8x8 -> 16x8 observation).
  double smt_eff = 0.95;

  /// Nominal (contention-free) IPC per compute phase, indexed by
  /// trace::PhaseKind.  Calibrated so the 1x8 run averages ~1.1 IPC and
  /// the Fig. 3 per-phase ordering holds (psi prep lowest, FFT-XY highest).
  std::array<double, trace::kNumPhaseKinds> base_ipc{};

  [[nodiscard]] double base_ipc_of(trace::PhaseKind kind) const {
    return base_ipc[static_cast<std::size_t>(kind)];
  }

  /// The paper's KNL node.
  static MachineConfig knl();

  /// A contemporary dual-socket Xeon node (fewer, faster, wider cores):
  /// the co-design counterpoint -- the miniapp's purpose is comparing
  /// kernels across such architectures (paper Sec. II.A).
  static MachineConfig xeon();
};

}  // namespace fx::model
