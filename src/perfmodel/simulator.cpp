#include "perfmodel/simulator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <vector>

#include "core/error.hpp"

namespace fx::model {

namespace {

constexpr double kEps = 1e-15;

struct ChainCursor {
  int iter = 0;
  std::size_t next_step = 0;
};

enum class WorkerState { Idle, Busy, Blocked };

struct Worker {
  WorkerState state = WorkerState::Idle;
  int chain = -1;  ///< index into the rank's chains when Busy/Blocked
};

struct ComputeActivity {
  int rank;
  int worker;                   ///< owning worker
  std::vector<int> helpers;     ///< extra workers joined via fan-out
  int chain;
  trace::PhaseKind phase;
  int band;
  double t_start;
  double instructions_total;
  double remaining;
  double bpi;     ///< bytes per instruction
  double weight;  ///< concurrent threads working on it
  double rate = 0.0;
};

struct Transfer {
  std::vector<std::pair<int, int>> members;  ///< (rank, worker)
  std::vector<double> arrival;               ///< per member
  std::vector<std::size_t> bytes;            ///< per member payload
  std::vector<int> chain;                    ///< per member chain index
  int comm_group;
  int comm_size;
  int tag;
  double latency_left;     ///< stage 1
  double bytes_left;       ///< stage 2
  double rate = 0.0;       ///< bytes/s during stage 2
  bool started = false;    ///< all participants arrived
  bool retired = false;    ///< completed and accounted
};

struct PendingInstanceKey {
  int comm_group;
  int tag;
  std::size_t occurrence;
  auto operator<=>(const PendingInstanceKey&) const = default;
};

}  // namespace

SimResult simulate(const ProgramBundle& bundle, const MachineConfig& machine,
                   const SimConfig& cfg, trace::Tracer* tracer) {
  const int P = static_cast<int>(bundle.programs.size());
  const int W = cfg.threads_per_rank;
  FX_CHECK(P >= 1 && W >= 1);
  const bool requeue_between_steps = cfg.mode == fftx::PipelineMode::TaskPerStep;
  const double freq_hz = machine.freq_ghz * 1e9;
  const double mem_bw = machine.mem_bw_gbps * 1e9;
  const double net_bw = machine.net_bw_gbps * 1e9;
  const double link_bw = machine.link_bw_gbps * 1e9;

  // Per-rank scheduling state.
  std::vector<std::vector<Worker>> workers(
      static_cast<std::size_t>(P),
      std::vector<Worker>(static_cast<std::size_t>(W)));
  std::vector<std::vector<ChainCursor>> chains(static_cast<std::size_t>(P));
  std::vector<std::deque<int>> ready(static_cast<std::size_t>(P));
  // Requeue (TaskPerStep) mode bounds started-unfinished chains per rank
  // to the worker count, mirroring the pipeline's sliding iteration window
  // (deadlock freedom: see BandFftPipeline::run_task_per_step).
  std::vector<int> active_chains(static_cast<std::size_t>(P), 0);
  for (int r = 0; r < P; ++r) {
    const auto& prog = bundle.programs[static_cast<std::size_t>(r)];
    chains[static_cast<std::size_t>(r)].resize(prog.size());
    for (std::size_t c = 0; c < prog.size(); ++c) {
      chains[static_cast<std::size_t>(r)][c].iter = static_cast<int>(c);
      ready[static_cast<std::size_t>(r)].push_back(static_cast<int>(c));
    }
  }

  std::vector<ComputeActivity> running;
  std::vector<Transfer> transfers;
  std::map<PendingInstanceKey, std::size_t> pending;  // -> transfers index
  std::map<std::tuple<int, int, int>, std::size_t> occurrence;  // rank,grp,tag

  double now = 0.0;
  SimResult result;

  auto step_of = [&](int rank, int chain) -> const Step& {
    const auto& cur =
        chains[static_cast<std::size_t>(rank)][static_cast<std::size_t>(chain)];
    return bundle.programs[static_cast<std::size_t>(rank)]
        [static_cast<std::size_t>(cur.iter)][cur.next_step];
  };
  auto chain_done = [&](int rank, int chain) {
    const auto& cur =
        chains[static_cast<std::size_t>(rank)][static_cast<std::size_t>(chain)];
    return cur.next_step >= bundle.programs[static_cast<std::size_t>(rank)]
                                [static_cast<std::size_t>(cur.iter)]
                                    .size();
  };

  // Starts the next step of `chain` on `worker` of `rank`.
  std::function<void(int, int, int)> start_step = [&](int rank, int worker,
                                                      int chain) {
    auto& wk = workers[static_cast<std::size_t>(rank)]
                      [static_cast<std::size_t>(worker)];
    const Step& step = step_of(rank, chain);
    const int band =
        chains[static_cast<std::size_t>(rank)][static_cast<std::size_t>(chain)]
            .iter *
        bundle.ntg;

    if (step.kind == Step::Kind::Compute) {
      ComputeActivity act;
      act.rank = rank;
      act.worker = worker;
      act.chain = chain;
      act.phase = step.phase;
      act.band = band;
      act.t_start = now;
      act.instructions_total = std::max(step.instructions, 0.0);
      act.remaining = act.instructions_total;
      act.bpi = step.instructions > 0.0 ? step.bytes / step.instructions : 0.0;
      act.weight = 1.0;
      wk.state = WorkerState::Busy;
      wk.chain = chain;
      // Fan-out (taskloop): grab idle workers only when no chain is
      // waiting for a worker, mirroring FIFO task dispatch.
      if (step.parallelizable && step.chunks > 1 &&
          ready[static_cast<std::size_t>(rank)].empty()) {
        for (int h = 0; h < W && act.weight < static_cast<double>(step.chunks);
             ++h) {
          auto& cand = workers[static_cast<std::size_t>(rank)]
                              [static_cast<std::size_t>(h)];
          if (cand.state == WorkerState::Idle) {
            cand.state = WorkerState::Busy;
            cand.chain = chain;
            act.helpers.push_back(h);
            act.weight += 1.0;
          }
        }
      }
      running.push_back(std::move(act));
      return;
    }

    // Collective: join (or create) the matching instance.
    const auto okey = std::make_tuple(rank, step.comm_group, band);
    const std::size_t occ = occurrence[okey]++;
    const PendingInstanceKey key{step.comm_group, band, occ};
    auto it = pending.find(key);
    if (it == pending.end()) {
      Transfer tr;
      tr.comm_group = step.comm_group;
      tr.comm_size = static_cast<int>(
          bundle.comm_members[static_cast<std::size_t>(step.comm_group)]
              .size());
      tr.tag = band;
      tr.latency_left =
          machine.alpha_us * 1e-6 *
              std::ceil(std::log2(std::max(2, tr.comm_size))) +
          machine.per_member_us * 1e-6 * tr.comm_size;
      tr.bytes_left = 0.0;
      transfers.push_back(std::move(tr));
      it = pending.emplace(key, transfers.size() - 1).first;
    }
    Transfer& tr = transfers[it->second];
    tr.members.emplace_back(rank, worker);
    tr.arrival.push_back(now);
    tr.bytes.push_back(step.comm_bytes);
    tr.chain.push_back(chain);
    tr.bytes_left += static_cast<double>(step.comm_bytes);
    wk.state = WorkerState::Blocked;
    wk.chain = chain;
    if (static_cast<int>(tr.members.size()) == tr.comm_size) {
      tr.started = true;  // begins consuming latency then bandwidth
      pending.erase(it);  // no further participants will look it up
    }
  };

  auto dispatch = [&](int rank) {
    auto& rq = ready[static_cast<std::size_t>(rank)];
    for (int wkr = 0; wkr < W && !rq.empty(); ++wkr) {
      auto& wk = workers[static_cast<std::size_t>(rank)]
                        [static_cast<std::size_t>(wkr)];
      if (wk.state != WorkerState::Idle) continue;
      // FIFO pop, skipping not-yet-started chains while the window is full.
      auto it = rq.begin();
      if (requeue_between_steps &&
          active_chains[static_cast<std::size_t>(rank)] >= W) {
        while (it != rq.end() &&
               chains[static_cast<std::size_t>(rank)]
                     [static_cast<std::size_t>(*it)]
                         .next_step == 0) {
          ++it;
        }
      }
      if (it == rq.end()) return;
      const int chain = *it;
      rq.erase(it);
      if (chains[static_cast<std::size_t>(rank)]
                [static_cast<std::size_t>(chain)]
                    .next_step == 0) {
        ++active_chains[static_cast<std::size_t>(rank)];
      }
      start_step(rank, wkr, chain);
    }
  };
  for (int r = 0; r < P; ++r) dispatch(r);

  // Deterministic execution-time variation in [1 - amp, 1 + amp]: system
  // noise, core binning, and per-band data-dependent variability.  Keyed by
  // (rank, worker, band) so successive tasks of one worker drift randomly
  // -- the seed of the task version's de-synchronization (the original
  // version re-synchronizes at every iteration's collectives regardless).
  auto unit_hash = [](std::uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  };
  auto noise = [&](int rank, int worker, int band) {
    // Static component (core binning, placement) keyed by the stream,
    // plus a per-band component (data-dependent variability, OS jitter)
    // that makes successive tasks of one worker drift apart -- the seed of
    // the task version's de-synchronization.  The original version
    // re-synchronizes at every iteration's collectives either way.
    const double u_stream =
        unit_hash(static_cast<std::uint64_t>(rank) * 8191u +
                  static_cast<std::uint64_t>(worker) * 131071u + 0x9e37u);
    const double u_band =
        unit_hash(static_cast<std::uint64_t>(rank) * 8191u +
                  static_cast<std::uint64_t>(worker) * 131071u +
                  static_cast<std::uint64_t>(band + 7) * 524287u);
    const double frac = machine.noise_band_frac;
    return 1.0 + machine.noise_amp * ((1.0 - frac) * u_stream + frac * u_band);
  };

  auto recompute_rates = [&] {
    // Issue sharing plus mesh/coherence degradation across the node.
    double active_threads = 0.0;
    for (const auto& a : running) active_threads += a.weight;
    double issue =
        active_threads > machine.cores
            ? static_cast<double>(machine.cores) / active_threads *
                  machine.smt_eff
            : 1.0;
    const double active_cores =
        std::min(active_threads, static_cast<double>(machine.cores));
    issue /= 1.0 + machine.mesh_contention * std::max(0.0, active_cores - 1.0);

    // Same-phase interference (see MachineConfig::same_phase_contention).
    // Counted in *core* equivalents: hyper-threads of one core do not add
    // extra colliding access streams beyond the core's issue share.
    const double core_share =
        active_threads > 0.0 ? active_cores / active_threads : 1.0;
    std::array<double, trace::kNumPhaseKinds> phase_threads{};
    for (const auto& a : running) {
      phase_threads[static_cast<std::size_t>(a.phase)] += a.weight;
    }
    auto same_phase_factor = [&](trace::PhaseKind phase) {
      const double same =
          phase_threads[static_cast<std::size_t>(phase)] * core_share;
      return 1.0 /
             (1.0 + machine.same_phase_contention * std::max(0.0, same - 1.0));
    };

    // Max-min fair share of memory bandwidth over byte demands.
    struct Demand {
      std::size_t index;
      double demand;
    };
    std::vector<Demand> demands;
    demands.reserve(running.size());
    double total_demand = 0.0;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const auto& a = running[i];
      const double nominal = a.weight * machine.base_ipc_of(a.phase) * issue *
                             same_phase_factor(a.phase) *
                             noise(a.rank, a.worker, a.band) * freq_hz;
      const double d = nominal * a.bpi;
      demands.push_back({i, d});
      total_demand += d;
    }
    std::vector<double> factor(running.size(), 1.0);
    if (total_demand > mem_bw && !demands.empty()) {
      std::ranges::sort(demands, [](const Demand& x, const Demand& y) {
        return x.demand < y.demand;
      });
      double remaining_bw = mem_bw;
      std::size_t left = demands.size();
      for (const auto& d : demands) {
        const double fair = remaining_bw / static_cast<double>(left);
        const double alloc = std::min(d.demand, fair);
        factor[d.index] = d.demand > 0.0 ? alloc / d.demand : 1.0;
        remaining_bw -= alloc;
        --left;
      }
    }
    for (std::size_t i = 0; i < running.size(); ++i) {
      auto& a = running[i];
      a.rate = a.weight * machine.base_ipc_of(a.phase) * issue *
               same_phase_factor(a.phase) * noise(a.rank, a.worker, a.band) *
               factor[i] * freq_hz;
      if (a.rate <= 0.0) a.rate = 1.0;  // zero-IPC guard
    }

    // Transfers in the payload stage share the node exchange bandwidth.
    std::size_t active_transfers = 0;
    for (const auto& t : transfers) {
      if (t.started && t.latency_left <= kEps && t.bytes_left > kEps) {
        ++active_transfers;
      }
    }
    for (auto& t : transfers) {
      if (t.started && t.latency_left <= kEps && t.bytes_left > kEps) {
        t.rate = std::min(net_bw / static_cast<double>(active_transfers),
                          static_cast<double>(t.comm_size) * link_bw);
      } else {
        t.rate = 0.0;
      }
    }
  };

  auto emit_compute = [&](const ComputeActivity& a) {
    result.total_compute += (now - a.t_start) * a.weight;
    if (tracer == nullptr) return;
    tracer->record_compute(trace::ComputeEvent{
        a.rank, a.worker, a.phase, a.band, a.t_start, now,
        a.instructions_total});
  };
  auto emit_transfer = [&](const Transfer& t) {
    if (tracer == nullptr) return;
    for (std::size_t i = 0; i < t.members.size(); ++i) {
      tracer->record_comm(trace::CommOpEvent{
          t.members[i].first, t.members[i].second, mpi::CommOpKind::Alltoallv,
          t.comm_group, t.comm_size, t.tag, t.bytes[i], t.arrival[i], now});
    }
  };

  // Advances one chain after its current step completed on (rank, worker).
  auto advance_chain = [&](int rank, int worker, int chain) {
    auto& cur =
        chains[static_cast<std::size_t>(rank)][static_cast<std::size_t>(chain)];
    ++cur.next_step;
    auto& wk = workers[static_cast<std::size_t>(rank)]
                      [static_cast<std::size_t>(worker)];
    wk.state = WorkerState::Idle;
    wk.chain = -1;
    if (!chain_done(rank, chain)) {
      if (requeue_between_steps) {
        ready[static_cast<std::size_t>(rank)].push_back(chain);
      } else {
        // Keep-chain modes: continue immediately on the same worker.
        start_step(rank, worker, chain);
        dispatch(rank);  // helpers freed above may serve waiting chains
        return;
      }
    } else {
      --active_chains[static_cast<std::size_t>(rank)];
    }
    dispatch(rank);
  };

  recompute_rates();
  const std::size_t kEventCap = 100'000'000;
  while (!running.empty() ||
         std::ranges::any_of(transfers, [](const Transfer& t) {
           return t.started && !t.retired;
         })) {
    FX_CHECK(result.events < kEventCap, "simulator runaway");

    // Next event time.
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& a : running) {
      dt = std::min(dt, a.remaining / a.rate);
    }
    for (const auto& t : transfers) {
      if (!t.started || t.retired) continue;
      if (t.latency_left > kEps) {
        dt = std::min(dt, t.latency_left);
      } else if (t.bytes_left > kEps && t.rate > 0.0) {
        dt = std::min(dt, t.bytes_left / t.rate);
      } else {
        dt = 0.0;  // ready to retire this round
      }
    }
    FX_CHECK(std::isfinite(dt), "simulator stalled: blocked without events");
    dt = std::max(dt, 0.0);
    now += dt;
    ++result.events;

    // Progress everything.
    for (auto& a : running) a.remaining -= a.rate * dt;
    for (auto& t : transfers) {
      if (!t.started || t.retired) continue;
      if (t.latency_left > kEps) {
        t.latency_left -= dt;
      } else if (t.rate > 0.0) {
        t.bytes_left -= t.rate * dt;
        if (dt > 0.0) result.total_transfer += dt;
      }
    }

    // Complete compute activities.
    std::vector<ComputeActivity> finished;
    for (std::size_t i = 0; i < running.size();) {
      if (running[i].remaining <= kEps * std::max(1.0, running[i].instructions_total)) {
        finished.push_back(std::move(running[i]));
        running[i] = std::move(running.back());
        running.pop_back();
      } else {
        ++i;
      }
    }
    for (const auto& a : finished) {
      emit_compute(a);
      for (int h : a.helpers) {
        auto& helper = workers[static_cast<std::size_t>(a.rank)]
                              [static_cast<std::size_t>(h)];
        helper.state = WorkerState::Idle;
        helper.chain = -1;
      }
      advance_chain(a.rank, a.worker, a.chain);
    }

    // Complete transfers.  Mark retired first, then advance the blocked
    // chains (advancing may append new transfers; indices stay stable).
    const std::size_t transfer_count = transfers.size();
    for (std::size_t i = 0; i < transfer_count; ++i) {
      Transfer& t = transfers[i];
      if (t.retired || !t.started || t.latency_left > kEps ||
          t.bytes_left > kEps) {
        continue;
      }
      t.retired = true;
      emit_transfer(t);
      for (std::size_t m = 0; m < t.members.size(); ++m) {
        advance_chain(t.members[m].first, t.members[m].second, t.chain[m]);
      }
    }

    recompute_rates();
  }

  // Sanity: nothing left blocked.
  for (int r = 0; r < P; ++r) {
    for (int wkr = 0; wkr < W; ++wkr) {
      FX_ASSERT(workers[static_cast<std::size_t>(r)]
                       [static_cast<std::size_t>(wkr)]
                           .state == WorkerState::Idle,
                "worker stuck at end of simulation");
    }
    FX_ASSERT(ready[static_cast<std::size_t>(r)].empty(),
              "undispatched chains at end of simulation");
  }

  result.makespan = now;
  return result;
}

}  // namespace fx::model
