// Overload-resilient multi-tenant FFT service frontend.
//
// The engine below this layer is library-shaped: one caller, one
// descriptor, one pipeline run.  Production traffic is request-shaped --
// many concurrent clients ("tenants") submitting mixed workloads (grid
// size, cutoff, band count, r2c, wire precision), each with its own
// latency expectations, against a fixed-capacity rank pool.  The Frontend
// bridges the two with robustness as the headline:
//
//   admission control -- every tenant owns a bounded queue
//     (FFTX_SERVE_QUEUE deep) and a token bucket (FFTX_SERVE_RATE /
//     FFTX_SERVE_BURST); a submit that would overflow either is rejected
//     *at the door* with a typed serve::Overloaded, so overload sheds load
//     instead of growing queue latency without bound;
//
//   deadline budgets -- a request may carry a wall-clock budget
//     (Request::deadline_s).  The budget rides the execution as a
//     core::Deadline: the pipeline checks it collectively at every band
//     iteration, the recovery driver at every batch boundary and before
//     every repair round, and the guarded exchanges clamp their retry
//     backoff to it.  An expired request is cancelled cleanly -- every
//     rank throws core::DeadlineExceeded in lockstep, partial work is
//     discarded, and the communicator stays healthy for the next request;
//
//   backpressure and fairness -- the scheduler drains tenant queues
//     weighted-round-robin with an aging bound (FFTX_SERVE_STARVATION_MS):
//     a head-of-queue request older than the bound jumps the rotation, so
//     no tenant starves behind a heavy one.  A circuit breaker quarantines
//     a tenant whose requests repeatedly end in failure
//     (FFTX_SERVE_BREAKER_STRIKES strikes opens the breaker for
//     FFTX_SERVE_BREAKER_COOLDOWN_S, then one probe request half-opens
//     it);
//
//   graceful degradation -- under queue pressure (fill fraction past
//     FFTX_SERVE_DEGRADE_WATERMARK) or post-shrink capacity loss the
//     scheduler steps executions down a declared ladder: L1 narrows the
//     wire to fp32, L2 drops the overlap chunking to one chunk and folds
//     the streaming ring to one band in flight (shedding the extra
//     in-flight band buffers), L3 drops the checkpoint cadence to
//     end-of-run only.  The applied level is
//     recorded in the Response (status CompletedDegraded), so callers
//     know what they got.
//
// Compatible requests coalesce into one shared execution: same cell,
// cutoff, r2c mode, wire format, and deadline presence batch into a single
// RecoveryDriver run (one descriptor, one pipeline band loop), each
// request owning a contiguous carried-band slice of the batch.  r2c
// requests are padded to even band counts so gamma pairs never straddle a
// request boundary.
//
// Threading model: client threads call submit()/request_stop() from
// outside the simulated world; every rank thread of one mpi::Runtime::run
// world calls serve(world) and stays in it until stop (or its own injected
// death).  Rank 0 of the current world is the scheduler: it picks the next
// execution group under the frontend lock and broadcasts a tiny work order
// so all ranks enter the same RecoveryDriver run together.  Because rank
// threads share this process, order payloads live in shared memory and the
// broadcast carries only {kind, index} -- but it rides the communicator,
// so a revoked world is discovered at the next order boundary and the
// survivors shrink-and-continue serving at degraded capacity.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "core/deadline.hpp"
#include "core/error.hpp"
#include "fft/types.hpp"
#include "fftx/descriptor.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/wire.hpp"

namespace fx::serve {

/// Why a submit was shed at the door.
enum class ShedReason { QueueFull, RateLimited, Quarantined, ShuttingDown };

const char* to_string(ShedReason r);

/// Typed admission rejection: the request was never queued and will never
/// execute -- shedding *is* its terminal state.
class Overloaded : public core::Error {
 public:
  Overloaded(ShedReason reason, const std::string& what)
      : core::Error(what), reason_(reason) {}
  [[nodiscard]] ShedReason reason() const { return reason_; }

 private:
  ShedReason reason_;
};

/// Terminal state of an admitted request.
enum class Status {
  Completed,          ///< full fidelity, within budget
  CompletedDegraded,  ///< completed down the degradation ladder
  DeadlineCancelled,  ///< wall-clock budget expired; partial work discarded
  Failed,             ///< execution failed beyond the repair budget
};

const char* to_string(Status s);

/// One client workload: a band-FFT round trip (forward, VOFR, backward)
/// over a deterministic generated wavefunction set.
struct Request {
  std::string tenant = "default";
  double alat_bohr = 8.0;  ///< cubic cell edge
  double ecut_ry = 8.0;    ///< plane-wave cutoff
  int num_bands = 4;       ///< bands wanted (real bands when real_bands)
  bool real_bands = false; ///< gamma-point r2c pair packing
  mpi::WireFormat wire = mpi::WireFormat::Fp64;
  double deadline_s = 0.0; ///< wall budget from admission; 0 = none
};

/// What an admitted request resolved to.
struct Response {
  Status status = Status::Failed;
  std::string detail;      ///< failure/cancel reason or degradation note
  int degrade_level = 0;   ///< 0 = full fidelity (see ladder above)
  mpi::WireFormat wire = mpi::WireFormat::Fp64;  ///< wire actually used
  double queue_s = 0.0;    ///< admission -> dispatch
  double exec_s = 0.0;     ///< dispatch -> terminal
  /// Generator band index of bands[0]: the request's coefficients are the
  /// deterministic generator's bands [assigned_first_band,
  /// assigned_first_band + num_bands) as carried by its execution group.
  int assigned_first_band = 0;
  /// Carried output slices (packed pairs under real_bands), global
  /// stick-ordered, one per carried band.  Empty unless Completed /
  /// CompletedDegraded.
  std::vector<std::vector<fft::cplx>> bands;
};

namespace detail {
struct TicketState;
}  // namespace detail

/// Write-once future for one admitted request.  wait() blocks until the
/// serve loop fulfills it; every admitted request is fulfilled exactly
/// once (asserted), even on failure.
class Ticket {
 public:
  Ticket() = default;

  /// Blocks until the terminal state and returns it (moves the bands out
  /// on first call).
  Response wait();

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const;

 private:
  friend class Frontend;
  explicit Ticket(std::shared_ptr<detail::TicketState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::TicketState> state_;
};

/// Frontend tuning; every knob has an FFTX_SERVE_* env override.
struct ServeConfig {
  int queue_depth = 64;        ///< FFTX_SERVE_QUEUE: per-tenant bound
  double rate = 0.0;           ///< FFTX_SERVE_RATE: tokens/s/tenant; 0 = off
  double burst = 8.0;          ///< FFTX_SERVE_BURST: bucket capacity
  int coalesce_bands = 32;     ///< FFTX_SERVE_COALESCE: carried bands/group
  double starvation_ms = 500;  ///< FFTX_SERVE_STARVATION_MS: aging bound
  int breaker_strikes = 3;     ///< FFTX_SERVE_BREAKER_STRIKES: 0 disables
  double breaker_cooldown_s = 1.0;  ///< FFTX_SERVE_BREAKER_COOLDOWN_S
  double degrade_watermark = 0.75;  ///< FFTX_SERVE_DEGRADE_WATERMARK
  int ntg = 1;                 ///< FFTX_SERVE_NTG: task-group preference
  double idle_poll_ms = 2.0;   ///< scheduler wait slice when idle
  /// Execution guts (guard/overlap/recovery knobs ride the usual env
  /// defaults; deadline and wire come from each group).
  fftx::PipelineConfig pipeline{};
  fftx::RecoveryConfig recovery = fftx::RecoveryConfig::from_env();

  static ServeConfig from_env();
};

/// The declared degradation ladder, as one pure step: given a level,
/// rewrite the execution parameters and describe the change.  Level 0 is
/// identity.  Exposed for unit tests.
struct DegradeEffect {
  mpi::WireFormat wire;
  int overlap_chunks;    ///< 0 = keep configured value
  int checkpoint_bands;  ///< -1 = keep configured value
  int stream_bands;      ///< 0 = keep configured value (streaming depth)
  std::string note;
};
[[nodiscard]] DegradeEffect apply_degrade_level(int level,
                                                mpi::WireFormat requested);

/// Ladder level for the observed pressure: 0 below the watermark, then one
/// step per half of the remaining fill range; +1 (capped at 3) when the
/// world shrank below its original size.  Exposed for unit tests.
[[nodiscard]] int choose_degrade_level(double queue_fill, bool post_shrink,
                                       double watermark);

/// One dispatched execution group, for fairness assertions: which tenants'
/// requests ran, in dispatch order.
struct ExecutionRecord {
  std::uint64_t seq = 0;
  std::vector<std::string> tenants;  ///< one entry per member request
  int carried_bands = 0;
  int degrade_level = 0;
};

class Frontend {
 public:
  explicit Frontend(ServeConfig cfg = ServeConfig::from_env());
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Client-side: admit or shed.  Throws serve::Overloaded (the request is
  /// NOT queued) on a full queue, an empty token bucket, an open circuit
  /// breaker, or after request_stop().  Thread-safe.
  Ticket submit(const Request& req);

  /// Client-side: drain-and-stop.  Already-queued requests still execute;
  /// subsequent submits shed with ShedReason::ShuttingDown.  serve()
  /// returns on every rank once the queues are empty.
  void request_stop();

  /// Rank-side: the serve loop.  Every rank of `world` must call this; it
  /// returns after request_stop() drains, or early on this rank's injected
  /// death.  Survivable world failures (a peer died mid-group) shrink the
  /// communicator in place and serving continues at degraded capacity.
  void serve(mpi::Comm& world);

  /// Marks every still-pending admitted request Failed with `why`.  For
  /// drivers whose world terminated abnormally (Runtime::run threw): call
  /// after the run so every ticket still reaches exactly one terminal
  /// state.  Returns the number of tickets it failed.
  int fail_pending(const std::string& why);

  /// Per-tenant WRR weight (>= 1); callable before serving starts.
  void set_tenant_weight(const std::string& tenant, int weight);

  /// Dispatch history (stable after serve() returned everywhere).
  [[nodiscard]] std::vector<ExecutionRecord> execution_log() const;

  [[nodiscard]] const ServeConfig& config() const { return cfg_; }

 private:
  struct Pending;
  struct Tenant;
  struct Order;

  // Scheduler internals; all under mu_.
  bool any_queued_locked() const;
  int total_queued_locked() const;
  double queue_fill_locked() const;
  Tenant& tenant_locked(const std::string& name);
  std::shared_ptr<Order> schedule_locked(int world_size);
  std::shared_ptr<Order> next_order(mpi::Comm& world);
  /// Runs one coalesced group on `world`.  Returns false when this rank
  /// died mid-run (the driver already revoked and marked it dead).
  bool execute_group(mpi::Comm& world, Order& o);
  void fulfill_completed(Order& o, std::vector<std::vector<fft::cplx>>& out,
                         double exec_s);
  void fulfill_terminal(Order& o, Status st, const std::string& why,
                        double exec_s);
  void handle_deadline_cancel(Order& o, const std::string& why,
                              double exec_s);
  void breaker_strike(const std::string& tenant);
  void breaker_success(const std::string& tenant);

  ServeConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rr_order_;  ///< tenant rotation (insertion order)
  std::size_t rr_next_ = 0;
  bool stopping_ = false;
  int initial_world_size_ = 0;  ///< first serve() world; shrink detection
  bool post_shrink_ = false;

  // Work-order log: the leader appends, the order index rides the bcast,
  // followers read back by index.  Never truncated during a run (indices
  // are stable); shared_ptr so members outlive the deque if ever trimmed.
  std::vector<std::shared_ptr<Order>> orders_;
  /// Re-dispatch cursor: first order not yet claimed (fulfilled, failed,
  /// or cancelled).  A broadcast that died mid-flight leaves an unclaimed
  /// order behind; the survivors re-run it before scheduling new work.
  std::size_t first_unclaimed_ = 0;
  std::uint64_t exec_seq_ = 0;
  std::vector<ExecutionRecord> exec_log_;

  // Descriptor cache: service traffic repeats (cell, ecut, nproc, ntg)
  // combinations; re-deriving sticks/spheres per request is pure waste.
  std::map<std::tuple<std::uint64_t, std::uint64_t, int, int>,
           std::shared_ptr<const fftx::Descriptor>>
      desc_cache_;
};

}  // namespace fx::serve
