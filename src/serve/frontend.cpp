#include "serve/frontend.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <utility>

#include "core/env.hpp"
#include "core/format.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "fft/gamma.hpp"

namespace fx::serve {

namespace detail {

struct TicketState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Response resp;
};

}  // namespace detail

namespace {

// Order headers ride the serve world with their own tag (9001/9101/9201/
// 9301 are the checkpoint, ABFT-verdict, and deadline-verdict tags).
constexpr int kOrderTag = 9401;

constexpr std::uint64_t kNoIndex = std::numeric_limits<std::uint64_t>::max();

enum class OrderKind : std::uint64_t { Idle = 0, Stop = 1, Execute = 2 };

// Process-wide service health; the soak and the bench read these back
// instead of threading counters through every layer.
struct ServeMetrics {
  core::Counter& submitted;
  core::Counter& shed_queue_full;
  core::Counter& shed_rate_limited;
  core::Counter& shed_quarantined;
  core::Counter& shed_shutting_down;
  core::Counter& completed;
  core::Counter& completed_degraded;
  core::Counter& deadline_cancelled;
  core::Counter& failed;
  core::Counter& requeued;
  core::Counter& groups;
  core::Counter& breaker_opens;
  core::Gauge& queue_depth;
  core::Gauge& queue_peak;
  core::Histogram& latency_ms;
  core::Histogram& queue_ms;
  core::Histogram& exec_ms;
};

ServeMetrics& serve_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static ServeMetrics m{reg.counter("fftx.serve.submitted"),
                        reg.counter("fftx.serve.shed.queue_full"),
                        reg.counter("fftx.serve.shed.rate_limited"),
                        reg.counter("fftx.serve.shed.quarantined"),
                        reg.counter("fftx.serve.shed.shutting_down"),
                        reg.counter("fftx.serve.completed"),
                        reg.counter("fftx.serve.completed_degraded"),
                        reg.counter("fftx.serve.deadline_cancelled"),
                        reg.counter("fftx.serve.failed"),
                        reg.counter("fftx.serve.requeued"),
                        reg.counter("fftx.serve.groups"),
                        reg.counter("fftx.serve.breaker_opens"),
                        reg.gauge("fftx.serve.queue_depth"),
                        reg.gauge("fftx.serve.queue_depth_peak"),
                        reg.histogram("fftx.serve.latency_ms"),
                        reg.histogram("fftx.serve.queue_ms"),
                        reg.histogram("fftx.serve.exec_ms")};
  return m;
}

core::Counter& shed_counter(ShedReason r) {
  switch (r) {
    case ShedReason::QueueFull:
      return serve_metrics().shed_queue_full;
    case ShedReason::RateLimited:
      return serve_metrics().shed_rate_limited;
    case ShedReason::Quarantined:
      return serve_metrics().shed_quarantined;
    case ShedReason::ShuttingDown:
      return serve_metrics().shed_shutting_down;
  }
  return serve_metrics().shed_queue_full;
}

void fulfill(detail::TicketState& st, Response&& resp) {
  std::lock_guard lock(st.mu);
  FX_CHECK(!st.done, "serve: ticket fulfilled twice");
  st.resp = std::move(resp);
  st.done = true;
  st.cv.notify_all();
}

/// Carried (complex) bands a request occupies in a coalesced group: r2c
/// requests round up to whole gamma pairs so pairs never straddle a
/// request boundary.
int carried_bands(const Request& req) {
  return req.real_bands ? static_cast<int>(fft::gamma_pair_count(
                              static_cast<std::size_t>(req.num_bands)))
                        : req.num_bands;
}

}  // namespace

const char* to_string(ShedReason r) {
  switch (r) {
    case ShedReason::QueueFull:
      return "queue_full";
    case ShedReason::RateLimited:
      return "rate_limited";
    case ShedReason::Quarantined:
      return "quarantined";
    case ShedReason::ShuttingDown:
      return "shutting_down";
  }
  return "?";
}

const char* to_string(Status s) {
  switch (s) {
    case Status::Completed:
      return "completed";
    case Status::CompletedDegraded:
      return "completed_degraded";
    case Status::DeadlineCancelled:
      return "deadline_cancelled";
    case Status::Failed:
      return "failed";
  }
  return "?";
}

Response Ticket::wait() {
  FX_CHECK(state_ != nullptr, "serve: waiting on an empty ticket");
  std::unique_lock lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  return std::move(state_->resp);
}

bool Ticket::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard lock(state_->mu);
  return state_->done;
}

ServeConfig ServeConfig::from_env() {
  constexpr const char* kCtx = "serve";
  ServeConfig cfg;
  core::env_int_in("FFTX_SERVE_QUEUE", cfg.queue_depth, 1, 1 << 20, kCtx);
  core::env_double_in("FFTX_SERVE_RATE", cfg.rate, 0.0, 1e9, kCtx);
  core::env_double_in("FFTX_SERVE_BURST", cfg.burst, 1.0, 1e9, kCtx);
  core::env_int_in("FFTX_SERVE_COALESCE", cfg.coalesce_bands, 1, 1 << 20,
                   kCtx);
  core::env_double_in("FFTX_SERVE_STARVATION_MS", cfg.starvation_ms, 0.0, 1e9,
                      kCtx);
  core::env_int_in("FFTX_SERVE_BREAKER_STRIKES", cfg.breaker_strikes, 0,
                   1 << 20, kCtx);
  core::env_double_in("FFTX_SERVE_BREAKER_COOLDOWN_S", cfg.breaker_cooldown_s,
                      0.0, 1e9, kCtx);
  core::env_double_in("FFTX_SERVE_DEGRADE_WATERMARK", cfg.degrade_watermark,
                      0.0, 1.0, kCtx);
  core::env_int_in("FFTX_SERVE_NTG", cfg.ntg, 1, 1 << 10, kCtx);
  core::env_double_in("FFTX_SERVE_IDLE_POLL_MS", cfg.idle_poll_ms, 0.1, 1e6,
                      kCtx);
  return cfg;
}

DegradeEffect apply_degrade_level(int level, mpi::WireFormat requested) {
  DegradeEffect e{requested, 0, -1, 0, {}};
  if (level >= 1 && requested == mpi::WireFormat::Fp64) {
    e.wire = mpi::WireFormat::Fp32;
    e.note = "wire fp64->fp32";
  }
  if (level >= 2) {
    e.overlap_chunks = 1;
    e.stream_bands = 1;  // fold the streaming ring: one band in flight
    if (!e.note.empty()) e.note += ", ";
    e.note += "overlap chunks->1, stream depth->1";
  }
  if (level >= 3) {
    e.checkpoint_bands = 0;
    if (!e.note.empty()) e.note += ", ";
    e.note += "checkpoint cadence->end-of-run";
  }
  if (level > 0 && e.note.empty()) e.note = "no applicable step";
  return e;
}

int choose_degrade_level(double queue_fill, bool post_shrink,
                         double watermark) {
  int level = 0;
  if (queue_fill >= watermark) {
    // One step at the watermark, another per half of the remaining range:
    // fill in [w, w + (1-w)/2) is L1, [w + (1-w)/2, 1] is L2.
    level = queue_fill >= watermark + (1.0 - watermark) * 0.5 ? 2 : 1;
  }
  if (post_shrink) ++level;  // lost capacity: shed fidelity, not requests
  return std::min(level, 3);
}

// ---------------------------------------------------------------------------

struct Frontend::Pending {
  std::shared_ptr<detail::TicketState> state;
  Request req;
  double admit_ts = 0.0;
  core::Deadline deadline;  ///< this request's own budget
  bool requeued = false;    ///< already got its one re-execution chance
};

struct Frontend::Tenant {
  std::deque<Pending> q;
  int weight = 1;
  int rr_used = 0;  ///< dispatches consumed of this rotation turn
  // Token bucket (admission rate).
  double tokens = 0.0;
  double last_refill = 0.0;
  bool bucket_primed = false;
  // Circuit breaker.
  enum class Breaker { Closed, Open, HalfOpen } breaker = Breaker::Closed;
  int strikes = 0;
  double open_until = 0.0;
  int half_open_budget = 0;
  core::Histogram* latency_ms = nullptr;
};

struct Frontend::Order {
  OrderKind kind = OrderKind::Idle;
  std::uint64_t index = kNoIndex;

  struct Member {
    std::shared_ptr<detail::TicketState> state;
    Request req;
    double admit_ts = 0.0;
    core::Deadline deadline;
    bool requeued = false;
    int first_carried = 0;
    int carried = 0;
  };

  // Execution parameters (identical on every rank by construction: the
  // leader fills them under the lock before broadcasting the index).
  double alat = 0.0;
  double ecut = 0.0;
  bool real = false;
  mpi::WireFormat wire_requested = mpi::WireFormat::Fp64;
  mpi::WireFormat wire = mpi::WireFormat::Fp64;
  int carried_total = 0;
  int overlap_chunks = 0;    ///< 0 = keep configured default
  int checkpoint_bands = -1; ///< -1 = keep configured default
  int stream_bands = 0;      ///< 0 = keep configured default
  int degrade_level = 0;
  std::string degrade_note;
  double deadline_expiry = 0.0;  ///< min over members; 0 = none
  double dispatch_ts = 0.0;
  std::vector<Member> members;

  /// Exactly-one-terminal-state guard: outputs are replicated, so the
  /// first rank through fulfills and the rest drop theirs.
  std::atomic<bool> claimed{false};
  bool claim() { return !claimed.exchange(true); }
};

Frontend::Frontend(ServeConfig cfg) : cfg_(std::move(cfg)) {}

Frontend::~Frontend() {
  // A frontend destroyed with admitted-but-unresolved requests would leave
  // waiters blocked forever; fail them loudly instead.
  fail_pending("serve: frontend destroyed with the request still pending");
}

Frontend::Tenant& Frontend::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{}).first;
    it->second.latency_ms = &core::MetricsRegistry::global().histogram(
        core::cat("fftx.serve.latency_ms.", name));
    rr_order_.push_back(name);
  }
  return it->second;
}

bool Frontend::any_queued_locked() const {
  for (const auto& [name, t] : tenants_) {
    if (!t.q.empty()) return true;
  }
  return false;
}

int Frontend::total_queued_locked() const {
  int n = 0;
  for (const auto& [name, t] : tenants_) n += static_cast<int>(t.q.size());
  return n;
}

double Frontend::queue_fill_locked() const {
  if (tenants_.empty()) return 0.0;
  const double cap =
      static_cast<double>(tenants_.size()) * cfg_.queue_depth;
  return static_cast<double>(total_queued_locked()) / cap;
}

Ticket Frontend::submit(const Request& req) {
  FX_CHECK(req.num_bands >= 1 && req.alat_bohr > 0.0 && req.ecut_ry > 0.0,
           "serve: malformed request");
  auto& m = serve_metrics();
  std::lock_guard lock(mu_);
  m.submitted.add();
  if (stopping_) {
    shed_counter(ShedReason::ShuttingDown).add();
    throw Overloaded(ShedReason::ShuttingDown,
                     "serve: shutting down, submission rejected");
  }
  Tenant& t = tenant_locked(req.tenant);
  const double now = core::WallTimer::now();

  // Circuit breaker: an open tenant is quarantined until cooldown, then one
  // probe request may pass (half-open); its outcome closes or re-opens.
  if (cfg_.breaker_strikes > 0) {
    if (t.breaker == Tenant::Breaker::Open) {
      if (now < t.open_until) {
        shed_counter(ShedReason::Quarantined).add();
        throw Overloaded(
            ShedReason::Quarantined,
            core::cat("serve: tenant '", req.tenant,
                      "' quarantined by circuit breaker for another ",
                      core::fixed((t.open_until - now) * 1e3, 1), " ms"));
      }
      t.breaker = Tenant::Breaker::HalfOpen;
      t.half_open_budget = 1;
    }
    if (t.breaker == Tenant::Breaker::HalfOpen) {
      if (t.half_open_budget <= 0) {
        shed_counter(ShedReason::Quarantined).add();
        throw Overloaded(ShedReason::Quarantined,
                         core::cat("serve: tenant '", req.tenant,
                                   "' half-open, probe already in flight"));
      }
      --t.half_open_budget;
    }
  }

  // Token bucket: refill by elapsed time, spend one token per admission.
  if (cfg_.rate > 0.0) {
    if (!t.bucket_primed) {
      t.tokens = cfg_.burst;
      t.bucket_primed = true;
    } else {
      t.tokens = std::min(cfg_.burst,
                          t.tokens + (now - t.last_refill) * cfg_.rate);
    }
    t.last_refill = now;
    if (t.tokens < 1.0) {
      shed_counter(ShedReason::RateLimited).add();
      throw Overloaded(ShedReason::RateLimited,
                       core::cat("serve: tenant '", req.tenant,
                                 "' over its admission rate (",
                                 cfg_.rate, "/s, burst ", cfg_.burst, ")"));
    }
    t.tokens -= 1.0;
  }

  if (static_cast<int>(t.q.size()) >= cfg_.queue_depth) {
    shed_counter(ShedReason::QueueFull).add();
    throw Overloaded(ShedReason::QueueFull,
                     core::cat("serve: tenant '", req.tenant,
                               "' queue full (", cfg_.queue_depth, ")"));
  }

  auto state = std::make_shared<detail::TicketState>();
  t.q.push_back(Pending{state, req, now, core::Deadline::after(req.deadline_s),
                        /*requeued=*/false});
  const auto depth = static_cast<double>(total_queued_locked());
  m.queue_depth.set(depth);
  m.queue_peak.max_of(depth);
  work_cv_.notify_all();
  return Ticket(state);
}

void Frontend::request_stop() {
  std::lock_guard lock(mu_);
  stopping_ = true;
  work_cv_.notify_all();
}

void Frontend::set_tenant_weight(const std::string& tenant, int weight) {
  FX_CHECK(weight >= 1, "serve: tenant weight must be >= 1");
  std::lock_guard lock(mu_);
  tenant_locked(tenant).weight = weight;
}

std::vector<ExecutionRecord> Frontend::execution_log() const {
  std::lock_guard lock(mu_);
  return exec_log_;
}

std::shared_ptr<Frontend::Order> Frontend::schedule_locked(int world_size) {
  const double now = core::WallTimer::now();
  // Pressure is what the queues look like at dispatch time -- before this
  // group drains them -- otherwise a big coalesced group would mask the
  // very overload it is absorbing.
  const double fill_at_dispatch = queue_fill_locked();

  // Starvation bound first: if any head-of-queue request has aged past the
  // bound, its tenant jumps the rotation outright.
  std::string pick;
  double oldest = std::numeric_limits<double>::infinity();
  std::string oldest_tenant;
  for (const auto& name : rr_order_) {
    const Tenant& t = tenants_.at(name);
    if (!t.q.empty() && t.q.front().admit_ts < oldest) {
      oldest = t.q.front().admit_ts;
      oldest_tenant = name;
    }
  }
  if (oldest_tenant.empty()) return nullptr;
  if ((now - oldest) * 1e3 > cfg_.starvation_ms) {
    pick = oldest_tenant;
  } else {
    // Weighted round-robin: the cursor tenant keeps its turn for `weight`
    // consecutive dispatches, then the rotation advances.
    const std::size_t n = rr_order_.size();
    for (std::size_t scan = 0; scan < n; ++scan) {
      const std::size_t at = (rr_next_ + scan) % n;
      Tenant& t = tenants_.at(rr_order_[at]);
      if (t.q.empty()) {
        t.rr_used = 0;
        continue;
      }
      pick = rr_order_[at];
      if (++t.rr_used >= t.weight) {
        t.rr_used = 0;
        rr_next_ = (at + 1) % n;
      } else {
        rr_next_ = at;
      }
      break;
    }
  }
  FX_ASSERT(!pick.empty(), "non-empty queue must yield a pick");

  auto o = std::make_shared<Order>();
  o->kind = OrderKind::Execute;
  o->dispatch_ts = now;

  Tenant& lead = tenants_.at(pick);
  const Pending head = lead.q.front();
  lead.q.pop_front();
  o->alat = head.req.alat_bohr;
  o->ecut = head.req.ecut_ry;
  o->real = head.req.real_bands;
  o->wire_requested = head.req.wire;
  const bool head_has_deadline = head.deadline.active();

  auto push_member = [&](const Pending& p) {
    Order::Member mm;
    mm.state = p.state;
    mm.req = p.req;
    mm.admit_ts = p.admit_ts;
    mm.deadline = p.deadline;
    mm.requeued = p.requeued;
    mm.first_carried = o->carried_total;
    mm.carried = carried_bands(p.req);
    o->carried_total += mm.carried;
    if (p.deadline.active()) {
      o->deadline_expiry = o->deadline_expiry <= 0.0
                               ? p.deadline.expiry_s()
                               : std::min(o->deadline_expiry,
                                          p.deadline.expiry_s());
    }
    o->members.push_back(std::move(mm));
  };
  push_member(head);

  // Coalesce: sweep every tenant queue (rotation order, so no tenant is
  // systematically preferred) for requests the group can absorb.  Only
  // like-for-like batches: same problem, same wire, same r2c mode, and the
  // same deadline *presence* -- a budgetless request must never be
  // cancelled because a deadline-carrying peer ran out of time.
  auto compatible = [&](const Pending& p) {
    return p.req.alat_bohr == o->alat && p.req.ecut_ry == o->ecut &&
           p.req.real_bands == o->real && p.req.wire == o->wire_requested &&
           p.deadline.active() == head_has_deadline &&
           o->carried_total + carried_bands(p.req) <= cfg_.coalesce_bands;
  };
  if (o->carried_total < cfg_.coalesce_bands) {
    const std::size_t n = rr_order_.size();
    for (std::size_t scan = 0; scan < n; ++scan) {
      Tenant& t = tenants_.at(rr_order_[(rr_next_ + scan) % n]);
      for (auto it = t.q.begin(); it != t.q.end();) {
        if (compatible(*it)) {
          push_member(*it);
          it = t.q.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  // Degradation ladder: pressure- and capacity-driven, declared per group.
  o->degrade_level = choose_degrade_level(fill_at_dispatch, post_shrink_,
                                          cfg_.degrade_watermark);
  DegradeEffect eff = apply_degrade_level(o->degrade_level, o->wire_requested);
  o->wire = eff.wire;
  o->overlap_chunks = eff.overlap_chunks;
  o->checkpoint_bands = eff.checkpoint_bands;
  o->stream_bands = eff.stream_bands;
  o->degrade_note = std::move(eff.note);

  auto& m = serve_metrics();
  m.groups.add();
  m.queue_depth.set(static_cast<double>(total_queued_locked()));
  for (const auto& mm : o->members) {
    m.queue_ms.record((now - mm.admit_ts) * 1e3);
  }

  ExecutionRecord rec;
  rec.seq = exec_seq_++;
  rec.carried_bands = o->carried_total;
  rec.degrade_level = o->degrade_level;
  for (const auto& mm : o->members) rec.tenants.push_back(mm.req.tenant);
  exec_log_.push_back(std::move(rec));

  (void)world_size;
  return o;
}

std::shared_ptr<Frontend::Order> Frontend::next_order(mpi::Comm& world) {
  std::unique_lock lock(mu_);
  // Re-dispatch before new work: an order whose broadcast died with a rank
  // leaves popped requests in limbo -- the survivors must run it (on the
  // shrunk world) or its tickets never resolve.
  while (first_unclaimed_ < orders_.size() &&
         orders_[first_unclaimed_]->claimed.load()) {
    ++first_unclaimed_;
  }
  if (first_unclaimed_ < orders_.size()) return orders_[first_unclaimed_];

  work_cv_.wait_for(
      lock, std::chrono::duration<double, std::milli>(cfg_.idle_poll_ms),
      [&] { return stopping_ || any_queued_locked(); });

  if (any_queued_locked()) {
    if (auto o = schedule_locked(world.size())) {
      o->index = orders_.size();
      orders_.push_back(o);
      return o;
    }
  }
  auto o = std::make_shared<Order>();
  o->kind = (stopping_ && !any_queued_locked()) ? OrderKind::Stop
                                                : OrderKind::Idle;
  return o;
}

void Frontend::serve(mpi::Comm& world) {
  {
    std::lock_guard lock(mu_);
    if (initial_world_size_ == 0) initial_world_size_ = world.size();
  }
  for (;;) {
    try {
      std::uint64_t hdr[2] = {0, kNoIndex};
      std::shared_ptr<Order> o;
      if (world.rank() == 0) {
        o = next_order(world);
        hdr[0] = static_cast<std::uint64_t>(o->kind);
        hdr[1] = o->index;
        world.bcast_bytes(hdr, sizeof(hdr), 0, kOrderTag);
      } else {
        world.bcast_bytes(hdr, sizeof(hdr), 0, kOrderTag);
        const auto kind = static_cast<OrderKind>(hdr[0]);
        if (kind == OrderKind::Execute) {
          std::lock_guard lock(mu_);
          FX_CHECK(hdr[1] < orders_.size(), "serve: order index out of range");
          o = orders_[hdr[1]];
        } else {
          o = std::make_shared<Order>();
          o->kind = kind;
        }
      }
      if (o->kind == OrderKind::Stop) return;
      if (o->kind == OrderKind::Idle) continue;
      if (!execute_group(world, *o)) return;  // this rank was killed
    } catch (const core::FaultError& e) {
      // Killed outside the recovery driver (e.g. at the order broadcast):
      // revoke so peers unwind promptly, declare death so their shrink
      // completes without us, and bow out.
      world.revoke(e.what());
      world.mark_dead();
      return;
    } catch (const core::Error& e) {
      // Survivable world failure (a peer died or a group failed beyond
      // repair): every surviving rank lands here -- the throw was either
      // induced on all ranks by the revoke, or forced below by revoking
      // ourselves -- shrinks, and keeps serving at degraded capacity.
      if (!world.is_revoked()) world.revoke(e.what());
      mpi::Comm shrunk = world.shrink();
      world = shrunk;
      {
        std::lock_guard lock(mu_);
        post_shrink_ = world.size() < initial_world_size_;
      }
      if (world.size() < 1) return;
    }
  }
}

bool Frontend::execute_group(mpi::Comm& world, Order& o) {
  std::shared_ptr<const fftx::Descriptor> desc;
  {
    std::lock_guard lock(mu_);
    int ntg = 1;
    for (int d = 1; d <= cfg_.ntg; ++d) {
      if (world.size() % d == 0) ntg = d;
    }
    const auto key = std::make_tuple(std::bit_cast<std::uint64_t>(o.alat),
                                     std::bit_cast<std::uint64_t>(o.ecut),
                                     world.size(), ntg);
    auto it = desc_cache_.find(key);
    if (it == desc_cache_.end()) {
      it = desc_cache_
               .emplace(key, std::make_shared<const fftx::Descriptor>(
                                 pw::Cell{o.alat}, o.ecut, world.size(), ntg))
               .first;
    }
    desc = it->second;
  }

  fftx::PipelineConfig cfg = cfg_.pipeline;
  cfg.num_bands = o.real ? 2 * o.carried_total : o.carried_total;
  cfg.real_bands = o.real;
  cfg.wire_format = o.wire;
  cfg.deadline = core::Deadline::at(o.deadline_expiry);
  if (o.overlap_chunks > 0) cfg.overlap_chunks = o.overlap_chunks;
  if (o.stream_bands > 0) cfg.stream_bands = o.stream_bands;
  fftx::RecoveryConfig rcfg = cfg_.recovery;
  if (o.checkpoint_bands >= 0) rcfg.checkpoint_bands = o.checkpoint_bands;

  core::WallTimer timer;
  std::vector<std::vector<fft::cplx>> out;
  try {
    fftx::RecoveryDriver driver(world, std::move(desc), cfg, rcfg);
    const fftx::RecoveryReport rep = driver.run(out);
    if (rep.died) return false;  // driver already revoked + marked us dead
    FX_ASSERT(rep.completed, "driver returned neither died nor completed");
  } catch (const core::DeadlineExceeded& e) {
    // Clean collective cancel: the communicator is healthy, partial work is
    // discarded, and members with budget left get their one re-queue.
    if (o.claim()) handle_deadline_cancel(o, e.what(), timer.seconds());
    return true;
  } catch (const core::Error& e) {
    // Terminal failure for the group (repair budget exhausted, recovery
    // disabled, or sticky corruption).  Mark the tickets -- exactly one
    // rank does -- then rethrow so the serve loop repairs the world.
    if (o.claim()) fulfill_terminal(o, Status::Failed, e.what(),
                                    timer.seconds());
    throw;
  }
  if (o.claim()) fulfill_completed(o, out, timer.seconds());
  return true;
}

void Frontend::fulfill_completed(Order& o,
                                 std::vector<std::vector<fft::cplx>>& out,
                                 double exec_s) {
  auto& m = serve_metrics();
  const double now = core::WallTimer::now();
  const bool degraded = o.degrade_level > 0;
  for (auto& mm : o.members) {
    Response resp;
    resp.status = degraded ? Status::CompletedDegraded : Status::Completed;
    if (degraded) {
      resp.detail = core::cat("degraded L", o.degrade_level, ": ",
                              o.degrade_note);
    }
    resp.degrade_level = o.degrade_level;
    resp.wire = o.wire;
    resp.queue_s = o.dispatch_ts - mm.admit_ts;
    resp.exec_s = exec_s;
    resp.assigned_first_band =
        o.real ? 2 * mm.first_carried : mm.first_carried;
    resp.bands.assign(
        std::make_move_iterator(out.begin() + mm.first_carried),
        std::make_move_iterator(out.begin() + mm.first_carried + mm.carried));
    (degraded ? m.completed_degraded : m.completed).add();
    const double lat_ms = (now - mm.admit_ts) * 1e3;
    m.latency_ms.record(lat_ms);
    m.exec_ms.record(exec_s * 1e3);
    {
      std::lock_guard lock(mu_);
      Tenant& t = tenant_locked(mm.req.tenant);
      t.latency_ms->record(lat_ms);
    }
    fulfill(*mm.state, std::move(resp));
    breaker_success(mm.req.tenant);
  }
}

void Frontend::fulfill_terminal(Order& o, Status st, const std::string& why,
                                double exec_s) {
  auto& m = serve_metrics();
  const double now = core::WallTimer::now();
  for (auto& mm : o.members) {
    Response resp;
    resp.status = st;
    resp.detail = why;
    resp.degrade_level = o.degrade_level;
    resp.wire = o.wire;
    resp.queue_s = o.dispatch_ts - mm.admit_ts;
    resp.exec_s = exec_s;
    (st == Status::Failed ? m.failed : m.deadline_cancelled).add();
    m.latency_ms.record((now - mm.admit_ts) * 1e3);
    fulfill(*mm.state, std::move(resp));
    if (st == Status::Failed) breaker_strike(mm.req.tenant);
  }
}

void Frontend::handle_deadline_cancel(Order& o, const std::string& why,
                                      double exec_s) {
  auto& m = serve_metrics();
  std::lock_guard lock(mu_);
  for (auto& mm : o.members) {
    // The group cancelled at its *tightest* member's expiry; a member whose
    // own budget survives gets one re-queue (front of its tenant's queue,
    // original admission time) so a slow neighbor can't cancel it outright.
    if (!mm.requeued && !mm.deadline.expired()) {
      Tenant& t = tenant_locked(mm.req.tenant);
      t.q.push_front(Pending{mm.state, mm.req, mm.admit_ts, mm.deadline,
                             /*requeued=*/true});
      m.requeued.add();
      continue;
    }
    Response resp;
    resp.status = Status::DeadlineCancelled;
    resp.detail = why;
    resp.degrade_level = o.degrade_level;
    resp.wire = o.wire;
    resp.queue_s = o.dispatch_ts - mm.admit_ts;
    resp.exec_s = exec_s;
    m.deadline_cancelled.add();
    m.latency_ms.record((core::WallTimer::now() - mm.admit_ts) * 1e3);
    fulfill(*mm.state, std::move(resp));
  }
  const auto depth = static_cast<double>(total_queued_locked());
  m.queue_depth.set(depth);
  m.queue_peak.max_of(depth);
  work_cv_.notify_all();
}

void Frontend::breaker_strike(const std::string& tenant) {
  if (cfg_.breaker_strikes <= 0) return;
  std::lock_guard lock(mu_);
  Tenant& t = tenant_locked(tenant);
  ++t.strikes;
  if (t.breaker == Tenant::Breaker::HalfOpen ||
      t.strikes >= cfg_.breaker_strikes) {
    t.breaker = Tenant::Breaker::Open;
    t.open_until = core::WallTimer::now() + cfg_.breaker_cooldown_s;
    t.strikes = 0;
    serve_metrics().breaker_opens.add();
  }
}

void Frontend::breaker_success(const std::string& tenant) {
  if (cfg_.breaker_strikes <= 0) return;
  std::lock_guard lock(mu_);
  Tenant& t = tenant_locked(tenant);
  t.breaker = Tenant::Breaker::Closed;
  t.strikes = 0;
  t.half_open_budget = 0;
}

int Frontend::fail_pending(const std::string& why) {
  std::vector<std::shared_ptr<detail::TicketState>> pending;
  {
    std::lock_guard lock(mu_);
    for (auto& [name, t] : tenants_) {
      for (auto& p : t.q) pending.push_back(p.state);
      t.q.clear();
    }
    for (auto& o : orders_) {
      for (auto& mm : o->members) pending.push_back(mm.state);
    }
    serve_metrics().queue_depth.set(0.0);
  }
  int failed = 0;
  for (auto& st : pending) {
    std::unique_lock lock(st->mu);
    if (st->done) continue;
    lock.unlock();
    Response resp;
    resp.status = Status::Failed;
    resp.detail = why;
    fulfill(*st, std::move(resp));
    serve_metrics().failed.add();
    ++failed;
  }
  return failed;
}

}  // namespace fx::serve
