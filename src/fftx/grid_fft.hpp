// Distributed full-grid 3D FFT (FFTXlib's dense-grid / charge-density
// transform).
//
// Unlike the wave-function pipeline, density transforms act on the whole
// nx*ny*nz grid -- no cutoff sphere, no sticks, every (ix, iy) column is
// populated.  The decomposition is the classic slab scheme:
//
//   reciprocal space: each rank owns a block of the nx*ny Z-columns,
//                     stored column-major [col][iz];
//   real space:       each rank owns a block of Z planes, stored
//                     plane-major [iz][iy][ix];
//
// with one Alltoallv transpose between the 1D-Z and 2D-XY transform
// stages.  Comparing its exchange volume with the wave pipeline's
// quantifies what the sphere/stick optimization buys QE
// (bench_sphere_vs_dense).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/aligned.hpp"
#include "fft/batch1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/plan_cache.hpp"
#include "pw/grid.hpp"
#include "pw/sticks.hpp"
#include "simmpi/comm.hpp"

namespace fx::trace {
class Tracer;
}  // namespace fx::trace

namespace fx::fftx {

class GridFft {
 public:
  /// One instance per rank of `comm`; all ranks must pass the same dims
  /// and the same wire format.  An optional tracer records FFT stages and
  /// transpose marshalling as compute spans (rank = comm rank).  A
  /// non-Fp64 `wire` narrows the transpose payload in flight (the staged
  /// buffers stay fp64; the exchange quantizes on the wire) -- density
  /// grids tolerate reduced exchange precision the same way the wave
  /// pipeline does, and the dense transpose is the dominant byte mover.
  GridFft(mpi::Comm comm, const pw::GridDims& dims,
          trace::Tracer* tracer = nullptr,
          mpi::WireFormat wire = mpi::default_wire_format());

  [[nodiscard]] mpi::WireFormat wire_format() const { return wire_; }

  [[nodiscard]] const pw::GridDims& dims() const { return dims_; }

  // --- Local layout ---
  /// Z-columns (of nx*ny) owned by `rank` in reciprocal space.
  [[nodiscard]] std::size_t ncols(int rank) const {
    return cols_.count(rank);
  }
  [[nodiscard]] std::size_t col_first(int rank) const {
    return cols_.first(rank);
  }
  /// Z planes owned by `rank` in real space.
  [[nodiscard]] std::size_t nplanes(int rank) const {
    return planes_.count(rank);
  }
  [[nodiscard]] std::size_t plane_first(int rank) const {
    return planes_.first(rank);
  }
  /// Local buffer sizes for this rank.
  [[nodiscard]] std::size_t pencil_elems() const {
    return ncols(me_) * dims_.nz;
  }
  [[nodiscard]] std::size_t plane_elems() const {
    return nplanes(me_) * dims_.plane();
  }

  // --- Transforms (collective; every rank must call with the same tag) ---
  /// Reciprocal -> real: consumes this rank's pencils [col][iz], produces
  /// its real-space planes [iz][iy][ix].  Unnormalized (engine Backward).
  void to_real(std::span<const fft::cplx> pencils, std::span<fft::cplx> planes,
               fft::Workspace& ws, int tag = 0);

  /// Real -> reciprocal: inverse path, scaled by 1/volume so that
  /// to_real followed by to_recip is the identity.
  void to_recip(std::span<const fft::cplx> planes, std::span<fft::cplx> pencils,
                fft::Workspace& ws, int tag = 0);

 private:
  void transpose_to_planes(std::span<const fft::cplx> pencils,
                           std::span<fft::cplx> planes, int tag);
  void transpose_to_pencils(std::span<const fft::cplx> planes,
                            std::span<fft::cplx> pencils, int tag);

  /// The transpose's Alltoallv: plain at Fp64, or routed through the view
  /// exchange (one contiguous run per peer) when the wire narrows.
  void exchange(const fft::cplx* send, const std::size_t* scounts,
                const std::size_t* sdispls, fft::cplx* recv,
                const std::size_t* rcounts, const std::size_t* rdispls,
                int tag);

  mpi::Comm comm_;
  pw::GridDims dims_;
  trace::Tracer* tracer_;
  mpi::WireFormat wire_;
  int me_;
  pw::PlaneDist cols_;    ///< distribution of the nx*ny Z-columns
  pw::PlaneDist planes_;  ///< distribution of the nz planes

  std::shared_ptr<const fft::BatchPlan1d> z_bwd_;
  std::shared_ptr<const fft::BatchPlan1d> z_fwd_;
  std::shared_ptr<const fft::Fft2d> xy_bwd_;
  std::shared_ptr<const fft::Fft2d> xy_fwd_;

  std::vector<std::size_t> send_counts_;
  std::vector<std::size_t> send_displs_;
  std::vector<std::size_t> recv_counts_;
  std::vector<std::size_t> recv_displs_;
  core::aligned_vector<fft::cplx> stage_a_;
  core::aligned_vector<fft::cplx> stage_b_;
};

}  // namespace fx::fftx
