// Checksum-guarded Alltoallv for the pipeline's transpose exchanges.
//
// The band redistribution and pencil<->plane scatters move every
// coefficient of every band across ranks twice per direction; a single
// flipped bit in transit silently corrupts the final wave function.  The
// guarded exchange makes that failure mode detectable and recoverable:
// each rank checksums every segment it sends, peers exchange the expected
// checksums (an Alltoall -- a different collective kind, so it can never
// be confused with the payload exchange under the same tag), and after the
// payload Alltoallv every rank verifies what it received.  A global
// agreement allreduce (Min) decides pass/fail, so either all ranks accept
// or all ranks retry together -- send buffers are still live and the
// per-(kind, tag) sequence counters stay aligned.  Bounded retries; on
// exhaustion a structured core::CommError names the mismatching segment.
//
// Enabled per pipeline via PipelineConfig::guard_exchanges, defaulting to
// the FFTX_GUARD_EXCHANGES environment variable (off when unset).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "fft/types.hpp"
#include "simmpi/comm.hpp"

namespace fx::fftx {

/// Counters of one pipeline's guarded exchanges (shared by all its task
/// workers, hence atomic).
struct GuardStats {
  std::atomic<std::uint64_t> exchanges{0};  ///< guarded exchanges completed
  std::atomic<std::uint64_t> retries{0};    ///< corrupted rounds repeated
};

/// FNV-1a 64-bit checksum of a byte range (the guard's segment digest).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes);

/// Seed-continuation form: extends `seed` (a prior fnv1a result or the FNV
/// offset basis) over another byte range, so a scatter-gather segment can
/// be digested run by run without staging it contiguously.
[[nodiscard]] std::uint64_t fnv1a(std::uint64_t seed, const void* data,
                                  std::size_t bytes);

/// Alltoallv with end-to-end payload verification and bounded retry (see
/// file comment).  Collective over `comm`; every rank must pass the same
/// `tag`, `max_retries`, and `deadline_s`.  Throws core::CommError when
/// `max_retries` retries still leave a corrupted segment.  A positive
/// `deadline_s` tightens the retry loop's wall-clock budget (merged with
/// FFTX_RETRY_DEADLINE_S): retries stop -- in lockstep, via the existing
/// continue/throw agreement -- once the budget is spent, and backoff sleeps
/// never overshoot it.
void guarded_alltoallv(mpi::Comm& comm, const fft::cplx* send,
                       const std::size_t* scounts, const std::size_t* sdispls,
                       fft::cplx* recv, const std::size_t* rcounts,
                       const std::size_t* rdispls, int tag, int max_retries,
                       GuardStats* stats, double deadline_s = 0.0);

/// Scatter-gather form of guarded_alltoallv for the fused (zero-copy)
/// transpose layouts: per-peer segments are mpi::SegView run lists over the
/// send/recv bases instead of contiguous (count, displ) slices.  Checksums
/// walk the logical element stream of each view, so the digests agree with
/// whatever layout the peer uses for the same segment.  The payload moves
/// through the blocking view exchange; retry/agreement semantics are
/// identical to the contiguous form.
///
/// With a non-Fp64 `wire` the payload crosses at wire precision and the
/// digests hash the *wire encoding* of every double: the sender encodes
/// what it sends, the receiver re-encodes what landed, and because the
/// encoding is idempotent on round-tripped values the two agree exactly
/// when the payload arrived intact.  Corruption below the wire's own
/// precision (bits the narrowing discards anyway) is undetectable by
/// construction -- the guard's detection floor equals the chosen wire
/// error floor.
void guarded_alltoallv_view(mpi::Comm& comm, const fft::cplx* send_base,
                            std::span<const mpi::SegView> sviews,
                            fft::cplx* recv_base,
                            std::span<const mpi::SegView> rviews, int tag,
                            int max_retries, GuardStats* stats,
                            mpi::WireFormat wire = mpi::WireFormat::Fp64,
                            double deadline_s = 0.0);

/// Default of PipelineConfig::guard_exchanges: FFTX_GUARD_EXCHANGES != 0.
[[nodiscard]] bool default_guard_exchanges();

}  // namespace fx::fftx
