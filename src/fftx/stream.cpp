#include "fftx/stream.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <utility>

#include "core/error.hpp"
#include "core/format.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "trace/observatory.hpp"
#include "trace/span.hpp"

namespace fx::fftx {

using core::WallTimer;
using fft::cplx;
using fft::Direction;

namespace {

int trace_tid() { return std::max(0, task::current_worker_id()); }

// Streaming health: hidden_ms is, per exchange, the window between the
// nonblocking post and the moment a waitable attempt found it worth
// entering (test success or last-chance wait entry) -- communication that
// progressed behind other bands' compute.  bands counts completed band
// iterations (bands/sec in the benches); posts counts split exchanges.
struct StreamMetrics {
  core::Histogram& hidden_ms;
  core::Counter& bands;
  core::Counter& posts;
};

StreamMetrics& stream_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static StreamMetrics m{reg.histogram("fftx.stream.hidden_ms"),
                         reg.counter("fftx.stream.bands"),
                         reg.counter("fftx.stream.posts")};
  return m;
}

}  // namespace

void BandFftPipeline::run_streaming() {
  StreamExecutor ex(*this);
  ex.run();
}

StreamExecutor::StreamExecutor(BandFftPipeline& pipe) : p_(pipe) {}
StreamExecutor::~StreamExecutor() = default;

void StreamExecutor::capture_current() {
  bool first = false;
  {
    std::lock_guard lock(err_mu_);
    if (first_error_ == nullptr) {
      first_error_ = std::current_exception();
      first = true;
    }
  }
  stop_.store(true, std::memory_order_release);
  if (first) {
    // Unwind every rank's in-flight collectives (revocation reaches the
    // pack/scat splits); peers surface RevokedError and stop too.
    try {
      p_.world_.revoke("streaming executor failure");
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

std::function<void()> StreamExecutor::guard(std::function<void()> body) {
  return [this, body = std::move(body)] {
    if (stop_.load(std::memory_order_acquire)) return;
    try {
      body();
    } catch (...) {
      capture_current();
      throw;
    }
  };
}

void StreamExecutor::signal_iteration_done() {
  {
    std::lock_guard lock(window_mu_);
    ++completed_;
  }
  window_cv_.notify_all();
}

bool StreamExecutor::wait_poll(Slot& slot, bool last_chance,
                               const std::function<void()>& done) {
  try {
    if (stop_.load(std::memory_order_acquire) && !slot.posted) {
      return true;  // post was skipped after a failure; nothing in flight
    }
    if (slot.posted) {
      const double t_enter = WallTimer::now();
      if (last_chance) {
        slot.req.wait();
      } else if (!slot.req.test()) {
        return false;
      }
      stream_metrics().hidden_ms.record((t_enter - slot.t_post) * 1e3);
      slot.posted = false;
      slot.req = mpi::Request{};
    }
    if (done != nullptr) done();
    return true;
  } catch (...) {
    capture_current();
    throw;
  }
}

// --- Split-exchange stage bodies -------------------------------------------
//
// Each mirrors its blocking counterpart in pipeline.cpp stage for stage:
// the pre-exchange ABFT hooks run in the post task, the post-exchange
// hooks (energy accounting, at-rest seals, buffer flips) in the waitable's
// completing attempt.  Arithmetic and hook order are identical, which is
// what keeps every depth bit-identical to the Original oracle.

void StreamExecutor::post_pack(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  const int ntg = p.desc_->ntg();
  const std::size_t ng_w = p.desc_->ng_world(p.w_);
  if (p.abft_ != nullptr) p.abft_->begin_iteration(wb.abft, iter);
  if (trace::Observatory* obs = trace::obs_active()) {
    obs->iteration_begin(p.w_, iter);
  }
  const auto nu = static_cast<std::size_t>(ntg);
  std::vector<mpi::SegRun> sruns(nu);
  std::vector<mpi::SegRun> rruns(nu);
  std::vector<mpi::SegView> sviews(nu);
  std::vector<mpi::SegView> rviews(nu);
  for (std::size_t m = 0; m < nu; ++m) {
    sruns[m] = mpi::SegRun{
        (static_cast<std::size_t>(iter) + m) * ng_w, ng_w, 1};
    rruns[m] = mpi::SegRun{p.pack_displs_[m], p.pack_counts_[m], 1};
    sviews[m] = mpi::SegView(&sruns[m], 1);
    rviews[m] = mpi::SegView(&rruns[m], 1);
  }
  slot.req = p.pack_.ialltoallv_view(p.psi_arena_.data(), sviews,
                                     wb.band_g.data(), rviews, sizeof(cplx),
                                     /*tag=*/iter, p.cfg_.wire_format);
  slot.posted = true;
  slot.t_post = WallTimer::now();
  stream_metrics().posts.add();
}

void StreamExecutor::post_scatter_fw(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  const auto ru = static_cast<std::size_t>(p.desc_->group_size());
  if (p.abft_ != nullptr) {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Abft,
                   iter, trace::copy_cost(wb.pencil.size()).instructions);
    p.abft_->check_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  std::vector<mpi::SegView> sviews(ru);
  std::vector<mpi::SegView> rviews(ru);
  for (std::size_t q = 0; q < ru; ++q) {
    sviews[q] = mpi::SegView(p.scat_send_runs_[q]);
    rviews[q] = mpi::SegView(p.scat_recv_runs_[q]);
  }
  {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Scatter,
                   iter, trace::copy_cost(wb.planes.size()).instructions);
    std::fill(wb.planes.begin(), wb.planes.end(), cplx{0.0, 0.0});
  }
  slot.req = p.scat_.ialltoallv_view(wb.pencil.data(), sviews,
                                     wb.planes.data(), rviews, sizeof(cplx),
                                     /*tag=*/iter, p.cfg_.wire_format);
  slot.posted = true;
  slot.t_post = WallTimer::now();
  stream_metrics().posts.add();
}

void StreamExecutor::done_scatter_fw(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  if (p.abft_ != nullptr) {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Abft,
                   iter, trace::copy_cost(wb.planes.size()).instructions);
    std::size_t elems = 0;
    for (std::size_t c : p.scat_recv_counts_) elems += c;
    p.abft_->exchange_send(wb.abft, wb.abft.z_e_post, elems, 0);
    p.abft_->seal_planes(wb.abft, wb.planes.data(), wb.planes.size());
  }
  p.flip(wb.planes.data(), wb.planes.size());
}

void StreamExecutor::post_scatter_bw(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  const auto ru = static_cast<std::size_t>(p.desc_->group_size());
  slot.e_send = 0.0;
  if (p.abft_ != nullptr) {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Abft,
                   iter, trace::copy_cost(wb.planes.size()).instructions);
    p.abft_->check_planes(wb.abft, wb.planes.data(), wb.planes.size());
    slot.e_send = p.abft_->stick_energy(wb.planes.data());
  }
  std::vector<mpi::SegView> sviews(ru);
  std::vector<mpi::SegView> rviews(ru);
  for (std::size_t q = 0; q < ru; ++q) {
    sviews[q] = mpi::SegView(p.scat_recv_runs_[q]);
    rviews[q] = mpi::SegView(p.scat_send_runs_[q]);
  }
  slot.req = p.scat_.ialltoallv_view(wb.planes.data(), sviews,
                                     wb.pencil.data(), rviews, sizeof(cplx),
                                     /*tag=*/iter, p.cfg_.wire_format);
  slot.posted = true;
  slot.t_post = WallTimer::now();
  stream_metrics().posts.add();
}

void StreamExecutor::done_scatter_bw(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  if (p.abft_ != nullptr) {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Abft,
                   iter, trace::copy_cost(wb.pencil.size()).instructions);
    p.abft_->exchange_send(wb.abft, slot.e_send, wb.pencil.size(), 1);
    p.abft_->seal_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  p.flip(wb.pencil.data(), wb.pencil.size());
}

void StreamExecutor::post_unpack(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  auto& wb = *slot.wb;
  const int ntg = p.desc_->ntg();
  const std::size_t ng_w = p.desc_->ng_world(p.w_);
  const double inv_vol =
      1.0 / static_cast<double>(p.desc_->dims().volume());
  if (p.abft_ != nullptr) {
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Abft,
                   iter, trace::copy_cost(wb.pencil.size()).instructions);
    p.abft_->check_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  {
    const auto pidx = p.desc_->pencil_index(p.b_);
    FX_TRACE_SCOPE(p.tracer_, p.w_, trace_tid(), trace::PhaseKind::Unpack,
                   iter, trace::copy_cost(pidx.size()).instructions);
    for (std::size_t k = 0; k < pidx.size(); ++k) {
      wb.band_g[k] = wb.pencil[pidx[k]] * inv_vol;
    }
  }
  const auto nu = static_cast<std::size_t>(ntg);
  std::vector<mpi::SegRun> sruns(nu);
  std::vector<mpi::SegRun> rruns(nu);
  std::vector<mpi::SegView> sviews(nu);
  std::vector<mpi::SegView> rviews(nu);
  for (std::size_t m = 0; m < nu; ++m) {
    sruns[m] = mpi::SegRun{p.pack_displs_[m], p.pack_counts_[m], 1};
    rruns[m] = mpi::SegRun{
        (static_cast<std::size_t>(iter) + m) * ng_w, ng_w, 1};
    sviews[m] = mpi::SegView(&sruns[m], 1);
    rviews[m] = mpi::SegView(&rruns[m], 1);
  }
  slot.req = p.pack_.ialltoallv_view(wb.band_g.data(), sviews,
                                     p.psi_arena_.data(), rviews,
                                     sizeof(cplx),
                                     /*tag=*/iter, p.cfg_.wire_format);
  slot.posted = true;
  slot.t_post = WallTimer::now();
  stream_metrics().posts.add();
}

void StreamExecutor::done_unpack(Slot& slot, int /*iter*/) {
  BandFftPipeline& p = p_;
  if (p.abft_ != nullptr) p.abft_->finish_iteration(slot.wb->abft);
  stream_metrics().bands.add(static_cast<std::uint64_t>(p.desc_->ntg()));
}

// --- Task-graph construction -----------------------------------------------

void StreamExecutor::submit_iteration(Slot& slot, int iter) {
  BandFftPipeline& p = p_;
  BandFftPipeline::WorkBuffers* wb = slot.wb.get();
  const int ntg = p.desc_->ntg();
  const std::size_t ng_w = p.desc_->ng_world(p.w_);
  const task::Dep chain = task::inout(slot.token);

  // The psi clauses keep the graph honest about the only cross-iteration
  // data (the band slices); everything else is slot-private, ordered by
  // the chain token (which also carries the slot-reuse WAW edge).
  std::vector<task::Dep> psi_in;
  std::vector<task::Dep> psi_out;
  for (int m = 0; m < ntg; ++m) {
    const std::span<cplx> band{p.band_data(iter + m), ng_w};
    psi_in.push_back(task::in(std::span<const cplx>(band)));
    psi_out.push_back(task::out(band));
  }

  auto seq = [&](const char* name, std::function<void()> body) {
    p.rt_->submit(core::cat(name, '#', iter), {chain},
                  guard(std::move(body)));
  };
  auto waitable = [&](const char* name, std::function<void()> done) {
    Slot* s = &slot;
    p.rt_->submit_waitable(
        core::cat(name, '#', iter), {chain},
        [this, s, done = std::move(done)](bool last_chance) {
          return wait_poll(*s, last_chance, done);
        });
  };

  // pack: gathers the bands (reads psi) into band_g.
  {
    auto deps = psi_in;
    deps.push_back(chain);
    if (split_ && ntg > 1) {
      p.rt_->submit(core::cat("pack#", iter), std::move(deps),
                    guard([this, &slot, iter] { post_pack(slot, iter); }));
      waitable("pack_wait", nullptr);
    } else {
      // ntg == 1 pack is a local copy; the blocking fallback reuses the
      // staged/guarded exchange verbatim.
      p.rt_->submit(core::cat("pack#", iter), std::move(deps),
                    guard([this, wb, iter] { p_.do_pack(*wb, iter); }));
    }
  }

  seq("psi_prep", [this, wb, iter] { p_.do_psi_prep(*wb, iter); });

  if (split_) {
    seq("fft_z_fw", [this, wb, iter] {
      p_.do_fft_z(*wb, iter, Direction::Backward, false);
    });
    seq("scatter_fw_post",
        [this, &slot, iter] { post_scatter_fw(slot, iter); });
    waitable("scatter_fw_wait",
             [this, &slot, iter] { done_scatter_fw(slot, iter); });
  } else if (p.overlap_) {
    seq("fft_z_scatter_fw",
        [this, wb, iter] { p_.do_fft_z_scatter_fw(*wb, iter, false); });
  } else {
    seq("fft_z_fw", [this, wb, iter] {
      p_.do_fft_z(*wb, iter, Direction::Backward, false);
    });
    seq("scatter_fw", [this, wb, iter] { p_.do_scatter_forward(*wb, iter); });
  }

  seq("fft_xy_fw", [this, wb, iter] {
    p_.do_fft_xy(*wb, iter, Direction::Backward, false);
  });
  if (p.cfg_.apply_potential) {
    seq("vofr", [this, wb, iter] { p_.do_vofr(*wb, iter); });
  }
  seq("fft_xy_bw", [this, wb, iter] {
    p_.do_fft_xy(*wb, iter, Direction::Forward, false);
  });

  if (split_) {
    seq("scatter_bw_post",
        [this, &slot, iter] { post_scatter_bw(slot, iter); });
    waitable("scatter_bw_wait",
             [this, &slot, iter] { done_scatter_bw(slot, iter); });
    seq("fft_z_bw", [this, wb, iter] {
      p_.do_fft_z(*wb, iter, Direction::Forward, false);
    });
  } else if (p.overlap_) {
    seq("scatter_bw_fft_z",
        [this, wb, iter] { p_.do_scatter_bw_fft_z(*wb, iter, false); });
  } else {
    seq("scatter_bw", [this, wb, iter] { p_.do_scatter_backward(*wb, iter); });
    seq("fft_z_bw", [this, wb, iter] {
      p_.do_fft_z(*wb, iter, Direction::Forward, false);
    });
  }

  // unpack: the iteration's last step.  It must advance the completion
  // window on every exit -- normal, failed, or skipped after a failure --
  // or the orchestrator would wait forever on a failed iteration, and it
  // reports iteration_done the way do_unpack's ObsDone guard does.
  if (split_ && ntg > 1) {
    auto deps = psi_out;
    deps.push_back(chain);
    p.rt_->submit(core::cat("unpack#", iter), std::move(deps),
                  guard([this, &slot, iter] { post_unpack(slot, iter); }));
    Slot* s = &slot;
    p.rt_->submit_waitable(
        core::cat("unpack_wait#", iter), {chain},
        [this, s, iter](bool last_chance) {
          bool completed = false;
          try {
            completed = wait_poll(
                *s, last_chance,
                [this, s, iter] { done_unpack(*s, iter); });
          } catch (...) {
            if (trace::Observatory* obs = trace::obs_active()) {
              obs->iteration_done(p_.w_, iter);
            }
            signal_iteration_done();
            throw;
          }
          if (completed) {
            if (trace::Observatory* obs = trace::obs_active()) {
              obs->iteration_done(p_.w_, iter);
            }
            signal_iteration_done();
          }
          return completed;
        });
  } else {
    auto deps = psi_out;
    deps.push_back(chain);
    p.rt_->submit(
        core::cat("unpack#", iter), std::move(deps),
        [this, wb, iter] {
          struct Signal {
            StreamExecutor* ex;
            ~Signal() { ex->signal_iteration_done(); }
          } signal{this};
          if (stop_.load(std::memory_order_acquire)) return;
          try {
            p_.do_unpack(*wb, iter);  // fires iteration_done on every exit
            stream_metrics().bands.add(
                static_cast<std::uint64_t>(p_.desc_->ntg()));
          } catch (...) {
            capture_current();
            throw;
          }
        });
  }
}

void StreamExecutor::install_queue_wait_observer() {
  // Ready-but-unscheduled time, attributed to the task's iteration (the
  // trailing "#<iter>" every streaming label carries) as its own phase so
  // the observatory separates scheduler backlog from compute and comm.
  task::TaskObserver obs;
  obs.on_queue_wait = [rank = p_.w_](int /*worker*/,
                                     const std::string& label,
                                     double wait_s) {
    trace::Observatory* o = trace::obs_active();
    if (o == nullptr) return;
    const auto pos = label.rfind('#');
    if (pos == std::string::npos || pos + 1 >= label.size()) return;
    const int iter = std::atoi(label.c_str() + pos + 1);
    o->record_phase(rank, trace::PhaseKind::TaskWait, iter, wait_s);
  };
  p_.rt_->set_observer(std::move(obs));
}

void StreamExecutor::run() {
  BandFftPipeline& p = p_;
  const int ntg = p.desc_->ntg();
  const int iterations = p.npsi_ / ntg;

  depth_ = std::clamp(p.cfg_.stream_bands, 1, iterations);
  split_ = p.cfg_.stream_nonblocking && p.fused_ && !p.cfg_.guard_exchanges;
  if (!split_) {
    // Blocking stage tasks pin a worker per collective; cap the in-flight
    // iterations at the worker count so the blocked collective sets of
    // any two ranks intersect (see run_task_per_step's window comment).
    depth_ = std::min(depth_, p.cfg_.nthreads);
  }

  slots_.resize(static_cast<std::size_t>(depth_));
  for (Slot& s : slots_) s.wb = p.make_buffers();
  if (trace::obs_active() != nullptr) install_queue_wait_observer();

  try {
    int index = 0;
    for (int iter = 0; iter < p.npsi_; iter += ntg, ++index) {
      if (stop_.load(std::memory_order_acquire)) break;
      if (p.deadline_expired_collective(iter)) {
        p.rt_->taskwait();
        p.throw_deadline(iter);
      }
      if (index >= depth_) {
        std::unique_lock lock(window_mu_);
        window_cv_.wait(lock, [&] {
          return completed_ >= index - depth_ + 1;
        });
      }
      submit_iteration(slots_[static_cast<std::size_t>(index % depth_)],
                       iter);
    }
    p.rt_->taskwait();
  } catch (core::DeadlineExceeded&) {
    throw;  // agreed verdict; all ranks drained and throw in lockstep
  } catch (...) {
    // A worker failure surfaces from taskwait as a string-only TaskError;
    // an orchestrator-side failure (revoked deadline allreduce, submit on
    // a dying run) lands here directly.  Either way the first *original*
    // exception wins, so the RecoveryDriver's type dispatch (FaultError
    // vs repairable error) sees what the staged modes would throw.
    capture_current();
    try {
      p.rt_->taskwait();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    std::rethrow_exception(first_error_);
  }
  if (first_error_ != nullptr) std::rethrow_exception(first_error_);
}

}  // namespace fx::fftx
