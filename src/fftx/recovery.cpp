#include "fftx/recovery.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "fft/gamma.hpp"
#include "fft/plan_cache.hpp"

namespace fx::fftx {

namespace {

// Checkpoint gathers run on the world communicator after the pipeline's
// closing barrier; a dedicated tag keeps them apart from any user traffic.
constexpr int kCheckpointTag = 9001;

// Batch-boundary deadline verdicts (9101 is the pipeline ABFT verdict,
// 9201 the pipeline's per-iteration deadline check).
constexpr int kDeadlineTag = 9301;

/// Collective deadline verdict at a batch boundary: per-rank clocks differ,
/// so Max-reduce the local expiry and cancel on every rank together (the
/// communicator stays healthy for whatever the caller runs next).
void check_deadline(mpi::Comm& comm, const core::Deadline& dl, int completed,
                    int total) {
  if (!dl.active()) return;
  int expired = dl.expired() ? 1 : 0;
  int any = 0;
  comm.allreduce(&expired, &any, 1, mpi::ReduceOp::Max, kDeadlineTag);
  if (any != 0) {
    throw core::DeadlineExceeded(
        core::cat("recovery: wall-clock budget exhausted with ", completed,
                  " of ", total,
                  " carried band(s) committed; cancelling cleanly"));
  }
}

// Process-wide recovery health: a metrics dump of a fault-injection run
// shows how often the world shrank and how much work was replayed without
// access to the per-rank reports.
struct RecoveryMetrics {
  core::Counter& shrinks;
  core::Counter& replayed_bands;
  core::Counter& checkpoint_bytes;
  core::Histogram& shrink_ms;
};

RecoveryMetrics& recovery_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static RecoveryMetrics m{reg.counter("fftx.recovery.shrinks"),
                           reg.counter("fftx.recovery.replayed_bands"),
                           reg.counter("fftx.recovery.checkpoint_bytes"),
                           reg.histogram("fftx.recovery.shrink_ms")};
  return m;
}

}  // namespace

RecoveryConfig RecoveryConfig::from_env() {
  RecoveryConfig cfg;
  cfg.enabled = false;  // opt-in: unset FFTX_RECOVER means disabled
  core::env_flag("FFTX_RECOVER", cfg.enabled, "recovery");
  core::env_int_in("FFTX_CHECKPOINT_BANDS", cfg.checkpoint_bands, 0, 1 << 20,
                   "recovery");
  cfg.retry = core::RetryPolicy::from_env();
  return cfg;
}

int degraded_ntg(int nproc, int preferred, int batch_bands) {
  FX_CHECK(nproc >= 1 && batch_bands >= 1,
           "degraded_ntg needs a live world and a non-empty batch");
  int best = 1;
  for (int d = 2; d <= std::min(nproc, preferred); ++d) {
    if (nproc % d == 0 && batch_bands % d == 0) best = d;
  }
  return best;
}

RecoveryDriver::RecoveryDriver(mpi::Comm world,
                               std::shared_ptr<const Descriptor> desc,
                               PipelineConfig cfg, RecoveryConfig rcfg,
                               trace::Tracer* tracer)
    : world_(std::move(world)),
      desc_(std::move(desc)),
      cfg_(cfg),
      rcfg_(rcfg),
      tracer_(tracer),
      ntg_pref_(desc_->ntg()) {
  FX_CHECK(world_.size() == desc_->nproc(),
           "recovery driver needs one rank per descriptor slot");
  FX_CHECK(cfg_.num_bands >= 1, "nothing to recover without bands");
}

RecoveryReport RecoveryDriver::run(std::vector<std::vector<fft::cplx>>& out) {
  core::WallTimer timer;
  out.assign(static_cast<std::size_t>(carried_total()), {});

  RecoveryReport rep;
  mpi::Comm comm = world_;
  std::shared_ptr<const Descriptor> desc = desc_;
  int completed = 0;
  // One attempt == one shrink-and-replay round.  The salt is a constant, so
  // every survivor sleeps the same jittered backoff and re-enters replay in
  // lockstep.  A live request deadline tightens the repair budget too: no
  // point starting a replay round the request can no longer afford.
  core::RetryPolicy rpol = rcfg_.retry;
  if (cfg_.deadline.active()) {
    rpol.deadline_s = core::RetryPolicy::merge_deadline_s(
        rpol.deadline_s, std::max(cfg_.deadline.remaining_s(), 1e-6));
  }
  core::RetryController retry(rpol, 0x5ec04e8ULL);

  for (;;) {
    try {
      run_batches(comm, desc, completed, out, rep);
      rep.completed = true;
      break;
    } catch (const core::FaultError& e) {
      // This rank was killed by injection: revoke so every blocked peer
      // unwinds promptly, declare death so the survivors' repair rendezvous
      // can complete without us, and bow out.
      comm.revoke(e.what());
      comm.mark_dead();
      rep.died = true;
      break;
    } catch (const core::DeadlineExceeded&) {
      // Running out of time is a terminal verdict for the request, not a
      // fault: never burn a repair round on it.  The throw was collective
      // (pipeline iteration or batch boundary), so the communicator is
      // healthy and every rank unwinds here together.
      throw;
    } catch (const core::Error& e) {
      // Survivable failure: a peer's revoke unwound us, a guard exhausted
      // its retries, or the validator flagged a mismatch.  Repair if the
      // budget allows, otherwise surface the original error.
      bool cont = rcfg_.enabled && retry.should_retry();
      if (cfg_.deadline.active()) {
        // The budget check reads each rank's own clock; agree (fault-
        // tolerant Min, dead ranks excused) so clock skew cannot split the
        // survivors between repair and rethrow -- one rank re-entering
        // replay while another unwinds would hang the repair rendezvous.
        cont = cont && !cfg_.deadline.expired();
        cont = comm.agree(cont ? 1 : 0) == 1;
        if (!cont && comm.agree(cfg_.deadline.expired() ? 0 : 1) == 0) {
          throw core::DeadlineExceeded(core::cat(
              "recovery: wall-clock budget exhausted while handling a "
              "survivable failure (",
              e.what(), "); cancelling instead of repairing"));
        }
      }
      if (!cont) throw;
      repair(comm, completed, e.what(), rep);
      retry.backoff();
    }
  }
  rep.final_nproc = desc->nproc();
  rep.final_ntg = desc->ntg();
  rep.seconds = timer.seconds();
  return rep;
}

int RecoveryDriver::carried_total() const {
  return cfg_.real_bands ? static_cast<int>(fft::gamma_pair_count(
                               static_cast<std::size_t>(cfg_.num_bands)))
                         : cfg_.num_bands;
}

void RecoveryDriver::run_batches(mpi::Comm& comm,
                                 std::shared_ptr<const Descriptor>& desc,
                                 int& completed,
                                 std::vector<std::vector<fft::cplx>>& out,
                                 RecoveryReport& rep) {
  // Everything here -- batches, checkpoints, replay counts, `out` slots --
  // is in *carried* bands: packed pairs when real_bands, bands otherwise.
  // The sub-pipeline still wants its config in real bands, so a real-mode
  // batch of `batch` pairs covers real bands [2*completed, 2*completed +
  // cfg.num_bands); pairs always start at even offsets, so the pairing of
  // every batch matches a single unbatched run's.
  const int total = carried_total();
  const int interval =
      rcfg_.checkpoint_bands > 0 ? std::min(rcfg_.checkpoint_bands, total)
                                 : total;
  while (completed < total) {
    check_deadline(comm, cfg_.deadline, completed, total);
    const int batch = std::min(interval, total - completed);
    const int ntg = degraded_ntg(comm.size(), ntg_pref_, batch);
    if (desc->nproc() != comm.size() || desc->ntg() != ntg) {
      desc = std::make_shared<const Descriptor>(*desc, comm.size(), ntg);
    }
    PipelineConfig cfg = cfg_;
    cfg.num_bands = cfg_.real_bands
                        ? std::min(2 * batch, cfg_.num_bands - 2 * completed)
                        : batch;
    // In Repair mode the pipeline defers its SDC verdict to us instead of
    // throwing: corrupted bands are named, the world stays healthy, and we
    // recompute only those bands below.  Detect mode throws core::SdcError,
    // which run()'s generic handler escalates to a full shrink-and-replay.
    cfg.abft_defer = cfg_.abft == AbftMode::Repair;
    inflight_ = batch;  // a fault from here to commit replays these bands
    BandFftPipeline pipe(comm, desc, cfg, tracer_);
    pipe.initialize_bands(cfg_.real_bands ? 2 * completed : completed);
    pipe.run();
    const std::vector<int> bad = pipe.abft_corrupt_bands();
    checkpoint(comm, *desc, pipe, completed, batch, out);
    if (!bad.empty()) replay_bands(comm, desc, completed, bad, out, rep);
    completed += batch;
    inflight_ = 0;
  }
}

void RecoveryDriver::replay_bands(mpi::Comm& comm,
                                  const std::shared_ptr<const Descriptor>& desc,
                                  int first, const std::vector<int>& bad,
                                  std::vector<std::vector<fft::cplx>>& out,
                                  RecoveryReport& rep) {
  auto& am = abft_metrics();
  // The verdict was a collective Allreduce, so every rank agrees on `bad`
  // and the world is healthy: no revoke, no shrink, no rollback.  Each
  // corrupted carried band is recomputed from its deterministic initial
  // coefficients through a one-band ntg == 1 pipeline over the *same*
  // communicator (degraded_ntg of a 1-band batch is always 1), under the
  // same ABFT checks.  Per-band arithmetic is decomposition-independent --
  // including the wire quantization on the ntg == 1 shortcuts -- so the
  // repaired band is bit-identical to a fault-free run's.
  std::shared_ptr<const Descriptor> solo = desc;
  if (solo->ntg() != 1) {
    solo = std::make_shared<const Descriptor>(*desc, comm.size(), 1);
  }
  for (const int n : bad) {
    const int gb = first + n;
    am.repairs.add();
    core::emit_instant(
        core::cat("abft: surgical replay of carried band ", gb));
    PipelineConfig cfg = cfg_;
    cfg.num_bands =
        cfg_.real_bands ? std::min(2, cfg_.num_bands - 2 * gb) : 1;
    cfg.abft_defer = true;
    BandFftPipeline pipe(comm, solo, cfg, tracer_);
    pipe.initialize_bands(cfg_.real_bands ? 2 * gb : gb);
    pipe.run();
    if (!pipe.abft_corrupt_bands().empty()) {
      // The recompute tripped the detectors again: something beyond a
      // transient flip is wrong (sticky corruption, a bad rank).  Hand the
      // band to the heavyweight machinery.
      am.escalations.add();
      throw core::SdcError(core::cat(
          "abft: carried band ", gb,
          " still corrupt after surgical replay; escalating to "
          "shrink-and-replay"));
    }
    checkpoint(comm, *solo, pipe, gb, 1, out);
    am.repaired_bands.add();
    ++rep.repaired_bands;
  }
  fft::PlanCache::global().evict_unused();
}

void RecoveryDriver::checkpoint(mpi::Comm& comm, const Descriptor& desc,
                                const BandFftPipeline& pipe, int first,
                                int batch,
                                std::vector<std::vector<fft::cplx>>& out) {
  const int nproc = comm.size();
  const auto np = static_cast<std::size_t>(nproc);
  const std::size_t ng_mine = desc.ng_world(comm.rank());
  const std::size_t ng_total = desc.sphere().size();

  // Replicate each band to every rank: send my packed slice to all peers
  // (every send segment starts at 0), receive all slices rank-major.
  std::vector<std::size_t> scounts(np, ng_mine);
  std::vector<std::size_t> sdispls(np, 0);
  std::vector<std::size_t> rcounts(np);
  std::vector<std::size_t> rdispls(np);
  std::size_t off = 0;
  for (int p = 0; p < nproc; ++p) {
    rcounts[static_cast<std::size_t>(p)] = desc.ng_world(p);
    rdispls[static_cast<std::size_t>(p)] = off;
    off += rcounts[static_cast<std::size_t>(p)];
  }

  // Stage the whole batch before committing: a fault mid-gather unwinds out
  // of here with `out` and the completed count untouched, so rollback never
  // sees a half-written checkpoint.
  std::vector<fft::cplx> gathered(off);
  std::vector<std::vector<fft::cplx>> staging(
      static_cast<std::size_t>(batch));
  for (int n = 0; n < batch; ++n) {
    // The checkpoint is the recovery ground truth, so it rides the same
    // checksum guard as the pipeline's transposes when guarding is on --
    // otherwise one corrupted gather would silently poison every replica.
    if (cfg_.guard_exchanges) {
      const double budget =
          cfg_.deadline.active()
              ? std::max(cfg_.deadline.remaining_s(), 1e-3)
              : 0.0;
      guarded_alltoallv(comm, pipe.band(n).data(), scounts.data(),
                        sdispls.data(), gathered.data(), rcounts.data(),
                        rdispls.data(), kCheckpointTag,
                        cfg_.guard_max_retries, nullptr, budget);
    } else {
      comm.alltoallv(pipe.band(n).data(), scounts.data(), sdispls.data(),
                     gathered.data(), rcounts.data(), rdispls.data(),
                     kCheckpointTag);
    }
    auto& dst = staging[static_cast<std::size_t>(n)];
    dst.resize(ng_total);
    for (int p = 0; p < nproc; ++p) {
      const auto index = desc.world_g_index(p);
      const fft::cplx* src =
          gathered.data() + rdispls[static_cast<std::size_t>(p)];
      for (std::size_t k = 0; k < index.size(); ++k) dst[index[k]] = src[k];
    }
  }

  std::uint64_t bytes = 0;
  for (int n = 0; n < batch; ++n) {
    auto& band = staging[static_cast<std::size_t>(n)];
    bytes += band.size() * sizeof(fft::cplx);
    out[static_cast<std::size_t>(first + n)] = std::move(band);
  }
  recovery_metrics().checkpoint_bytes.add(bytes);
}

void RecoveryDriver::repair(mpi::Comm& comm, int& completed, const char* why,
                            RecoveryReport& rep) {
  auto& m = recovery_metrics();
  core::WallTimer timer;
  const int old_id = comm.id();

  // Revoking is idempotent: the comm may already carry a peer's revoke (that
  // is how we unwound), but a locally detected failure (guard exhaustion)
  // must poison it ourselves so blocked peers join the repair.
  comm.revoke(why);
  const auto stable = static_cast<int>(comm.agree(completed));
  mpi::Comm next = comm.shrink();

  // Replayed work: bands of the aborted in-flight batch plus any committed
  // checkpoints rolled back past (survivors commit in lockstep, so the
  // rollback part is usually zero and the in-flight batch dominates).
  const int replayed = (completed - stable) + inflight_;
  inflight_ = 0;
  rep.replayed_bands += replayed;
  if (replayed > 0) {
    m.replayed_bands.add(static_cast<std::uint64_t>(replayed));
  }
  completed = stable;
  comm = std::move(next);
  ++rep.shrinks;
  m.shrinks.add();
  m.shrink_ms.record(timer.seconds() * 1e3);

  // Elastic re-decomposition happens lazily in run_batches (it also owns the
  // partial-final-batch ntg choice); here we only drop plans no pipeline
  // holds anymore, so a dead layout's plans don't stay resident.
  fft::PlanCache::global().evict_unused();

  core::emit_instant(core::cat(
      "recovery: shrank comm ", old_id, " -> ", comm.id(), " (",
      comm.size(), " survivors), replaying from band ", stable));
  // A shrink is a flight-recorder moment: the observatory's incident sink
  // dumps the last iterations, showing what the world looked like when the
  // failure hit.  Rank 0 of the survivors speaks for the collective repair.
  if (comm.rank() == 0) {
    core::emit_incident(core::cat("recovery: shrink to ", comm.size(),
                                  " ranks (", why, ")"));
  }
}

}  // namespace fx::fftx
