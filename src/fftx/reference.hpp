// Serial oracle for the distributed band transform.
//
// Computes, with the serial 3D plan, exactly what the pipeline computes for
// one band:
//
//   c_out(G) = (1/N) * FFT_fwd[ V(r) .* FFT_bwd[ embed(c_in) ] ](G)
//
// where embed() places the packed sphere coefficients at their folded grid
// positions.  Tests compare every pipeline mode/layout against this.
#pragma once

#include <vector>

#include "fft/types.hpp"
#include "fftx/descriptor.hpp"

namespace fx::fftx {

/// Expected output coefficients of `band`, in the global stick-ordered
/// sphere order (apply the descriptor's index maps to slice per rank).
std::vector<fft::cplx> reference_band_output(const Descriptor& desc, int band,
                                             bool apply_potential);

/// Initial coefficients of `band` in global stick-ordered sphere order.
std::vector<fft::cplx> reference_band_input(const Descriptor& desc, int band);

}  // namespace fx::fftx
