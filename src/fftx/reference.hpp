// Serial oracle for the distributed band transform.
//
// Computes, with the serial 3D plan, exactly what the pipeline computes for
// one band:
//
//   c_out(G) = (1/N) * FFT_fwd[ V(r) .* FFT_bwd[ embed(c_in) ] ](G)
//
// where embed() places the packed sphere coefficients at their folded grid
// positions.  Tests compare every pipeline mode/layout against this.
#pragma once

#include <vector>

#include "fft/types.hpp"
#include "fftx/descriptor.hpp"

namespace fx::fftx {

/// Expected output coefficients of `band`, in the global stick-ordered
/// sphere order (apply the descriptor's index maps to slice per rank).
std::vector<fft::cplx> reference_band_output(const Descriptor& desc, int band,
                                             bool apply_potential);

/// Initial coefficients of `band` in global stick-ordered sphere order.
std::vector<fft::cplx> reference_band_input(const Descriptor& desc, int band);

/// Initial coefficients of real-band pair `pair` under the pipeline's
/// gamma-point packing (PipelineConfig::real_bands): bands 2 * pair and
/// 2 * pair + 1 are Hermitian-symmetrized (c(-G) = conj(c(G)), so their
/// real-space fields are real) and packed as real/imaginary parts of one
/// complex band.  When 2 * pair + 1 >= num_bands (odd band count) the
/// imaginary part is zero.  Global stick-ordered sphere order.
std::vector<fft::cplx> reference_packed_band_input(const Descriptor& desc,
                                                   int pair, int num_bands);

/// Expected output of real-band pair `pair`: the packed input pushed
/// through the same serial 3D transform as reference_band_output.  The
/// distributed pipeline applies the identical per-band arithmetic to a
/// packed band as to any complex band, so this is the r2c-mode oracle.
std::vector<fft::cplx> reference_packed_band_output(const Descriptor& desc,
                                                    int pair, int num_bands,
                                                    bool apply_potential);

}  // namespace fx::fftx
