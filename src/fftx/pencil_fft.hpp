// Pencil-decomposed distributed 3D FFT.
//
// The slab scheme (GridFft) stops scaling at P > nz: there are only nz
// planes to hand out.  The pencil scheme arranges P = Pr * Pc ranks in a
// 2D process grid and keeps two dimensions distributed at all times, so it
// scales to P ~ nx*ny ranks -- the decomposition modern distributed FFT
// libraries (heFFTe, P3DFFT) use.  Data passes through three layouts:
//
//   Z-pencils: x in X(r), y in Y(c), z full     [reciprocal-space input]
//      | 1D FFTs along z, then Alltoallv inside the ROW communicator
//      |   (fixed x-block: trades the y distribution for a z distribution)
//   Y-pencils: x in X(r), z in Z(c), y full
//      | 1D FFTs along y, then Alltoallv inside the COLUMN communicator
//      |   (fixed z-block: trades the x distribution for a y distribution)
//   X-pencils: y in Y2(r), z in Z(c), x full    [real-space output]
//      | 1D FFTs along x
//
// Each transpose involves only one row or column of the process grid
// (sqrt(P)-ish ranks) instead of all P -- the communication-structure
// trade-off bench_pencil_vs_slab quantifies against GridFft.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/aligned.hpp"
#include "fft/batch1d.hpp"
#include "fft/plan_cache.hpp"
#include "pw/grid.hpp"
#include "pw/sticks.hpp"
#include "simmpi/comm.hpp"

namespace fx::trace {
class Tracer;
}  // namespace fx::trace

namespace fx::fftx {

class PencilFft {
 public:
  /// Collective over `world` (splits the row/column communicators).
  /// world.size() must equal prows * pcols.  An optional tracer records
  /// FFT stages and transpose marshalling as compute spans (rank = world
  /// rank).
  PencilFft(mpi::Comm world, const pw::GridDims& dims, int prows, int pcols,
            trace::Tracer* tracer = nullptr);

  /// Re-plans against a new (typically shrunk) communicator and process
  /// grid, keeping dims and tracer.  Collective over `world`; any data held
  /// in pencil layouts of the old grid is invalidated.
  void replan(mpi::Comm world, int prows, int pcols);

  [[nodiscard]] const pw::GridDims& dims() const { return dims_; }
  [[nodiscard]] int prows() const { return prows_; }
  [[nodiscard]] int pcols() const { return pcols_; }
  [[nodiscard]] int row() const { return row_; }
  [[nodiscard]] int col() const { return col_; }

  // --- Block accessors (counts along each distributed axis) ---
  [[nodiscard]] std::size_t nx_of(int r) const { return xdist_.count(r); }
  [[nodiscard]] std::size_t x0_of(int r) const { return xdist_.first(r); }
  [[nodiscard]] std::size_t ny_of(int c) const { return ydist_.count(c); }
  [[nodiscard]] std::size_t y0_of(int c) const { return ydist_.first(c); }
  [[nodiscard]] std::size_t nz_of(int c) const { return zdist_.count(c); }
  [[nodiscard]] std::size_t z0_of(int c) const { return zdist_.first(c); }
  [[nodiscard]] std::size_t ny2_of(int r) const { return y2dist_.count(r); }
  [[nodiscard]] std::size_t y20_of(int r) const { return y2dist_.first(r); }

  /// Local element counts of the three layouts on this rank.
  /// Z-pencils: [ix][iy][iz] with iz fastest.
  [[nodiscard]] std::size_t zpencil_elems() const {
    return nx_of(row_) * ny_of(col_) * dims_.nz;
  }
  /// X-pencils: [iy][iz][ix] with ix fastest.
  [[nodiscard]] std::size_t xpencil_elems() const {
    return ny2_of(row_) * nz_of(col_) * dims_.nx;
  }

  /// Reciprocal -> real space (engine Backward, unnormalized): consumes
  /// Z-pencils, produces X-pencils.  Collective; tags must agree.
  void to_real(std::span<const fft::cplx> zpencils,
               std::span<fft::cplx> xpencils, fft::Workspace& ws, int tag = 0);

  /// Real -> reciprocal, scaled by 1/volume (round trip is the identity).
  void to_recip(std::span<const fft::cplx> xpencils,
                std::span<fft::cplx> zpencils, fft::Workspace& ws,
                int tag = 0);

 private:
  // ypencil layout: [ix][iz][iy] with iy fastest.
  [[nodiscard]] std::size_t ypencil_elems() const {
    return nx_of(row_) * nz_of(col_) * dims_.ny;
  }
  void transpose_z_to_y(const fft::cplx* z, fft::cplx* y, int tag);
  void transpose_y_to_z(const fft::cplx* y, fft::cplx* z, int tag);
  void transpose_y_to_x(const fft::cplx* y, fft::cplx* x, int tag);
  void transpose_x_to_y(const fft::cplx* x, fft::cplx* y, int tag);

  mpi::Comm world_;
  pw::GridDims dims_;
  trace::Tracer* tracer_;
  int prows_;
  int pcols_;
  int row_;
  int col_;
  mpi::Comm row_comm_;  ///< fixed row: ranks sharing my x-block
  mpi::Comm col_comm_;  ///< fixed column: ranks sharing my z-block

  pw::PlaneDist xdist_;   ///< x over process rows
  pw::PlaneDist ydist_;   ///< y over process columns (Z-pencil stage)
  pw::PlaneDist zdist_;   ///< z over process columns (Y/X-pencil stages)
  pw::PlaneDist y2dist_;  ///< y over process rows (X-pencil stage)

  std::shared_ptr<const fft::BatchPlan1d> fz_bwd_, fz_fwd_;
  std::shared_ptr<const fft::BatchPlan1d> fy_bwd_, fy_fwd_;
  std::shared_ptr<const fft::BatchPlan1d> fx_bwd_, fx_fwd_;

  // Row-transpose counts (peer = column index), column-transpose counts
  // (peer = row index); symmetric pairs for the reverse direction.
  std::vector<std::size_t> row_send_counts_, row_send_displs_;
  std::vector<std::size_t> row_recv_counts_, row_recv_displs_;
  std::vector<std::size_t> col_send_counts_, col_send_displs_;
  std::vector<std::size_t> col_recv_counts_, col_recv_displs_;

  core::aligned_vector<fft::cplx> stage_a_;
  core::aligned_vector<fft::cplx> stage_b_;
  core::aligned_vector<fft::cplx> ybuf_;
};

}  // namespace fx::fftx
