// Algorithm-based fault tolerance (ABFT) for the band-FFT pipeline:
// silent-data-corruption detection per stage, with surgical repair hooks
// for the RecoveryDriver.
//
// The communication hardening (guarded exchanges, recovery, watchdog)
// assumes every FLOP is correct; a bit flip inside an FFT or a scratch
// buffer sails through all of it.  This layer closes that gap with three
// detectors, layered by what they can see:
//
//   1. checksum bands (linearity) -- before each batched FFT stage the
//      guard forms one weighted combination of the batch (fft/checksum.hpp)
//      and transforms it with the same plan; by linearity the result must
//      match the same combination of the transformed batch to roundoff.
//      Catches corruption *inside* the transforms.
//   2. Parseval / energy gauges -- an unnormalized length-n transform
//      scales energy by exactly n; VOFR scales each element by a known
//      real factor; an exchange conserves energy up to wire quantization.
//      A cheap, coarse second detector across every stage, including the
//      transposes (per-band sent/received energies are recorded locally
//      and summed in the verdict's single Allreduce -- the band loop gains
//      no synchronization points).
//   3. at-rest digests -- each stage seals a word digest over its output
//      buffer, verified when the next stage first reads it.  Rounding
//      plays no role between stages, so *any* flipped bit in a parked
//      pencil/planes buffer (the fault injector's flip model) is caught,
//      bit-exactly, at every wire format.
//
// Detections are deferred, not thrown mid-flight: bands are independent,
// so a corrupted band flows harmlessly to the end of run(), where a single
// Allreduce agrees on the per-band verdict across ranks.  In detect mode
// the pipeline then throws core::SdcError in lockstep; under the
// RecoveryDriver in repair mode, the corrupted bands are recomputed in
// place through a one-band ntg==1 pipeline -- no communicator shrink --
// escalating to full shrink-and-replay only if the recompute fails again.
//
// Tolerances: the linearity and energy checks compare quantities that
// legitimately differ by floating-point rounding, so their thresholds are
// roundoff floors (fft/checksum.hpp) -- corruption below the numerical
// noise floor is undetectable in principle and harmless in practice.  The
// digests need no tolerance.  Detection is therefore bit-exact for
// between-stage flips, and noise-floor-bounded for in-compute corruption.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/aligned.hpp"
#include "core/metrics.hpp"
#include "fft/batch1d.hpp"
#include "fft/checksum.hpp"
#include "fft/plan2d.hpp"
#include "fftx/descriptor.hpp"
#include "simmpi/comm.hpp"

namespace fx::fftx {

enum class AbftMode { Off, Detect, Repair };

const char* to_string(AbftMode mode);

/// Parses an FFTX_ABFT value; throws core::Error naming the variable and
/// the accepted values ("off", "detect", "repair") on anything else.
[[nodiscard]] AbftMode parse_abft_mode(const char* value);

/// Default of PipelineConfig::abft from FFTX_ABFT (unset/empty = Off).
[[nodiscard]] AbftMode default_abft_mode();

/// Registry-backed fftx.abft.* instruments, shared with the recovery
/// driver's surgical-repair path.
struct AbftMetrics {
  core::Counter& checks;                ///< invariant evaluations
  core::Counter& detections;            ///< total violations flagged
  core::Counter& digest_detections;
  core::Counter& linearity_detections;
  core::Counter& energy_detections;     ///< Parseval + VOFR + exchange
  core::Counter& repairs;               ///< surgical band replays attempted
  core::Counter& repaired_bands;        ///< replays that verified clean
  core::Counter& escalations;           ///< replays that re-failed
  core::Gauge& linearity_rel_err;       ///< peak residual/scale (clean runs)
  core::Gauge& energy_rel_err;          ///< peak relative energy mismatch
};
AbftMetrics& abft_metrics();

/// Per-pipeline ABFT state.  One guard serves every concurrent iteration:
/// all mutable per-iteration state lives in a Scratch owned by the
/// iteration's WorkBuffers, and the per-band corruption flags are
/// single-writer slots (rank w carries band iter + g in iteration iter).
class AbftGuard {
 public:
  /// `desc` must outlive the guard (the pipeline holds it by shared_ptr).
  /// `npsi` is the carried-band count (flag vector size).
  AbftGuard(const Descriptor& desc, int group, int group_rank, int npsi,
            mpi::WireFormat wire);

  struct Scratch {
    core::aligned_vector<fft::cplx> zcap;   ///< Z checksum band (input combo)
    core::aligned_vector<fft::cplx> zref;   ///< its transform
    core::aligned_vector<fft::cplx> xycap;  ///< XY checksum plane
    core::aligned_vector<fft::cplx> xyref;
    double z_e_pre = 0.0;   ///< Parseval input energy of the Z stage
    double xy_e_pre = 0.0;
    /// Exchange conservation inputs, [dir][{sent, received, elems}] with
    /// dir 0 = forward scatter, 1 = backward; folded into the per-band
    /// ledger by finish_iteration and summed across ranks in verdict().
    double ex[2][3] = {{0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
    /// Post-transform pencil energy from the last z_verify -- the forward
    /// scatter's sent energy, reused so the send side costs no extra pass.
    double z_e_post = 0.0;
    /// Expected post-VOFR energy, armed by vofr_arm and settled against the
    /// next capture's energy (the backward XY stage reads the same buffer,
    /// so the check rides its accumulation pass).  Negative = not armed.
    double vofr_e = -1.0;
    /// Set by exchange_send; the next capture pass over the received buffer
    /// (xy_capture forward, z_verify backward) supplies the ledger's
    /// received energy instead of a dedicated energy pass.
    bool recv_pending[2] = {false, false};
    /// Whether the in-flight XY stage carries the full linearity check or
    /// the light Parseval+digest path (see xy_begin).
    bool xy_linear = true;
    std::uint64_t pencil_digest = 0;
    std::uint64_t planes_digest = 0;
    bool pencil_sealed = false;
    bool planes_sealed = false;
    int iter = 0;
    bool corrupt = false;
  };

  /// Resets `s` for iteration `iter` (call at the top of the band loop;
  /// pooled WorkBuffers carry stale seals otherwise).
  void begin_iteration(Scratch& s, int iter) const;
  /// Folds the iteration's verdict into the per-band flag vector.
  void finish_iteration(const Scratch& s);

  // -- checksum band + Parseval across the batched Z-FFT --
  /// Starts a fresh Z checksum accumulation.
  void z_reset(Scratch& s) const;
  /// Accumulates sticks [lo, hi) of `pencil` (global stick indices; the
  /// overlapped backward leg accumulates chunk by chunk as chunks land).
  void z_accumulate(Scratch& s, const fft::cplx* pencil, std::size_t lo,
                    std::size_t hi) const;
  /// Fused stage entry for the unchunked Z stages: check_pencil + z_reset +
  /// a full z_accumulate in ONE streaming pass (the accumulate's digest of
  /// the touched region is bit-identical to the seal's, so the at-rest
  /// check costs no extra read of the pencil).
  void z_begin(Scratch& s, const fft::cplx* pencil, std::size_t nst);
  /// After the stage transformed all `nst` sticks in place: transforms the
  /// checksum band with the same-direction plan and checks linearity and
  /// Parseval.  The recombination pass doubles as the post-stage
  /// seal_pencil (fused digest), so callers need no separate seal.
  void z_verify(Scratch& s, const fft::cplx* pencil, std::size_t nst,
                fft::Direction dir);

  // -- checksum plane + Parseval across the per-plane XY-FFT --
  /// Also settles a pending received-energy record (forward exchange) and
  /// an armed VOFR bracket against the capture's energy, so neither costs
  /// an extra pass over the planes.
  void xy_capture(Scratch& s, const fft::cplx* planes, std::size_t npz);
  /// Fused stage entry: check_planes + xy_capture in one pass (see
  /// z_begin).  The checksum-plane transform is by far the most expensive
  /// ABFT component on small grids (one extra 2D FFT per stage, ~1/npz of
  /// the stage's own compute), so the full linearity check alternates
  /// direction per iteration: each XY stage class keeps periodic linearity
  /// coverage while the off-duty stage runs a light pass that still
  /// carries Parseval, the exchange/VOFR energy settlements, and the
  /// bit-exact at-rest digests at full rate.
  void xy_begin(Scratch& s, const fft::cplx* planes, std::size_t npz,
                fft::Direction dir);
  /// As z_verify: the recombination pass doubles as seal_planes.  Follows
  /// the duty cycle chosen by xy_begin/xy_capture (Scratch::xy_linear).
  void xy_verify(Scratch& s, const fft::cplx* planes, std::size_t npz,
                 fft::Direction dir);

  // -- VOFR energy bracket --
  /// Expected post-VOFR energy, sum |v_i * x_i|^2, from pre-VOFR values.
  [[nodiscard]] double vofr_expected(const fft::cplx* planes,
                                     const double* v, std::size_t n) const;
  /// Arms the bracket: the next xy_capture (the backward XY stage reads the
  /// VOFR output directly) compares its energy against `expected`.
  void vofr_arm(Scratch& s, double expected) const { s.vofr_e = expected; }

  // -- at-rest digests across stage gaps --
  void seal_pencil(Scratch& s, const fft::cplx* p, std::size_t n) const;
  void seal_planes(Scratch& s, const fft::cplx* p, std::size_t n) const;
  /// One-shot: verifies and clears the seal (a transformed buffer's old
  /// digest must not linger).  No-op when unsealed.
  void check_pencil(Scratch& s, const fft::cplx* p, std::size_t n);
  void check_planes(Scratch& s, const fft::cplx* p, std::size_t n);

  // -- cross-rank exchange energy conservation --
  /// Records one exchange's local {sent, received} energies and element
  /// count (dir 0 = forward scatter, 1 = backward).  Purely local: the
  /// cross-rank comparison happens in verdict(), whose single summed
  /// Allreduce covers every band and both directions at once, so the band
  /// loop gains no extra synchronization points (an inline 3-double
  /// Allreduce per exchange was measured at tens of percent of wall time
  /// from rank-skew wait alone).

  /// Energy of the plane elements the backward scatter actually sends (the
  /// sphere's stick columns; the rest of the dense grid stays local).
  [[nodiscard]] double stick_energy(const fft::cplx* planes) const;

  /// Records the send side; the received energy is supplied by the next
  /// capture pass over the landed buffer (see Scratch::recv_pending).
  void exchange_send(Scratch& s, double sent, std::size_t elems,
                     int dir) const;

  /// End-of-run collective verdict over `world`: a single Allreduce(Sum)
  /// combining the per-band flag votes with the exchange-energy ledger
  /// (conservation evaluated with a wire-aware tolerance, identically on
  /// every rank).  Returns the agreed corrupted carried-band indices
  /// (identical on every rank).  Call once, after the band loop joined.
  const std::vector<int>& verdict(mpi::Comm& world);
  [[nodiscard]] const std::vector<int>& corrupt_bands() const {
    return verdict_;
  }

 private:
  [[nodiscard]] int band_of(int iter) const { return iter + g_; }
  void flag(Scratch& s, core::Counter& detector, const std::string& what);
  /// Settles a pending forward-exchange receive and an armed VOFR bracket
  /// against the capture energy just written to s.xy_e_pre (shared by
  /// xy_capture and the fused xy_begin).
  void xy_settle(Scratch& s, std::size_t npz);
  /// Consumes a pending pencil/planes seal against a digest computed by a
  /// fused pass (shared by z_begin / xy_begin).
  void check_sealed(Scratch& s, std::uint64_t dig, bool pencil);

  const Descriptor* desc_;
  int g_;  ///< task group id (carried band of iteration i is i + g)
  int b_;  ///< group rank (plane/stick owner id)
  mpi::WireFormat wire_;
  std::shared_ptr<const fft::BatchPlan1d> z_fw_;  ///< Backward (to real)
  std::shared_ptr<const fft::BatchPlan1d> z_bw_;  ///< Forward (to recip)
  std::shared_ptr<const fft::Fft2d> xy_fw_;
  std::shared_ptr<const fft::Fft2d> xy_bw_;
  std::vector<unsigned char> flags_;  ///< per carried band, single writer
  /// Exchange-energy ledger: 6 doubles per carried band ([dir][{sent,
  /// received, elems}]), written by the band's single carrier rank and
  /// summed across ranks at verdict time.
  std::vector<double> ex_;
  std::vector<int> verdict_;
};

}  // namespace fx::fftx
