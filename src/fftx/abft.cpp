#include "fftx/abft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "fft/plan_cache.hpp"
#include "fft/workspace.hpp"

namespace fx::fftx {

using fft::cplx;

namespace {

// The verdict Allreduce runs on the world communicator after the band
// loop's join; a dedicated tag keeps it apart from iteration traffic and
// the recovery driver's checkpoint gathers (tag 9001).
constexpr int kVerdictTag = 9101;

}  // namespace

const char* to_string(AbftMode mode) {
  switch (mode) {
    case AbftMode::Off:
      return "off";
    case AbftMode::Detect:
      return "detect";
    case AbftMode::Repair:
      return "repair";
  }
  return "?";
}

AbftMode parse_abft_mode(const char* value) {
  const std::string v = value == nullptr ? "" : value;
  if (v.empty() || v == "off") return AbftMode::Off;
  if (v == "detect") return AbftMode::Detect;
  if (v == "repair") return AbftMode::Repair;
  throw core::Error(core::cat("invalid FFTX_ABFT='", v,
                              "': expected off, detect, or repair"));
}

AbftMode default_abft_mode() {
  return parse_abft_mode(std::getenv("FFTX_ABFT"));
}

AbftMetrics& abft_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static AbftMetrics m{reg.counter("fftx.abft.checks"),
                       reg.counter("fftx.abft.detections"),
                       reg.counter("fftx.abft.digest_detections"),
                       reg.counter("fftx.abft.linearity_detections"),
                       reg.counter("fftx.abft.energy_detections"),
                       reg.counter("fftx.abft.repairs"),
                       reg.counter("fftx.abft.repaired_bands"),
                       reg.counter("fftx.abft.escalations"),
                       reg.gauge("fftx.abft.linearity_rel_err"),
                       reg.gauge("fftx.abft.energy_rel_err")};
  return m;
}

AbftGuard::AbftGuard(const Descriptor& desc, int group, int group_rank,
                     int npsi, mpi::WireFormat wire)
    : desc_(&desc),
      g_(group),
      b_(group_rank),
      wire_(wire),
      z_fw_(fft::PlanCache::global().batch1d(desc.dims().nz,
                                             fft::Direction::Backward)),
      z_bw_(fft::PlanCache::global().batch1d(desc.dims().nz,
                                             fft::Direction::Forward)),
      xy_fw_(fft::PlanCache::global().plan2d(desc.dims().nx, desc.dims().ny,
                                             fft::Direction::Backward)),
      xy_bw_(fft::PlanCache::global().plan2d(desc.dims().nx, desc.dims().ny,
                                             fft::Direction::Forward)),
      flags_(static_cast<std::size_t>(npsi), 0),
      ex_(static_cast<std::size_t>(npsi) * 6, 0.0) {}

void AbftGuard::begin_iteration(Scratch& s, int iter) const {
  s.iter = iter;
  s.corrupt = false;
  s.pencil_sealed = false;
  s.planes_sealed = false;
  s.z_e_pre = 0.0;
  s.xy_e_pre = 0.0;
  std::memset(s.ex, 0, sizeof(s.ex));
  s.z_e_post = 0.0;
  s.vofr_e = -1.0;
  s.recv_pending[0] = false;
  s.recv_pending[1] = false;
}

void AbftGuard::finish_iteration(const Scratch& s) {
  // Single writer: rank w carries band iter + g_ and no other rank's
  // thread touches this slot; the band loop's join publishes it before
  // verdict() reads.
  const std::size_t band = static_cast<std::size_t>(band_of(s.iter));
  if (s.corrupt) flags_[band] = 1;
  std::memcpy(ex_.data() + band * 6, s.ex, sizeof(s.ex));
}

void AbftGuard::flag(Scratch& s, core::Counter& detector,
                     const std::string& what) {
  s.corrupt = true;
  detector.add();
  abft_metrics().detections.add();
  core::emit_instant(
      core::cat("abft: ", what, " on band ", band_of(s.iter)));
}

void AbftGuard::z_reset(Scratch& s) const {
  s.zcap.assign(desc_->dims().nz, cplx{0.0, 0.0});
  s.zref.resize(desc_->dims().nz);
  s.z_e_pre = 0.0;
}

void AbftGuard::z_accumulate(Scratch& s, const cplx* pencil, std::size_t lo,
                             std::size_t hi) const {
  const std::size_t nz = desc_->dims().nz;
  s.z_e_pre += fft::checksum_accumulate(s.zcap.data(), pencil + lo * nz, nz,
                                        lo, hi, nz);
}

void AbftGuard::check_sealed(Scratch& s, std::uint64_t dig, bool pencil) {
  bool& sealed = pencil ? s.pencil_sealed : s.planes_sealed;
  if (!sealed) return;
  sealed = false;
  auto& m = abft_metrics();
  m.checks.add();
  if (dig != (pencil ? s.pencil_digest : s.planes_digest)) {
    flag(s, m.digest_detections,
         pencil ? "pencil digest mismatch (at-rest flip)"
                : "planes digest mismatch (at-rest flip)");
  }
}

void AbftGuard::z_begin(Scratch& s, const cplx* pencil, std::size_t nst) {
  z_reset(s);
  const std::size_t nz = desc_->dims().nz;
  std::uint64_t dig = 0;
  s.z_e_pre =
      fft::checksum_accumulate_digest(s.zcap.data(), pencil, 0, nst, nz, &dig);
  check_sealed(s, dig, /*pencil=*/true);
}

void AbftGuard::z_verify(Scratch& s, const cplx* pencil, std::size_t nst,
                         fft::Direction dir) {
  if (nst == 0) return;
  const std::size_t nz = desc_->dims().nz;
  auto& m = abft_metrics();
  const fft::BatchPlan1d& plan =
      dir == fft::Direction::Backward ? *z_fw_ : *z_bw_;
  plan.execute_many(1, s.zcap.data(), 1, nz, s.zref.data(), 1, nz,
                    fft::thread_workspace());

  // The backward exchange's received energy is the accumulated pre-FFT
  // pencil energy; settling it here (all chunks have landed) costs nothing.
  if (s.recv_pending[1]) {
    s.recv_pending[1] = false;
    s.ex[1][1] += s.z_e_pre;
  }

  // Recombine the transformed sticks into zcap (its input combo is no
  // longer needed) and compare against the transformed checksum band.
  // The accumulation returns the post-transform energy and the post-stage
  // at-rest digest as side effects, so Parseval, the forward scatter's
  // sent energy, and the seal all ride the same pass.
  s.zcap.assign(nz, cplx{0.0, 0.0});
  const double e_post = fft::checksum_accumulate_digest(
      s.zcap.data(), pencil, 0, nst, nz, &s.pencil_digest);
  s.pencil_sealed = true;
  s.z_e_post = e_post;
  const auto r = fft::checksum_compare(s.zref.data(), s.zcap.data(), nz);
  const double scale = std::max(r.scale, 1e-300);
  m.checks.add();
  m.linearity_rel_err.max_of(r.residual / scale);
  if (!(r.residual <= fft::checksum_tolerance(nz, nst, r.scale))) {
    flag(s, m.linearity_detections,
         core::cat("Z-FFT checksum-band mismatch (residual ", r.residual,
                   ", scale ", r.scale, ")"));
  }

  const double expect = static_cast<double>(nz) * s.z_e_pre;
  const double erel = std::abs(e_post - expect) /
                      std::max({e_post, expect, 1e-300});
  m.checks.add();
  m.energy_rel_err.max_of(erel);
  if (!(erel <= fft::energy_tolerance(nst * nz))) {
    flag(s, m.energy_detections,
         core::cat("Z-FFT Parseval violation (energy ", e_post, ", expected ",
                   expect, ")"));
  }
}

void AbftGuard::xy_capture(Scratch& s, const cplx* planes, std::size_t npz) {
  const std::size_t nxny = desc_->dims().plane();
  s.xycap.assign(nxny, cplx{0.0, 0.0});
  s.xyref.resize(nxny);
  s.xy_e_pre =
      fft::checksum_accumulate(s.xycap.data(), planes, nxny, 0, npz, nxny);
  s.xy_linear = true;
  xy_settle(s, npz);
}

void AbftGuard::xy_begin(Scratch& s, const cplx* planes, std::size_t npz,
                         fft::Direction dir) {
  const std::size_t nxny = desc_->dims().plane();
  std::uint64_t dig = 0;
  // Alternate which XY direction carries the checksum-plane transform:
  // even iterations the forward stage, odd the backward one.
  s.xy_linear = ((s.iter + (dir == fft::Direction::Forward ? 1 : 0)) & 1) == 0;
  if (s.xy_linear) {
    s.xycap.assign(nxny, cplx{0.0, 0.0});
    s.xyref.resize(nxny);
    s.xy_e_pre = fft::checksum_accumulate_digest(s.xycap.data(), planes, 0,
                                                 npz, nxny, &dig);
  } else {
    s.xy_e_pre = fft::energy_digest(planes, npz * nxny, &dig);
  }
  check_sealed(s, dig, /*pencil=*/false);
  xy_settle(s, npz);
}

void AbftGuard::xy_settle(Scratch& s, std::size_t npz) {
  const std::size_t nxny = desc_->dims().plane();
  // Settle the forward exchange's received energy and the VOFR bracket
  // against this pass's energy -- the planes are exactly the landed /
  // post-VOFR buffer, so neither check needs its own pass.
  if (s.recv_pending[0]) {
    s.recv_pending[0] = false;
    s.ex[0][1] += s.xy_e_pre;
  }
  if (s.vofr_e >= 0.0) {
    const double expected = s.vofr_e;
    s.vofr_e = -1.0;
    auto& m = abft_metrics();
    const double e = s.xy_e_pre;
    const double erel =
        std::abs(e - expected) / std::max({e, expected, 1e-300});
    m.checks.add();
    m.energy_rel_err.max_of(erel);
    if (!(erel <= fft::energy_tolerance(npz * nxny))) {
      flag(s, m.energy_detections,
           core::cat("VOFR energy bracket violation (energy ", e,
                     ", expected ", expected, ")"));
    }
  }
}

void AbftGuard::xy_verify(Scratch& s, const cplx* planes, std::size_t npz,
                          fft::Direction dir) {
  if (npz == 0) return;
  const std::size_t nxny = desc_->dims().plane();
  auto& m = abft_metrics();
  double e_post = 0.0;
  if (s.xy_linear) {
    const fft::Fft2d& plan =
        dir == fft::Direction::Backward ? *xy_fw_ : *xy_bw_;
    plan.execute(s.xycap.data(), s.xyref.data(), fft::thread_workspace());

    // As in z_verify, the recombine pass doubles as the Parseval energy
    // pass and as the post-stage seal_planes.
    s.xycap.assign(nxny, cplx{0.0, 0.0});
    e_post = fft::checksum_accumulate_digest(s.xycap.data(), planes, 0, npz,
                                             nxny, &s.planes_digest);
    s.planes_sealed = true;
    const auto r =
        fft::checksum_compare(s.xyref.data(), s.xycap.data(), nxny);
    const double scale = std::max(r.scale, 1e-300);
    m.checks.add();
    m.linearity_rel_err.max_of(r.residual / scale);
    if (!(r.residual <= fft::checksum_tolerance(nxny, npz, r.scale))) {
      flag(s, m.linearity_detections,
           core::cat("XY-FFT checksum-plane mismatch (residual ", r.residual,
                     ", scale ", r.scale, ")"));
    }
  } else {
    // Off-duty direction: Parseval + seal only (see xy_begin).
    e_post = fft::energy_digest(planes, npz * nxny, &s.planes_digest);
    s.planes_sealed = true;
  }

  const double expect = static_cast<double>(nxny) * s.xy_e_pre;
  const double erel = std::abs(e_post - expect) /
                      std::max({e_post, expect, 1e-300});
  m.checks.add();
  m.energy_rel_err.max_of(erel);
  if (!(erel <= fft::energy_tolerance(npz * nxny))) {
    flag(s, m.energy_detections,
         core::cat("XY-FFT Parseval violation (energy ", e_post,
                   ", expected ", expect, ")"));
  }
}

double AbftGuard::vofr_expected(const cplx* planes, const double* v,
                                std::size_t n) const {
  double e = 0.0;
  for (std::size_t i = 0; i < n; ++i) e += std::norm(planes[i]) * v[i] * v[i];
  return e;
}

void AbftGuard::seal_pencil(Scratch& s, const cplx* p, std::size_t n) const {
  s.pencil_digest = fft::digest(p, n);
  s.pencil_sealed = true;
}

void AbftGuard::seal_planes(Scratch& s, const cplx* p, std::size_t n) const {
  s.planes_digest = fft::digest(p, n);
  s.planes_sealed = true;
}

void AbftGuard::check_pencil(Scratch& s, const cplx* p, std::size_t n) {
  if (!s.pencil_sealed) return;
  s.pencil_sealed = false;
  auto& m = abft_metrics();
  m.checks.add();
  if (fft::digest(p, n) != s.pencil_digest) {
    flag(s, m.digest_detections, "pencil digest mismatch (at-rest flip)");
  }
}

void AbftGuard::check_planes(Scratch& s, const cplx* p, std::size_t n) {
  if (!s.planes_sealed) return;
  s.planes_sealed = false;
  auto& m = abft_metrics();
  m.checks.add();
  if (fft::digest(p, n) != s.planes_digest) {
    flag(s, m.digest_detections, "planes digest mismatch (at-rest flip)");
  }
}

void AbftGuard::exchange_send(Scratch& s, double sent, std::size_t elems,
                              int dir) const {
  abft_metrics().checks.add();
  s.ex[dir][0] += sent;
  s.ex[dir][2] += static_cast<double>(elems);
  s.recv_pending[dir] = true;
}

double AbftGuard::stick_energy(const cplx* planes) const {
  const std::size_t nxny = desc_->dims().plane();
  const std::size_t npz_b = desc_->npz(b_);
  double e = 0.0;
  for (int q = 0; q < desc_->group_size(); ++q) {
    for (std::size_t stick : desc_->group_sticks(q)) {
      const cplx* col = planes + desc_->stick_xy(stick);
      for (std::size_t iz = 0; iz < npz_b; ++iz) {
        e += std::norm(col[iz * nxny]);
      }
    }
  }
  return e;
}

const std::vector<int>& AbftGuard::verdict(mpi::Comm& world) {
  verdict_.clear();
  if (flags_.empty()) return verdict_;

  // One Sum-Allreduce carries both the per-band corruption votes (a sum of
  // 0/1 flags is positive iff any rank flagged the band) and the exchange
  // energy ledger, so end-of-run agreement costs a single collective.  The
  // summed ledger reconstructs exactly what a per-exchange Allreduce would
  // have computed (ranks outside a band's carrying group contributed
  // zeros), and every rank evaluates the identical verdict.
  const std::size_t npsi = flags_.size();
  std::vector<double> buf(npsi * 7);
  for (std::size_t i = 0; i < npsi; ++i) {
    std::memcpy(buf.data() + i * 7, ex_.data() + i * 6, 6 * sizeof(double));
    buf[i * 7 + 6] = static_cast<double>(flags_[i]);
  }
  world.allreduce(buf.data(), buf.data(), buf.size(), mpi::ReduceOp::Sum,
                  kVerdictTag);

  auto& m = abft_metrics();
  for (std::size_t i = 0; i < npsi; ++i) {
    bool corrupt = buf[i * 7 + 6] > 0.0;
    for (int dir = 0; dir < 2; ++dir) {
      const double* e = buf.data() + i * 7 + static_cast<std::size_t>(dir) * 3;
      if (!(e[2] > 0.0)) continue;
      const double erel =
          std::abs(e[0] - e[1]) / std::max({e[0], e[1], 1e-300});
      // Wire quantization legitimately perturbs each element by up to
      // wire_rel_eps/2 relative, so the received energy differs by up to
      // about wire_rel_eps; the fp64 floor covers reordered summation.
      const double tol = fft::energy_tolerance(static_cast<std::size_t>(e[2])) +
                         8.0 * mpi::wire_rel_eps(wire_);
      m.energy_rel_err.max_of(erel);
      if (!(erel <= tol)) {
        corrupt = true;
        m.energy_detections.add();
        m.detections.add();
        core::emit_instant(core::cat(
            "abft: ", dir == 0 ? "forward" : "backward",
            " exchange energy not conserved on band ", i, " (sent ", e[0],
            ", received ", e[1], ")"));
      }
    }
    if (corrupt) verdict_.push_back(static_cast<int>(i));
  }
  return verdict_;
}

}  // namespace fx::fftx
