// Shrink-and-continue fault recovery for the band-FFT pipeline.
//
// The RecoveryDriver runs a multi-band workload to completion despite rank
// kills, stalls and persistent payload corruption, by layering three
// mechanisms:
//
//   1. checkpointing -- the global band range is processed in batches; after
//      each batch every surviving rank holds a full replica of the batch's
//      output coefficients in *global* stick order (an Alltoallv gather
//      followed by an index-map scatter), so no band's data is lost with a
//      dead rank;
//   2. communicator repair -- on a survivable failure the driver revokes the
//      world communicator (unwinding every blocked peer), agrees on the last
//      checkpoint every survivor reached (Comm::agree, a fault-tolerant Min),
//      and shrinks to a survivor-only communicator (Comm::shrink);
//   3. elastic re-decomposition -- the Descriptor is rebuilt over the
//      surviving rank count with a gracefully degraded task-group count, the
//      plan cache drops orphaned plans, and the driver replays every band
//      after the agreed checkpoint.
//
// Silent data corruption gets a cheaper, surgical path (PipelineConfig::
// abft == Repair): the pipeline's ABFT verdict names the corrupted bands,
// the world is healthy by construction (the verdict is collective), so the
// driver recomputes just those bands through a one-band ntg == 1 pipeline
// over the SAME communicator -- no revoke, no shrink, no rollback of clean
// bands -- re-verifies the replay under the same checks, and escalates to
// the full shrink-and-replay machinery only if the recompute detects
// corruption again.  In Detect mode the pipeline instead throws
// core::SdcError in lockstep, which the driver treats like any survivable
// failure (full replay from the last checkpoint).
//
// Replay is bit-exact: the descriptor's shrink rebuild preserves the global
// coefficient order, and the pipeline's arithmetic per band is independent of
// the decomposition (asserted by the layout sweep tests), so a run with
// faults produces coefficients identical to a fault-free run.
//
// A rank killed by fault injection catches its own core::FaultError, revokes
// the communicator (so peers unwind promptly instead of hanging), declares
// itself dead (Comm::mark_dead) and returns with `died` set -- the simulated
// analogue of a process vanishing under a ULFM runtime.
#pragma once

#include <memory>
#include <vector>

#include "core/retry.hpp"
#include "fft/types.hpp"
#include "fftx/descriptor.hpp"
#include "fftx/pipeline.hpp"
#include "simmpi/comm.hpp"
#include "trace/tracer.hpp"

namespace fx::fftx {

struct RecoveryConfig {
  /// Repair-and-replay on survivable failures.  When false the driver still
  /// checkpoints but rethrows the first failure (hardened-only behavior).
  bool enabled = true;
  /// Bands per checkpoint batch; 0 runs the whole band range as one batch
  /// (checkpoint only at the end -- cheapest, but a fault replays
  /// everything).  Clamped to the band count.
  int checkpoint_bands = 0;
  /// Repair budget and backoff schedule (shared FFTX_RETRY_* knobs); one
  /// "attempt" is one shrink-and-replay round.
  core::RetryPolicy retry{};

  /// enabled from FFTX_RECOVER (0 disables), checkpoint_bands from
  /// FFTX_CHECKPOINT_BANDS, retry from the FFTX_RETRY_* family.
  static RecoveryConfig from_env();
};

/// Per-rank outcome of a recovered run.
struct RecoveryReport {
  /// Every band finished and is replicated in the output.
  bool completed = false;
  /// This rank was killed by fault injection and bowed out.
  bool died = false;
  /// Shrink-and-replay rounds this rank participated in.
  int shrinks = 0;
  /// Bands this rank had finished but re-ran after a rollback.
  int replayed_bands = 0;
  /// Bands recomputed surgically (no shrink) after an ABFT detection and
  /// re-verified clean.
  int repaired_bands = 0;
  /// Decomposition the final batch ran under.
  int final_nproc = 0;
  int final_ntg = 0;
  double seconds = 0.0;
};

/// Largest feasible task-group count when `nproc` ranks process batches of
/// `batch_bands` bands: the largest divisor of nproc that is <= preferred
/// and divides batch_bands (always >= 1).
[[nodiscard]] int degraded_ntg(int nproc, int preferred, int batch_bands);

class RecoveryDriver {
 public:
  /// `world.size()` must equal `desc->nproc()`.  `cfg.num_bands` is the
  /// *global* band count (the driver slices it into checkpoint batches, so
  /// it need not be a multiple of ntg).
  RecoveryDriver(mpi::Comm world, std::shared_ptr<const Descriptor> desc,
                 PipelineConfig cfg,
                 RecoveryConfig rcfg = RecoveryConfig::from_env(),
                 trace::Tracer* tracer = nullptr);

  /// Runs every band, repairing and replaying as needed.  On return with
  /// `completed`, out[n] holds band n's output coefficients in global
  /// stick-ordered sphere order, identical on every surviving rank and
  /// bit-for-bit equal to a fault-free run at every wire format (a shrink
  /// or a surgical band replay can change the decomposition, but per-band
  /// arithmetic -- including the wire quantization the ntg==1 shortcuts
  /// now apply -- is decomposition-independent).  With `cfg.real_bands` the
  /// carried unit is the packed pair, so `out` has
  /// `gamma_pair_count(num_bands)` entries, batch/replay counts are in
  /// pairs, and out[p] is pair p's packed coefficients.  A rank that was
  /// killed returns early with `died` set.  Throws only when recovery is
  /// disabled or the repair budget is exhausted.
  RecoveryReport run(std::vector<std::vector<fft::cplx>>& out);

 private:
  /// Carried bands the driver loops over: packed pairs when real_bands.
  int carried_total() const;
  void run_batches(mpi::Comm& comm, std::shared_ptr<const Descriptor>& desc,
                   int& completed, std::vector<std::vector<fft::cplx>>& out,
                   RecoveryReport& rep);
  void checkpoint(mpi::Comm& comm, const Descriptor& desc,
                  const BandFftPipeline& pipe, int first, int batch,
                  std::vector<std::vector<fft::cplx>>& out);
  /// Surgical SDC repair: recomputes carried bands first + bad[i] through
  /// one-band ntg == 1 pipelines on the *unchanged* communicator,
  /// re-verifies each under ABFT, and overwrites the bands' checkpoint
  /// replicas.  Throws core::SdcError (escalating to shrink-and-replay in
  /// run()) if a replay detects corruption again.
  void replay_bands(mpi::Comm& comm,
                    const std::shared_ptr<const Descriptor>& desc, int first,
                    const std::vector<int>& bad,
                    std::vector<std::vector<fft::cplx>>& out,
                    RecoveryReport& rep);
  void repair(mpi::Comm& comm, int& completed, const char* why,
              RecoveryReport& rep);

  mpi::Comm world_;
  std::shared_ptr<const Descriptor> desc_;
  PipelineConfig cfg_;
  RecoveryConfig rcfg_;
  trace::Tracer* tracer_;
  int ntg_pref_;   ///< the original decomposition's task-group count
  int inflight_ = 0;  ///< carried bands of the batch in flight right now
};

}  // namespace fx::fftx
