#include "fftx/grid_fft.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "tasking/runtime.hpp"
#include "trace/phases.hpp"
#include "trace/span.hpp"

namespace fx::fftx {

using fft::cplx;
using fft::Direction;

namespace {
int trace_tid() { return std::max(0, task::current_worker_id()); }
}  // namespace

GridFft::GridFft(mpi::Comm comm, const pw::GridDims& dims,
                 trace::Tracer* tracer, mpi::WireFormat wire)
    : comm_(comm),
      dims_(dims),
      tracer_(tracer),
      wire_(wire),
      me_(comm.rank()),
      cols_(dims.plane(), comm.size()),
      planes_(dims.nz, comm.size()),
      z_bwd_(fft::PlanCache::global().batch1d(dims.nz, Direction::Backward)),
      z_fwd_(fft::PlanCache::global().batch1d(dims.nz, Direction::Forward)),
      xy_bwd_(
          fft::PlanCache::global().plan2d(dims.nx, dims.ny, Direction::Backward)),
      xy_fwd_(
          fft::PlanCache::global().plan2d(dims.nx, dims.ny, Direction::Forward)) {
  const int P = comm_.size();
  send_counts_.resize(static_cast<std::size_t>(P));
  send_displs_.resize(static_cast<std::size_t>(P));
  recv_counts_.resize(static_cast<std::size_t>(P));
  recv_displs_.resize(static_cast<std::size_t>(P));
  std::size_t soff = 0;
  std::size_t roff = 0;
  for (int p = 0; p < P; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    send_counts_[pu] = ncols(me_) * nplanes(p);
    send_displs_[pu] = soff;
    soff += send_counts_[pu];
    recv_counts_[pu] = ncols(p) * nplanes(me_);
    recv_displs_[pu] = roff;
    roff += recv_counts_[pu];
  }
  const std::size_t stage = std::max(pencil_elems(), plane_elems());
  stage_a_.resize(stage);
  stage_b_.resize(stage);
}

void GridFft::exchange(const cplx* send, const std::size_t* scounts,
                       const std::size_t* sdispls, cplx* recv,
                       const std::size_t* rcounts,
                       const std::size_t* rdispls, int tag) {
  if (wire_ == mpi::WireFormat::Fp64) {
    comm_.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, tag);
    return;
  }
  // Wrap each peer's contiguous slice in a single-run view so the payload
  // takes the wire-narrowing view exchange.
  const auto P = static_cast<std::size_t>(comm_.size());
  std::vector<mpi::SegRun> sruns(P);
  std::vector<mpi::SegRun> rruns(P);
  std::vector<mpi::SegView> sviews(P);
  std::vector<mpi::SegView> rviews(P);
  for (std::size_t p = 0; p < P; ++p) {
    sruns[p] = mpi::SegRun{sdispls[p], scounts[p], 1};
    rruns[p] = mpi::SegRun{rdispls[p], rcounts[p], 1};
    sviews[p] = mpi::SegView(&sruns[p], 1);
    rviews[p] = mpi::SegView(&rruns[p], 1);
  }
  comm_.alltoallv_view(send, sviews, recv, rviews, sizeof(cplx), tag, wire_);
}

void GridFft::transpose_to_planes(std::span<const cplx> pencils,
                                  std::span<cplx> planes, int tag) {
  const std::size_t nz = dims_.nz;
  const std::size_t nxny = dims_.plane();
  const int P = comm_.size();

  // Marshal per destination: [peer][local col][iz in peer's planes].
  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, me_, trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int p = 0; p < P; ++p) {
      const std::size_t first = plane_first(p);
      const std::size_t count = nplanes(p);
      for (std::size_t c = 0; c < ncols(me_); ++c) {
        const cplx* src = pencils.data() + c * nz + first;
        std::copy(src, src + count, stage_b_.data() + pos);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  exchange(stage_b_.data(), send_counts_.data(), send_displs_.data(),
           stage_a_.data(), recv_counts_.data(), recv_displs_.data(), tag);
  // Unmarshal into plane-major layout.
  pos = 0;
  {
    trace::ScopedSpan span(tracer_, me_, trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int q = 0; q < P; ++q) {
      const std::size_t base = col_first(q);
      for (std::size_t c = 0; c < ncols(q); ++c) {
        for (std::size_t iz = 0; iz < nplanes(me_); ++iz) {
          planes[iz * nxny + base + c] = stage_a_[pos++];
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
}

void GridFft::transpose_to_pencils(std::span<const cplx> planes,
                                   std::span<cplx> pencils, int tag) {
  const std::size_t nz = dims_.nz;
  const std::size_t nxny = dims_.plane();
  const int P = comm_.size();

  // Marshal: exact reverse of transpose_to_planes' unmarshal.
  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, me_, trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int q = 0; q < P; ++q) {
      const std::size_t base = col_first(q);
      for (std::size_t c = 0; c < ncols(q); ++c) {
        for (std::size_t iz = 0; iz < nplanes(me_); ++iz) {
          stage_a_[pos++] = planes[iz * nxny + base + c];
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  // Counts swap roles relative to the forward transpose.
  exchange(stage_a_.data(), recv_counts_.data(), recv_displs_.data(),
           stage_b_.data(), send_counts_.data(), send_displs_.data(), tag);
  pos = 0;
  {
    trace::ScopedSpan span(tracer_, me_, trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int p = 0; p < P; ++p) {
      const std::size_t first = plane_first(p);
      const std::size_t count = nplanes(p);
      for (std::size_t c = 0; c < ncols(me_); ++c) {
        cplx* dst = pencils.data() + c * nz + first;
        std::copy(stage_b_.data() + pos, stage_b_.data() + pos + count, dst);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
}

void GridFft::to_real(std::span<const cplx> pencils, std::span<cplx> planes,
                      fft::Workspace& ws, int tag) {
  FX_CHECK(pencils.size() == pencil_elems() && planes.size() == plane_elems(),
           "GridFft::to_real buffer size mismatch");
  const std::size_t nz = dims_.nz;
  const std::size_t nxny = dims_.plane();

  // Z transforms into a scratch copy (input is const).
  core::aligned_vector<cplx> work(pencils.begin(), pencils.end());
  {
    FX_TRACE_SCOPE(tracer_, me_, trace_tid(), trace::PhaseKind::FftZ, tag,
                   trace::fft_cost(ncols(me_) * nz, nz).instructions);
    z_bwd_->execute_many(ncols(me_), work.data(), 1, nz, work.data(), 1, nz,
                         ws);
  }
  transpose_to_planes({work.data(), work.size()}, planes, tag);
  {
    FX_TRACE_SCOPE(tracer_, me_, trace_tid(), trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(nplanes(me_) * nxny, nxny).instructions);
    for (std::size_t iz = 0; iz < nplanes(me_); ++iz) {
      xy_bwd_->execute(planes.data() + iz * nxny, planes.data() + iz * nxny,
                       ws);
    }
  }
}

void GridFft::to_recip(std::span<const cplx> planes, std::span<cplx> pencils,
                       fft::Workspace& ws, int tag) {
  FX_CHECK(pencils.size() == pencil_elems() && planes.size() == plane_elems(),
           "GridFft::to_recip buffer size mismatch");
  const std::size_t nz = dims_.nz;
  const std::size_t nxny = dims_.plane();

  core::aligned_vector<cplx> work(planes.begin(), planes.end());
  {
    FX_TRACE_SCOPE(tracer_, me_, trace_tid(), trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(nplanes(me_) * nxny, nxny).instructions);
    for (std::size_t iz = 0; iz < nplanes(me_); ++iz) {
      xy_fwd_->execute(work.data() + iz * nxny, work.data() + iz * nxny, ws);
    }
  }
  transpose_to_pencils({work.data(), work.size()}, pencils, tag);
  {
    FX_TRACE_SCOPE(tracer_, me_, trace_tid(), trace::PhaseKind::FftZ, tag,
                   trace::fft_cost(ncols(me_) * nz, nz).instructions);
    z_fwd_->execute_many(ncols(me_), pencils.data(), 1, nz, pencils.data(), 1,
                         nz, ws);
  }
  const double inv_vol = 1.0 / static_cast<double>(dims_.volume());
  for (auto& v : pencils) v *= inv_vol;
}

}  // namespace fx::fftx
