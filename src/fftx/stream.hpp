// Streaming band-dataflow executor: N band iterations in flight across the
// full pipeline (PipelineMode::Streaming; DESIGN.md section 17).
//
// The built-in task modes bound concurrency structurally: TaskPerStep keeps
// a window of `nthreads` iterations whose exchange tasks still *block* a
// worker for the whole collective, and the overlap mode hides traffic only
// within one band's forward/backward leg.  The streaming executor instead
// expresses every stage of every band iteration as a dependency-clause task
// over a bounded ring of FFTX_STREAM_BANDS buffer slots, and -- when the
// fused view layouts are on -- splits each transpose exchange into
//
//   post task      (nonblocking ialltoallv_view; returns immediately)
//   waitable task  (TaskRuntime::submit_waitable; parks until complete)
//
// so no worker is ever pinned inside a collective: while band k's scatter
// is on the wire, the workers run band k+1's forward Z-FFT and band k-1's
// backward leg.  Dependencies per iteration form a linear chain through a
// one-byte slot token (`inout(slot.token)`); the same token serializes
// iteration i + N behind iteration i (write-after-write on the reused
// slot), which is the memory bound and the backpressure.
//
// Ordering and deadlock freedom: every rank submits the same tasks in the
// same order, the chain forces in-iteration program order, and exchanges of
// distinct iterations carry distinct tags (tag == iter), so simmpi's
// (kind, tag, sequence) matching is race-free at any depth.  In the split
// configuration stage tasks never block, and the runtime's single blocking
// waiter -- which escalates the parked wait with the lowest SUBMISSION
// sequence, identical across ranks -- cannot deadlock: the globally oldest
// incomplete exchange has been posted by every rank (posts only need
// non-blocking predecessors), so it always completes.  Waits that park
// *after* the blocking slot was claimed still make progress because idle
// workers keep nonblocking completion sweeps running while the slot is
// held (see TaskRuntime::worker_loop).  In the blocking
// fallback (guarded or staged exchanges, or FFTX_STREAM_NB=0) the depth is
// additionally capped at nthreads -- the run_task_per_step window argument.
//
// Error handling: the first failing task captures its exception and
// revokes the world communicator, which unwinds every peer's in-flight
// collective; after the drain the *original* exception (FaultError,
// SdcError, ...) is rethrown so the RecoveryDriver's type dispatch sees
// exactly what the staged modes would throw.  N = 1 recovers the staged
// execution order; every depth is bit-identical to the Original oracle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "fftx/pipeline.hpp"
#include "simmpi/comm.hpp"

namespace fx::fftx {

/// One run() of a Streaming-mode pipeline.  Constructed and driven by
/// BandFftPipeline::run_streaming() on every rank; not reusable.
class StreamExecutor {
 public:
  explicit StreamExecutor(BandFftPipeline& pipe);
  ~StreamExecutor();

  StreamExecutor(const StreamExecutor&) = delete;
  StreamExecutor& operator=(const StreamExecutor&) = delete;

  /// Submits all band iterations over the slot ring and drains them.
  void run();

 private:
  /// One ring entry: an iteration's working buffers plus the state of its
  /// (single) in-flight exchange between a post task and its waitable.
  struct Slot {
    std::unique_ptr<BandFftPipeline::WorkBuffers> wb;
    char token = 0;        ///< dependency anchor: chain + slot-reuse (WAW)
    mpi::Request req;      ///< the posted exchange awaiting completion
    bool posted = false;   ///< req holds a live request
    double t_post = 0.0;   ///< post timestamp (hidden-time attribution)
    double e_send = 0.0;   ///< ABFT stick energy carried post -> wait
  };

  void submit_iteration(Slot& slot, int iter);
  void install_queue_wait_observer();

  /// Wraps a stage body: skipped after a failure, and any throw captures
  /// the original exception and revokes the world before rethrowing.
  [[nodiscard]] std::function<void()> guard(std::function<void()> body);
  /// First failure wins: records std::current_exception() and revokes the
  /// world communicator so every rank's in-flight collectives unwind.
  void capture_current();

  /// Shared completion logic of the waitable exchange tasks: test (or, on
  /// the last-chance attempt, wait for) the slot's request, record the
  /// hidden window, then run the stage's post-exchange hook.
  bool wait_poll(Slot& slot, bool last_chance,
                 const std::function<void()>& done);

  // Split-exchange stage bodies (fused layouts; mirror the blocking
  // counterparts in pipeline.cpp exactly -- same ABFT hooks, same spans).
  void post_pack(Slot& slot, int iter);
  void post_scatter_fw(Slot& slot, int iter);
  void done_scatter_fw(Slot& slot, int iter);
  void post_scatter_bw(Slot& slot, int iter);
  void done_scatter_bw(Slot& slot, int iter);
  void post_unpack(Slot& slot, int iter);
  void done_unpack(Slot& slot, int iter);

  void signal_iteration_done();

  BandFftPipeline& p_;
  std::vector<Slot> slots_;
  int depth_ = 1;
  bool split_ = false;  ///< nonblocking post/wait exchange tasks

  std::mutex window_mu_;
  std::condition_variable window_cv_;
  int completed_ = 0;  ///< iterations fully finished (unpack done)

  std::mutex err_mu_;
  std::exception_ptr first_error_;
  std::atomic<bool> stop_{false};
};

}  // namespace fx::fftx
