#include "fftx/pencil_fft.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "tasking/runtime.hpp"
#include "trace/phases.hpp"
#include "trace/span.hpp"

namespace fx::fftx {

using fft::cplx;
using fft::Direction;

namespace {
int trace_tid() { return std::max(0, task::current_worker_id()); }
}  // namespace

PencilFft::PencilFft(mpi::Comm world, const pw::GridDims& dims, int prows,
                     int pcols, trace::Tracer* tracer)
    : world_(world),
      dims_(dims),
      tracer_(tracer),
      prows_(prows),
      pcols_(pcols),
      row_(world.rank() / pcols),
      col_(world.rank() % pcols),
      row_comm_(world_.split(/*color=*/row_, /*key=*/col_)),
      col_comm_(world_.split(/*color=*/col_, /*key=*/row_)),
      xdist_(dims.nx, prows),
      ydist_(dims.ny, pcols),
      zdist_(dims.nz, pcols),
      y2dist_(dims.ny, prows),
      fz_bwd_(fft::PlanCache::global().batch1d(dims.nz, Direction::Backward)),
      fz_fwd_(fft::PlanCache::global().batch1d(dims.nz, Direction::Forward)),
      fy_bwd_(fft::PlanCache::global().batch1d(dims.ny, Direction::Backward)),
      fy_fwd_(fft::PlanCache::global().batch1d(dims.ny, Direction::Forward)),
      fx_bwd_(fft::PlanCache::global().batch1d(dims.nx, Direction::Backward)),
      fx_fwd_(fft::PlanCache::global().batch1d(dims.nx, Direction::Forward)) {
  FX_CHECK(prows >= 1 && pcols >= 1 && world.size() == prows * pcols,
           "world size must equal prows * pcols");
  FX_ASSERT(row_comm_.size() == pcols_ && row_comm_.rank() == col_);
  FX_ASSERT(col_comm_.size() == prows_ && col_comm_.rank() == row_);

  const std::size_t nxr = nx_of(row_);
  row_send_counts_.resize(static_cast<std::size_t>(pcols_));
  row_send_displs_.resize(static_cast<std::size_t>(pcols_));
  row_recv_counts_.resize(static_cast<std::size_t>(pcols_));
  row_recv_displs_.resize(static_cast<std::size_t>(pcols_));
  std::size_t soff = 0;
  std::size_t roff = 0;
  for (int c = 0; c < pcols_; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    // Z->Y: I send (my x-block) x (my y-block) x (peer's z-block).
    row_send_counts_[cu] = nxr * ny_of(col_) * nz_of(c);
    row_send_displs_[cu] = soff;
    soff += row_send_counts_[cu];
    // ... and receive (my x-block) x (peer's y-block) x (my z-block).
    row_recv_counts_[cu] = nxr * ny_of(c) * nz_of(col_);
    row_recv_displs_[cu] = roff;
    roff += row_recv_counts_[cu];
  }

  col_send_counts_.resize(static_cast<std::size_t>(prows_));
  col_send_displs_.resize(static_cast<std::size_t>(prows_));
  col_recv_counts_.resize(static_cast<std::size_t>(prows_));
  col_recv_displs_.resize(static_cast<std::size_t>(prows_));
  soff = 0;
  roff = 0;
  for (int r = 0; r < prows_; ++r) {
    const auto ru = static_cast<std::size_t>(r);
    // Y->X: I send (my x-block) x (peer's y2-block) x (my z-block).
    col_send_counts_[ru] = nxr * ny2_of(r) * nz_of(col_);
    col_send_displs_[ru] = soff;
    soff += col_send_counts_[ru];
    // ... and receive (peer's x-block) x (my y2-block) x (my z-block).
    col_recv_counts_[ru] = nx_of(r) * ny2_of(row_) * nz_of(col_);
    col_recv_displs_[ru] = roff;
    roff += col_recv_counts_[ru];
  }

  const std::size_t stage = std::max(
      {zpencil_elems(), ypencil_elems(), xpencil_elems()});
  stage_a_.resize(stage);
  stage_b_.resize(stage);
  ybuf_.resize(ypencil_elems());
}

void PencilFft::replan(mpi::Comm world, int prows, int pcols) {
  *this = PencilFft(std::move(world), dims_, prows, pcols, tracer_);
}

void PencilFft::transpose_z_to_y(const cplx* z, cplx* y, int tag) {
  const std::size_t nz = dims_.nz;
  const std::size_t ny = dims_.ny;
  const std::size_t nxr = nx_of(row_);
  const std::size_t nyc = ny_of(col_);
  const std::size_t nzc = nz_of(col_);

  // Marshal per destination column: [peer][ix][iy][iz_local].
  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int c = 0; c < pcols_; ++c) {
      const std::size_t z0 = z0_of(c);
      const std::size_t zc = nz_of(c);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < nyc; ++iy) {
          const cplx* src = z + (ix * nyc + iy) * nz + z0;
          std::copy(src, src + zc, stage_b_.data() + pos);
          pos += zc;
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  row_comm_.alltoallv(stage_b_.data(), row_send_counts_.data(),
                      row_send_displs_.data(), stage_a_.data(),
                      row_recv_counts_.data(), row_recv_displs_.data(), tag);
  // Unmarshal [peer][ix][iy_local][iz_local] into [ix][iz][iy] storage.
  pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int c = 0; c < pcols_; ++c) {
      const std::size_t y0 = y0_of(c);
      const std::size_t yc = ny_of(c);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < yc; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            y[(ix * nzc + iz) * ny + y0 + iy] = stage_a_[pos++];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
}

void PencilFft::transpose_y_to_z(const cplx* y, cplx* z, int tag) {
  const std::size_t nz = dims_.nz;
  const std::size_t ny = dims_.ny;
  const std::size_t nxr = nx_of(row_);
  const std::size_t nyc = ny_of(col_);
  const std::size_t nzc = nz_of(col_);

  // Marshal: reverse of transpose_z_to_y's unmarshal.
  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int c = 0; c < pcols_; ++c) {
      const std::size_t y0 = y0_of(c);
      const std::size_t yc = ny_of(c);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < yc; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            stage_a_[pos++] = y[(ix * nzc + iz) * ny + y0 + iy];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  row_comm_.alltoallv(stage_a_.data(), row_recv_counts_.data(),
                      row_recv_displs_.data(), stage_b_.data(),
                      row_send_counts_.data(), row_send_displs_.data(), tag);
  std::size_t rpos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int c = 0; c < pcols_; ++c) {
      const std::size_t z0 = z0_of(c);
      const std::size_t zc = nz_of(c);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < nyc; ++iy) {
          cplx* dst = z + (ix * nyc + iy) * nz + z0;
          std::copy(stage_b_.data() + rpos, stage_b_.data() + rpos + zc, dst);
          rpos += zc;
        }
      }
    }
    span.set_instructions(trace::copy_cost(rpos).instructions);
  }
}

void PencilFft::transpose_y_to_x(const cplx* y, cplx* x, int tag) {
  const std::size_t ny = dims_.ny;
  const std::size_t nx = dims_.nx;
  const std::size_t nxr = nx_of(row_);
  const std::size_t nzc = nz_of(col_);
  const std::size_t ny2 = ny2_of(row_);

  // Marshal per destination row: [peer][ix][iy2_local][iz].
  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int r = 0; r < prows_; ++r) {
      const std::size_t y0 = y20_of(r);
      const std::size_t yc = ny2_of(r);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < yc; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            stage_b_[pos++] = y[(ix * nzc + iz) * ny + y0 + iy];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  col_comm_.alltoallv(stage_b_.data(), col_send_counts_.data(),
                      col_send_displs_.data(), stage_a_.data(),
                      col_recv_counts_.data(), col_recv_displs_.data(), tag);
  // Unmarshal [peer][ix_local][iy2][iz] into [iy][iz][ix] storage.
  pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int r = 0; r < prows_; ++r) {
      const std::size_t x0 = x0_of(r);
      const std::size_t xc = nx_of(r);
      for (std::size_t ix = 0; ix < xc; ++ix) {
        for (std::size_t iy = 0; iy < ny2; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            x[(iy * nzc + iz) * nx + x0 + ix] = stage_a_[pos++];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
}

void PencilFft::transpose_x_to_y(const cplx* x, cplx* y, int tag) {
  const std::size_t ny = dims_.ny;
  const std::size_t nx = dims_.nx;
  const std::size_t nxr = nx_of(row_);
  const std::size_t nzc = nz_of(col_);
  const std::size_t ny2 = ny2_of(row_);

  std::size_t pos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int r = 0; r < prows_; ++r) {
      const std::size_t x0 = x0_of(r);
      const std::size_t xc = nx_of(r);
      for (std::size_t ix = 0; ix < xc; ++ix) {
        for (std::size_t iy = 0; iy < ny2; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            stage_a_[pos++] = x[(iy * nzc + iz) * nx + x0 + ix];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
  col_comm_.alltoallv(stage_a_.data(), col_recv_counts_.data(),
                      col_recv_displs_.data(), stage_b_.data(),
                      col_send_counts_.data(), col_send_displs_.data(), tag);
  std::size_t rpos = 0;
  {
    trace::ScopedSpan span(tracer_, world_.rank(), trace_tid(),
                           trace::PhaseKind::Scatter, tag);
    for (int r = 0; r < prows_; ++r) {
      const std::size_t y0 = y20_of(r);
      const std::size_t yc = ny2_of(r);
      for (std::size_t ix = 0; ix < nxr; ++ix) {
        for (std::size_t iy = 0; iy < yc; ++iy) {
          for (std::size_t iz = 0; iz < nzc; ++iz) {
            y[(ix * nzc + iz) * ny + y0 + iy] = stage_b_[rpos++];
          }
        }
      }
    }
    span.set_instructions(trace::copy_cost(rpos).instructions);
  }
}

void PencilFft::to_real(std::span<const cplx> zpencils,
                        std::span<cplx> xpencils, fft::Workspace& ws,
                        int tag) {
  FX_CHECK(zpencils.size() == zpencil_elems() &&
               xpencils.size() == xpencil_elems(),
           "PencilFft::to_real buffer size mismatch");
  const std::size_t nz = dims_.nz;
  const std::size_t ny = dims_.ny;
  const std::size_t nx = dims_.nx;

  core::aligned_vector<cplx> work(zpencils.begin(), zpencils.end());
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftZ, tag,
                   trace::fft_cost(zpencil_elems(), nz).instructions);
    fz_bwd_->execute_many(nx_of(row_) * ny_of(col_), work.data(), 1, nz,
                          work.data(), 1, nz, ws);
  }
  transpose_z_to_y(work.data(), ybuf_.data(), tag);
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(ypencil_elems(), ny).instructions);
    fy_bwd_->execute_many(nx_of(row_) * nz_of(col_), ybuf_.data(), 1, ny,
                          ybuf_.data(), 1, ny, ws);
  }
  transpose_y_to_x(ybuf_.data(), xpencils.data(), tag);
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(xpencil_elems(), nx).instructions);
    fx_bwd_->execute_many(ny2_of(row_) * nz_of(col_), xpencils.data(), 1, nx,
                          xpencils.data(), 1, nx, ws);
  }
}

void PencilFft::to_recip(std::span<const cplx> xpencils,
                         std::span<cplx> zpencils, fft::Workspace& ws,
                         int tag) {
  FX_CHECK(zpencils.size() == zpencil_elems() &&
               xpencils.size() == xpencil_elems(),
           "PencilFft::to_recip buffer size mismatch");
  const std::size_t nz = dims_.nz;
  const std::size_t ny = dims_.ny;
  const std::size_t nx = dims_.nx;

  core::aligned_vector<cplx> work(xpencils.begin(), xpencils.end());
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(xpencil_elems(), nx).instructions);
    fx_fwd_->execute_many(ny2_of(row_) * nz_of(col_), work.data(), 1, nx,
                          work.data(), 1, nx, ws);
  }
  transpose_x_to_y(work.data(), ybuf_.data(), tag);
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftXy, tag,
                   trace::fft_cost(ypencil_elems(), ny).instructions);
    fy_fwd_->execute_many(nx_of(row_) * nz_of(col_), ybuf_.data(), 1, ny,
                          ybuf_.data(), 1, ny, ws);
  }
  transpose_y_to_z(ybuf_.data(), zpencils.data(), tag);
  {
    FX_TRACE_SCOPE(tracer_, world_.rank(), trace_tid(),
                   trace::PhaseKind::FftZ, tag,
                   trace::fft_cost(zpencil_elems(), nz).instructions);
    fz_fwd_->execute_many(nx_of(row_) * ny_of(col_), zpencils.data(), 1, nz,
                          zpencils.data(), 1, nz, ws);
  }
  const double inv_vol = 1.0 / static_cast<double>(dims_.volume());
  for (auto& v : zpencils) v *= inv_vol;
}

}  // namespace fx::fftx
