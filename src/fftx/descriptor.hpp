// FFT descriptor: the complete data layout of the two-layer distributed
// band FFT (QE's fft_type_descriptor analogue).
//
// World layout.  P = nproc world ranks process NB bands with T = ntg FFT
// task groups; R = P/T ranks form one group.  For world rank w:
//
//   group id        g = w % T     (which task group w belongs to)
//   group rank      b = w / T     (w's position inside its group)
//
// yielding the paper's two communicator layers (Sec. III):
//
//   pack comm    b: the T *neighboring* ranks {b*T .. b*T+T-1}, one from
//                   each group -- carries the band redistribution
//                   (MPI_Alltoallv in pack/unpack);
//   scatter comm g: the R *alternating* ranks {g, g+T, g+2T, ...} -- one
//                   task group, carries the pencil<->plane MPI_Alltoall(v).
//
// Stick layout.  The G sphere is split into Z sticks distributed over all P
// world ranks (the resting distribution of every band's coefficients).  At
// the *group* level, group rank b owns the union of the world sticks of its
// pack comm {b*T+m}; after the pack exchange, rank (b, g) holds band
// (iter + g) on exactly those sticks, so the group can transform the whole
// band among its R ranks.  Group-level planes are block-distributed over
// the R group ranks.
//
// The descriptor precomputes every index map the pipeline needs, so the hot
// path is pure copies and FFT calls:
//
//   world_g_index(w) : global stick-ordered G positions of rank w's sticks
//   pencil_index(b)  : group-G position -> offset in the Z-pencil buffer
//   stick_xy(s)      : folded (x, y) plane offset of global stick s
//   group_sticks(q)  : global stick ids owned by group rank q (m-major)
//
// All maps depend only on (cell, cutoff, P, T) -- identical on every rank
// and every task group by construction.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "pw/grid.hpp"
#include "pw/gvectors.hpp"
#include "pw/lattice.hpp"
#include "pw/sticks.hpp"

namespace fx::fftx {

class Descriptor {
 public:
  /// Builds the full layout.  nproc must be divisible by ntg.
  Descriptor(const pw::Cell& cell, double ecutwfc_ry, int nproc, int ntg);

  /// Shrink rebuild: the same problem (cell, cutoff, grid, sphere, global
  /// stick order) redistributed over a different rank/group count.  Stick
  /// ownership is rebalanced, planes redistributed, every index map
  /// rebuilt; the packed *global* coefficient order is unchanged, so data
  /// checkpointed under `base` replays bit-for-bit under the new layout.
  Descriptor(const Descriptor& base, int nproc, int ntg);

  // --- Globals ---
  [[nodiscard]] const pw::Cell& cell() const { return cell_; }
  [[nodiscard]] const pw::GridDims& dims() const { return dims_; }
  [[nodiscard]] const pw::GSphere& sphere() const { return *sphere_; }
  [[nodiscard]] const pw::StickMap& world_sticks() const { return *sticks_; }
  [[nodiscard]] const pw::PlaneDist& planes() const { return *planes_; }
  [[nodiscard]] int nproc() const { return nproc_; }
  [[nodiscard]] int ntg() const { return ntg_; }
  /// R = nproc / ntg: ranks per task group == scatter comm size.
  [[nodiscard]] int group_size() const { return nproc_ / ntg_; }

  // --- World-rank decomposition ---
  [[nodiscard]] int group_of(int w) const { return w % ntg_; }
  [[nodiscard]] int group_rank_of(int w) const { return w / ntg_; }
  [[nodiscard]] int world_rank(int b, int g) const { return b * ntg_ + g; }

  /// Packed coefficient count of world rank w (sphere G on its sticks).
  [[nodiscard]] std::size_t ng_world(int w) const {
    return sticks_->ng_of(w);
  }
  /// Global stick-ordered G positions of world rank w, concatenated over
  /// its sticks in stick-index order (the packed storage order).
  [[nodiscard]] std::span<const std::size_t> world_g_index(int w) const {
    return world_g_index_[static_cast<std::size_t>(w)];
  }

  // --- Group-rank layout (identical across the T groups) ---
  [[nodiscard]] std::size_t ng_group(int b) const {
    return ng_group_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] std::size_t nsticks_group(int b) const {
    return group_sticks_[static_cast<std::size_t>(b)].size();
  }
  [[nodiscard]] std::size_t total_sticks() const {
    return sticks_->num_sticks();
  }
  /// Global stick ids owned by group rank q (pack-member-major order --
  /// the canonical group-stick enumeration used by every buffer).
  [[nodiscard]] std::span<const std::size_t> group_sticks(int q) const {
    return group_sticks_[static_cast<std::size_t>(q)];
  }
  /// Owned Z planes of group rank b.
  [[nodiscard]] std::size_t npz(int b) const { return planes_->count(b); }
  [[nodiscard]] std::size_t first_plane(int b) const {
    return planes_->first(b);
  }

  // --- Index maps ---
  /// For group rank b: offset into the Z-pencil buffer (slot*nz + fold(mz))
  /// of each group-level G coefficient, in pack-receive order.
  [[nodiscard]] std::span<const std::size_t> pencil_index(int b) const {
    return pencil_index_[static_cast<std::size_t>(b)];
  }
  /// Folded in-plane offset (fold(mx) + nx*fold(my)) of global stick s.
  [[nodiscard]] std::size_t stick_xy(std::size_t s) const {
    return stick_xy_[s];
  }

  /// Pack exchange counts for any pack comm: element count contributed by
  /// member m of pack comm b is ng_world(b*T + m).
  [[nodiscard]] std::size_t pack_count(int b, int m) const {
    return ng_world(world_rank(b, m));
  }

  /// Fills `v` (size npz(b) * nx * ny, plane-major [iz][iy][ix]) with the
  /// real-space potential slab of group rank b.
  void fill_potential(int b, std::span<double> v) const;

  /// Total complex elements a group rank's pencil buffer holds.
  [[nodiscard]] std::size_t pencil_size(int b) const {
    return nsticks_group(b) * dims_.nz;
  }
  /// Total complex elements of group rank b's plane slab.
  [[nodiscard]] std::size_t plane_size(int b) const {
    return npz(b) * dims_.plane();
  }

 private:
  /// Builds every index map from dims_/sphere_/sticks_/planes_ (shared by
  /// both constructors).
  void build_layout();

  pw::Cell cell_;
  pw::GridDims dims_{};
  int nproc_;
  int ntg_;
  std::unique_ptr<pw::GSphere> sphere_;
  std::unique_ptr<pw::StickMap> sticks_;
  std::unique_ptr<pw::PlaneDist> planes_;

  std::vector<std::vector<std::size_t>> world_g_index_;  // per world rank
  std::vector<std::vector<std::size_t>> group_sticks_;   // per group rank
  std::vector<std::size_t> ng_group_;                    // per group rank
  std::vector<std::vector<std::size_t>> pencil_index_;   // per group rank
  std::vector<std::size_t> stick_xy_;                    // per global stick
};

}  // namespace fx::fftx
