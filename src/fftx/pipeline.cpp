#include "fftx/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "core/error.hpp"
#include "core/format.hpp"
#include "core/timer.hpp"
#include "pw/wavefunction.hpp"
#include "trace/span.hpp"

namespace fx::fftx {

using core::WallTimer;
using fft::cplx;
using fft::Direction;

namespace {
/// Timeline row for the current thread: worker id inside task modes, row 0
/// for the orchestrator / Original mode.
int trace_tid() { return std::max(0, task::current_worker_id()); }
}  // namespace

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::Original:
      return "original";
    case PipelineMode::TaskPerStep:
      return "task_per_step";
    case PipelineMode::TaskPerFft:
      return "task_per_fft";
    case PipelineMode::Combined:
      return "combined";
  }
  return "?";
}

/// Per-iteration working storage.  Distinct iterations never share one, so
/// buffers carry no cross-iteration dependencies.
struct BandFftPipeline::WorkBuffers {
  core::aligned_vector<cplx> pack_send;   ///< ntg * ng_w (band marshalling)
  core::aligned_vector<cplx> band_g;      ///< my band on group sticks
  core::aligned_vector<cplx> pencil;      ///< [stick][iz], nst_b * nz
  core::aligned_vector<cplx> stage;       ///< scatter marshalling, pencil side
  core::aligned_vector<cplx> plane_stage; ///< scatter marshalling, plane side
  core::aligned_vector<cplx> planes;      ///< [iz][iy][ix], npz_b * nx * ny
};

BandFftPipeline::BandFftPipeline(mpi::Comm world,
                                 std::shared_ptr<const Descriptor> desc,
                                 PipelineConfig cfg, trace::Tracer* tracer)
    : world_(world),
      desc_(std::move(desc)),
      cfg_(cfg),
      tracer_(tracer),
      w_(world.rank()),
      g_(w_ % desc_->ntg()),
      b_(w_ / desc_->ntg()),
      pack_(world_.split(/*color=*/b_, /*key=*/g_)),
      scat_(world_.split(/*color=*/g_, /*key=*/b_)),
      z_to_real_(fft::PlanCache::global().batch1d(desc_->dims().nz,
                                                  Direction::Backward)),
      z_to_recip_(fft::PlanCache::global().batch1d(desc_->dims().nz,
                                                   Direction::Forward)),
      xy_to_real_(fft::PlanCache::global().plan2d(
          desc_->dims().nx, desc_->dims().ny, Direction::Backward)),
      xy_to_recip_(fft::PlanCache::global().plan2d(
          desc_->dims().nx, desc_->dims().ny, Direction::Forward)) {
  FX_CHECK(world_.size() == desc_->nproc(),
           "world size does not match descriptor");
  FX_CHECK(cfg_.num_bands >= 1 && cfg_.num_bands % desc_->ntg() == 0,
           "num_bands must be a positive multiple of ntg");
  FX_ASSERT(pack_.size() == desc_->ntg() && pack_.rank() == g_);
  FX_ASSERT(scat_.size() == desc_->group_size() && scat_.rank() == b_);

  const int ntg = desc_->ntg();
  const int rgroup = desc_->group_size();
  const std::size_t ng_w = desc_->ng_world(w_);
  const std::size_t nst_b = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);

  psi_.resize(static_cast<std::size_t>(cfg_.num_bands));
  for (auto& band : psi_) band.resize(ng_w);

  if (cfg_.apply_potential) {
    vslab_.resize(npz_b * desc_->dims().plane());
    desc_->fill_potential(b_, vslab_);
  }

  pack_counts_.resize(static_cast<std::size_t>(ntg));
  pack_displs_.resize(static_cast<std::size_t>(ntg));
  pack_send_counts_.assign(static_cast<std::size_t>(ntg), ng_w);
  pack_send_displs_.resize(static_cast<std::size_t>(ntg));
  std::size_t off = 0;
  for (int m = 0; m < ntg; ++m) {
    const auto mu = static_cast<std::size_t>(m);
    pack_counts_[mu] = desc_->pack_count(b_, m);
    pack_displs_[mu] = off;
    off += pack_counts_[mu];
    pack_send_displs_[mu] = mu * ng_w;
  }
  FX_ASSERT(off == desc_->ng_group(b_));

  scat_send_counts_.resize(static_cast<std::size_t>(rgroup));
  scat_send_displs_.resize(static_cast<std::size_t>(rgroup));
  scat_recv_counts_.resize(static_cast<std::size_t>(rgroup));
  scat_recv_displs_.resize(static_cast<std::size_t>(rgroup));
  std::size_t soff = 0;
  std::size_t roff = 0;
  for (int p = 0; p < rgroup; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    scat_send_counts_[pu] = nst_b * desc_->npz(p);
    scat_send_displs_[pu] = soff;
    soff += scat_send_counts_[pu];
    scat_recv_counts_[pu] = desc_->nsticks_group(p) * npz_b;
    scat_recv_displs_[pu] = roff;
    roff += scat_recv_counts_[pu];
  }

  if (tracer_ != nullptr) {
    auto forward = [this](const mpi::CommEvent& e) {
      tracer_->record_comm(trace::CommOpEvent{
          w_, std::max(0, task::current_worker_id()), e.kind, e.comm_id,
          e.comm_size, e.tag, e.bytes, e.t_begin, e.t_end});
    };
    world_.set_observer(forward);
    pack_.set_observer(forward);
    scat_.set_observer(forward);
  }

  if (cfg_.mode != PipelineMode::Original) {
    FX_CHECK(cfg_.nthreads >= 1, "task modes need at least one worker");
    rt_ = std::make_unique<task::TaskRuntime>(cfg_.nthreads, cfg_.policy);
    if (tracer_ != nullptr) rt_->set_tracer(tracer_, w_);
  }
}

BandFftPipeline::~BandFftPipeline() = default;

std::unique_ptr<BandFftPipeline::WorkBuffers> BandFftPipeline::make_buffers()
    const {
  auto wb = std::make_unique<WorkBuffers>();
  const std::size_t ng_w = desc_->ng_world(w_);
  wb->pack_send.resize(static_cast<std::size_t>(desc_->ntg()) * ng_w);
  wb->band_g.resize(desc_->ng_group(b_));
  wb->pencil.resize(desc_->pencil_size(b_));
  wb->stage.resize(desc_->pencil_size(b_));
  wb->plane_stage.resize(desc_->total_sticks() * desc_->npz(b_));
  wb->planes.resize(desc_->plane_size(b_));
  return wb;
}

BandFftPipeline::WorkBuffers* BandFftPipeline::acquire_buffers() {
  {
    std::lock_guard lock(pool_mu_);
    if (!pool_.empty()) {
      WorkBuffers* wb = pool_.back().release();
      pool_.pop_back();
      return wb;
    }
  }
  return make_buffers().release();
}

void BandFftPipeline::release_buffers(WorkBuffers* wb) {
  std::lock_guard lock(pool_mu_);
  pool_.emplace_back(wb);
}

void BandFftPipeline::initialize_bands(int first_band) {
  const auto ordered = desc_->world_sticks().stick_ordered_g();
  const auto index = desc_->world_g_index(w_);
  for (int n = 0; n < cfg_.num_bands; ++n) {
    auto& band = psi_[static_cast<std::size_t>(n)];
    for (std::size_t k = 0; k < index.size(); ++k) {
      band[k] = pw::wf_coefficient(first_band + n, ordered[index[k]]);
    }
  }
}

std::span<const cplx> BandFftPipeline::band(int n) const {
  return psi_[static_cast<std::size_t>(n)];
}

void BandFftPipeline::exchange(mpi::Comm& comm, const cplx* send,
                               const std::size_t* scounts,
                               const std::size_t* sdispls, cplx* recv,
                               const std::size_t* rcounts,
                               const std::size_t* rdispls, int tag) {
  if (cfg_.guard_exchanges) {
    guarded_alltoallv(comm, send, scounts, sdispls, recv, rcounts, rdispls,
                      tag, cfg_.guard_max_retries, &guard_stats_);
  } else {
    comm.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, tag);
  }
}

void BandFftPipeline::do_pack(WorkBuffers& wb, int iter) {
  const int ntg = desc_->ntg();
  const std::size_t ng_w = desc_->ng_world(w_);
  if (ntg == 1) {
    // No task groups: the group coefficient order equals the packed order,
    // so the band-grouping layer (marshal + Alltoallv) disappears -- the
    // same shortcut QE takes when task groups are off.
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Pack, iter,
                   trace::copy_cost(ng_w).instructions);
    const auto& src = psi_[static_cast<std::size_t>(iter)];
    std::copy(src.begin(), src.end(), wb.band_g.begin());
    return;
  }
  {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Pack, iter,
                   trace::copy_cost(static_cast<std::size_t>(ntg) * ng_w)
                       .instructions);
    for (int m = 0; m < ntg; ++m) {
      const auto& src = psi_[static_cast<std::size_t>(iter + m)];
      std::copy(src.begin(), src.end(),
                wb.pack_send.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(m) * ng_w));
    }
  }
  exchange(pack_, wb.pack_send.data(), pack_send_counts_.data(),
           pack_send_displs_.data(), wb.band_g.data(), pack_counts_.data(),
           pack_displs_.data(), /*tag=*/iter);
}

void BandFftPipeline::do_psi_prep(WorkBuffers& wb, int iter) {
  const auto pidx = desc_->pencil_index(b_);
  FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::PsiPrep, iter,
                 trace::copy_cost(wb.pencil.size() + pidx.size())
                     .instructions);
  std::fill(wb.pencil.begin(), wb.pencil.end(), cplx{0.0, 0.0});
  for (std::size_t k = 0; k < pidx.size(); ++k) {
    wb.pencil[pidx[k]] = wb.band_g[k];
  }
}

void BandFftPipeline::do_fft_z(WorkBuffers& wb, int iter, Direction dir,
                               bool use_taskloop) {
  const std::size_t nz = desc_->dims().nz;
  const std::size_t nst = desc_->nsticks_group(b_);
  const fft::BatchPlan1d& plan =
      dir == Direction::Backward ? *z_to_real_ : *z_to_recip_;
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::FftZ, iter,
                   trace::fft_cost((hi - lo) * nz, nz).instructions);
    plan.execute_many(hi - lo, wb.pencil.data() + lo * nz, 1, nz,
                      wb.pencil.data() + lo * nz, 1, nz,
                      fft::thread_workspace());
  };
  if (use_taskloop && rt_ != nullptr && nst > 0) {
    rt_->taskloop("fft_z", 0, nst, cfg_.grain_z, chunk);
  } else {
    chunk(0, nst);
  }
}

void BandFftPipeline::do_scatter_forward(WorkBuffers& wb, int iter) {
  const std::size_t nz = desc_->dims().nz;
  const std::size_t nst = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const int rgroup = desc_->group_size();

  {  // Marshal pencil sections per destination rank: [peer][stick][iz].
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    std::size_t pos = 0;
    for (int p = 0; p < rgroup; ++p) {
      const std::size_t first = desc_->first_plane(p);
      const std::size_t count = desc_->npz(p);
      for (std::size_t s = 0; s < nst; ++s) {
        const cplx* src = wb.pencil.data() + s * nz + first;
        std::copy(src, src + count, wb.stage.data() + pos);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }

  exchange(scat_, wb.stage.data(), scat_send_counts_.data(),
           scat_send_displs_.data(), wb.plane_stage.data(),
           scat_recv_counts_.data(), scat_recv_displs_.data(),
           /*tag=*/iter);

  {  // Unmarshal into zero-filled planes at each stick's (x, y).
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    std::fill(wb.planes.begin(), wb.planes.end(), cplx{0.0, 0.0});
    std::size_t pos = 0;
    for (int q = 0; q < rgroup; ++q) {
      for (std::size_t s : desc_->group_sticks(q)) {
        const std::size_t xy = desc_->stick_xy(s);
        for (std::size_t iz = 0; iz < npz_b; ++iz) {
          wb.planes[iz * nxny + xy] = wb.plane_stage[pos++];
        }
      }
    }
    span.set_instructions(
        trace::copy_cost(wb.planes.size() + pos).instructions);
  }
}

void BandFftPipeline::do_fft_xy(WorkBuffers& wb, int iter, Direction dir,
                                bool use_taskloop) {
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const fft::Fft2d& plan =
      dir == Direction::Backward ? *xy_to_real_ : *xy_to_recip_;
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::FftXy, iter,
                   trace::fft_cost((hi - lo) * nxny, nxny).instructions);
    for (std::size_t iz = lo; iz < hi; ++iz) {
      plan.execute(wb.planes.data() + iz * nxny, wb.planes.data() + iz * nxny,
                   fft::thread_workspace());
    }
  };
  if (use_taskloop && rt_ != nullptr && npz_b > 0) {
    rt_->taskloop("fft_xy", 0, npz_b, cfg_.grain_xy, chunk);
  } else {
    chunk(0, npz_b);
  }
}

void BandFftPipeline::do_vofr(WorkBuffers& wb, int iter) {
  FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Vofr, iter,
                 trace::vofr_cost(wb.planes.size()).instructions);
  for (std::size_t i = 0; i < wb.planes.size(); ++i) {
    wb.planes[i] *= vslab_[i];
  }
}

void BandFftPipeline::do_scatter_backward(WorkBuffers& wb, int iter) {
  const std::size_t nz = desc_->dims().nz;
  const std::size_t nst = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const int rgroup = desc_->group_size();

  {  // Marshal plane sticks back: exact reverse of the forward unmarshal.
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    std::size_t pos = 0;
    for (int q = 0; q < rgroup; ++q) {
      for (std::size_t s : desc_->group_sticks(q)) {
        const std::size_t xy = desc_->stick_xy(s);
        for (std::size_t iz = 0; iz < npz_b; ++iz) {
          wb.plane_stage[pos++] = wb.planes[iz * nxny + xy];
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }

  // Counts swap relative to the forward scatter.
  exchange(scat_, wb.plane_stage.data(), scat_recv_counts_.data(),
           scat_recv_displs_.data(), wb.stage.data(),
           scat_send_counts_.data(), scat_send_displs_.data(),
           /*tag=*/iter);

  {  // Unmarshal pencil sections: reverse of the forward marshal.
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    std::size_t pos = 0;
    for (int p = 0; p < rgroup; ++p) {
      const std::size_t first = desc_->first_plane(p);
      const std::size_t count = desc_->npz(p);
      for (std::size_t s = 0; s < nst; ++s) {
        cplx* dst = wb.pencil.data() + s * nz + first;
        std::copy(wb.stage.data() + pos, wb.stage.data() + pos + count, dst);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
  }
}

void BandFftPipeline::do_unpack(WorkBuffers& wb, int iter) {
  const int ntg = desc_->ntg();
  const std::size_t ng_w = desc_->ng_world(w_);
  const double inv_vol = 1.0 / static_cast<double>(desc_->dims().volume());
  if (ntg == 1) {
    // Inverse of the ntg == 1 pack shortcut: rescale straight into psi.
    const auto pidx = desc_->pencil_index(b_);
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(pidx.size()).instructions);
    auto& dst = psi_[static_cast<std::size_t>(iter)];
    for (std::size_t k = 0; k < pidx.size(); ++k) {
      dst[k] = wb.pencil[pidx[k]] * inv_vol;
    }
    return;
  }
  {
    const auto pidx = desc_->pencil_index(b_);
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(pidx.size()).instructions);
    for (std::size_t k = 0; k < pidx.size(); ++k) {
      wb.band_g[k] = wb.pencil[pidx[k]] * inv_vol;
    }
  }
  // Reverse band redistribution: segment m of band_g returns to member m.
  exchange(pack_, wb.band_g.data(), pack_counts_.data(), pack_displs_.data(),
           wb.pack_send.data(), pack_send_counts_.data(),
           pack_send_displs_.data(), /*tag=*/iter);
  {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(static_cast<std::size_t>(ntg) * ng_w)
                       .instructions);
    for (int m = 0; m < ntg; ++m) {
      auto& dst = psi_[static_cast<std::size_t>(iter + m)];
      const cplx* src =
          wb.pack_send.data() + static_cast<std::size_t>(m) * ng_w;
      std::copy(src, src + ng_w, dst.begin());
    }
  }
}

void BandFftPipeline::do_iteration(WorkBuffers& wb, int iter,
                                   bool use_taskloop) {
  do_pack(wb, iter);
  do_psi_prep(wb, iter);
  do_fft_z(wb, iter, Direction::Backward, use_taskloop);
  do_scatter_forward(wb, iter);
  do_fft_xy(wb, iter, Direction::Backward, use_taskloop);
  if (cfg_.apply_potential) do_vofr(wb, iter);
  do_fft_xy(wb, iter, Direction::Forward, use_taskloop);
  do_scatter_backward(wb, iter);
  do_fft_z(wb, iter, Direction::Forward, use_taskloop);
  do_unpack(wb, iter);
}

void BandFftPipeline::run_original() {
  auto wb = make_buffers();
  for (int iter = 0; iter < cfg_.num_bands; iter += desc_->ntg()) {
    do_iteration(*wb, iter, /*use_taskloop=*/false);
  }
}

void BandFftPipeline::run_task_per_fft(bool use_taskloop) {
  for (int iter = 0; iter < cfg_.num_bands; iter += desc_->ntg()) {
    rt_->submit(core::cat("band_fft#", iter), [this, iter, use_taskloop] {
      WorkBuffers* wb = acquire_buffers();
      do_iteration(*wb, iter, use_taskloop);
      release_buffers(wb);
    });
  }
  rt_->taskwait();
}

void BandFftPipeline::run_task_per_step() {
  const int ntg = desc_->ntg();
  std::vector<std::unique_ptr<WorkBuffers>> live;
  live.reserve(static_cast<std::size_t>(cfg_.num_bands / ntg));

  // Sliding iteration window.  Unlike TaskPerFft (where one task holds one
  // worker for a whole band, bounding the skew between ranks), the step
  // tasks let a rank race arbitrarily far ahead on later iterations; two
  // ranks can then block all their workers in collectives of *disjoint*
  // iteration sets and deadlock.  Capping in-flight iterations at the
  // worker count keeps the cross-rank skew at one iteration, which makes
  // the blocked collective sets intersect -- and some instance always
  // completes.  (OmpSs bounds its task window for the same reason.)
  const int window = cfg_.nthreads;
  std::mutex window_mu;
  std::condition_variable window_cv;
  int completed_iterations = 0;

  int index = 0;
  for (int iter = 0; iter < cfg_.num_bands; iter += ntg, ++index) {
    if (index >= window) {
      std::unique_lock lock(window_mu);
      window_cv.wait(lock, [&] {
        return completed_iterations >= index - window + 1;
      });
    }
    live.push_back(make_buffers());
    WorkBuffers* wb = live.back().get();

    // Dependency clauses follow the paper's Fig. 4: the band slices of
    // psi stand for `psis`, pencil/planes for `aux`.
    std::vector<task::Dep> psi_in;
    std::vector<task::Dep> psi_out;
    for (int m = 0; m < ntg; ++m) {
      auto& band = psi_[static_cast<std::size_t>(iter + m)];
      psi_in.push_back(task::in(std::span<const cplx>(band)));
      psi_out.push_back(task::out(std::span<cplx>(band)));
    }
    const auto band_g = std::span<cplx>(wb->band_g);
    const auto pencil = std::span<cplx>(wb->pencil);
    const auto planes = std::span<cplx>(wb->planes);

    auto deps = psi_in;
    deps.push_back(task::out(band_g));
    rt_->submit(core::cat("pack#", iter), std::move(deps),
                [this, wb, iter] { do_pack(*wb, iter); });

    rt_->submit(core::cat("psi_prep#", iter),
                {task::in(std::span<const cplx>(wb->band_g)),
                 task::out(pencil)},
                [this, wb, iter] { do_psi_prep(*wb, iter); });

    rt_->submit(core::cat("fft_z_fw#", iter), {task::inout(pencil)},
                [this, wb, iter] {
                  do_fft_z(*wb, iter, Direction::Backward, true);
                });

    rt_->submit(core::cat("scatter_fw#", iter),
                {task::in(std::span<const cplx>(wb->pencil)),
                 task::out(planes)},
                [this, wb, iter] { do_scatter_forward(*wb, iter); });

    rt_->submit(core::cat("fft_xy_fw#", iter), {task::inout(planes)},
                [this, wb, iter] {
                  do_fft_xy(*wb, iter, Direction::Backward, true);
                });

    if (cfg_.apply_potential) {
      rt_->submit(core::cat("vofr#", iter), {task::inout(planes)},
                  [this, wb, iter] { do_vofr(*wb, iter); });
    }

    rt_->submit(core::cat("fft_xy_bw#", iter), {task::inout(planes)},
                [this, wb, iter] {
                  do_fft_xy(*wb, iter, Direction::Forward, true);
                });

    rt_->submit(core::cat("scatter_bw#", iter),
                {task::in(std::span<const cplx>(wb->planes)),
                 task::out(pencil)},
                [this, wb, iter] { do_scatter_backward(*wb, iter); });

    rt_->submit(core::cat("fft_z_bw#", iter), {task::inout(pencil)},
                [this, wb, iter] {
                  do_fft_z(*wb, iter, Direction::Forward, true);
                });

    deps = psi_out;
    deps.push_back(task::in(std::span<const cplx>(wb->pencil)));
    deps.push_back(task::inout(band_g));
    rt_->submit(core::cat("unpack#", iter), std::move(deps),
                [this, wb, iter, &window_mu, &window_cv,
                 &completed_iterations] {
                  // Signal the window even if unpack throws, or the
                  // orchestrator would wait forever on a failed iteration.
                  struct Signal {
                    std::mutex& mu;
                    std::condition_variable& cv;
                    int& count;
                    ~Signal() {
                      {
                        std::lock_guard lock(mu);
                        ++count;
                      }
                      cv.notify_all();
                    }
                  } signal{window_mu, window_cv, completed_iterations};
                  do_unpack(*wb, iter);
                });
  }
  rt_->taskwait();
}

double BandFftPipeline::run() {
  world_.barrier();
  WallTimer timer;
  switch (cfg_.mode) {
    case PipelineMode::Original:
      run_original();
      break;
    case PipelineMode::TaskPerStep:
      run_task_per_step();
      break;
    case PipelineMode::TaskPerFft:
      run_task_per_fft(/*use_taskloop=*/false);
      break;
    case PipelineMode::Combined:
      run_task_per_fft(/*use_taskloop=*/true);
      break;
  }
  world_.barrier();
  return timer.seconds();
}

}  // namespace fx::fftx
