#include "fftx/pipeline.hpp"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "fft/checksum.hpp"
#include "fft/gamma.hpp"
#include "pw/wavefunction.hpp"
#include "simmpi/faults.hpp"
#include "trace/span.hpp"

namespace fx::fftx {

using core::WallTimer;
using fft::cplx;
using fft::Direction;

namespace {
/// Timeline row for the current thread: worker id inside task modes, row 0
/// for the orchestrator / Original mode.
int trace_tid() { return std::max(0, task::current_worker_id()); }

bool env_flag(const char* name) {
  bool on = false;
  core::env_flag(name, on, "pipeline");
  return on;
}

// Exchange-path health: staging_bytes counts every byte the staged
// (non-fused) transposes marshal through intermediate buffers (zero when
// the fused layouts are on -- that is the "zero-copy" claim, measurable);
// overlap_hidden_ms is, per overlapped chunk wait, the post-to-wait-entry
// window in which the exchange progressed behind compute.
struct ExchangeMetrics {
  core::Counter& staging_bytes;
  core::Histogram& staging_us;
  core::Histogram& overlap_hidden_ms;
};

ExchangeMetrics& exchange_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static ExchangeMetrics m{
      reg.counter("fftx.exchange.staging_bytes"),
      reg.histogram("fftx.exchange.staging_us"),
      reg.histogram("fftx.exchange.overlap_hidden_ms")};
  return m;
}

/// Times one staged marshal/unmarshal block into staging_us.  Staging copy
/// time is exchange-path time the fused layouts eliminate, so the
/// exchange-engine A/B sums it with the wait histograms to compare full
/// exchange cost across variants.
class StagingTimer {
 public:
  StagingTimer() : t0_(core::WallTimer::now()) {}
  ~StagingTimer() {
    exchange_metrics().staging_us.record((core::WallTimer::now() - t0_) *
                                         1e6);
  }

 private:
  double t0_;
};

/// Deterministic stick-chunk boundary: chunk c of C over n sticks.  Pure
/// arithmetic on globally known quantities, so every rank derives every
/// peer's chunks without communicating.
std::size_t chunk_bound(std::size_t n, int c, int nchunks) {
  return n * static_cast<std::size_t>(c) / static_cast<std::size_t>(nchunks);
}

//// Applies the wire round-trip to one value (identity at Fp64).  The
/// ntg == 1 pack/unpack shortcuts use this to reproduce exactly the
/// quantization the multi-group exchanges apply, keeping outputs
/// bit-identical across decompositions at every wire format.
cplx wire_q(mpi::WireFormat f, cplx v) {
  if (f == mpi::WireFormat::Fp64) return v;
  return {mpi::wire_roundtrip(f, v.real()), mpi::wire_roundtrip(f, v.imag())};
}

/// Model-expected per-phase iteration cost for the observatory's drift
/// detector: the same work descriptors the trace spans charge, divided by
/// the phase's nominal IPC to turn instruction shares into time shares.
/// Unnormalized -- Observatory::begin_run normalizes.
std::array<double, trace::kNumPhaseKinds> expected_phase_shares(
    const Descriptor& d, int w, int b, const PipelineConfig& cfg) {
  const std::size_t ng_w = d.ng_world(w);
  const std::size_t pencil = d.pencil_size(b);
  const std::size_t planes = d.plane_size(b);
  const std::size_t pidx = d.pencil_index(b).size();
  const std::size_t nz = d.dims().nz;
  const std::size_t nxny = d.dims().plane();
  const auto ntg = static_cast<std::size_t>(d.ntg());

  std::array<double, trace::kNumPhaseKinds> cost{};
  auto at = [&](trace::PhaseKind k) -> double& {
    return cost[static_cast<std::size_t>(k)];
  };
  at(trace::PhaseKind::Pack) =
      trace::copy_cost(ntg > 1 ? ntg * ng_w : ng_w).instructions;
  at(trace::PhaseKind::PsiPrep) = trace::copy_cost(pencil + pidx).instructions;
  at(trace::PhaseKind::FftZ) = 2.0 * trace::fft_cost(pencil, nz).instructions;
  at(trace::PhaseKind::Scatter) = 2.0 * trace::copy_cost(planes).instructions;
  at(trace::PhaseKind::FftXy) =
      2.0 * trace::fft_cost(planes, nxny).instructions;
  if (cfg.apply_potential) {
    at(trace::PhaseKind::Vofr) = trace::vofr_cost(planes).instructions;
  }
  at(trace::PhaseKind::Unpack) =
      trace::copy_cost(pidx).instructions +
      (ntg > 1 ? trace::copy_cost(ntg * ng_w).instructions : 0.0);
  for (int p = 0; p < trace::kNumPhaseKinds; ++p) {
    cost[static_cast<std::size_t>(p)] /=
        trace::phase_nominal_ipc(static_cast<trace::PhaseKind>(p));
  }
  return cost;
}
}  // namespace

bool default_fused_exchange() { return env_flag("FFTX_FUSED_EXCHANGE"); }

bool default_overlap_exchange() { return env_flag("FFTX_OVERLAP_EXCHANGE"); }

bool default_real_bands() { return env_flag("FFTX_R2C"); }

int default_stream_bands() {
  int bands = 2;
  core::env_int_in("FFTX_STREAM_BANDS", bands, 1, 4096, "streaming");
  return bands;
}

bool default_stream_nonblocking() {
  bool nb = true;
  core::env_flag("FFTX_STREAM_NB", nb, "streaming");
  return nb;
}

int default_overlap_chunks() {
  // Chunking only pays when rank-threads actually run concurrently: on a
  // single hardware thread every extra chunk is pure context-switch and
  // post/wait overhead, so fall back to one chunk (still nonblocking --
  // the exchange is posted before the last Z-FFT batch and progresses at
  // whichever endpoint posts second).
  int chunks = std::thread::hardware_concurrency() > 1 ? 4 : 1;
  core::env_int_in("FFTX_OVERLAP_CHUNKS", chunks, 1, 1 << 20, "pipeline");
  return chunks;
}

const char* to_string(PipelineMode mode) {
  switch (mode) {
    case PipelineMode::Original:
      return "original";
    case PipelineMode::TaskPerStep:
      return "task_per_step";
    case PipelineMode::TaskPerFft:
      return "task_per_fft";
    case PipelineMode::Combined:
      return "combined";
    case PipelineMode::Streaming:
      return "streaming";
  }
  return "?";
}

BandFftPipeline::BandFftPipeline(mpi::Comm world,
                                 std::shared_ptr<const Descriptor> desc,
                                 PipelineConfig cfg, trace::Tracer* tracer)
    : world_(world),
      desc_(std::move(desc)),
      cfg_(cfg),
      tracer_(tracer),
      w_(world.rank()),
      g_(w_ % desc_->ntg()),
      b_(w_ / desc_->ntg()),
      pack_(world_.split(/*color=*/b_, /*key=*/g_)),
      scat_(world_.split(/*color=*/g_, /*key=*/b_)),
      z_to_real_(fft::PlanCache::global().batch1d(desc_->dims().nz,
                                                  Direction::Backward)),
      z_to_recip_(fft::PlanCache::global().batch1d(desc_->dims().nz,
                                                   Direction::Forward)),
      xy_to_real_(fft::PlanCache::global().plan2d(
          desc_->dims().nx, desc_->dims().ny, Direction::Backward)),
      xy_to_recip_(fft::PlanCache::global().plan2d(
          desc_->dims().nx, desc_->dims().ny, Direction::Forward)) {
  FX_CHECK(world_.size() == desc_->nproc(),
           "world size does not match descriptor");
  npsi_ = cfg_.real_bands
              ? static_cast<int>(fft::gamma_pair_count(
                    static_cast<std::size_t>(std::max(0, cfg_.num_bands))))
              : cfg_.num_bands;
  FX_CHECK(npsi_ >= 1 && npsi_ % desc_->ntg() == 0,
           cfg_.real_bands
               ? "real-band pair count must be a positive multiple of ntg"
               : "num_bands must be a positive multiple of ntg");
  FX_CHECK(cfg_.overlap_chunks >= 1, "overlap_chunks must be >= 1");
  FX_ASSERT(pack_.size() == desc_->ntg() && pack_.rank() == g_);
  FX_ASSERT(scat_.size() == desc_->group_size() && scat_.rank() == b_);

  // A narrow wire exists only on the view exchanges, so it implies the
  // fused layouts (the staged Alltoallv would ship fp64 regardless).
  fused_ = cfg_.fused_exchange || cfg_.overlap_exchange ||
           cfg_.wire_format != mpi::WireFormat::Fp64;
  overlap_ = cfg_.overlap_exchange;

  const int ntg = desc_->ntg();
  const int rgroup = desc_->group_size();
  const std::size_t ng_w = desc_->ng_world(w_);
  const std::size_t nst_b = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);

  psi_arena_.resize(static_cast<std::size_t>(npsi_) * ng_w);

  if (cfg_.apply_potential) {
    vslab_.resize(npz_b * desc_->dims().plane());
    desc_->fill_potential(b_, vslab_);
  }

  pack_counts_.resize(static_cast<std::size_t>(ntg));
  pack_displs_.resize(static_cast<std::size_t>(ntg));
  pack_send_counts_.assign(static_cast<std::size_t>(ntg), ng_w);
  pack_send_displs_.resize(static_cast<std::size_t>(ntg));
  std::size_t off = 0;
  for (int m = 0; m < ntg; ++m) {
    const auto mu = static_cast<std::size_t>(m);
    pack_counts_[mu] = desc_->pack_count(b_, m);
    pack_displs_[mu] = off;
    off += pack_counts_[mu];
    pack_send_displs_[mu] = mu * ng_w;
  }
  FX_ASSERT(off == desc_->ng_group(b_));

  scat_send_counts_.resize(static_cast<std::size_t>(rgroup));
  scat_send_displs_.resize(static_cast<std::size_t>(rgroup));
  scat_recv_counts_.resize(static_cast<std::size_t>(rgroup));
  scat_recv_displs_.resize(static_cast<std::size_t>(rgroup));
  std::size_t soff = 0;
  std::size_t roff = 0;
  for (int p = 0; p < rgroup; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    scat_send_counts_[pu] = nst_b * desc_->npz(p);
    scat_send_displs_[pu] = soff;
    soff += scat_send_counts_[pu];
    scat_recv_counts_[pu] = desc_->nsticks_group(p) * npz_b;
    scat_recv_displs_[pu] = roff;
    roff += scat_recv_counts_[pu];
  }

  if (fused_) {
    // Fused scatter layouts (see the header): stick-ordered runs so any
    // overlap chunk is a contiguous sub-slice on both sides.
    const std::size_t nz = desc_->dims().nz;
    const std::size_t nxny = desc_->dims().plane();
    scat_send_runs_.resize(static_cast<std::size_t>(rgroup));
    scat_recv_runs_.resize(static_cast<std::size_t>(rgroup));
    for (int p = 0; p < rgroup; ++p) {
      const auto pu = static_cast<std::size_t>(p);
      const std::size_t first = desc_->first_plane(p);
      const std::size_t count = desc_->npz(p);
      scat_send_runs_[pu].reserve(nst_b);
      for (std::size_t s = 0; s < nst_b; ++s) {
        scat_send_runs_[pu].push_back(mpi::SegRun{s * nz + first, count, 1});
      }
      const auto sticks = desc_->group_sticks(p);
      scat_recv_runs_[pu].reserve(sticks.size());
      for (std::size_t s : sticks) {
        scat_recv_runs_[pu].push_back(
            mpi::SegRun{desc_->stick_xy(s), npz_b, nxny});
      }
    }
  }

  if (tracer_ != nullptr || trace::obs_active() != nullptr) {
    // One observer feeds both sinks: the post-hoc tracer and the live
    // observatory (which attributes exchange time to iterations by tag --
    // data exchanges carry tag == iter, control tags are out of range).
    auto forward = [this](const mpi::CommEvent& e) {
      if (tracer_ != nullptr) {
        tracer_->record_comm(trace::CommOpEvent{
            w_, std::max(0, task::current_worker_id()), e.kind, e.comm_id,
            e.comm_size, e.tag, e.bytes, e.t_begin, e.t_end});
      }
      if (trace::Observatory* obs = trace::obs_active()) {
        obs->record_comm(w_, e.tag, e.t_end - e.t_begin);
      }
    };
    world_.set_observer(forward);
    pack_.set_observer(forward);
    scat_.set_observer(forward);
  }

  if (cfg_.mode != PipelineMode::Original) {
    FX_CHECK(cfg_.nthreads >= 1, "task modes need at least one worker");
    rt_ = std::make_unique<task::TaskRuntime>(cfg_.nthreads, cfg_.policy);
    if (tracer_ != nullptr) rt_->set_tracer(tracer_, w_);
  }

  if (cfg_.abft != AbftMode::Off) {
    abft_ = std::make_unique<AbftGuard>(*desc_, g_, b_, npsi_,
                                        cfg_.wire_format);
  }
  wrank_ = world_.world_rank();
  if (mpi::FaultInjector* fi = world_.fault_injector();
      fi != nullptr && fi->plan().flips_active()) {
    flip_ = fi;
  }
}

BandFftPipeline::~BandFftPipeline() = default;

std::unique_ptr<BandFftPipeline::WorkBuffers> BandFftPipeline::make_buffers()
    const {
  auto wb = std::make_unique<WorkBuffers>();
  const std::size_t ng_w = desc_->ng_world(w_);
  wb->band_g.resize(desc_->ng_group(b_));
  wb->pencil.resize(desc_->pencil_size(b_));
  wb->planes.resize(desc_->plane_size(b_));
  if (!fused_) {
    // The staging buffers exist only on the marshalled path; the fused
    // exchanges address pencil/planes/psi directly.
    wb->pack_send.resize(static_cast<std::size_t>(desc_->ntg()) * ng_w);
    wb->stage.resize(desc_->pencil_size(b_));
    wb->plane_stage.resize(desc_->total_sticks() * desc_->npz(b_));
  }
  return wb;
}

BandFftPipeline::WorkBuffers* BandFftPipeline::acquire_buffers() {
  {
    std::lock_guard lock(pool_mu_);
    if (!pool_.empty()) {
      WorkBuffers* wb = pool_.back().release();
      pool_.pop_back();
      return wb;
    }
  }
  return make_buffers().release();
}

void BandFftPipeline::release_buffers(WorkBuffers* wb) {
  std::lock_guard lock(pool_mu_);
  pool_.emplace_back(wb);
}

void BandFftPipeline::initialize_bands(int first_band) {
  const auto ordered = desc_->world_sticks().stick_ordered_g();
  const auto index = desc_->world_g_index(w_);
  if (!cfg_.real_bands) {
    for (int n = 0; n < npsi_; ++n) {
      cplx* band = band_data(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        band[k] = pw::wf_coefficient(first_band + n, ordered[index[k]]);
      }
    }
    return;
  }
  // Gamma-point packing: symmetrize each band so c(-G) == conj(c(G)) --
  // i.e. its real-space field is real -- then carry bands (2p, 2p + 1) as
  // the real/imaginary parts of one complex band.  An odd band count
  // leaves the last pair's imaginary part zero (see gamma_pair_count).
  auto herm = [&](int b, const pw::GVector& g) {
    const pw::GVector ng{-g.mx, -g.my, -g.mz, g.m2};
    const cplx c = pw::wf_coefficient(b, g);
    const cplx cneg = pw::wf_coefficient(b, ng);
    return 0.5 * (c + std::conj(cneg));
  };
  for (int p = 0; p < npsi_; ++p) {
    cplx* band = band_data(p);
    const int lo = first_band + 2 * p;
    const bool has_hi = 2 * p + 1 < cfg_.num_bands;
    for (std::size_t k = 0; k < index.size(); ++k) {
      const pw::GVector& g = ordered[index[k]];
      const cplx re = herm(lo, g);
      const cplx im = has_hi ? herm(lo + 1, g) : cplx{0.0, 0.0};
      band[k] = re + cplx{0.0, 1.0} * im;
    }
  }
}

std::span<const cplx> BandFftPipeline::band(int n) const {
  const std::size_t ng_w = desc_->ng_world(w_);
  return {psi_arena_.data() + static_cast<std::size_t>(n) * ng_w, ng_w};
}

void BandFftPipeline::set_band(int n, std::span<const cplx> coeffs) {
  const std::size_t ng_w = desc_->ng_world(w_);
  FX_CHECK(n >= 0 && n < npsi_, "set_band: band index out of range");
  FX_CHECK(coeffs.size() == ng_w,
           "set_band: span length must equal ng_world(rank)");
  std::copy(coeffs.begin(), coeffs.end(), band_data(n));
}

void BandFftPipeline::flip(cplx* p, std::size_t n) {
  if (flip_ != nullptr) flip_->maybe_flip(wrank_, p, n * sizeof(cplx));
}

std::vector<int> BandFftPipeline::abft_corrupt_bands() const {
  return abft_ != nullptr ? abft_->corrupt_bands() : std::vector<int>{};
}

void BandFftPipeline::exchange(mpi::Comm& comm, const cplx* send,
                               const std::size_t* scounts,
                               const std::size_t* sdispls, cplx* recv,
                               const std::size_t* rcounts,
                               const std::size_t* rdispls, int tag) {
  if (cfg_.guard_exchanges) {
    // A live deadline bounds the guard's retry loop: the budget that
    // remains now is all this exchange may spend on corruption retries
    // (floored so an expired budget still permits the mandatory first
    // attempt -- the collective must complete; the next iteration boundary
    // cancels).
    const double budget = cfg_.deadline.active()
                              ? std::max(cfg_.deadline.remaining_s(), 1e-3)
                              : 0.0;
    guarded_alltoallv(comm, send, scounts, sdispls, recv, rcounts, rdispls,
                      tag, cfg_.guard_max_retries, &guard_stats_, budget);
  } else {
    comm.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, tag);
  }
}

void BandFftPipeline::exchange_view(mpi::Comm& comm, const cplx* send_base,
                                    std::span<const mpi::SegView> sviews,
                                    cplx* recv_base,
                                    std::span<const mpi::SegView> rviews,
                                    int tag) {
  if (cfg_.guard_exchanges) {
    const double budget = cfg_.deadline.active()
                              ? std::max(cfg_.deadline.remaining_s(), 1e-3)
                              : 0.0;
    guarded_alltoallv_view(comm, send_base, sviews, recv_base, rviews, tag,
                           cfg_.guard_max_retries, &guard_stats_,
                           cfg_.wire_format, budget);
  } else {
    comm.alltoallv_view(send_base, sviews, recv_base, rviews, sizeof(cplx),
                        tag, cfg_.wire_format);
  }
}

void BandFftPipeline::do_pack(WorkBuffers& wb, int iter) {
  const int ntg = desc_->ntg();
  const std::size_t ng_w = desc_->ng_world(w_);
  if (abft_ != nullptr) abft_->begin_iteration(wb.abft, iter);
  if (trace::Observatory* obs = trace::obs_active()) {
    obs->iteration_begin(w_, iter);
  }
  if (ntg == 1) {
    // No task groups: the group coefficient order equals the packed order,
    // so the band-grouping layer (marshal + Alltoallv) disappears -- the
    // same shortcut QE takes when task groups are off.  A narrow wire is
    // still applied: the multi-group pack exchange would quantize these
    // coefficients in flight, and replaying a band on a different
    // decomposition must reproduce that bit pattern exactly.
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Pack, iter,
                   trace::copy_cost(ng_w).instructions);
    const cplx* src = band_data(iter);
    if (cfg_.wire_format == mpi::WireFormat::Fp64) {
      std::copy(src, src + ng_w, wb.band_g.begin());
    } else {
      for (std::size_t k = 0; k < ng_w; ++k) {
        wb.band_g[k] = wire_q(cfg_.wire_format, src[k]);
      }
    }
    return;
  }
  if (fused_) {
    // Zero-copy pack: member m's segment is band iter + m in the psi
    // arena; the exchange gathers straight from there into band_g.
    const auto nu = static_cast<std::size_t>(ntg);
    std::vector<mpi::SegRun> sruns(nu);
    std::vector<mpi::SegRun> rruns(nu);
    std::vector<mpi::SegView> sviews(nu);
    std::vector<mpi::SegView> rviews(nu);
    for (std::size_t m = 0; m < nu; ++m) {
      sruns[m] = mpi::SegRun{
          (static_cast<std::size_t>(iter) + m) * ng_w, ng_w, 1};
      rruns[m] = mpi::SegRun{pack_displs_[m], pack_counts_[m], 1};
      sviews[m] = mpi::SegView(&sruns[m], 1);
      rviews[m] = mpi::SegView(&rruns[m], 1);
    }
    exchange_view(pack_, psi_arena_.data(), sviews, wb.band_g.data(), rviews,
                  /*tag=*/iter);
    return;
  }
  {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Pack, iter,
                   trace::copy_cost(static_cast<std::size_t>(ntg) * ng_w)
                       .instructions);
    StagingTimer staging_timer;
    for (int m = 0; m < ntg; ++m) {
      const cplx* src = band_data(iter + m);
      std::copy(src, src + ng_w,
                wb.pack_send.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(m) * ng_w));
    }
    exchange_metrics().staging_bytes.add(static_cast<std::size_t>(ntg) *
                                         ng_w * sizeof(cplx));
  }
  exchange(pack_, wb.pack_send.data(), pack_send_counts_.data(),
           pack_send_displs_.data(), wb.band_g.data(), pack_counts_.data(),
           pack_displs_.data(), /*tag=*/iter);
}

void BandFftPipeline::do_psi_prep(WorkBuffers& wb, int iter) {
  const auto pidx = desc_->pencil_index(b_);
  FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::PsiPrep, iter,
                 trace::copy_cost(wb.pencil.size() + pidx.size())
                     .instructions);
  std::fill(wb.pencil.begin(), wb.pencil.end(), cplx{0.0, 0.0});
  for (std::size_t k = 0; k < pidx.size(); ++k) {
    wb.pencil[pidx[k]] = wb.band_g[k];
  }
  if (abft_ != nullptr) {
    abft_->seal_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  flip(wb.pencil.data(), wb.pencil.size());
}

void BandFftPipeline::fft_z_range(WorkBuffers& wb, int iter, Direction dir,
                                  std::size_t lo, std::size_t hi) {
  const std::size_t nz = desc_->dims().nz;
  const fft::BatchPlan1d& plan =
      dir == Direction::Backward ? *z_to_real_ : *z_to_recip_;
  FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::FftZ, iter,
                 trace::fft_cost((hi - lo) * nz, nz).instructions);
  plan.execute_many(hi - lo, wb.pencil.data() + lo * nz, 1, nz,
                    wb.pencil.data() + lo * nz, 1, nz,
                    fft::thread_workspace());
}

void BandFftPipeline::do_fft_z(WorkBuffers& wb, int iter, Direction dir,
                               bool use_taskloop) {
  const std::size_t nst = desc_->nsticks_group(b_);
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.pencil.size()).instructions);
    abft_->z_begin(wb.abft, wb.pencil.data(), nst);
  }
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    fft_z_range(wb, iter, dir, lo, hi);
  };
  if (use_taskloop && rt_ != nullptr && nst > 0) {
    rt_->taskloop("fft_z", 0, nst, cfg_.grain_z, chunk);
  } else {
    chunk(0, nst);
  }
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.pencil.size()).instructions);
    abft_->z_verify(wb.abft, wb.pencil.data(), nst, dir);
  }
  flip(wb.pencil.data(), wb.pencil.size());
}

void BandFftPipeline::do_scatter_forward(WorkBuffers& wb, int iter) {
  const std::size_t nz = desc_->dims().nz;
  const std::size_t nst = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const int rgroup = desc_->group_size();

  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.pencil.size()).instructions);
    abft_->check_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  auto abft_done = [&] {
    if (abft_ != nullptr) {
      FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                     trace::copy_cost(wb.planes.size()).instructions);
      // The forward scatter ships the whole pencil (every stick section
      // goes to exactly one peer), so the sent energy is the post-Z pencil
      // energy z_verify already computed; the received energy lands with
      // the next xy_capture pass over the planes.
      std::size_t elems = 0;
      for (std::size_t c : scat_recv_counts_) elems += c;
      abft_->exchange_send(wb.abft, wb.abft.z_e_post, elems, 0);
      abft_->seal_planes(wb.abft, wb.planes.data(), wb.planes.size());
    }
    flip(wb.planes.data(), wb.planes.size());
  };

  if (fused_) {
    // Zero-copy scatter: the exchange reads stick sections straight out of
    // the pencil buffer and lands them at each stick's (x, y) column of
    // the zero-filled planes -- both marshalling passes are gone.
    const auto ru = static_cast<std::size_t>(rgroup);
    std::vector<mpi::SegView> sviews(ru);
    std::vector<mpi::SegView> rviews(ru);
    for (std::size_t p = 0; p < ru; ++p) {
      sviews[p] = mpi::SegView(scat_send_runs_[p]);
      rviews[p] = mpi::SegView(scat_recv_runs_[p]);
    }
    {
      FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Scatter,
                     iter, trace::copy_cost(wb.planes.size()).instructions);
      std::fill(wb.planes.begin(), wb.planes.end(), cplx{0.0, 0.0});
    }
    exchange_view(scat_, wb.pencil.data(), sviews, wb.planes.data(), rviews,
                  /*tag=*/iter);
    abft_done();
    return;
  }

  {  // Marshal pencil sections per destination rank: [peer][stick][iz].
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    StagingTimer staging_timer;
    std::size_t pos = 0;
    for (int p = 0; p < rgroup; ++p) {
      const std::size_t first = desc_->first_plane(p);
      const std::size_t count = desc_->npz(p);
      for (std::size_t s = 0; s < nst; ++s) {
        const cplx* src = wb.pencil.data() + s * nz + first;
        std::copy(src, src + count, wb.stage.data() + pos);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
    exchange_metrics().staging_bytes.add(pos * sizeof(cplx));
  }

  exchange(scat_, wb.stage.data(), scat_send_counts_.data(),
           scat_send_displs_.data(), wb.plane_stage.data(),
           scat_recv_counts_.data(), scat_recv_displs_.data(),
           /*tag=*/iter);

  {  // Unmarshal into zero-filled planes at each stick's (x, y).
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    StagingTimer staging_timer;
    std::fill(wb.planes.begin(), wb.planes.end(), cplx{0.0, 0.0});
    std::size_t pos = 0;
    for (int q = 0; q < rgroup; ++q) {
      for (std::size_t s : desc_->group_sticks(q)) {
        const std::size_t xy = desc_->stick_xy(s);
        for (std::size_t iz = 0; iz < npz_b; ++iz) {
          wb.planes[iz * nxny + xy] = wb.plane_stage[pos++];
        }
      }
    }
    span.set_instructions(
        trace::copy_cost(wb.planes.size() + pos).instructions);
    exchange_metrics().staging_bytes.add(pos * sizeof(cplx));
  }
  abft_done();
}

void BandFftPipeline::do_fft_xy(WorkBuffers& wb, int iter, Direction dir,
                                bool use_taskloop) {
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const fft::Fft2d& plan =
      dir == Direction::Backward ? *xy_to_real_ : *xy_to_recip_;
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->xy_begin(wb.abft, wb.planes.data(), npz_b, dir);
  }
  auto chunk = [&](std::size_t lo, std::size_t hi) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::FftXy, iter,
                   trace::fft_cost((hi - lo) * nxny, nxny).instructions);
    for (std::size_t iz = lo; iz < hi; ++iz) {
      plan.execute(wb.planes.data() + iz * nxny, wb.planes.data() + iz * nxny,
                   fft::thread_workspace());
    }
  };
  if (use_taskloop && rt_ != nullptr && npz_b > 0) {
    rt_->taskloop("fft_xy", 0, npz_b, cfg_.grain_xy, chunk);
  } else {
    chunk(0, npz_b);
  }
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->xy_verify(wb.abft, wb.planes.data(), npz_b, dir);
  }
  flip(wb.planes.data(), wb.planes.size());
}

void BandFftPipeline::do_vofr(WorkBuffers& wb, int iter) {
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->check_planes(wb.abft, wb.planes.data(), wb.planes.size());
    abft_->vofr_arm(wb.abft,
                    abft_->vofr_expected(wb.planes.data(), vslab_.data(),
                                         wb.planes.size()));
  }
  {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Vofr, iter,
                   trace::vofr_cost(wb.planes.size()).instructions);
    for (std::size_t i = 0; i < wb.planes.size(); ++i) {
      wb.planes[i] *= vslab_[i];
    }
  }
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->seal_planes(wb.abft, wb.planes.data(), wb.planes.size());
  }
  flip(wb.planes.data(), wb.planes.size());
}

void BandFftPipeline::do_scatter_backward(WorkBuffers& wb, int iter) {
  const std::size_t nz = desc_->dims().nz;
  const std::size_t nst = desc_->nsticks_group(b_);
  const std::size_t npz_b = desc_->npz(b_);
  const std::size_t nxny = desc_->dims().plane();
  const int rgroup = desc_->group_size();

  double e_send = 0.0;
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->check_planes(wb.abft, wb.planes.data(), wb.planes.size());
    // Only the sphere's stick columns travel back (the dense grid between
    // sticks stays local), so sent energy is the stick-column energy, and
    // the received data covers the pencil exactly once.
    e_send = abft_->stick_energy(wb.planes.data());
  }
  auto abft_done = [&] {
    if (abft_ != nullptr) {
      FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                     trace::copy_cost(wb.pencil.size()).instructions);
      // The received energy is the pre-FFT pencil energy the Z stage's
      // checksum capture accumulates anyway; z_verify settles the record.
      abft_->exchange_send(wb.abft, e_send, wb.pencil.size(), 1);
      abft_->seal_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
    }
    flip(wb.pencil.data(), wb.pencil.size());
  };

  if (fused_) {
    // The forward layouts with the sides swapped: (x, y) columns of the
    // planes go back to stick sections of the pencil, which is covered
    // exactly once (no zero fill needed).
    const auto ru = static_cast<std::size_t>(rgroup);
    std::vector<mpi::SegView> sviews(ru);
    std::vector<mpi::SegView> rviews(ru);
    for (std::size_t p = 0; p < ru; ++p) {
      sviews[p] = mpi::SegView(scat_recv_runs_[p]);
      rviews[p] = mpi::SegView(scat_send_runs_[p]);
    }
    exchange_view(scat_, wb.planes.data(), sviews, wb.pencil.data(), rviews,
                  /*tag=*/iter);
    abft_done();
    return;
  }

  {  // Marshal plane sticks back: exact reverse of the forward unmarshal.
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    StagingTimer staging_timer;
    std::size_t pos = 0;
    for (int q = 0; q < rgroup; ++q) {
      for (std::size_t s : desc_->group_sticks(q)) {
        const std::size_t xy = desc_->stick_xy(s);
        for (std::size_t iz = 0; iz < npz_b; ++iz) {
          wb.plane_stage[pos++] = wb.planes[iz * nxny + xy];
        }
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
    exchange_metrics().staging_bytes.add(pos * sizeof(cplx));
  }

  // Counts swap relative to the forward scatter.
  exchange(scat_, wb.plane_stage.data(), scat_recv_counts_.data(),
           scat_recv_displs_.data(), wb.stage.data(),
           scat_send_counts_.data(), scat_send_displs_.data(),
           /*tag=*/iter);

  {  // Unmarshal pencil sections: reverse of the forward marshal.
    trace::ScopedSpan span(tracer_, w_, trace_tid(),
                           trace::PhaseKind::Scatter, iter);
    StagingTimer staging_timer;
    std::size_t pos = 0;
    for (int p = 0; p < rgroup; ++p) {
      const std::size_t first = desc_->first_plane(p);
      const std::size_t count = desc_->npz(p);
      for (std::size_t s = 0; s < nst; ++s) {
        cplx* dst = wb.pencil.data() + s * nz + first;
        std::copy(wb.stage.data() + pos, wb.stage.data() + pos + count, dst);
        pos += count;
      }
    }
    span.set_instructions(trace::copy_cost(pos).instructions);
    exchange_metrics().staging_bytes.add(pos * sizeof(cplx));
  }
  abft_done();
}

void BandFftPipeline::do_fft_z_scatter_fw(WorkBuffers& wb, int iter,
                                          bool use_taskloop) {
  const std::size_t nst = desc_->nsticks_group(b_);
  const auto ru = static_cast<std::size_t>(desc_->group_size());
  const int nchunks = cfg_.overlap_chunks;

  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.pencil.size()).instructions);
    abft_->check_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
    abft_->z_reset(wb.abft);
  }
  // Fused stage verdicts happen once, after the last wait: the Z linearity
  // check over the whole (in-place transformed) pencil, then the exchange
  // energy conservation into the landed planes.
  auto abft_done = [&] {
    if (abft_ != nullptr) {
      FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                     trace::copy_cost(wb.pencil.size() + wb.planes.size())
                         .instructions);
      abft_->z_verify(wb.abft, wb.pencil.data(), nst, Direction::Backward);
      std::size_t elems = 0;
      for (std::size_t c : scat_recv_counts_) elems += c;
      abft_->exchange_send(wb.abft, wb.abft.z_e_post, elems, 0);
      abft_->seal_planes(wb.abft, wb.planes.data(), wb.planes.size());
    }
    flip(wb.planes.data(), wb.planes.size());
  };

  // Deferred until right before the first chunk's exchange (which scatters
  // into the zeroed grid): zeroing planes up front would only let the
  // Z-FFT evict them again.
  auto zero_planes = [&] {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Scatter, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    std::fill(wb.planes.begin(), wb.planes.end(), cplx{0.0, 0.0});
  };

  auto fft_chunk = [&](std::size_t lo, std::size_t hi) {
    // Fold this chunk into the checksum band before it transforms in
    // place -- the capture must see pre-FFT data.
    if (abft_ != nullptr) abft_->z_accumulate(wb.abft, wb.pencil.data(), lo, hi);
    if (use_taskloop && rt_ != nullptr && hi > lo) {
      rt_->taskloop("fft_z", lo, hi, cfg_.grain_z,
                    [&](std::size_t clo, std::size_t chi) {
                      fft_z_range(wb, iter, Direction::Backward, clo, chi);
                    });
    } else {
      fft_z_range(wb, iter, Direction::Backward, lo, hi);
    }
  };
  // Chunk c of any rank with n sticks is [n*c/C, n*(c+1)/C): globally
  // agreed arithmetic, so the per-chunk receive views below line up with
  // what each peer posts for the same chunk.
  auto chunk_views = [&](int c, std::vector<mpi::SegView>& sviews,
                         std::vector<mpi::SegView>& rviews) {
    const std::size_t lo = chunk_bound(nst, c, nchunks);
    const std::size_t hi = chunk_bound(nst, c + 1, nchunks);
    for (std::size_t p = 0; p < ru; ++p) {
      sviews[p] = mpi::SegView(scat_send_runs_[p].data() + lo, hi - lo);
      const std::size_t nq = scat_recv_runs_[p].size();
      const std::size_t qlo = chunk_bound(nq, c, nchunks);
      const std::size_t qhi = chunk_bound(nq, c + 1, nchunks);
      rviews[p] = mpi::SegView(scat_recv_runs_[p].data() + qlo, qhi - qlo);
    }
    return std::pair{lo, hi};
  };

  std::vector<mpi::SegView> sviews(ru);
  std::vector<mpi::SegView> rviews(ru);
  if (cfg_.guard_exchanges) {
    // Guarded chunks stay blocking (digest + agreement per chunk): fused
    // and verified, just not overlapped.
    for (int c = 0; c < nchunks; ++c) {
      const auto [lo, hi] = chunk_views(c, sviews, rviews);
      fft_chunk(lo, hi);
      if (c == 0) zero_planes();
      exchange_view(scat_, wb.pencil.data(), sviews, wb.planes.data(),
                    rviews, /*tag=*/iter);
    }
    abft_done();
    return;
  }
  std::vector<mpi::Request> reqs(static_cast<std::size_t>(nchunks));
  std::vector<double> t_post(static_cast<std::size_t>(nchunks));
  std::vector<bool> done(static_cast<std::size_t>(nchunks), false);
  for (int c = 0; c < nchunks; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    const auto [lo, hi] = chunk_views(c, sviews, rviews);
    fft_chunk(lo, hi);
    if (c == 0) zero_planes();
    reqs[cu] = scat_.ialltoallv_view(wb.pencil.data(), sviews,
                                     wb.planes.data(), rviews, sizeof(cplx),
                                     /*tag=*/iter, cfg_.wire_format);
    t_post[cu] = WallTimer::now();
    // Progress earlier chunks between FFT chunks: a test() on a ready
    // request performs this rank's pull copies now, inside the compute
    // region, instead of serializing them behind the final waits.
    for (int k = 0; k < c; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      if (!done[ku]) done[ku] = reqs[ku].test();
    }
  }
  for (int c = 0; c < nchunks; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    exchange_metrics().overlap_hidden_ms.record(
        (WallTimer::now() - t_post[cu]) * 1e3);
    reqs[cu].wait();
  }
  abft_done();
}

void BandFftPipeline::do_scatter_bw_fft_z(WorkBuffers& wb, int iter,
                                          bool use_taskloop) {
  const std::size_t nst = desc_->nsticks_group(b_);
  const auto ru = static_cast<std::size_t>(desc_->group_size());
  const int nchunks = cfg_.overlap_chunks;

  double e_send = 0.0;
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.planes.size()).instructions);
    abft_->check_planes(wb.abft, wb.planes.data(), wb.planes.size());
    e_send = abft_->stick_energy(wb.planes.data());
    abft_->z_reset(wb.abft);
  }
  // The per-chunk accumulation below sums received (pre-FFT) pencil energy
  // as a side effect, so the exchange check reuses it as e_recv.
  auto abft_done = [&] {
    if (abft_ != nullptr) {
      FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                     trace::copy_cost(wb.pencil.size()).instructions);
      abft_->exchange_send(wb.abft, e_send, wb.pencil.size(), 1);
      abft_->z_verify(wb.abft, wb.pencil.data(), nst, Direction::Forward);
    }
    flip(wb.pencil.data(), wb.pencil.size());
  };

  auto fft_chunk = [&](std::size_t lo, std::size_t hi) {
    if (abft_ != nullptr) abft_->z_accumulate(wb.abft, wb.pencil.data(), lo, hi);
    if (use_taskloop && rt_ != nullptr && hi > lo) {
      rt_->taskloop("fft_z", lo, hi, cfg_.grain_z,
                    [&](std::size_t clo, std::size_t chi) {
                      fft_z_range(wb, iter, Direction::Forward, clo, chi);
                    });
    } else {
      fft_z_range(wb, iter, Direction::Forward, lo, hi);
    }
  };
  // Sides swapped relative to the forward leg: chunk c receives MY stick
  // chunk [lo, hi) back into the pencil, sending each peer q its own stick
  // chunk out of the planes.
  auto chunk_views = [&](int c, std::vector<mpi::SegView>& sviews,
                         std::vector<mpi::SegView>& rviews) {
    const std::size_t lo = chunk_bound(nst, c, nchunks);
    const std::size_t hi = chunk_bound(nst, c + 1, nchunks);
    for (std::size_t p = 0; p < ru; ++p) {
      const std::size_t nq = scat_recv_runs_[p].size();
      const std::size_t qlo = chunk_bound(nq, c, nchunks);
      const std::size_t qhi = chunk_bound(nq, c + 1, nchunks);
      sviews[p] = mpi::SegView(scat_recv_runs_[p].data() + qlo, qhi - qlo);
      rviews[p] = mpi::SegView(scat_send_runs_[p].data() + lo, hi - lo);
    }
    return std::pair{lo, hi};
  };

  std::vector<mpi::SegView> sviews(ru);
  std::vector<mpi::SegView> rviews(ru);
  if (cfg_.guard_exchanges) {
    for (int c = 0; c < nchunks; ++c) {
      const auto [lo, hi] = chunk_views(c, sviews, rviews);
      exchange_view(scat_, wb.planes.data(), sviews, wb.pencil.data(),
                    rviews, /*tag=*/iter);
      fft_chunk(lo, hi);
    }
    abft_done();
    return;
  }
  // Post every chunk up front, then transform each chunk as it lands: the
  // tail chunks' traffic hides behind the head chunks' Z-FFTs.
  std::vector<mpi::Request> reqs(static_cast<std::size_t>(nchunks));
  std::vector<double> t_post(static_cast<std::size_t>(nchunks));
  std::vector<std::pair<std::size_t, std::size_t>> ranges(
      static_cast<std::size_t>(nchunks));
  for (int c = 0; c < nchunks; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    ranges[cu] = chunk_views(c, sviews, rviews);
    reqs[cu] = scat_.ialltoallv_view(wb.planes.data(), sviews,
                                     wb.pencil.data(), rviews, sizeof(cplx),
                                     /*tag=*/iter, cfg_.wire_format);
    t_post[cu] = WallTimer::now();
  }
  for (int c = 0; c < nchunks; ++c) {
    const auto cu = static_cast<std::size_t>(c);
    exchange_metrics().overlap_hidden_ms.record(
        (WallTimer::now() - t_post[cu]) * 1e3);
    reqs[cu].wait();
    fft_chunk(ranges[cu].first, ranges[cu].second);
    // Pull whatever later chunks have become ready while this chunk's
    // Z-FFTs ran, so their copies overlap the compute too.
    for (int k = c + 1; k < nchunks; ++k) {
      const auto ku = static_cast<std::size_t>(k);
      if (!reqs[ku].test()) break;
    }
  }
  abft_done();
}

void BandFftPipeline::do_unpack(WorkBuffers& wb, int iter) {
  const int ntg = desc_->ntg();
  const std::size_t ng_w = desc_->ng_world(w_);
  const double inv_vol = 1.0 / static_cast<double>(desc_->dims().volume());
  // Unpack is the iteration's last step in every mode; the guard reports
  // this rank done on each of the three exits (and on an unwinding one --
  // a rank that threw is still finished with the iteration).
  struct ObsDone {
    int rank;
    int iter;
    ~ObsDone() {
      if (trace::Observatory* obs = trace::obs_active()) {
        obs->iteration_done(rank, iter);
      }
    }
  } obs_done{w_, iter};
  if (abft_ != nullptr) {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Abft, iter,
                   trace::copy_cost(wb.pencil.size()).instructions);
    abft_->check_pencil(wb.abft, wb.pencil.data(), wb.pencil.size());
  }
  if (ntg == 1) {
    // Inverse of the ntg == 1 pack shortcut: rescale straight into psi,
    // applying the wire round-trip the multi-group unpack exchange would
    // (see do_pack; a one-group replay must be bit-identical to the
    // original decomposition's output at every wire format).
    const auto pidx = desc_->pencil_index(b_);
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(pidx.size()).instructions);
    cplx* dst = band_data(iter);
    if (cfg_.wire_format == mpi::WireFormat::Fp64) {
      for (std::size_t k = 0; k < pidx.size(); ++k) {
        dst[k] = wb.pencil[pidx[k]] * inv_vol;
      }
    } else {
      for (std::size_t k = 0; k < pidx.size(); ++k) {
        dst[k] = wire_q(cfg_.wire_format, wb.pencil[pidx[k]] * inv_vol);
      }
    }
    if (abft_ != nullptr) abft_->finish_iteration(wb.abft);
    return;
  }
  {
    const auto pidx = desc_->pencil_index(b_);
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(pidx.size()).instructions);
    for (std::size_t k = 0; k < pidx.size(); ++k) {
      wb.band_g[k] = wb.pencil[pidx[k]] * inv_vol;
    }
  }
  if (fused_) {
    // Reverse zero-copy pack: member m's segment of band_g scatters
    // straight into band iter + m of the psi arena.
    const auto nu = static_cast<std::size_t>(ntg);
    std::vector<mpi::SegRun> sruns(nu);
    std::vector<mpi::SegRun> rruns(nu);
    std::vector<mpi::SegView> sviews(nu);
    std::vector<mpi::SegView> rviews(nu);
    for (std::size_t m = 0; m < nu; ++m) {
      sruns[m] = mpi::SegRun{pack_displs_[m], pack_counts_[m], 1};
      rruns[m] = mpi::SegRun{
          (static_cast<std::size_t>(iter) + m) * ng_w, ng_w, 1};
      sviews[m] = mpi::SegView(&sruns[m], 1);
      rviews[m] = mpi::SegView(&rruns[m], 1);
    }
    exchange_view(pack_, wb.band_g.data(), sviews, psi_arena_.data(), rviews,
                  /*tag=*/iter);
    if (abft_ != nullptr) abft_->finish_iteration(wb.abft);
    return;
  }
  // Reverse band redistribution: segment m of band_g returns to member m.
  exchange(pack_, wb.band_g.data(), pack_counts_.data(), pack_displs_.data(),
           wb.pack_send.data(), pack_send_counts_.data(),
           pack_send_displs_.data(), /*tag=*/iter);
  {
    FX_TRACE_SCOPE(tracer_, w_, trace_tid(), trace::PhaseKind::Unpack, iter,
                   trace::copy_cost(static_cast<std::size_t>(ntg) * ng_w)
                       .instructions);
    StagingTimer staging_timer;
    for (int m = 0; m < ntg; ++m) {
      cplx* dst = band_data(iter + m);
      const cplx* src =
          wb.pack_send.data() + static_cast<std::size_t>(m) * ng_w;
      std::copy(src, src + ng_w, dst);
    }
    exchange_metrics().staging_bytes.add(static_cast<std::size_t>(ntg) *
                                         ng_w * sizeof(cplx));
  }
  if (abft_ != nullptr) abft_->finish_iteration(wb.abft);
}

void BandFftPipeline::do_iteration(WorkBuffers& wb, int iter,
                                   bool use_taskloop) {
  do_pack(wb, iter);
  do_psi_prep(wb, iter);
  if (overlap_) {
    do_fft_z_scatter_fw(wb, iter, use_taskloop);
  } else {
    do_fft_z(wb, iter, Direction::Backward, use_taskloop);
    do_scatter_forward(wb, iter);
  }
  do_fft_xy(wb, iter, Direction::Backward, use_taskloop);
  if (cfg_.apply_potential) do_vofr(wb, iter);
  do_fft_xy(wb, iter, Direction::Forward, use_taskloop);
  if (overlap_) {
    do_scatter_bw_fft_z(wb, iter, use_taskloop);
  } else {
    do_scatter_backward(wb, iter);
    do_fft_z(wb, iter, Direction::Forward, use_taskloop);
  }
  do_unpack(wb, iter);
}

namespace {
/// World-comm tag of the collective deadline verdicts (9001 is the recovery
/// checkpoint, 9101 the ABFT verdict; the orchestrator posts these in
/// iteration order, so one reserved tag suffices).
constexpr int kDeadlineTag = 9201;
}  // namespace

bool BandFftPipeline::deadline_expired_collective(int iter) {
  if (!cfg_.deadline.active()) return false;
  (void)iter;
  // Per-rank clocks disagree slightly, so the verdict must be agreed before
  // anyone may bail out of the band loop: Max-reduce the local expiry so
  // either every rank cancels at this iteration boundary or none does.
  int expired = cfg_.deadline.expired() ? 1 : 0;
  int any = 0;
  world_.allreduce(&expired, &any, 1, mpi::ReduceOp::Max, kDeadlineTag);
  return any != 0;
}

void BandFftPipeline::throw_deadline(int iter) const {
  throw core::DeadlineExceeded(core::cat(
      "pipeline: wall-clock budget exhausted at band iteration ", iter,
      " of ", npsi_, " (", core::fixed(-cfg_.deadline.remaining_s() * 1e3, 3),
      " ms past expiry); partial work discarded"));
}

void BandFftPipeline::run_original() {
  auto wb = make_buffers();
  for (int iter = 0; iter < npsi_; iter += desc_->ntg()) {
    if (deadline_expired_collective(iter)) throw_deadline(iter);
    do_iteration(*wb, iter, /*use_taskloop=*/false);
  }
}

void BandFftPipeline::run_task_per_fft(bool use_taskloop) {
  for (int iter = 0; iter < npsi_; iter += desc_->ntg()) {
    if (deadline_expired_collective(iter)) {
      // Same verdict on every rank: all stop submitting here and drain the
      // in-flight iterations (whose collectives need all ranks' workers)
      // before throwing, so the communicator stays healthy.
      rt_->taskwait();
      throw_deadline(iter);
    }
    rt_->submit(core::cat("band_fft#", iter), [this, iter, use_taskloop] {
      WorkBuffers* wb = acquire_buffers();
      do_iteration(*wb, iter, use_taskloop);
      release_buffers(wb);
    });
  }
  rt_->taskwait();
}

void BandFftPipeline::run_task_per_step() {
  const int ntg = desc_->ntg();
  std::vector<std::unique_ptr<WorkBuffers>> live;
  live.reserve(static_cast<std::size_t>(npsi_ / ntg));

  // Sliding iteration window.  Unlike TaskPerFft (where one task holds one
  // worker for a whole band, bounding the skew between ranks), the step
  // tasks let a rank race arbitrarily far ahead on later iterations; two
  // ranks can then block all their workers in collectives of *disjoint*
  // iteration sets and deadlock.  Capping in-flight iterations at the
  // worker count keeps the cross-rank skew at one iteration, which makes
  // the blocked collective sets intersect -- and some instance always
  // completes.  (OmpSs bounds its task window for the same reason.)
  const int window = cfg_.nthreads;
  std::mutex window_mu;
  std::condition_variable window_cv;
  int completed_iterations = 0;

  int index = 0;
  for (int iter = 0; iter < npsi_; iter += ntg, ++index) {
    if (deadline_expired_collective(iter)) {
      rt_->taskwait();
      throw_deadline(iter);
    }
    if (index >= window) {
      std::unique_lock lock(window_mu);
      window_cv.wait(lock, [&] {
        return completed_iterations >= index - window + 1;
      });
    }
    live.push_back(make_buffers());
    WorkBuffers* wb = live.back().get();

    // Dependency clauses follow the paper's Fig. 4: the band slices of
    // psi stand for `psis`, pencil/planes for `aux`.
    std::vector<task::Dep> psi_in;
    std::vector<task::Dep> psi_out;
    const std::size_t ng_w = desc_->ng_world(w_);
    for (int m = 0; m < ntg; ++m) {
      const std::span<cplx> band{band_data(iter + m), ng_w};
      psi_in.push_back(task::in(std::span<const cplx>(band)));
      psi_out.push_back(task::out(band));
    }
    const auto band_g = std::span<cplx>(wb->band_g);
    const auto pencil = std::span<cplx>(wb->pencil);
    const auto planes = std::span<cplx>(wb->planes);

    auto deps = psi_in;
    deps.push_back(task::out(band_g));
    rt_->submit(core::cat("pack#", iter), std::move(deps),
                [this, wb, iter] { do_pack(*wb, iter); });

    rt_->submit(core::cat("psi_prep#", iter),
                {task::in(std::span<const cplx>(wb->band_g)),
                 task::out(pencil)},
                [this, wb, iter] { do_psi_prep(*wb, iter); });

    if (overlap_) {
      // The overlapped leg interleaves the Z-FFT chunks with their
      // scatters, so both live in one task (pencil in flight the whole
      // time, planes produced at the end).
      rt_->submit(core::cat("fft_z_scatter_fw#", iter),
                  {task::inout(pencil), task::out(planes)},
                  [this, wb, iter] { do_fft_z_scatter_fw(*wb, iter, true); });
    } else {
      rt_->submit(core::cat("fft_z_fw#", iter), {task::inout(pencil)},
                  [this, wb, iter] {
                    do_fft_z(*wb, iter, Direction::Backward, true);
                  });

      rt_->submit(core::cat("scatter_fw#", iter),
                  {task::in(std::span<const cplx>(wb->pencil)),
                   task::out(planes)},
                  [this, wb, iter] { do_scatter_forward(*wb, iter); });
    }

    rt_->submit(core::cat("fft_xy_fw#", iter), {task::inout(planes)},
                [this, wb, iter] {
                  do_fft_xy(*wb, iter, Direction::Backward, true);
                });

    if (cfg_.apply_potential) {
      rt_->submit(core::cat("vofr#", iter), {task::inout(planes)},
                  [this, wb, iter] { do_vofr(*wb, iter); });
    }

    rt_->submit(core::cat("fft_xy_bw#", iter), {task::inout(planes)},
                [this, wb, iter] {
                  do_fft_xy(*wb, iter, Direction::Forward, true);
                });

    if (overlap_) {
      rt_->submit(core::cat("scatter_bw_fft_z#", iter),
                  {task::in(std::span<const cplx>(wb->planes)),
                   task::out(pencil)},
                  [this, wb, iter] { do_scatter_bw_fft_z(*wb, iter, true); });
    } else {
      rt_->submit(core::cat("scatter_bw#", iter),
                  {task::in(std::span<const cplx>(wb->planes)),
                   task::out(pencil)},
                  [this, wb, iter] { do_scatter_backward(*wb, iter); });

      rt_->submit(core::cat("fft_z_bw#", iter), {task::inout(pencil)},
                  [this, wb, iter] {
                    do_fft_z(*wb, iter, Direction::Forward, true);
                  });
    }

    deps = psi_out;
    deps.push_back(task::in(std::span<const cplx>(wb->pencil)));
    deps.push_back(task::inout(band_g));
    rt_->submit(core::cat("unpack#", iter), std::move(deps),
                [this, wb, iter, &window_mu, &window_cv,
                 &completed_iterations] {
                  // Signal the window even if unpack throws, or the
                  // orchestrator would wait forever on a failed iteration.
                  struct Signal {
                    std::mutex& mu;
                    std::condition_variable& cv;
                    int& count;
                    ~Signal() {
                      {
                        std::lock_guard lock(mu);
                        ++count;
                      }
                      cv.notify_all();
                    }
                  } signal{window_mu, window_cv, completed_iterations};
                  do_unpack(*wb, iter);
                });
  }
  rt_->taskwait();
}

double BandFftPipeline::run() {
  world_.barrier();
  // Every rank enters the observatory run (refcounted; the first one in
  // shapes the per-rank structures and hands over the model's expected
  // phase shares for drift detection).  RAII so a throwing run still
  // balances end_run.
  trace::Observatory* obs = trace::obs_active();
  struct ObsRun {
    trace::Observatory* obs;
    ~ObsRun() {
      if (obs != nullptr) obs->end_run();
    }
  } obs_run{obs};
  if (obs != nullptr) {
    obs->begin_run(world_.size(), desc_->ntg(),
                   expected_phase_shares(*desc_, w_, b_, cfg_));
  }
  WallTimer timer;
  switch (cfg_.mode) {
    case PipelineMode::Original:
      run_original();
      break;
    case PipelineMode::TaskPerStep:
      run_task_per_step();
      break;
    case PipelineMode::TaskPerFft:
      run_task_per_fft(/*use_taskloop=*/false);
      break;
    case PipelineMode::Combined:
      run_task_per_fft(/*use_taskloop=*/true);
      break;
    case PipelineMode::Streaming:
      run_streaming();
      break;
  }
  if (abft_ != nullptr) {
    // Collective verdict: every rank leaves with the same corrupted-band
    // list, so the SdcError below is thrown in lockstep (no rank is left
    // blocked in a collective by a peer that threw).
    const auto& bad = abft_->verdict(world_);
    if (!bad.empty() && !cfg_.abft_defer) {
      // Every rank that completes the verdict emits: the first rank out
      // throws below and poisons the world, which can strand any single
      // designated emitter (e.g. rank 0) inside the Allreduce with a
      // CommError before it ever speaks.  The reason string is identical
      // everywhere, and the observatory coalesces identical reasons within
      // one run, so this still records as one incident.
      core::emit_incident(core::cat("abft: sdc verdict, ", bad.size(),
                                    " corrupted band(s)"));
      throw core::SdcError(core::cat(
          "abft: silent data corruption detected in ", bad.size(), " of ",
          npsi_, " carried band(s) (mode ", to_string(cfg_.abft), ")"));
    }
  }
  world_.barrier();
  // Lockstep point: counters are shared, so under Strict either every rank
  // throws here or none does.
  if (obs != nullptr) obs->strict_check();
  return timer.seconds();
}

}  // namespace fx::fftx
