#include "fftx/guarded.hpp"

#include <cstdlib>
#include <vector>

#include "core/env.hpp"
#include "core/error.hpp"
#include "core/format.hpp"
#include "core/hooks.hpp"
#include "core/metrics.hpp"
#include "core/retry.hpp"

namespace fx::fftx {

namespace {

// Process-wide guard health, in addition to the per-pipeline GuardStats:
// the metrics dump of a fault-injection run shows whether corruption was
// seen and recovered from without access to the pipeline object.
struct GuardMetrics {
  core::Counter& exchanges;
  core::Counter& retries;
  core::Counter& checksum_failures;
  core::Histogram& retry_backoff_ms;
};

GuardMetrics& guard_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static GuardMetrics m{reg.counter("fftx.guard.exchanges"),
                        reg.counter("fftx.guard.retries"),
                        reg.counter("fftx.guard.checksum_failures"),
                        reg.histogram("fftx.guard.retry_backoff_ms")};
  return m;
}

}  // namespace

std::uint64_t fnv1a(std::uint64_t seed, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  return fnv1a(0xcbf29ce484222325ULL, data, bytes);
}

bool default_guard_exchanges() {
  bool on = false;
  core::env_flag("FFTX_GUARD_EXCHANGES", on, "guarded exchange");
  return on;
}

void guarded_alltoallv(mpi::Comm& comm, const fft::cplx* send,
                       const std::size_t* scounts, const std::size_t* sdispls,
                       fft::cplx* recv, const std::size_t* rcounts,
                       const std::size_t* rdispls, int tag, int max_retries,
                       GuardStats* stats, double deadline_s) {
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<std::uint64_t> sent_sums(n);
  std::vector<std::uint64_t> want_sums(n);

  // The retry schedule comes from the unified policy (FFTX_RETRY_* env
  // knobs); the caller's max_retries still bounds the attempt count and the
  // caller's deadline tightens the wall-clock budget.  The salt is identical
  // on every rank, so the jittered backoff is too -- ranks sleep and
  // re-enter the exchange in lockstep.
  core::RetryPolicy policy = core::RetryPolicy::from_env();
  policy.max_attempts = max_retries + 1;
  policy.deadline_s =
      core::RetryPolicy::merge_deadline_s(policy.deadline_s, deadline_s);
  core::RetryController retry(
      policy, (static_cast<std::uint64_t>(comm.id()) << 32) ^
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));

  for (;;) {
    for (std::size_t p = 0; p < n; ++p) {
      sent_sums[p] =
          fnv1a(send + sdispls[p], scounts[p] * sizeof(fft::cplx));
    }
    // The digest exchange is an Alltoall: a distinct collective kind, so it
    // matches independently of the same-tag payload Alltoallv below.
    comm.alltoall_bytes(sent_sums.data(), want_sums.data(),
                        sizeof(std::uint64_t), tag);
    comm.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, tag);

    int bad_peer = -1;
    for (std::size_t p = 0; p < n; ++p) {
      if (fnv1a(recv + rdispls[p], rcounts[p] * sizeof(fft::cplx)) !=
          want_sums[p]) {
        bad_peer = static_cast<int>(p);
        break;
      }
    }
    if (bad_peer >= 0) guard_metrics().checksum_failures.add();
    // Agree globally so every rank retries (or accepts) in lockstep: send
    // buffers stay valid and the per-(kind, tag) sequence counters advance
    // identically on all ranks.
    int ok = bad_peer < 0 ? 1 : 0;
    int all_ok = 0;
    comm.allreduce(&ok, &all_ok, 1, mpi::ReduceOp::Min, tag);
    if (all_ok == 1) {
      guard_metrics().exchanges.add();
      if (stats != nullptr) {
        stats->exchanges.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    // The deadline check reads each rank's own clock, so agree on whether
    // to continue -- otherwise one rank could throw while its peers re-enter
    // the exchange and hang.
    int cont = retry.should_retry() ? 1 : 0;
    int all_cont = 0;
    comm.allreduce(&cont, &all_cont, 1, mpi::ReduceOp::Min, tag);
    if (all_cont == 0) {
      throw core::CommError(core::cat(
          "guarded alltoallv: payload corruption persists after ",
          retry.attempt(), " retries on comm ", comm.id(), " (tag ", tag,
          "): rank ", comm.rank(),
          bad_peer >= 0
              ? core::cat(" sees a checksum mismatch in the segment from "
                          "rank ",
                          bad_peer)
              : std::string(" is retrying for a corrupted peer")));
    }
    guard_metrics().retries.add();
    if (stats != nullptr) {
      stats->retries.fetch_add(1, std::memory_order_relaxed);
    }
    // One incident per agreed retry round (all ranks re-enter together, so
    // rank 0 speaks for the collective); the observatory's sink snapshots
    // the flight recorder around the corruption.
    if (comm.rank() == 0) {
      core::emit_incident(core::cat("guard: checksum retry on comm ",
                                    comm.id(), " (tag ", tag, ", attempt ",
                                    retry.attempt(), ")"));
    }
    guard_metrics().retry_backoff_ms.record(retry.backoff());
  }
}

namespace {

/// Digest of the logical element stream of one scatter-gather segment.
std::uint64_t fnv1a_view(const fft::cplx* base, mpi::SegView view) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const mpi::SegRun& run : view) {
    if (run.stride == 1) {
      h = fnv1a(h, base + run.offset, run.len * sizeof(fft::cplx));
    } else {
      for (std::size_t i = 0; i < run.len; ++i) {
        h = fnv1a(h, base + run.offset + i * run.stride, sizeof(fft::cplx));
      }
    }
  }
  return h;
}

/// Digest of the *wire encoding* of one segment: every double hashes as
/// the exact bytes it occupies on a narrow wire.  Re-encoding is
/// idempotent on round-tripped values, so sender (pre-quantization) and
/// receiver (post-dequantization) digests agree for an intact payload.
std::uint64_t fnv1a_view_wire(const fft::cplx* base, mpi::SegView view,
                              mpi::WireFormat wire) {
  if (wire == mpi::WireFormat::Fp64) return fnv1a_view(base, view);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto digest = [&h, wire](const fft::cplx& c) {
    const double d[2] = {c.real(), c.imag()};
    for (const double x : d) {
      if (wire == mpi::WireFormat::Fp32) {
        const std::uint32_t bits = mpi::fp32_encode(x);
        h = fnv1a(h, &bits, sizeof(bits));
      } else {
        const std::uint16_t bits = mpi::bf16_encode(x);
        h = fnv1a(h, &bits, sizeof(bits));
      }
    }
  };
  for (const mpi::SegRun& run : view) {
    for (std::size_t i = 0; i < run.len; ++i) {
      digest(base[run.offset + i * run.stride]);
    }
  }
  return h;
}

}  // namespace

void guarded_alltoallv_view(mpi::Comm& comm, const fft::cplx* send_base,
                            std::span<const mpi::SegView> sviews,
                            fft::cplx* recv_base,
                            std::span<const mpi::SegView> rviews, int tag,
                            int max_retries, GuardStats* stats,
                            mpi::WireFormat wire, double deadline_s) {
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<std::uint64_t> sent_sums(n);
  std::vector<std::uint64_t> want_sums(n);

  core::RetryPolicy policy = core::RetryPolicy::from_env();
  policy.max_attempts = max_retries + 1;
  policy.deadline_s =
      core::RetryPolicy::merge_deadline_s(policy.deadline_s, deadline_s);
  core::RetryController retry(
      policy, (static_cast<std::uint64_t>(comm.id()) << 32) ^
                  static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));

  for (;;) {
    for (std::size_t p = 0; p < n; ++p) {
      sent_sums[p] = fnv1a_view_wire(send_base, sviews[p], wire);
    }
    // Digests ride an Alltoall (distinct kind), the payload the blocking
    // view exchange -- same matching discipline as the contiguous form.
    comm.alltoall_bytes(sent_sums.data(), want_sums.data(),
                        sizeof(std::uint64_t), tag);
    comm.alltoallv_view(send_base, sviews, recv_base, rviews,
                        sizeof(fft::cplx), tag, wire);

    int bad_peer = -1;
    for (std::size_t p = 0; p < n; ++p) {
      if (fnv1a_view_wire(recv_base, rviews[p], wire) != want_sums[p]) {
        bad_peer = static_cast<int>(p);
        break;
      }
    }
    if (bad_peer >= 0) guard_metrics().checksum_failures.add();
    int ok = bad_peer < 0 ? 1 : 0;
    int all_ok = 0;
    comm.allreduce(&ok, &all_ok, 1, mpi::ReduceOp::Min, tag);
    if (all_ok == 1) {
      guard_metrics().exchanges.add();
      if (stats != nullptr) {
        stats->exchanges.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    int cont = retry.should_retry() ? 1 : 0;
    int all_cont = 0;
    comm.allreduce(&cont, &all_cont, 1, mpi::ReduceOp::Min, tag);
    if (all_cont == 0) {
      throw core::CommError(core::cat(
          "guarded alltoallv (fused view): payload corruption persists "
          "after ",
          retry.attempt(), " retries on comm ", comm.id(), " (tag ", tag,
          "): rank ", comm.rank(),
          bad_peer >= 0
              ? core::cat(" sees a checksum mismatch in the segment from "
                          "rank ",
                          bad_peer)
              : std::string(" is retrying for a corrupted peer")));
    }
    guard_metrics().retries.add();
    if (stats != nullptr) {
      stats->retries.fetch_add(1, std::memory_order_relaxed);
    }
    if (comm.rank() == 0) {
      core::emit_incident(core::cat("guard: checksum retry on comm ",
                                    comm.id(), " (tag ", tag, ", attempt ",
                                    retry.attempt(), ")"));
    }
    guard_metrics().retry_backoff_ms.record(retry.backoff());
  }
}

}  // namespace fx::fftx
