#include "fftx/guarded.hpp"

#include <cstdlib>
#include <vector>

#include "core/error.hpp"
#include "core/format.hpp"
#include "core/metrics.hpp"

namespace fx::fftx {

namespace {

// Process-wide guard health, in addition to the per-pipeline GuardStats:
// the metrics dump of a fault-injection run shows whether corruption was
// seen and recovered from without access to the pipeline object.
struct GuardMetrics {
  core::Counter& exchanges;
  core::Counter& retries;
  core::Counter& checksum_failures;
};

GuardMetrics& guard_metrics() {
  auto& reg = core::MetricsRegistry::global();
  static GuardMetrics m{reg.counter("fftx.guard.exchanges"),
                        reg.counter("fftx.guard.retries"),
                        reg.counter("fftx.guard.checksum_failures")};
  return m;
}

}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool default_guard_exchanges() {
  const char* v = std::getenv("FFTX_GUARD_EXCHANGES");
  return v != nullptr && *v != '\0' && std::strtol(v, nullptr, 10) != 0;
}

void guarded_alltoallv(mpi::Comm& comm, const fft::cplx* send,
                       const std::size_t* scounts, const std::size_t* sdispls,
                       fft::cplx* recv, const std::size_t* rcounts,
                       const std::size_t* rdispls, int tag, int max_retries,
                       GuardStats* stats) {
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<std::uint64_t> sent_sums(n);
  std::vector<std::uint64_t> want_sums(n);

  for (int attempt = 0;; ++attempt) {
    for (std::size_t p = 0; p < n; ++p) {
      sent_sums[p] =
          fnv1a(send + sdispls[p], scounts[p] * sizeof(fft::cplx));
    }
    // The digest exchange is an Alltoall: a distinct collective kind, so it
    // matches independently of the same-tag payload Alltoallv below.
    comm.alltoall_bytes(sent_sums.data(), want_sums.data(),
                        sizeof(std::uint64_t), tag);
    comm.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls, tag);

    int bad_peer = -1;
    for (std::size_t p = 0; p < n; ++p) {
      if (fnv1a(recv + rdispls[p], rcounts[p] * sizeof(fft::cplx)) !=
          want_sums[p]) {
        bad_peer = static_cast<int>(p);
        break;
      }
    }
    if (bad_peer >= 0) guard_metrics().checksum_failures.add();
    // Agree globally so every rank retries (or accepts) in lockstep: send
    // buffers stay valid and the per-(kind, tag) sequence counters advance
    // identically on all ranks.
    int ok = bad_peer < 0 ? 1 : 0;
    int all_ok = 0;
    comm.allreduce(&ok, &all_ok, 1, mpi::ReduceOp::Min, tag);
    if (all_ok == 1) {
      guard_metrics().exchanges.add();
      if (stats != nullptr) {
        stats->exchanges.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (attempt >= max_retries) {
      throw core::CommError(core::cat(
          "guarded alltoallv: payload corruption persists after ",
          max_retries, " retries on comm ", comm.id(), " (tag ", tag,
          "): rank ", comm.rank(),
          bad_peer >= 0
              ? core::cat(" sees a checksum mismatch in the segment from "
                          "rank ",
                          bad_peer)
              : std::string(" is retrying for a corrupted peer")));
    }
    guard_metrics().retries.add();
    if (stats != nullptr) {
      stats->retries.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace fx::fftx
