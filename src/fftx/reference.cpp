#include "fftx/reference.hpp"

#include "fft/plan3d.hpp"
#include "pw/wavefunction.hpp"

namespace fx::fftx {

using fft::cplx;

std::vector<cplx> reference_band_input(const Descriptor& desc, int band) {
  const auto ordered = desc.world_sticks().stick_ordered_g();
  std::vector<cplx> c(ordered.size());
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    c[k] = pw::wf_coefficient(band, ordered[k]);
  }
  return c;
}

std::vector<cplx> reference_band_output(const Descriptor& desc, int band,
                                        bool apply_potential) {
  const auto& dims = desc.dims();
  const auto ordered = desc.world_sticks().stick_ordered_g();
  const auto input = reference_band_input(desc, band);

  std::vector<cplx> grid(dims.volume(), cplx{0.0, 0.0});
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    grid[dims.index_of(ordered[k].mx, ordered[k].my, ordered[k].mz)] =
        input[k];
  }

  fft::Workspace ws;
  fft::Fft3d to_real(dims.nx, dims.ny, dims.nz, fft::Direction::Backward);
  to_real.execute(grid.data(), grid.data(), ws);

  if (apply_potential) {
    std::size_t pos = 0;
    for (std::size_t iz = 0; iz < dims.nz; ++iz) {
      for (std::size_t iy = 0; iy < dims.ny; ++iy) {
        for (std::size_t ix = 0; ix < dims.nx; ++ix) {
          grid[pos++] *= pw::potential_value(ix, iy, iz, dims);
        }
      }
    }
  }

  fft::Fft3d to_recip(dims.nx, dims.ny, dims.nz, fft::Direction::Forward);
  to_recip.execute(grid.data(), grid.data(), ws);

  const double inv_vol = 1.0 / static_cast<double>(dims.volume());
  std::vector<cplx> out(ordered.size());
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    out[k] =
        grid[dims.index_of(ordered[k].mx, ordered[k].my, ordered[k].mz)] *
        inv_vol;
  }
  return out;
}

}  // namespace fx::fftx
