#include "fftx/reference.hpp"

#include "fft/plan3d.hpp"
#include "pw/wavefunction.hpp"

namespace fx::fftx {

using fft::cplx;

std::vector<cplx> reference_band_input(const Descriptor& desc, int band) {
  const auto ordered = desc.world_sticks().stick_ordered_g();
  std::vector<cplx> c(ordered.size());
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    c[k] = pw::wf_coefficient(band, ordered[k]);
  }
  return c;
}

std::vector<cplx> reference_packed_band_input(const Descriptor& desc,
                                              int pair, int num_bands) {
  const auto ordered = desc.world_sticks().stick_ordered_g();
  auto herm = [](int b, const pw::GVector& g) {
    const pw::GVector ng{-g.mx, -g.my, -g.mz, g.m2};
    return 0.5 * (pw::wf_coefficient(b, g) +
                  std::conj(pw::wf_coefficient(b, ng)));
  };
  const int lo = 2 * pair;
  const bool has_hi = 2 * pair + 1 < num_bands;
  std::vector<cplx> c(ordered.size());
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    const cplx re = herm(lo, ordered[k]);
    const cplx im =
        has_hi ? herm(lo + 1, ordered[k]) : cplx{0.0, 0.0};
    c[k] = re + cplx{0.0, 1.0} * im;
  }
  return c;
}

namespace {

/// The serial transform both oracles share: embed -> BW 3D FFT -> VOFR ->
/// FW 3D FFT -> 1/N, extracted back in sphere order.
std::vector<cplx> transform_input(const Descriptor& desc,
                                  const std::vector<cplx>& input,
                                  bool apply_potential) {
  const auto& dims = desc.dims();
  const auto ordered = desc.world_sticks().stick_ordered_g();

  std::vector<cplx> grid(dims.volume(), cplx{0.0, 0.0});
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    grid[dims.index_of(ordered[k].mx, ordered[k].my, ordered[k].mz)] =
        input[k];
  }

  fft::Workspace ws;
  fft::Fft3d to_real(dims.nx, dims.ny, dims.nz, fft::Direction::Backward);
  to_real.execute(grid.data(), grid.data(), ws);

  if (apply_potential) {
    std::size_t pos = 0;
    for (std::size_t iz = 0; iz < dims.nz; ++iz) {
      for (std::size_t iy = 0; iy < dims.ny; ++iy) {
        for (std::size_t ix = 0; ix < dims.nx; ++ix) {
          grid[pos++] *= pw::potential_value(ix, iy, iz, dims);
        }
      }
    }
  }

  fft::Fft3d to_recip(dims.nx, dims.ny, dims.nz, fft::Direction::Forward);
  to_recip.execute(grid.data(), grid.data(), ws);

  const double inv_vol = 1.0 / static_cast<double>(dims.volume());
  std::vector<cplx> out(ordered.size());
  for (std::size_t k = 0; k < ordered.size(); ++k) {
    out[k] =
        grid[dims.index_of(ordered[k].mx, ordered[k].my, ordered[k].mz)] *
        inv_vol;
  }
  return out;
}

}  // namespace

std::vector<cplx> reference_band_output(const Descriptor& desc, int band,
                                        bool apply_potential) {
  return transform_input(desc, reference_band_input(desc, band),
                         apply_potential);
}

std::vector<cplx> reference_packed_band_output(const Descriptor& desc,
                                               int pair, int num_bands,
                                               bool apply_potential) {
  return transform_input(
      desc, reference_packed_band_input(desc, pair, num_bands),
      apply_potential);
}

}  // namespace fx::fftx
