#include "fftx/descriptor.hpp"

#include "core/error.hpp"
#include "pw/wavefunction.hpp"

namespace fx::fftx {

Descriptor::Descriptor(const pw::Cell& cell, double ecutwfc_ry, int nproc,
                       int ntg)
    : cell_(cell), nproc_(nproc), ntg_(ntg) {
  FX_CHECK(nproc >= 1 && ntg >= 1, "need positive rank/group counts");
  FX_CHECK(nproc % ntg == 0, "ntg must divide nproc");

  dims_ = pw::wave_grid(cell, ecutwfc_ry);
  sphere_ = std::make_unique<pw::GSphere>(cell, ecutwfc_ry);
  sticks_ = std::make_unique<pw::StickMap>(*sphere_, nproc);
  planes_ = std::make_unique<pw::PlaneDist>(dims_.nz, group_size());
  build_layout();
}

Descriptor::Descriptor(const Descriptor& base, int nproc, int ntg)
    : cell_(base.cell_), dims_(base.dims_), nproc_(nproc), ntg_(ntg) {
  FX_CHECK(nproc >= 1 && ntg >= 1, "need positive rank/group counts");
  FX_CHECK(nproc % ntg == 0, "ntg must divide nproc");

  sphere_ = std::make_unique<pw::GSphere>(*base.sphere_);
  // Rebalance the *same* sticks (global coefficient order preserved).
  sticks_ = std::make_unique<pw::StickMap>(*base.sticks_, nproc);
  planes_ = std::make_unique<pw::PlaneDist>(dims_.nz, group_size());
  build_layout();
}

void Descriptor::build_layout() {
  const int rgroup = group_size();
  const auto sticks = sticks_->sticks();
  const auto ordered = sticks_->stick_ordered_g();

  // Folded in-plane offsets of every stick.
  stick_xy_.resize(sticks.size());
  for (std::size_t s = 0; s < sticks.size(); ++s) {
    stick_xy_[s] = pw::GridDims::fold(sticks[s].mx, dims_.nx) +
                   dims_.nx * pw::GridDims::fold(sticks[s].my, dims_.ny);
  }

  // World-rank packed G order: concatenated stick runs in stick order.
  world_g_index_.resize(static_cast<std::size_t>(nproc_));
  for (int w = 0; w < nproc_; ++w) {
    auto& idx = world_g_index_[static_cast<std::size_t>(w)];
    idx.reserve(sticks_->ng_of(w));
    for (std::size_t s : sticks_->sticks_of(w)) {
      for (std::size_t i = 0; i < sticks[s].ng; ++i) {
        idx.push_back(sticks[s].g_offset + i);
      }
    }
  }

  // Group-level stick ownership and the pencil index map.  Group rank b
  // owns the world sticks of pack comm {b*T + m : m in [0, T)}; the
  // pack-receive order is m-major, then stick order, then ascending mz --
  // by construction identical to concatenating the members' packed G lists.
  group_sticks_.resize(static_cast<std::size_t>(rgroup));
  ng_group_.resize(static_cast<std::size_t>(rgroup));
  pencil_index_.resize(static_cast<std::size_t>(rgroup));
  for (int b = 0; b < rgroup; ++b) {
    auto& gsticks = group_sticks_[static_cast<std::size_t>(b)];
    auto& pidx = pencil_index_[static_cast<std::size_t>(b)];
    std::size_t ng = 0;
    for (int m = 0; m < ntg_; ++m) {
      const int w = world_rank(b, m);
      for (std::size_t s : sticks_->sticks_of(w)) {
        const std::size_t slot = gsticks.size();
        gsticks.push_back(s);
        for (std::size_t i = 0; i < sticks[s].ng; ++i) {
          const pw::GVector& g = ordered[sticks[s].g_offset + i];
          pidx.push_back(slot * dims_.nz +
                         pw::GridDims::fold(g.mz, dims_.nz));
        }
        ng += sticks[s].ng;
      }
    }
    ng_group_[static_cast<std::size_t>(b)] = ng;
    FX_ASSERT(pidx.size() == ng);
  }
}

void Descriptor::fill_potential(int b, std::span<double> v) const {
  const std::size_t npz_b = npz(b);
  const std::size_t first = first_plane(b);
  FX_CHECK(v.size() == npz_b * dims_.plane(), "potential slab size mismatch");
  std::size_t pos = 0;
  for (std::size_t iz = 0; iz < npz_b; ++iz) {
    for (std::size_t iy = 0; iy < dims_.ny; ++iy) {
      for (std::size_t ix = 0; ix < dims_.nx; ++ix) {
        v[pos++] = pw::potential_value(ix, iy, first + iz, dims_);
      }
    }
  }
}

}  // namespace fx::fftx
