// The band-FFT pipeline: FFTXlib's kernel in its original task-group form
// and the paper's two task-based optimizations.
//
// One BandFftPipeline instance runs on each world rank and executes, for
// every band, the forward transform (reciprocal -> real space), the
// application of the real-space potential (VOFR), and the backward
// transform -- the loop of the paper's Fig. 1:
//
//   DO I = 1, NB, NTG
//     pack NTG bands          (Alltoallv across the pack comm)
//     FW-FFT along Z          (1D FFTs on group sticks)
//     scatter                 (Alltoallv inside the task group)
//     FW-FFT along XY         (2D FFTs on owned planes)
//     VOFR
//     BW-FFT along XY
//     scatter
//     BW-FFT along Z
//     unpack NTG bands
//   END DO
//
// (Paper direction names are kept: "FW" is reciprocal->real, which in FFT
// engine terms is the unnormalized Backward transform; "BW" is real->
// reciprocal, engine Forward scaled by 1/N at unpack -- QE's invfft/fwfft
// convention.)
//
// Execution modes:
//   Original    -- the reference synchronous loop (Fig. 1);
//   TaskPerStep -- every step above is a dependent task; FFT steps fan out
//                  further through taskloop (paper Fig. 4, strategy 1:
//                  overlap communication with computation);
//   TaskPerFft  -- every iteration is one independent task scheduled over
//                  the worker threads that replace the FFT task groups
//                  (paper Fig. 5, strategy 2: de-synchronize compute
//                  phases to soften resource contention);
//   Combined    -- the paper's future-work item: TaskPerFft outer tasks
//                  whose FFT steps also taskloop across idle workers.
//   Streaming   -- band-dataflow executor (stream.hpp): N band iterations
//                  in flight across the full pipeline, each stage a
//                  dependent task over a bounded ring of N buffer slots;
//                  when the fused layouts are on, the transpose exchanges
//                  split into a nonblocking post task and a completion-
//                  waitable task, so band k+1's Z-FFT runs while band k's
//                  scatter is on the wire.  FFTX_STREAM_BANDS sets N
//                  (N = 1 recovers the staged strategies).
//
// All modes produce bit-identical coefficients (asserted by the tests):
// the optimizations reorder work, never arithmetic within a band.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/aligned.hpp"
#include "core/deadline.hpp"
#include "fft/batch1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/plan_cache.hpp"
#include "fftx/abft.hpp"
#include "fftx/descriptor.hpp"
#include "fftx/guarded.hpp"
#include "simmpi/comm.hpp"
#include "tasking/runtime.hpp"
#include "trace/tracer.hpp"

namespace fx::fftx {

enum class PipelineMode { Original, TaskPerStep, TaskPerFft, Combined, Streaming };

const char* to_string(PipelineMode mode);

/// Default of PipelineConfig::fused_exchange: FFTX_FUSED_EXCHANGE != 0.
[[nodiscard]] bool default_fused_exchange();
/// Default of PipelineConfig::overlap_exchange: FFTX_OVERLAP_EXCHANGE != 0.
[[nodiscard]] bool default_overlap_exchange();
/// Default of PipelineConfig::overlap_chunks: FFTX_OVERLAP_CHUNKS (>= 1),
/// else 4.
[[nodiscard]] int default_overlap_chunks();
/// Default of PipelineConfig::real_bands: FFTX_R2C != 0.
[[nodiscard]] bool default_real_bands();
/// Default of PipelineConfig::stream_bands: FFTX_STREAM_BANDS in [1, 4096],
/// else 2.
[[nodiscard]] int default_stream_bands();
/// Default of PipelineConfig::stream_nonblocking: FFTX_STREAM_NB != 0,
/// else true.
[[nodiscard]] bool default_stream_nonblocking();

struct PipelineConfig {
  int num_bands = 8;
  PipelineMode mode = PipelineMode::Original;
  /// Worker threads for the task-based modes (the paper replaces the 8 FFT
  /// task groups with 8 threads).  Ignored by Original.
  int nthreads = 1;
  bool apply_potential = true;
  /// taskloop grain sizes; the paper uses 200 for cft_2z and 10 for cft_2xy.
  std::size_t grain_z = 200;
  std::size_t grain_xy = 10;
  task::SchedulerPolicy policy = task::SchedulerPolicy::Fifo;
  /// Route the transpose exchanges through the checksum-guarded Alltoallv
  /// (detects in-flight payload corruption and retries; see guarded.hpp).
  bool guard_exchanges = default_guard_exchanges();
  /// Retry budget per guarded exchange before a structured failure.
  int guard_max_retries = 3;
  /// Zero-copy transposes: the band pack/unpack and pencil<->plane
  /// exchanges move scatter-gather views of the FFT buffers directly,
  /// deleting the marshalling (staging) passes.  Bit-identical to the
  /// staged path.
  bool fused_exchange = default_fused_exchange();
  /// Chunk the Z-FFT by sticks and run each finished chunk's scatter as a
  /// nonblocking exchange, overlapping transpose traffic with the
  /// remaining transforms.  Implies the fused layouts; guarded exchanges
  /// fall back to per-chunk blocking (fused, verified, not overlapped).
  bool overlap_exchange = default_overlap_exchange();
  /// Stick chunks per overlapped scatter (>= 1; must agree across ranks).
  int overlap_chunks = default_overlap_chunks();
  /// Gamma-point real-band mode: bands are Hermitian-symmetrized (so their
  /// real-space fields are real) and carried through the pipeline two to a
  /// complex band -- pair p packs band 2p as the real part and band 2p + 1
  /// as the imaginary part.  The band loop, every FFT and every exchange
  /// then runs gamma_pair_count(num_bands) iterations instead of
  /// num_bands: half the flops and half the bytes on the wire.  The pair
  /// count (not num_bands) must be a multiple of ntg.  band(p) returns the
  /// packed pair; tests unpack via Hermitian symmetry.
  bool real_bands = default_real_bands();
  /// Precision of every double crossing the fused view exchanges: Fp64 is
  /// the bit-exact default; Fp32/Bf16 narrow the payload in flight (and
  /// imply the fused layouts -- the staged Alltoallv path has no wire
  /// narrowing).  Composes with guard_exchanges (digests hash the wire
  /// encoding) and overlap_exchange.  Quantization error is tracked in the
  /// fftx.exchange.wire_max_ulp_err gauge.
  mpi::WireFormat wire_format = mpi::default_wire_format();
  /// Silent-data-corruption detection across every stage: checksum bands
  /// over the batched FFTs, Parseval/VOFR/exchange energy conservation, and
  /// at-rest digests across stage gaps (see abft.hpp).  Detect and Repair
  /// run identical checks inside the pipeline; they differ in what the
  /// RecoveryDriver does with an agreed detection (fail fast vs surgical
  /// band replay).  FFTX_ABFT selects the default.
  AbftMode abft = default_abft_mode();
  /// Driver-internal: on an agreed detection, record the corrupted bands
  /// (abft_corrupt_bands()) instead of throwing core::SdcError from run(),
  /// so the RecoveryDriver can recompute just those bands.
  bool abft_defer = false;
  /// Streaming mode only: band iterations in flight at once (the depth of
  /// the buffer-slot ring; bounded memory and backpressure).  1 recovers
  /// the staged execution order; clamped to the iteration count, and --
  /// when the stage tasks block in collectives (guarded or staged
  /// exchanges, or stream_nonblocking off) -- to nthreads, for the same
  /// skew-bounding reason run_task_per_step caps its window.
  int stream_bands = default_stream_bands();
  /// Streaming mode only: split each fused transpose exchange into a
  /// nonblocking post task and a completion-waitable task, so workers run
  /// other bands' compute while the exchange is on the wire.  Off (or
  /// guarded / staged layouts) falls back to blocking stage tasks.
  bool stream_nonblocking = default_stream_nonblocking();
  /// Wall-clock budget for the whole run (inactive by default).  Checked
  /// collectively at every band-iteration boundary: when any rank sees the
  /// budget spent, every rank throws core::DeadlineExceeded in lockstep --
  /// partial work is discarded and the communicator stays healthy (task
  /// modes drain in-flight iterations first).  The remaining budget also
  /// bounds the guarded exchanges' retry loops.
  core::Deadline deadline{};
};

class BandFftPipeline {
 public:
  /// Collective over all ranks of `world` (performs the communicator
  /// splits).  `world.size()` must equal `desc->nproc()`, and num_bands
  /// (or, under real_bands, gamma_pair_count(num_bands)) must be a
  /// multiple of desc->ntg().
  BandFftPipeline(mpi::Comm world, std::shared_ptr<const Descriptor> desc,
                  PipelineConfig cfg, trace::Tracer* tracer = nullptr);
  ~BandFftPipeline();

  BandFftPipeline(const BandFftPipeline&) = delete;
  BandFftPipeline& operator=(const BandFftPipeline&) = delete;
  BandFftPipeline(BandFftPipeline&&) = delete;
  BandFftPipeline& operator=(BandFftPipeline&&) = delete;

  /// Fills every band's local coefficients from the deterministic
  /// wave-function generator (layout independent).  `first_band` offsets
  /// the generator's band index: local band n holds global band
  /// first_band + n (the recovery driver runs checkpointed batches of a
  /// larger global band range through one pipeline instance).
  void initialize_bands(int first_band = 0);

  /// Runs the full band loop.  Returns local wall seconds between the
  /// opening and closing barrier (comparable across ranks).
  double run();

  /// This rank's packed coefficients of `band` (world stick distribution);
  /// positions given by descriptor().world_g_index(rank).  Under
  /// real_bands, `n` indexes packed pairs (pair n carries bands 2n and
  /// 2n + 1) and must be < num_psi().
  [[nodiscard]] std::span<const fft::cplx> band(int n) const;

  /// Overwrites band (or pair) `n`'s local coefficients; the span length
  /// must equal descriptor().ng_world(rank).  Lets tests and drivers feed
  /// arbitrary coefficients through the pipeline (e.g. the complex oracle
  /// run on real-band packed inputs).
  void set_band(int n, std::span<const fft::cplx> coeffs);

  /// Complex bands the band loop actually iterates: num_bands, or
  /// gamma_pair_count(num_bands) under real_bands.
  [[nodiscard]] int num_psi() const { return npsi_; }

  [[nodiscard]] const Descriptor& descriptor() const { return *desc_; }
  [[nodiscard]] const PipelineConfig& config() const { return cfg_; }
  [[nodiscard]] int rank() const { return w_; }

  /// Guarded-exchange counters (zero when guard_exchanges is off).
  [[nodiscard]] std::uint64_t guard_exchanges_done() const {
    return guard_stats_.exchanges.load();
  }
  [[nodiscard]] std::uint64_t guard_retries() const {
    return guard_stats_.retries.load();
  }

  /// Carried-band indices the end-of-run ABFT verdict agreed are corrupt
  /// (identical on every rank; empty when abft is Off or the run was
  /// clean).  Meaningful after run() returned -- with abft_defer set, a
  /// detection returns instead of throwing and is read back here.
  [[nodiscard]] std::vector<int> abft_corrupt_bands() const;

 private:
  // The streaming executor (stream.cpp) drives the same private stage
  // methods and buffers the built-in modes use, as tasks over a slot ring.
  friend class StreamExecutor;

  /// Per-iteration working storage.  Distinct iterations never share one,
  /// so buffers carry no cross-iteration dependencies.
  struct WorkBuffers {
    core::aligned_vector<fft::cplx> pack_send;   ///< ntg * ng_w (marshalling)
    core::aligned_vector<fft::cplx> band_g;      ///< my band on group sticks
    core::aligned_vector<fft::cplx> pencil;      ///< [stick][iz], nst_b * nz
    core::aligned_vector<fft::cplx> stage;       ///< scatter stage, pencil side
    core::aligned_vector<fft::cplx> plane_stage; ///< scatter stage, plane side
    core::aligned_vector<fft::cplx> planes;      ///< [iz][iy][ix]
    AbftGuard::Scratch abft;                     ///< per-iteration ABFT state
  };

  void do_iteration(WorkBuffers& wb, int iter, bool use_taskloop);
  void do_pack(WorkBuffers& wb, int iter);
  void do_psi_prep(WorkBuffers& wb, int iter);
  void fft_z_range(WorkBuffers& wb, int iter, fft::Direction dir,
                   std::size_t lo, std::size_t hi);
  void do_fft_z(WorkBuffers& wb, int iter, fft::Direction dir,
                bool use_taskloop);
  void do_scatter_forward(WorkBuffers& wb, int iter);
  void do_fft_xy(WorkBuffers& wb, int iter, fft::Direction dir,
                 bool use_taskloop);
  void do_vofr(WorkBuffers& wb, int iter);
  void do_scatter_backward(WorkBuffers& wb, int iter);
  void do_unpack(WorkBuffers& wb, int iter);

  /// Overlapped forward leg: Z-FFT stick chunks, each finished chunk's
  /// scatter posted nonblocking while the next chunk transforms.
  void do_fft_z_scatter_fw(WorkBuffers& wb, int iter, bool use_taskloop);
  /// Overlapped backward leg: all chunk scatters posted up front, each
  /// arrival's Z-FFT running while later chunks are still in flight.
  void do_scatter_bw_fft_z(WorkBuffers& wb, int iter, bool use_taskloop);

  void run_original();
  void run_task_per_fft(bool use_taskloop);
  void run_task_per_step();
  void run_streaming();  // defined in stream.cpp

  /// Collective deadline verdict at a band-iteration boundary (all ranks
  /// call with the same `iter`): true when any rank's clock says the budget
  /// is spent.  Free (no collective) when no deadline is configured.
  [[nodiscard]] bool deadline_expired_collective(int iter);
  [[noreturn]] void throw_deadline(int iter) const;

  /// All transpose traffic funnels through here: plain Alltoallv, or the
  /// checksum-guarded variant when cfg_.guard_exchanges is set.
  void exchange(mpi::Comm& comm, const fft::cplx* send,
                const std::size_t* scounts, const std::size_t* sdispls,
                fft::cplx* recv, const std::size_t* rcounts,
                const std::size_t* rdispls, int tag);

  /// The fused (scatter-gather view) counterpart of exchange(): blocking
  /// view Alltoallv, or the guarded view variant under guard_exchanges.
  void exchange_view(mpi::Comm& comm, const fft::cplx* send_base,
                     std::span<const mpi::SegView> sviews,
                     fft::cplx* recv_base,
                     std::span<const mpi::SegView> rviews, int tag);

  std::unique_ptr<WorkBuffers> make_buffers() const;

  /// Compute bit-flip injection hook (FFTX_FAULT_FLIP_*): offers the stage
  /// output buffer to the fault injector.  Called at every stage boundary
  /// regardless of cfg_.abft, so flips land (and per-rank opportunity
  /// indices advance identically) whether or not anyone is checking.
  void flip(fft::cplx* p, std::size_t n);

  mpi::Comm world_;
  std::shared_ptr<const Descriptor> desc_;
  PipelineConfig cfg_;
  trace::Tracer* tracer_;

  int w_;  ///< world rank
  int g_;  ///< task group id (w % ntg)
  int b_;  ///< group rank (w / ntg)

  mpi::Comm pack_;  ///< the T neighboring ranks (band redistribution)
  mpi::Comm scat_;  ///< the R alternating ranks (pencil<->plane exchange)

  bool fused_ = false;    ///< fused_exchange || overlap_exchange || wire
  bool overlap_ = false;  ///< overlap_exchange
  int npsi_ = 0;          ///< complex bands in the loop (see num_psi())

  // Per-band packed coefficients (this rank's world-stick slice), one
  // arena with band n at n * ng_world(w): the fused pack/unpack exchanges
  // address an iteration's ntg bands as scatter-gather views of the single
  // base pointer.
  core::aligned_vector<fft::cplx> psi_arena_;
  [[nodiscard]] fft::cplx* band_data(int n) {
    return psi_arena_.data() +
           static_cast<std::size_t>(n) * desc_->ng_world(w_);
  }

  // Immutable plans (thread-safe execution, shared across the ranks of
  // this process via the global plan cache) and the potential slab.
  std::shared_ptr<const fft::BatchPlan1d> z_to_real_;   ///< "FW-FFT along Z"
  std::shared_ptr<const fft::BatchPlan1d> z_to_recip_;  ///< "BW-FFT along Z"
  std::shared_ptr<const fft::Fft2d> xy_to_real_;
  std::shared_ptr<const fft::Fft2d> xy_to_recip_;
  std::vector<double> vslab_;

  // Pack / scatter exchange counts and displacements (elements).
  std::vector<std::size_t> pack_counts_;    // recv from member m
  std::vector<std::size_t> pack_displs_;
  std::vector<std::size_t> pack_send_counts_;  // ng_w to every member
  std::vector<std::size_t> pack_send_displs_;
  std::vector<std::size_t> scat_send_counts_;  // to group peer p
  std::vector<std::size_t> scat_send_displs_;
  std::vector<std::size_t> scat_recv_counts_;  // from group peer q
  std::vector<std::size_t> scat_recv_displs_;

  // Fused scatter layouts, precomputed (iteration-independent).  Send side
  // addresses the pencil buffer: run j of peer p is stick j's npz(p)
  // z-planes.  Receive side addresses the plane buffer: run j of peer q is
  // stick group_sticks(q)[j]'s (x, y) column, stride nx * ny.  Runs are
  // stick-ordered, so an overlap chunk's views are contiguous sub-slices.
  std::vector<std::vector<mpi::SegRun>> scat_send_runs_;  // [peer][stick]
  std::vector<std::vector<mpi::SegRun>> scat_recv_runs_;  // [peer][stick]

  std::unique_ptr<task::TaskRuntime> rt_;  // task modes only

  GuardStats guard_stats_;

  std::unique_ptr<AbftGuard> abft_;     // non-null iff cfg_.abft != Off
  mpi::FaultInjector* flip_ = nullptr;  // non-null iff flips configured
  int wrank_ = 0;  ///< original world rank (stable across comm shrink)

  // Reusable per-task buffer sets (TaskPerFft/Combined: at most nthreads
  // iterations are in flight, so the pool never blocks).
  WorkBuffers* acquire_buffers();
  void release_buffers(WorkBuffers* wb);
  std::mutex pool_mu_;
  std::vector<std::unique_ptr<WorkBuffers>> pool_;
};

}  // namespace fx::fftx
