// Figure 3: Paraver-style timelines of the 8x8 original run -- the whole
// FFT phase (top), then a zoom into one of the 8 repeating sub-phases
// showing average IPC, MPI calls, and the communicators in use.
//
// Things to see (paper Sec. III): 8 repeating band-iteration blocks; inside
// one block the low-IPC psi preparation, the Z FFT, the scatter Alltoall,
// the high-IPC central FFT-XY/VOFR block, and the mirrored backward path;
// pack/unpack on the 8-rank neighboring communicators, scatters on the
// 8-rank alternating communicators.
#include "common.hpp"

int main() {
  using fx::trace::TimelineOptions;
  using fx::trace::TimelineView;

  fxbench::ModelConfig cfg;
  cfg.nranks = 64;
  cfg.ntg = 8;
  cfg.mode = fx::fftx::PipelineMode::Original;
  cfg.threads = 1;
  // 64 bands processed 8 at a time -> the paper's 8 repeating phases.
  cfg.workload.num_bands = 64;

  fx::trace::Tracer tracer(cfg.nranks);
  const auto r = fxbench::run_model(cfg, &tracer);
  tracer.normalize_time();

  std::cout << "Fig. 3 -- timelines of the original 8 x 8 run (KNL model, "
               "64 bands => 8 iterations), runtime "
            << fx::core::fixed(r.runtime_s * 1e3, 1) << " ms\n\n";

  TimelineOptions opt;
  opt.width = 110;
  opt.freq_ghz = 1.4;

  std::cout << "== full FFT phase, compute phases ==\n";
  opt.view = TimelineView::Phase;
  std::cout << fx::trace::render_timeline(tracer, opt) << "\n";

  // Zoom into the third repeating block, like the paper.
  const double t_total = tracer.t_max();
  opt.t_begin = t_total * 2.0 / 8.0;
  opt.t_end = t_total * 3.0 / 8.0;

  std::cout << "== zoom, iteration 3 of 8: average IPC ==\n";
  opt.view = TimelineView::Ipc;
  std::cout << fx::trace::render_timeline(tracer, opt) << "\n";

  std::cout << "== zoom, iteration 3 of 8: MPI calls ==\n";
  opt.view = TimelineView::MpiCall;
  std::cout << fx::trace::render_timeline(tracer, opt) << "\n";

  std::cout << "== zoom, iteration 3 of 8: communicators ==\n";
  opt.view = TimelineView::Communicator;
  std::cout << fx::trace::render_timeline(tracer, opt) << "\n";

  fx::trace::write_events_csv(tracer, "bench/out/fig3_events.csv");
  std::cout << "raw events written to bench/out/fig3_events.csv\n";
  fx::trace::dump_run_artifacts(tracer, "bench_fig3_timeline");
  return 0;
}
