// google-benchmark microbenches of the FFT engine substrate.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/rng.hpp"
#include "fft/plan1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/plan3d.hpp"

namespace {

using fx::fft::cplx;
using fx::fft::Direction;

std::vector<cplx> random_signal(std::size_t n) {
  fx::core::Rng rng(n);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft1d plan(n, Direction::Forward);
  fx::fft::Workspace ws;
  const auto in = random_signal(n);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    plan.execute(in.data(), out.data(), ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// Powers of two, QE grid sizes (60, 120), mixed radix, Bluestein primes.
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(60)->Arg(120)->Arg(128)->Arg(243)->Arg(256)
    ->Arg(720)->Arg(1024)->Arg(1009 /* prime: Bluestein */);

void BM_Fft1dBatchedSticks(benchmark::State& state) {
  // The pipeline's Z-stick workload: many contiguous length-nz transforms.
  const std::size_t nz = 60;
  const auto nsticks = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft1d plan(nz, Direction::Backward);
  fx::fft::Workspace ws;
  auto data = random_signal(nz * nsticks);
  for (auto _ : state) {
    plan.execute_many(nsticks, data.data(), 1, nz, data.data(), 1, nz, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nz * nsticks));
}
BENCHMARK(BM_Fft1dBatchedSticks)->Arg(32)->Arg(320)->Arg(2550);

void BM_Fft2dPlane(benchmark::State& state) {
  // One real-space plane of the paper's 60^3 grid (and a bigger one).
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft2d plan(n, n, Direction::Backward);
  fx::fft::Workspace ws;
  auto data = random_signal(n * n);
  for (auto _ : state) {
    plan.execute(data.data(), data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2dPlane)->Arg(60)->Arg(120);

void BM_Fft3dGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft3d plan(n, n, n, Direction::Backward);
  fx::fft::Workspace ws;
  auto data = random_signal(n * n * n);
  for (auto _ : state) {
    plan.execute(data.data(), data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Fft3dGrid)->Arg(20)->Arg(60);

}  // namespace

BENCHMARK_MAIN();
