// google-benchmark microbenches of the FFT engine substrate, plus the
// scalar-vs-batched A/B harness that records bench/out/fft_engine_batched.csv
// (items/sec and GFLOP/s via the 5*n*log2(n) mixed-radix flop model).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "fft/batch1d.hpp"
#include "fft/plan1d.hpp"
#include "fft/plan2d.hpp"
#include "fft/plan3d.hpp"

namespace {

using fx::fft::BatchKernel;
using fx::fft::BatchPlan1d;
using fx::fft::cplx;
using fx::fft::Direction;

std::vector<cplx> random_signal(std::size_t n) {
  fx::core::Rng rng(n);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

void BM_Fft1d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft1d plan(n, Direction::Forward);
  fx::fft::Workspace ws;
  const auto in = random_signal(n);
  std::vector<cplx> out(n);
  for (auto _ : state) {
    plan.execute(in.data(), out.data(), ws);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
// Powers of two, QE grid sizes (60, 120), mixed radix, Bluestein primes.
BENCHMARK(BM_Fft1d)->Arg(64)->Arg(60)->Arg(120)->Arg(128)->Arg(243)->Arg(256)
    ->Arg(720)->Arg(1024)->Arg(1009 /* prime: Bluestein */);

/// Shared body for the stick-batch benches: length-nz transforms, batch of
/// state.range(0) sticks, in place, contiguous layout -- the pipeline's
/// Z-stick workload -- through the scalar or SIMD kernel.
void run_stick_batch(benchmark::State& state, BatchKernel kernel) {
  const std::size_t nz = 60;
  const auto nsticks = static_cast<std::size_t>(state.range(0));
  const BatchPlan1d plan(nz, Direction::Backward, kernel);
  fx::fft::Workspace ws;
  auto data = random_signal(nz * nsticks);
  for (auto _ : state) {
    plan.execute_many(nsticks, data.data(), 1, nz, data.data(), 1, nz, ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nz * nsticks));
}

void BM_Fft1dBatchedSticks(benchmark::State& state) {
  run_stick_batch(state, BatchKernel::Simd);
}
BENCHMARK(BM_Fft1dBatchedSticks)->Arg(32)->Arg(320)->Arg(2550);

void BM_Fft1dScalarSticks(benchmark::State& state) {
  run_stick_batch(state, BatchKernel::Scalar);
}
BENCHMARK(BM_Fft1dScalarSticks)->Arg(32)->Arg(320)->Arg(2550);

void BM_Fft2dPlane(benchmark::State& state) {
  // One real-space plane of the paper's 60^3 grid (and a bigger one).
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft2d plan(n, n, Direction::Backward);
  fx::fft::Workspace ws;
  auto data = random_signal(n * n);
  for (auto _ : state) {
    plan.execute(data.data(), data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_Fft2dPlane)->Arg(60)->Arg(120);

void BM_Fft3dGrid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fx::fft::Fft3d plan(n, n, n, Direction::Backward);
  fx::fft::Workspace ws;
  auto data = random_signal(n * n * n);
  for (auto _ : state) {
    plan.execute(data.data(), data.data(), ws);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Fft3dGrid)->Arg(20)->Arg(60);

// --- Scalar-vs-batched CSV harness -------------------------------------

/// Seconds per call of f, measured over enough repetitions to fill
/// ~100 ms (after one warmup call).
template <typename F>
double seconds_per_call(F&& f) {
  f();
  int reps = 1;
  for (;;) {
    fx::core::WallTimer timer;
    for (int i = 0; i < reps; ++i) f();
    const double s = timer.seconds();
    if (s > 0.1 || reps > (1 << 24)) {
      return s / static_cast<double>(reps);
    }
    reps = s <= 0.005 ? reps * 10
                      : static_cast<int>(static_cast<double>(reps) *
                                         (0.15 / s)) + 1;
  }
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Times one (n, batch, layout) cell through the scalar oracle and the
/// SIMD engine, in place, and appends a CSV row.  items/sec counts
/// transformed elements (n per transform); GFLOP/s uses the 5*n*log2(n)
/// flop model per transform.
void csv_cell(fx::core::CsvWriter& csv, std::size_t n, std::size_t batch,
              bool transposed) {
  const BatchPlan1d simd(n, Direction::Backward, BatchKernel::Simd);
  const BatchPlan1d scalar(n, Direction::Backward, BatchKernel::Scalar);
  fx::fft::Workspace ws;
  auto data = random_signal(n * batch);
  const std::size_t istride = transposed ? batch : 1;
  const std::size_t idist = transposed ? 1 : n;

  const double t_scalar = seconds_per_call([&] {
    scalar.execute_many(batch, data.data(), istride, idist, data.data(),
                        istride, idist, ws);
  });
  const double t_simd = seconds_per_call([&] {
    simd.execute_many(batch, data.data(), istride, idist, data.data(),
                      istride, idist, ws);
  });

  const double elems = static_cast<double>(n * batch);
  const double flops = 5.0 * static_cast<double>(n) *
                       std::log2(static_cast<double>(n)) *
                       static_cast<double>(batch);
  csv.row({std::to_string(n), std::to_string(batch),
           transposed ? "transposed" : "contiguous", fmt(elems / t_scalar),
           fmt(elems / t_simd), fmt(t_scalar / t_simd),
           fmt(flops / t_scalar / 1e9), fmt(flops / t_simd / 1e9)});
}

void write_batched_csv() {
  fx::core::CsvWriter csv("bench/out/fft_engine_batched.csv");
  csv.row({"n", "batch", "layout", "scalar_items_per_s", "batched_items_per_s",
           "speedup", "scalar_gflops", "batched_gflops"});
  for (std::size_t n : {60UL, 64UL, 120UL, 128UL, 243UL, 720UL, 1009UL}) {
    for (std::size_t batch : {8UL, 64UL, 512UL}) {
      csv_cell(csv, n, batch, /*transposed=*/false);
      csv_cell(csv, n, batch, /*transposed=*/true);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The A/B comparison runs first so `bench_fft_engine` from the repo root
  // always refreshes bench/out/fft_engine_batched.csv (the bench/out/ tree
  // is created relative to the CWD); pass --no-csv to skip it.
  bool csv = true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--no-csv") {
      csv = false;
      argv[i] = argv[argc - 1];
      --argc;
      break;
    }
  }
  if (csv) {
    try {
      write_batched_csv();
      std::fprintf(stderr, "wrote bench/out/fft_engine_batched.csv\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "skipping batched CSV: %s\n", e.what());
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
