// Exchange engine A/B/C: staged blocking Alltoallv vs fused zero-copy view
// exchange vs fused + nonblocking chunked overlap, on the real backend.
//
// The fused variant's claim is structural -- the staging counter must drop
// to zero because no pack/stage buffer is touched -- and the overlap
// variant's claim is temporal: the time ranks spend blocked inside exchange
// waits (simmpi.{alltoallv,ialltoallv}.wait_us) shrinks because each Z-FFT
// chunk computes while the previous chunk's scatter is in flight.  Both are
// measured from metrics deltas around otherwise identical runs, so the
// numbers isolate the exchange engine from everything else.
//
// "Exchange cost" below is blocked-wait time PLUS staged marshal/unmarshal
// time (fftx.exchange.staging_us): the staging copies exist only to feed
// the exchange, so a fair A/B against the zero-copy layouts charges them
// to the exchange path, not to compute.
#include <algorithm>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/stats.hpp"
#include "simmpi/runtime.hpp"

namespace {

struct Variant {
  const char* name;
  bool fused;
  bool overlap;
  int chunks;  // 0 = pipeline default (adaptive)
};

// fused-nonblocking runs the adaptive chunk default (1 on a serial host:
// the exchange is still posted eagerly and copied zero-copy, without
// paying per-chunk post/wait overhead that a single hardware thread can
// never hide).  fused-overlap-4 forces 4 chunks to exercise -- and price
// -- the chunked compute/exchange interleave itself.
constexpr Variant kVariants[] = {
    {"staged-blocking", false, false, 0},
    {"fused-blocking", true, false, 0},
    {"fused-nonblocking", true, true, 0},
    {"fused-overlap-4", true, true, 4},
};

struct Measured {
  double wall_s = 0.0;        // median wall seconds of the reps
  double wait_s = 0.0;        // summed exchange-blocked seconds, all ranks
  double staging_s = 0.0;     // summed staged marshal/unmarshal seconds
  double staging_mb = 0.0;    // marshalling traffic through staging buffers
  double bytes_mb = 0.0;      // payload bytes actually exchanged (wire size)
  double hidden_ms = 0.0;     // post-to-wait gap the overlap engine hid
  std::uint64_t posted = 0;   // nonblocking exchanges posted

  double cost_s() const { return wait_s + staging_s; }
};

/// Per-variant accumulator across the interleaved reps.
struct Samples {
  std::vector<double> times;
  std::vector<double> waits;
  std::vector<double> stagings;
  double staging_bytes = 0.0;
  double exchanged_bytes = 0.0;
  double hidden_sum = 0.0;
  std::uint64_t posted = 0;
};

/// One pipeline run of `v`, with per-run metric deltas banked into `out`.
void run_once(const std::shared_ptr<const fx::fftx::Descriptor>& desc,
              int nranks, const Variant& v, int num_bands, Samples& out) {
  auto& reg = fx::core::MetricsRegistry::global();
  auto& wait_bl = reg.histogram("simmpi.alltoallv.wait_us");
  auto& wait_nb = reg.histogram("simmpi.ialltoallv.wait_us");
  auto& staging = reg.counter("fftx.exchange.staging_bytes");
  auto& staging_us = reg.histogram("fftx.exchange.staging_us");
  auto& hidden = reg.histogram("fftx.exchange.overlap_hidden_ms");
  auto& posted = reg.counter("simmpi.ialltoallv.posted");
  auto& bytes_bl = reg.counter("simmpi.alltoallv.bytes");
  auto& bytes_nb = reg.counter("simmpi.ialltoallv.bytes");

  const double wait0 = wait_bl.sum() + wait_nb.sum();
  const double staging_us0 = staging_us.sum();
  const double staging0 = static_cast<double>(staging.value());
  const double bytes0 =
      static_cast<double>(bytes_bl.value() + bytes_nb.value());
  const double hidden0 = hidden.sum();
  const std::uint64_t posted0 = posted.value();

  double t = 0.0;
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = num_bands;
    cfg.mode = fx::fftx::PipelineMode::Original;
    cfg.nthreads = 1;
    cfg.guard_exchanges = false;
    cfg.fused_exchange = v.fused;
    cfg.overlap_exchange = v.overlap;
    if (v.chunks > 0) cfg.overlap_chunks = v.chunks;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    const double dt = pipe.run();
    if (world.rank() == 0) t = dt;
  });
  out.times.push_back(t);
  out.waits.push_back((wait_bl.sum() + wait_nb.sum() - wait0) / 1e6);
  out.stagings.push_back((staging_us.sum() - staging_us0) / 1e6);
  out.staging_bytes += static_cast<double>(staging.value()) - staging0;
  out.exchanged_bytes +=
      static_cast<double>(bytes_bl.value() + bytes_nb.value()) - bytes0;
  out.hidden_sum += hidden.sum() - hidden0;
  out.posted += posted.value() - posted0;
}

Measured summarize(const Samples& s, int reps) {
  Measured m;
  m.wall_s = fx::core::median(s.times);
  m.wait_s = fx::core::median(s.waits);
  m.staging_s = fx::core::median(s.stagings);
  m.staging_mb = s.staging_bytes / 1e6 / reps;
  m.bytes_mb = s.exchanged_bytes / 1e6 / reps;
  m.hidden_ms = s.hidden_sum / reps;
  m.posted = s.posted / static_cast<std::uint64_t>(reps);
  return m;
}

/// Streaming depth-sweep accumulator: wall times plus fftx.stream.* deltas.
struct StreamSamples {
  std::vector<double> times;
  double hidden_sum = 0.0;
  std::uint64_t posts = 0;
};

/// One streaming-executor run at `depth` bands in flight (split
/// nonblocking path: fused views, no guard), metric deltas banked.
void run_stream_once(const std::shared_ptr<const fx::fftx::Descriptor>& desc,
                     int nranks, int depth, int num_bands,
                     StreamSamples& out) {
  auto& reg = fx::core::MetricsRegistry::global();
  auto& hidden = reg.histogram("fftx.stream.hidden_ms");
  auto& posts = reg.counter("fftx.stream.posts");
  const double hidden0 = hidden.sum();
  const std::uint64_t posts0 = posts.value();

  double t = 0.0;
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = num_bands;
    cfg.mode = fx::fftx::PipelineMode::Streaming;
    cfg.nthreads = 3;
    cfg.stream_bands = depth;
    cfg.stream_nonblocking = true;
    cfg.fused_exchange = true;
    cfg.overlap_exchange = false;
    cfg.guard_exchanges = false;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    const double dt = pipe.run();
    if (world.rank() == 0) t = dt;
  });
  out.times.push_back(t);
  out.hidden_sum += hidden.sum() - hidden0;
  out.posts += posts.value() - posts0;
}

}  // namespace

int main() {
  constexpr int kReps = 21;
  // Enough band iterations per run that the rank-thread spawn/join cost of
  // Runtime::run stops polluting the per-run metric deltas.
  constexpr int kBands = 32;

  fx::core::TablePrinter t(
      "Exchange engine (real backend, medians over 21 order-rotated paired reps)");
  t.header({"config", "variant", "wall [s]", "wait [s]", "staging [s]",
            "cost [s]", "staging [MB]", "wire [MB]", "hidden [ms]",
            "cost vs staged"});
  fx::core::CsvWriter csv("bench/out/exchange_overlap.csv");
  csv.row({"nranks", "ntg", "ecut", "variant", "wall_s", "exchange_wait_s",
           "staging_s", "exchange_cost_s", "staging_mb", "bytes_exchanged_mb",
           "hidden_ms", "posted", "cost_reduction_pct"});
  // Structural claims only: the fused engine must move zero bytes through
  // staging buffers regardless of host speed, so perf_regress can gate it
  // tightly; the wall/wait seconds stay in the CSV (host-dependent).
  fxbench::JsonReport report("bench_exchange_overlap");

  struct Config {
    int nranks;
    int ntg;
    double ecut;
  };
  // ecut picks the grid: larger cutoffs are exchange-bound (copy volume
  // grows linearly, FFT work only ~log faster, and the per-op rendezvous
  // overhead amortizes), which is where the zero-copy engine pays off.
  const Config configs[] = {
      {4, 2, 16.0}, {8, 2, 16.0}, {8, 2, 32.0},
  };

  constexpr int kNumVariants =
      static_cast<int>(sizeof(kVariants) / sizeof(kVariants[0]));

  for (const Config& c : configs) {
    // Interleave the variants within each rep, rotating the order, so
    // host-speed drift over the measurement window lands on every variant
    // equally (same paired-rep scheme as the tracing-overhead A/B).
    auto desc = std::make_shared<const fx::fftx::Descriptor>(
        fx::pw::Cell{10.0}, c.ecut, c.nranks, c.ntg);
    Samples samples[kNumVariants];
    for (int rep = 0; rep < kReps; ++rep) {
      for (int i = 0; i < kNumVariants; ++i) {
        const int vi = (rep + i) % kNumVariants;
        run_once(desc, c.nranks, kVariants[vi], kBands, samples[vi]);
      }
    }
    double staged_cost = 0.0;
    for (int vi = 0; vi < kNumVariants; ++vi) {
      const Variant& v = kVariants[vi];
      const Measured m = summarize(samples[vi], kReps);
      if (!v.fused && !v.overlap) staged_cost = m.cost_s();
      const double reduction =
          staged_cost > 0.0
              ? (staged_cost - m.cost_s()) / staged_cost * 100.0
              : 0.0;
      t.row({fx::core::cat(c.nranks, " ranks, ntg ", c.ntg, ", ecut ",
                           fx::core::fixed(c.ecut, 0)),
             v.name, fx::core::fixed(m.wall_s, 4),
             fx::core::fixed(m.wait_s, 4), fx::core::fixed(m.staging_s, 4),
             fx::core::fixed(m.cost_s(), 4),
             fx::core::fixed(m.staging_mb, 2),
             fx::core::fixed(m.bytes_mb, 2),
             fx::core::fixed(m.hidden_ms, 1),
             fx::core::cat(fx::core::fixed(reduction, 1), " %")});
      csv.row({fx::core::cat(c.nranks), fx::core::cat(c.ntg),
               fx::core::cat(c.ecut), v.name, fx::core::cat(m.wall_s),
               fx::core::cat(m.wait_s), fx::core::cat(m.staging_s),
               fx::core::cat(m.cost_s()), fx::core::cat(m.staging_mb),
               fx::core::cat(m.bytes_mb), fx::core::cat(m.hidden_ms),
               fx::core::cat(m.posted),
               fx::core::cat(fx::core::fixed(reduction, 1))});
      report.set(fx::core::cat("exchange.staging_mb.", v.name, ".",
                               c.nranks, "r_ecut",
                               fx::core::fixed(c.ecut, 0)),
                 m.staging_mb);
    }
  }
  t.print(std::cout);

  // --- Streaming depth sweep (ISSUE 10 acceptance case) ------------------
  // N bands in flight through the whole pipeline on the split nonblocking
  // path, 8 ranks at the exchange-bound ecut-32 grid.  hidden_ms is each
  // exchange's post-to-wait-entry window: at N=1 the wait task runs right
  // after the post, so the window is microscopic; at N>1 other bands'
  // compute runs in between and the window approaches the full exchange
  // latency.  bands/sec is end-to-end throughput of the same workload.
  {
    constexpr int kStreamReps = 11;
    constexpr int kStreamRanks = 8;
    constexpr int kStreamNtg = 2;
    constexpr double kStreamEcut = 32.0;
    constexpr int kDepths[] = {1, 2, 4, 8};
    constexpr int kNumDepths =
        static_cast<int>(sizeof(kDepths) / sizeof(kDepths[0]));

    auto desc = std::make_shared<const fx::fftx::Descriptor>(
        fx::pw::Cell{10.0}, kStreamEcut, kStreamRanks, kStreamNtg);
    StreamSamples samples[kNumDepths];
    for (int rep = 0; rep < kStreamReps; ++rep) {
      for (int i = 0; i < kNumDepths; ++i) {
        const int di = (rep + i) % kNumDepths;
        run_stream_once(desc, kStreamRanks, kDepths[di], kBands,
                        samples[di]);
      }
    }

    fx::core::TablePrinter st(
        "Streaming depth sweep (8 ranks, ntg 2, ecut 32, medians over 11 "
        "order-rotated paired reps)");
    st.header({"depth", "wall [s]", "bands/s", "hidden [ms/run]",
               "posts/run", "vs depth 1"});
    fx::core::CsvWriter scsv("bench/out/stream_depth_sweep.csv");
    scsv.row({"nranks", "ntg", "ecut", "stream_bands", "wall_s",
              "bands_per_s", "hidden_ms", "posted", "throughput_ratio"});
    double base_bps = 0.0;
    double base_hidden = 0.0;
    for (int di = 0; di < kNumDepths; ++di) {
      const double wall = fx::core::median(samples[di].times);
      const double bps = static_cast<double>(kBands) / wall;
      const double hidden_ms = samples[di].hidden_sum / kStreamReps;
      const auto posts =
          samples[di].posts / static_cast<std::uint64_t>(kStreamReps);
      if (kDepths[di] == 1) {
        base_bps = bps;
        base_hidden = hidden_ms;
      }
      const double ratio = base_bps > 0.0 ? bps / base_bps : 0.0;
      st.row({fx::core::cat(kDepths[di]), fx::core::fixed(wall, 4),
              fx::core::fixed(bps, 1), fx::core::fixed(hidden_ms, 2),
              fx::core::cat(posts),
              fx::core::cat(fx::core::fixed(ratio, 3), "x")});
      scsv.row({fx::core::cat(kStreamRanks), fx::core::cat(kStreamNtg),
                fx::core::cat(kStreamEcut), fx::core::cat(kDepths[di]),
                fx::core::cat(wall), fx::core::cat(bps),
                fx::core::cat(hidden_ms), fx::core::cat(posts),
                fx::core::cat(ratio)});
      report.set(fx::core::cat("stream.hidden_ms.depth", kDepths[di],
                               ".8r_ecut32"),
                 hidden_ms);
      report.set(fx::core::cat("stream.bands_per_s.depth", kDepths[di],
                               ".8r_ecut32"),
                 bps);
      if (kDepths[di] > 1) {
        report.set(fx::core::cat("stream.hidden_gain_ms.depth", kDepths[di],
                                 "_vs_1.8r_ecut32"),
                   hidden_ms - base_hidden);
        report.set(fx::core::cat("stream.throughput_ratio.depth",
                                 kDepths[di], "_vs_1.8r_ecut32"),
                   ratio);
      }
    }
    st.print(std::cout);
  }

  report.write();

  fx::trace::dump_metrics("bench_exchange_overlap");
  return 0;
}
