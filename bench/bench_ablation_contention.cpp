// Ablation: which machine-model ingredient produces which paper effect.
// Switch off, one at a time: memory-bandwidth sharing, mesh contention,
// SMT issue sharing, collective per-member cost -- and watch Table I's
// collapse and Fig 6's task-version gain appear/disappear.  This is the
// model-level justification for DESIGN.md's substitution argument.
#include "common.hpp"

namespace {

struct Outcome {
  double orig_8x8;
  double ompss_8x8;
  double ipc_scal_8x8;  // original, vs 1x8
};

Outcome evaluate(const fx::model::MachineConfig& machine) {
  auto run = [&](int nranks, int ntg, fx::fftx::PipelineMode mode,
                 int threads, fx::trace::Tracer* tracer) {
    const fx::fftx::Descriptor desc(fx::pw::Cell{20.0}, 80.0, nranks, ntg);
    fx::model::ProgramConfig pcfg;
    pcfg.mode = mode;
    pcfg.num_bands = 128;
    const auto bundle = fx::model::build_program(desc, pcfg);
    fx::model::SimConfig scfg;
    scfg.mode = mode;
    scfg.threads_per_rank = threads;
    return fx::model::simulate(bundle, machine, scfg, tracer).makespan;
  };

  fx::trace::Tracer t_small(8);
  fx::trace::Tracer t_big(64);
  run(8, 8, fx::fftx::PipelineMode::Original, 1, &t_small);
  Outcome out{};
  out.orig_8x8 = run(64, 8, fx::fftx::PipelineMode::Original, 1, &t_big);
  out.ompss_8x8 = run(8, 1, fx::fftx::PipelineMode::TaskPerFft, 8, nullptr);
  const auto ref = fx::trace::analyze_efficiency(t_small, machine.freq_ghz);
  const auto big = fx::trace::analyze_efficiency(t_big, machine.freq_ghz);
  out.ipc_scal_8x8 = fx::trace::scale_against(ref, big).ipc_scalability;
  return out;
}

}  // namespace

int main() {
  fx::core::TablePrinter t(
      "Ablation -- machine-model ingredients (8x8 point, 128 bands)");
  t.header({"model variant", "original [s]", "ompss [s]", "ompss gain",
            "IPC scal. 8x8"});
  fx::core::CsvWriter csv("bench/out/ablation_contention.csv");
  csv.row({"variant", "orig_s", "ompss_s", "gain_pct", "ipc_scal"});

  struct Variant {
    const char* name;
    fx::model::MachineConfig machine;
  };
  std::vector<Variant> variants;
  variants.push_back({"full model", fx::model::MachineConfig::knl()});
  {
    auto m = fx::model::MachineConfig::knl();
    m.mem_bw_gbps = 1e6;  // effectively infinite
    variants.push_back({"no bandwidth sharing", m});
  }
  {
    auto m = fx::model::MachineConfig::knl();
    m.mesh_contention = 0.0;
    variants.push_back({"no mesh contention", m});
  }
  {
    auto m = fx::model::MachineConfig::knl();
    m.per_member_us = 0.0;
    m.alpha_us = 0.0;
    variants.push_back({"free collectives", m});
  }
  {
    auto m = fx::model::MachineConfig::knl();
    m.noise_amp = 0.0;
    variants.push_back({"no system noise", m});
  }

  for (const auto& v : variants) {
    const auto o = evaluate(v.machine);
    const double gain = (o.orig_8x8 - o.ompss_8x8) / o.orig_8x8 * 100.0;
    t.row({v.name, fx::core::fixed(o.orig_8x8, 4),
           fx::core::fixed(o.ompss_8x8, 4),
           fx::core::fixed(gain, 1) + " %",
           fx::core::pct(o.ipc_scal_8x8)});
    csv.row({v.name, fx::core::cat(o.orig_8x8), fx::core::cat(o.ompss_8x8),
             fx::core::cat(gain), fx::core::cat(o.ipc_scal_8x8)});
  }
  t.print(std::cout);
  std::cout << "\nReading: removing bandwidth sharing or mesh contention "
               "restores IPC scalability (no Table-I collapse) and shrinks "
               "the task version's advantage -- the paper's contention "
               "diagnosis in model form.\n";
  fx::trace::dump_metrics("bench_ablation_contention");
  return 0;
}
