// Comparison of the paper's optimization strategies (Sec. IV) plus its
// future-work combination, at two operating points:
//
//   * a compute-bound point (the full-node KNL case the paper targets with
//     strategy 2, task-per-FFT), and
//   * a communication-bound point (slow network; the regime the paper says
//     strategy 1, task-per-step with comm/compute overlap, is meant for).
#include "common.hpp"
#include "trace/artifacts.hpp"

namespace {

double run_with(const fxbench::ModelConfig& base, fx::fftx::PipelineMode mode,
                int threads, int ntg, const fx::model::MachineConfig& machine) {
  const fx::fftx::Descriptor desc(fx::pw::Cell{base.workload.alat_bohr},
                                  base.workload.ecut_ry, base.nranks, ntg);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = mode;
  pcfg.num_bands = base.workload.num_bands;
  const auto bundle = fx::model::build_program(desc, pcfg);
  fx::model::SimConfig scfg;
  scfg.mode = mode;
  scfg.threads_per_rank = threads;
  return fx::model::simulate(bundle, machine, scfg, nullptr).makespan;
}

}  // namespace

int main() {
  using fx::fftx::PipelineMode;

  fx::core::CsvWriter csv("bench/out/strategies.csv");
  csv.row({"regime", "mode", "runtime_s"});

  auto report = [&](const char* title, const fx::model::MachineConfig& machine,
                    const char* regime) {
    fxbench::ModelConfig base;
    base.nranks = 8;

    fx::core::TablePrinter t(title);
    t.header({"version", "layout", "runtime [s]", "vs original"});
    // Baseline: the original version on the full node (64 ranks x 8 groups).
    fxbench::ModelConfig full = base;
    full.nranks = 64;
    const double orig = run_with(full, PipelineMode::Original, 1, 8, machine);
    struct Row {
      const char* name;
      PipelineMode mode;
      int threads;
      int ntg;
    };
    const Row rows[] = {
        {"original (Fig 1)", PipelineMode::Original, 1, 8},
        {"task-per-step (Fig 4)", PipelineMode::TaskPerStep, 8, 1},
        {"task-per-FFT (Fig 5)", PipelineMode::TaskPerFft, 8, 1},
        {"combined (future work)", PipelineMode::Combined, 8, 1},
    };
    for (const Row& row : rows) {
      // Original: 64 ranks x 8 groups; task modes: 8 ranks x 8 threads.
      fxbench::ModelConfig cfg = base;
      cfg.nranks = row.mode == PipelineMode::Original ? 64 : 8;
      const double rt =
          run_with(cfg, row.mode, row.threads, row.ntg, machine);
      t.row({row.name,
             row.mode == PipelineMode::Original ? "64 ranks x 8 groups"
                                                : "8 ranks x 8 threads",
             fx::core::fixed(rt, 4),
             fx::core::fixed((orig - rt) / orig * 100.0, 1) + " %"});
      csv.row({regime, to_string(row.mode), fx::core::cat(rt)});
    }
    t.print(std::cout);
    std::cout << '\n';
  };

  report("Strategies on the KNL node (compute-bound regime)",
         fx::model::MachineConfig::knl(), "compute_bound");

  auto slow_net = fx::model::MachineConfig::knl();
  slow_net.net_bw_gbps /= 12.0;
  slow_net.per_member_us *= 6.0;
  slow_net.alpha_us *= 10.0;
  report(
      "Strategies with an expensive interconnect (communication-bound "
      "regime: strategy 1's overlap matters most here)",
      slow_net, "comm_bound");

  std::cout << "Expected shape: on the KNL node both task strategies beat "
               "the original with task-per-FFT at least as good as "
               "task-per-step; in the communication-bound regime the "
               "overlap of task-per-step/combined recovers a larger share "
               "of the lost time.\n";
  fx::trace::dump_metrics("bench_strategies");
  return 0;
}
