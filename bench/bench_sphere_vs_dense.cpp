// Sphere/stick decomposition vs dense-grid transform: what the FFTXlib
// data layout buys.
//
// Sec. II.A: "the domain on which the FFT acts is shaped as a sphere
// rather than a 3D cube ... the whole FFT is quite communication intensive
// rather than computationally intensive".  The stick decomposition only
// transforms and exchanges the columns that intersect the cutoff sphere;
// this bench quantifies the savings against a dense full-grid transform of
// the same bands, in exchange volume, Z-transform work, and real-backend
// wall time.
#include <memory>

#include "common.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "fftx/grid_fft.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fx::fft::cplx;

  // Workload: reduced cutoff so the real backend stays fast on any host.
  constexpr double kAlat = 12.0;
  constexpr double kEcut = 20.0;
  constexpr int kRanks = 4;
  constexpr int kBands = 8;

  const auto desc = std::make_shared<const fx::fftx::Descriptor>(
      fx::pw::Cell{kAlat}, kEcut, kRanks, 1);
  const auto& dims = desc->dims();

  const double sphere_fill = static_cast<double>(desc->sphere().size()) /
                             static_cast<double>(dims.volume());
  const double stick_fill = static_cast<double>(desc->total_sticks()) /
                            static_cast<double>(dims.plane());

  fx::core::TablePrinter t("Sphere/stick layout vs dense grid");
  t.header({"quantity", "sphere/stick", "dense grid", "ratio"});
  t.row({"G-vectors / grid points", fx::core::cat(desc->sphere().size()),
         fx::core::cat(dims.volume()),
         fx::core::fixed(sphere_fill * 100.0, 1) + " %"});
  t.row({"Z columns transformed", fx::core::cat(desc->total_sticks()),
         fx::core::cat(dims.plane()),
         fx::core::fixed(stick_fill * 100.0, 1) + " %"});
  const double wave_scatter =
      static_cast<double>(desc->total_sticks()) * dims.nz * sizeof(cplx);
  const double dense_scatter =
      static_cast<double>(dims.volume()) * sizeof(cplx);
  t.row({"scatter volume per band [KiB]",
         fx::core::fixed(wave_scatter / 1024.0, 1),
         fx::core::fixed(dense_scatter / 1024.0, 1),
         fx::core::fixed(wave_scatter / dense_scatter * 100.0, 1) + " %"});

  // Real-backend wall time: the wave pipeline vs per-band dense transforms.
  double wave_wall = 0.0;
  double dense_wall = 0.0;
  fx::mpi::Runtime::run(kRanks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = fx::fftx::PipelineMode::Original;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    const double tw = pipe.run();

    fx::fftx::GridFft grid(world, dims);
    fx::fft::Workspace ws;
    std::vector<cplx> pencils(grid.pencil_elems(), cplx{0.1, 0.2});
    std::vector<cplx> planes(grid.plane_elems());
    world.barrier();
    fx::core::WallTimer timer;
    for (int band = 0; band < kBands; ++band) {
      grid.to_real(pencils, planes, ws, 2 * band);
      grid.to_recip(planes, pencils, ws, 2 * band + 1);
    }
    world.barrier();
    if (world.rank() == 0) {
      wave_wall = tw;
      dense_wall = timer.seconds();
    }
  });
  t.row({"real-backend wall per loop [s]", fx::core::fixed(wave_wall, 4),
         fx::core::fixed(dense_wall, 4),
         fx::core::fixed(wave_wall / dense_wall * 100.0, 1) + " %"});
  t.print(std::cout);

  fx::core::CsvWriter csv("bench/out/sphere_vs_dense.csv");
  csv.row({"sphere_fill", "stick_fill", "wave_wall_s", "dense_wall_s"});
  csv.row({fx::core::cat(sphere_fill), fx::core::cat(stick_fill),
           fx::core::cat(wave_wall), fx::core::cat(dense_wall)});

  std::cout << "\nExpected shape: the cutoff sphere fills ~30-50 % of the "
               "grid and its sticks ~60-80 % of the columns, so the wave "
               "pipeline transforms and exchanges correspondingly less "
               "data than a dense transform of the same bands.\n";
  fx::trace::dump_metrics("bench_sphere_vs_dense");
  return 0;
}
