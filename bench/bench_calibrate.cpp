// Model calibration driver (not a paper figure): prints the headline
// targets for a machine-parameter override set so the KNL model constants
// in perfmodel/machine.cpp can be fitted quickly.
//
// Usage: bench_calibrate [key=value ...]
// Keys: mem_bw net_bw link_bw alpha per_member mesh noise smt_eff
#include <cstdlib>
#include <string>

#include "common.hpp"
#include "trace/artifacts.hpp"

int main(int argc, char** argv) {
  auto machine = fx::model::MachineConfig::knl();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = arg.substr(0, eq);
    const double val = std::atof(arg.c_str() + eq + 1);
    if (key == "mem_bw") machine.mem_bw_gbps = val;
    if (key == "net_bw") machine.net_bw_gbps = val;
    if (key == "link_bw") machine.link_bw_gbps = val;
    if (key == "alpha") machine.alpha_us = val;
    if (key == "per_member") machine.per_member_us = val;
    if (key == "mesh") machine.mesh_contention = val;
    if (key == "same") machine.same_phase_contention = val;
    if (key == "noise") machine.noise_amp = val;
    if (key == "band_frac") machine.noise_band_frac = val;
    if (key == "smt_eff") machine.smt_eff = val;
  }

  auto run = [&](int nranks, int ntg, fx::fftx::PipelineMode mode,
                 int threads) {
    const fx::fftx::Descriptor desc(fx::pw::Cell{20.0}, 80.0, nranks, ntg);
    fx::model::ProgramConfig pcfg;
    pcfg.mode = mode;
    pcfg.num_bands = 128;
    const auto bundle = fx::model::build_program(desc, pcfg);
    fx::model::SimConfig scfg;
    scfg.mode = mode;
    scfg.threads_per_rank = threads;
    fx::trace::Tracer tracer(nranks);
    const auto sim = fx::model::simulate(bundle, machine, scfg, &tracer);
    struct Out {
      double runtime;
      fx::trace::EfficiencySummary eff;
    };
    return Out{sim.makespan,
               fx::trace::analyze_efficiency(tracer, machine.freq_ghz)};
  };

  using fx::core::fixed;
  using fx::fftx::PipelineMode;
  std::cout << "N     orig[s]  ompss[s]  gain%   o.IPCscal  t.IPCscal  "
               "o.CommEff  t.CommEff\n";
  double o_ref_compute = 0.0;
  double o_ref_ipc = 0.0;
  double t_ref_compute = 0.0;
  double t_ref_ipc = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const auto o = run(n * 8, 8, PipelineMode::Original, 1);
    const auto t = run(n, 1, PipelineMode::TaskPerFft, 8);
    if (n == 1) {
      o_ref_compute = o.eff.total_compute;
      o_ref_ipc = o.eff.avg_ipc;
      t_ref_compute = t.eff.total_compute;
      t_ref_ipc = t.eff.avg_ipc;
    }
    std::cout << n << "x8   " << fixed(o.runtime, 4) << "   "
              << fixed(t.runtime, 4) << "    "
              << fixed((o.runtime - t.runtime) / o.runtime * 100.0, 1)
              << "    " << fixed(o.eff.avg_ipc / o_ref_ipc * 100.0, 1)
              << "       " << fixed(t.eff.avg_ipc / t_ref_ipc * 100.0, 1)
              << "       " << fixed(o.eff.comm_efficiency * 100.0, 1)
              << "       " << fixed(t.eff.comm_efficiency * 100.0, 1) << "\n";
    (void)o_ref_compute;
    (void)t_ref_compute;
  }
  std::cout << "paper targets: gain ~7-10% (n<=8); orig IPCscal "
               "100/93/79/56/28; ompss IPCscal 100/94/84/66/43;\n"
            << "orig 16x8 runtime slightly WORSE than 8x8; ompss 16x8 ~3% "
               "better than 8x8.\n";
  fx::trace::dump_metrics("bench_calibrate");
  return 0;
}
