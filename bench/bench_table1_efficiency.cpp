// Table I: efficiency and scalability factors of the original version for
// 1x8 .. 16x8, computed by the POP model on model-backend traces, printed
// side by side with the paper's measured values.
#include "common.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fxbench::ModelConfig;

  std::vector<fx::trace::EfficiencySummary> runs;
  std::vector<fx::trace::ScalabilityFactors> scal;
  for (int n : {1, 2, 4, 8, 16}) {
    ModelConfig cfg;
    cfg.nranks = n * 8;
    cfg.ntg = 8;
    cfg.mode = fx::fftx::PipelineMode::Original;
    cfg.threads = 1;
    runs.push_back(fxbench::run_model(cfg).eff);
  }
  for (const auto& r : runs) {
    scal.push_back(fx::trace::scale_against(runs.front(), r));
  }
  fxbench::print_efficiency_table(
      "Table I -- efficiency and scalability factors, original version "
      "(model | paper)",
      fxbench::paper_table1(), runs, scal, "bench/out/table1_efficiency.csv");

  // Deterministic model outputs: tight regression surface for perf_regress.
  fxbench::JsonReport report("bench_table1_efficiency");
  const int ns[] = {1, 2, 4, 8, 16};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const std::string tag = fx::core::cat(ns[i], "x8");
    report.set("table1.parallel_efficiency." + tag,
               runs[i].parallel_efficiency);
    report.set("table1.load_balance." + tag, runs[i].load_balance);
    report.set("table1.comm_efficiency." + tag, runs[i].comm_efficiency);
    report.set("table1.global_efficiency." + tag, scal[i].global_efficiency);
  }
  report.write();

  std::cout << "\nAvg IPC per configuration:";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::cout << ' ' << fx::core::fixed(runs[i].avg_ipc, 2);
  }
  std::cout << "  (paper: ~1.1 at 1x8 down to ~0.6 at 8x8, ~0.3 at 16x8)\n";
  fx::trace::dump_metrics("bench_table1_efficiency");
  return 0;
}
