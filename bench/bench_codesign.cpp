// Co-design sweep: the miniapp's second purpose ("a simple tool for a
// future activity of co-design and benchmarking of novel architectures",
// paper Sec. II.A).  Runs the paper workload on the KNL model and on a
// contemporary Xeon model, across layouts and modes, and reports where the
// task-based reformulation pays off on each architecture.
#include "common.hpp"
#include "trace/artifacts.hpp"

namespace {

double run_on(const fx::model::MachineConfig& machine, int nranks, int ntg,
              fx::fftx::PipelineMode mode, int threads) {
  const fx::fftx::Descriptor desc(fx::pw::Cell{20.0}, 80.0, nranks, ntg);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = mode;
  pcfg.num_bands = 128;
  const auto bundle = fx::model::build_program(desc, pcfg);
  fx::model::SimConfig scfg;
  scfg.mode = mode;
  scfg.threads_per_rank = threads;
  return fx::model::simulate(bundle, machine, scfg, nullptr).makespan;
}

}  // namespace

int main() {
  using fx::fftx::PipelineMode;

  fx::core::CsvWriter csv("bench/out/codesign.csv");
  csv.row({"arch", "layout", "mode", "runtime_s"});

  struct Arch {
    const char* name;
    fx::model::MachineConfig machine;
    int full_node_threads;  // hardware threads for the "full node" points
  };
  const Arch archs[] = {
      {"KNL 68c@1.4GHz", fx::model::MachineConfig::knl(), 64},
      {"Xeon 36c@2.3GHz", fx::model::MachineConfig::xeon(), 32},
  };

  for (const Arch& arch : archs) {
    fx::core::TablePrinter t(
        fx::core::cat("Co-design: paper workload on ", arch.name));
    t.header({"version", "layout", "runtime [s]", "vs original"});
    const int total = arch.full_node_threads;
    const double orig =
        run_on(arch.machine, total, 8, PipelineMode::Original, 1);
    struct Row {
      const char* name;
      PipelineMode mode;
      int nranks;
      int ntg;
      int threads;
    };
    const Row rows[] = {
        {"original", PipelineMode::Original, total, 8, 1},
        {"task-per-step", PipelineMode::TaskPerStep, total / 8, 1, 8},
        {"task-per-FFT", PipelineMode::TaskPerFft, total / 8, 1, 8},
        {"combined", PipelineMode::Combined, total / 8, 1, 8},
    };
    for (const Row& row : rows) {
      const double rt =
          run_on(arch.machine, row.nranks, row.ntg, row.mode, row.threads);
      t.row({row.name,
             fx::core::cat(row.nranks, " ranks x ", row.threads, " thr"),
             fx::core::fixed(rt, 4),
             fx::core::fixed((orig - rt) / orig * 100.0, 1) + " %"});
      csv.row({arch.name, fx::core::cat(row.nranks, "x", row.threads),
               to_string(row.mode), fx::core::cat(rt)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: the contention-driven gain of the task "
               "version is largest on the many-core, low-frequency KNL; "
               "the wide Xeon cores leave less contention to recover, so "
               "the gap narrows -- the paper's motivation for choosing "
               "strategy 2 specifically on KNL.\n";
  fx::trace::dump_metrics("bench_codesign");
  return 0;
}
