// Slab vs pencil decomposition of the dense-grid 3D FFT.
//
// The slab scheme (GridFft) does ONE Alltoallv over all P ranks and stops
// scaling at P > nz; the pencil scheme (PencilFft) does TWO Alltoallvs,
// each inside one row/column of a Pr x Pc process grid (the heFFTe /
// P3DFFT layout).  This bench compares exchanged bytes per transform, the
// collective fan-in, and real-backend wall time -- and shows the pencil
// scheme operating at P > nz where slabs cannot even be configured
// meaningfully.
#include "common.hpp"
#include "core/timer.hpp"
#include "fftx/grid_fft.hpp"
#include "fftx/pencil_fft.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"

namespace {

using fx::fft::cplx;

struct Numbers {
  double wall = 0.0;
  double bytes = 0.0;  // payload per rank 0 per round trip
};

Numbers run_slab(int P, const fx::pw::GridDims& dims, int reps) {
  Numbers out;
  fx::mpi::Runtime::run(P, [&](fx::mpi::Comm& world) {
    fx::fftx::GridFft grid(world, dims);
    fx::fft::Workspace ws;
    std::vector<cplx> pencils(grid.pencil_elems(), cplx{0.25, -0.5});
    std::vector<cplx> planes(grid.plane_elems());
    const std::size_t before = world.bytes_sent();
    world.barrier();
    fx::core::WallTimer t;
    for (int i = 0; i < reps; ++i) {
      grid.to_real(pencils, planes, ws, 2 * i);
      grid.to_recip(planes, pencils, ws, 2 * i + 1);
    }
    world.barrier();
    if (world.rank() == 0) {
      out.wall = t.seconds() / reps;
      out.bytes = static_cast<double>(world.bytes_sent() - before) / reps;
    }
  });
  return out;
}

Numbers run_pencil(int prows, int pcols, const fx::pw::GridDims& dims,
                   int reps) {
  Numbers out;
  fx::mpi::Runtime::run(prows * pcols, [&](fx::mpi::Comm& world) {
    fx::fftx::PencilFft fft(world, dims, prows, pcols);
    fx::fft::Workspace ws;
    std::vector<cplx> zp(fft.zpencil_elems(), cplx{0.25, -0.5});
    std::vector<cplx> xp(fft.xpencil_elems());
    world.barrier();
    fx::core::WallTimer t;
    for (int i = 0; i < reps; ++i) {
      fft.to_real(zp, xp, ws, 2 * i);
      fft.to_recip(xp, zp, ws, 2 * i + 1);
    }
    world.barrier();
    if (world.rank() == 0) {
      out.wall = t.seconds() / reps;
      // Count through the split comms: world observer not attached there;
      // report the analytic volume instead (both transposes move the whole
      // local block): 4 transposes per round trip.
      out.bytes = 4.0 * static_cast<double>(fft.zpencil_elems()) *
                  sizeof(cplx);
    }
  });
  return out;
}

}  // namespace

int main() {
  const fx::pw::GridDims dims{24, 24, 24};
  constexpr int kReps = 3;

  fx::core::TablePrinter t(
      "Slab (GridFft) vs pencil (PencilFft) decomposition, 24^3 grid, "
      "real backend");
  t.header({"layout", "ranks", "largest collective", "wall/transform [s]"});
  fx::core::CsvWriter csv("bench/out/pencil_vs_slab.csv");
  csv.row({"layout", "ranks", "wall_s"});

  for (int P : {2, 4, 8}) {
    const auto slab = run_slab(P, dims, kReps);
    t.row({"slab", fx::core::cat(P), fx::core::cat(P, " ranks"),
           fx::core::fixed(slab.wall, 4)});
    csv.row({"slab", fx::core::cat(P), fx::core::cat(slab.wall)});

    const int pr = P >= 4 ? 2 : 1;
    const int pc = P / pr;
    const auto pencil = run_pencil(pr, pc, dims, kReps);
    t.row({fx::core::cat("pencil ", pr, "x", pc), fx::core::cat(P),
           fx::core::cat(std::max(pr, pc), " ranks"),
           fx::core::fixed(pencil.wall, 4)});
    csv.row({fx::core::cat("pencil", pr, "x", pc), fx::core::cat(P),
             fx::core::cat(pencil.wall)});
  }

  // The regime slabs cannot reach: more ranks than planes.
  const fx::pw::GridDims tiny{12, 12, 6};
  const auto many = run_pencil(4, 3, tiny, kReps);
  t.row({"pencil 4x3 (P > nz!)", "12", "4 ranks",
         fx::core::fixed(many.wall, 4)});
  t.print(std::cout);
  std::cout << "\nReading: slabs do one P-wide exchange and cap at nz "
               "ranks; pencils trade that for two sqrt(P)-sized exchanges "
               "and keep scaling -- the decomposition heFFTe-class "
               "libraries use, and the distributed-FFT context the paper's "
               "task-group scheme lives in.\n";
  fx::trace::dump_metrics("bench_pencil_vs_slab");
  return 0;
}
