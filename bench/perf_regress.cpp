// The bench-JSON regression gate.
//
// Every bench that participates in the regression surface writes a
// bench/out/<name>.json report (fxbench::JsonReport): a flat map of dotted
// metric names to numbers.  This tool merges all of them into
// bench/out/BENCH_SUMMARY.json and compares each metric that appears in the
// committed baseline file against its tolerance spec:
//
//   {
//     "checks": {
//       "bench_fig2_scaling/fig2.speedup.8x8": {"value": 4.97, "rel_tol": 0.02},
//       "bench_real_pipeline/obs_overhead.watch_pct.original": {"max": 1.0},
//       "bench_table1_efficiency/table1.load_balance.8x8": {"min": 0.9}
//     }
//   }
//
// Spec forms (combinable): {"value", "rel_tol"[, "abs_tol"]} brackets the
// actual around the recorded value; {"max"} / {"min"} bound it one-sided --
// the right shape for host-dependent overhead percentages, where only the
// budget is portable.  Deterministic KNL-model outputs get tight rel_tol;
// real-backend wall seconds stay out of the baseline entirely (the CSVs
// keep them for humans).
//
// A metric named by the baseline but missing from the merged summary FAILS:
// a bench silently dropping a metric is exactly the kind of regression this
// gate exists to catch.  Metrics present in the summary but absent from the
// baseline are reported as uncovered, not failed, so adding a bench never
// breaks CI retroactively.
//
// Usage: perf_regress [out_dir] [baseline]
//   out_dir   directory of *.json reports     (default bench/out)
//   baseline  tolerance file                  (default $FFTX_PERF_BASELINE,
//                                              else bench/baselines.json)
// Exit 0: all checks pass.  Exit 1: at least one failure.  Exit 2: setup
// error (unreadable baseline, no reports).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/format.hpp"
#include "core/json.hpp"
#include "core/table.hpp"

namespace {

namespace json = fx::core::json;

/// Reports found in `out_dir`, merged as "<bench>/<metric>" -> value.
/// Also fills `benches` with the per-bench metric objects for the summary.
std::map<std::string, double> merge_reports(const std::string& out_dir,
                                            json::Object& benches) {
  std::map<std::string, double> merged;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(out_dir)) {
    if (entry.path().extension() == ".json" &&
        entry.path().filename() != "BENCH_SUMMARY.json") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    json::Value doc;
    try {
      doc = json::load_file(path.string());
    } catch (const std::exception& e) {
      std::cout << "[perf_regress] skipping " << path.filename().string()
                << ": " << e.what() << '\n';
      continue;
    }
    const json::Value* bench = doc.find("bench");
    const json::Value* metrics = doc.find("metrics");
    if (bench == nullptr || !bench->is_string() || metrics == nullptr ||
        !metrics->is_object()) {
      continue;  // some other JSON artifact, not a bench report
    }
    const std::string& name = bench->as_string();
    benches[name] = *metrics;
    for (const auto& [metric, value] : metrics->as_object()) {
      if (value.is_number()) merged[name + "/" + metric] = value.as_number();
    }
  }
  return merged;
}

struct CheckResult {
  std::string metric;
  std::string actual;    ///< formatted, or "missing"
  std::string expected;  ///< human-readable spec
  bool pass = false;
  std::string detail;
};

CheckResult evaluate(const std::string& metric, const json::Value& spec,
                     const std::map<std::string, double>& summary) {
  CheckResult r;
  r.metric = metric;

  const auto value = spec.number_at("value");
  const auto rel_tol = spec.number_at("rel_tol");
  const auto abs_tol = spec.number_at("abs_tol");
  const auto max_v = spec.number_at("max");
  const auto min_v = spec.number_at("min");

  std::string expected;
  if (value) {
    expected = fx::core::cat(fx::core::fixed(*value, 4), " +/- ",
                             fx::core::fixed(rel_tol.value_or(0.0) * 100.0, 1),
                             " %");
    if (abs_tol) expected += fx::core::cat(" (abs ", *abs_tol, ")");
  }
  if (max_v) {
    expected += expected.empty() ? "" : ", ";
    expected += fx::core::cat("<= ", fx::core::fixed(*max_v, 4));
  }
  if (min_v) {
    expected += expected.empty() ? "" : ", ";
    expected += fx::core::cat(">= ", fx::core::fixed(*min_v, 4));
  }
  r.expected = expected.empty() ? "(no bound)" : expected;

  const auto it = summary.find(metric);
  if (it == summary.end()) {
    r.actual = "missing";
    r.detail = "metric absent from summary -- bench not run or dropped it";
    return r;
  }
  const double actual = it->second;
  r.actual = fx::core::fixed(actual, 4);

  r.pass = true;
  if (value) {
    const double tol = rel_tol.value_or(0.0) * std::abs(*value) +
                       abs_tol.value_or(0.0);
    if (std::abs(actual - *value) > tol) {
      r.pass = false;
      r.detail = fx::core::cat("off baseline by ",
                               fx::core::fixed(actual - *value, 4),
                               " (tolerance ", fx::core::fixed(tol, 4), ")");
    }
  }
  if (max_v && actual > *max_v) {
    r.pass = false;
    r.detail = fx::core::cat("exceeds budget ", fx::core::fixed(*max_v, 4));
  }
  if (min_v && actual < *min_v) {
    r.pass = false;
    r.detail = fx::core::cat("below floor ", fx::core::fixed(*min_v, 4));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "bench/out";
  std::string baseline_path = "bench/baselines.json";
  if (const char* env = std::getenv("FFTX_PERF_BASELINE");
      env != nullptr && *env != '\0') {
    baseline_path = env;
  }
  if (argc > 2) baseline_path = argv[2];

  if (!std::filesystem::is_directory(out_dir)) {
    std::cerr << "perf_regress: no such report directory: " << out_dir
              << " (run the benches first, or pass the directory)\n";
    return 2;
  }

  json::Object benches;
  const auto summary = merge_reports(out_dir, benches);
  if (summary.empty()) {
    std::cerr << "perf_regress: no bench reports (*.json with bench/metrics "
                 "keys) under "
              << out_dir << '\n';
    return 2;
  }

  // Write the merged summary regardless of the verdict: a failing CI run
  // should still upload the numbers that failed.
  json::Object flat;
  for (const auto& [metric, value] : summary) flat[metric] = value;
  json::Object doc;
  doc["benches"] = std::move(benches);
  doc["metrics"] = std::move(flat);
  const std::string summary_path = out_dir + "/BENCH_SUMMARY.json";
  json::save_file(json::Value(std::move(doc)), summary_path);
  std::cout << "[perf_regress] " << summary.size() << " metric(s) from "
            << out_dir << " -> " << summary_path << '\n';

  json::Value baseline;
  try {
    baseline = json::load_file(baseline_path);
  } catch (const std::exception& e) {
    std::cerr << "perf_regress: cannot load baseline " << baseline_path
              << ": " << e.what() << '\n';
    return 2;
  }
  const json::Value* checks = baseline.find("checks");
  if (checks == nullptr || !checks->is_object()) {
    std::cerr << "perf_regress: baseline " << baseline_path
              << " has no \"checks\" object\n";
    return 2;
  }

  fx::core::TablePrinter t(
      fx::core::cat("Performance regression gate (baseline ", baseline_path,
                    ")"));
  t.header({"metric", "actual", "baseline", "status"});
  int failures = 0;
  std::vector<CheckResult> failed;
  for (const auto& [metric, spec] : checks->as_object()) {
    const CheckResult r = evaluate(metric, spec, summary);
    t.row({r.metric, r.actual, r.expected, r.pass ? "ok" : "FAIL"});
    if (!r.pass) {
      ++failures;
      failed.push_back(r);
    }
  }
  t.print(std::cout);

  std::size_t covered = 0;
  for (const auto& [metric, spec] : checks->as_object()) {
    (void)spec;
    if (summary.contains(metric)) ++covered;
  }
  std::cout << "[perf_regress] " << covered << "/"
            << checks->as_object().size() << " checked metric(s) present, "
            << summary.size() - covered << " summary metric(s) uncovered by "
            << "the baseline\n";

  if (failures > 0) {
    std::cout << "\nperf_regress: " << failures << " check(s) FAILED:\n";
    for (const auto& r : failed) {
      std::cout << "  " << r.metric << ": actual " << r.actual << " vs "
                << r.expected << " -- " << r.detail << '\n';
    }
    return 1;
  }
  std::cout << "perf_regress: all " << checks->as_object().size()
            << " check(s) passed\n";
  return 0;
}
