// The task-group trade-off of Sec. II.A: at fixed world size, sweeping the
// number of FFT task groups moves communication cost between the
// pack/unpack Alltoallv (dominant when ntg == nproc: every band exchange
// crosses all groups) and the scatter Alltoall (dominant when ntg == 1:
// one giant transpose over all ranks).  "All the options between these two
// extreme cases should be benchmarked" -- this bench does exactly that.
#include <map>

#include "common.hpp"
#include "trace/artifacts.hpp"

int main() {
  constexpr int kRanks = 64;

  fx::core::TablePrinter t(
      "Task-group trade-off at 64 ranks (original version, KNL model)");
  t.header({"ntg", "runtime [s]", "pack comm [MiB/rank]",
            "scatter comm [MiB/rank]", "pack comm size", "scatter comm size"});
  fx::core::CsvWriter csv("bench/out/taskgroup_tradeoff.csv");
  csv.row({"ntg", "runtime_s", "pack_mib_per_rank", "scatter_mib_per_rank"});

  for (int ntg : {1, 2, 4, 8, 16, 32, 64}) {
    fxbench::ModelConfig cfg;
    cfg.nranks = kRanks;
    cfg.ntg = ntg;
    cfg.mode = fx::fftx::PipelineMode::Original;
    cfg.threads = 1;
    fx::trace::Tracer tracer(kRanks);
    const auto r = fxbench::run_model(cfg, &tracer);

    // Classify communication payload by communicator size: pack comms have
    // ntg members, scatter comms have nranks/ntg members.
    double pack_bytes = 0.0;
    double scatter_bytes = 0.0;
    for (const auto& e : tracer.comm_events()) {
      if (e.comm_size == ntg && ntg != kRanks / ntg) {
        pack_bytes += static_cast<double>(e.bytes);
      } else if (e.comm_size == kRanks / ntg) {
        scatter_bytes += static_cast<double>(e.bytes);
      } else {
        pack_bytes += static_cast<double>(e.bytes);  // ntg == R: ambiguous
      }
    }
    const double mib = 1024.0 * 1024.0;
    t.row({fx::core::cat(ntg), fx::core::fixed(r.runtime_s, 4),
           fx::core::fixed(pack_bytes / kRanks / mib, 2),
           fx::core::fixed(scatter_bytes / kRanks / mib, 2),
           fx::core::cat(ntg), fx::core::cat(kRanks / ntg)});
    csv.row({fx::core::cat(ntg), fx::core::cat(r.runtime_s),
             fx::core::cat(pack_bytes / kRanks / mib),
             fx::core::cat(scatter_bytes / kRanks / mib)});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: ntg = 1 puts all exchange volume into "
               "64-rank scatter transposes and is by far the slowest; "
               "larger ntg shifts the volume into pack/unpack and shrinks "
               "the scatter comms.  (QE additionally pays per-band memory "
               "pressure at large ntg, which this first-order model does "
               "not charge, so the model flattens beyond ntg = 8 instead "
               "of rising again -- see EXPERIMENTS.md.)\n";
  fx::trace::dump_metrics("bench_taskgroup_tradeoff");
  return 0;
}
