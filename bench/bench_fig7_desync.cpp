// Figure 7: the de-synchronization effect.  Left: phase timelines of the
// original 8x8 run (synchronized blocks) vs the OmpSs 8 ranks x 8 threads
// run (scattered blocks).  Right: IPC histograms of both runs.  Headline
// number: the main compute phase's average IPC rises (paper: ~0.75 ->
// ~0.85).
#include "common.hpp"

int main() {
  using fx::fftx::PipelineMode;
  using fx::trace::PhaseKind;
  using fx::trace::TimelineOptions;
  using fx::trace::TimelineView;

  const double freq = fx::model::MachineConfig::knl().freq_ghz;

  fxbench::ModelConfig orig;
  orig.nranks = 64;
  orig.ntg = 8;
  orig.mode = PipelineMode::Original;
  orig.threads = 1;

  fxbench::ModelConfig ompss;
  ompss.nranks = 8;
  ompss.ntg = 1;
  ompss.mode = PipelineMode::TaskPerFft;
  ompss.threads = 8;

  fx::trace::Tracer torig(orig.nranks);
  fx::trace::Tracer tompss(ompss.nranks);
  const auto ro = fxbench::run_model(orig, &torig);
  const auto rt = fxbench::run_model(ompss, &tompss);
  torig.normalize_time();
  tompss.normalize_time();

  std::cout << "Fig. 7 -- de-synchronization of compute phases (KNL model, "
               "64 hardware threads each)\n\n";

  TimelineOptions opt;
  opt.width = 110;
  opt.freq_ghz = freq;
  opt.view = TimelineView::Phase;

  std::cout << "== original 8 x 8 (64 ranks), runtime "
            << fx::core::fixed(ro.runtime_s * 1e3, 1)
            << " ms: synchronized phase blocks ==\n"
            << fx::trace::render_timeline(torig, opt) << "\n";
  std::cout << "== OmpSs 8 ranks x 8 threads, runtime "
            << fx::core::fixed(rt.runtime_s * 1e3, 1)
            << " ms: de-synchronized phases ==\n"
            << fx::trace::render_timeline(tompss, opt) << "\n";

  std::cout << "== IPC histogram, original ==\n"
            << fx::trace::render_ipc_histogram(torig, 40, freq) << "\n";
  std::cout << "== IPC histogram, OmpSs ==\n"
            << fx::trace::render_ipc_histogram(tompss, 40, freq) << "\n";

  const double ipc_orig =
      fx::trace::mean_phase_ipc(torig, PhaseKind::FftXy, freq);
  const double ipc_ompss =
      fx::trace::mean_phase_ipc(tompss, PhaseKind::FftXy, freq);
  std::cout << "main compute phase (fft_xy) average IPC: original "
            << fx::core::fixed(ipc_orig, 3) << " vs OmpSs "
            << fx::core::fixed(ipc_ompss, 3) << " ("
            << fx::core::fixed((ipc_ompss / ipc_orig - 1.0) * 100.0, 1)
            << " % -- paper: ~0.75 -> ~0.85, about +13 %)\n";

  fx::core::CsvWriter csv("bench/out/fig7_ipc.csv");
  csv.row({"version", "fft_xy_ipc", "runtime_s"});
  csv.row({"original", fx::core::cat(ipc_orig), fx::core::cat(ro.runtime_s)});
  csv.row({"ompss", fx::core::cat(ipc_ompss), fx::core::cat(rt.runtime_s)});
  fx::trace::write_events_csv(torig, "bench/out/fig7_events_original.csv");
  fx::trace::write_events_csv(tompss, "bench/out/fig7_events_ompss.csv");
  fx::trace::dump_run_artifacts(torig, "bench_fig7_desync_original");
  fx::trace::dump_run_artifacts(tompss, "bench_fig7_desync_ompss");
  return 0;
}
