// Figure 6: FFT-phase runtime, original version (N x 8 ranks, 8 task
// groups) vs the OmpSs version (N ranks x 8 threads, task per FFT).
// Paper shape: OmpSs 7-10 % faster point for point (ignoring
// hyper-threading); best OmpSs (16x8) ~10 % faster than best original
// (8x8); OmpSs gains a further ~3 % from 2x hyper-threading while the
// original loses.
#include "common.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fx::fftx::PipelineMode;
  using fxbench::ModelConfig;

  fx::core::TablePrinter t(
      "Fig. 6 -- FFT phase runtime: original (N x 8 ranks) vs OmpSs "
      "(N ranks x 8 threads), KNL model");
  t.header({"N", "original [s]", "ompss [s]", "ompss gain"});
  fx::core::CsvWriter csv("bench/out/fig6_comparison.csv");
  csv.row({"n", "original_s", "ompss_s", "gain_percent"});

  double best_orig = 1e30;
  double best_ompss = 1e30;
  std::string best_orig_label;
  std::string best_ompss_label;
  for (int n : fxbench::original_sweep_n()) {
    ModelConfig orig;
    orig.nranks = n * 8;
    orig.ntg = 8;
    orig.mode = PipelineMode::Original;
    orig.threads = 1;
    const auto ro = fxbench::run_model(orig);

    ModelConfig ompss;
    ompss.nranks = n;
    ompss.ntg = 1;
    ompss.mode = PipelineMode::TaskPerFft;
    ompss.threads = 8;
    const auto rt = fxbench::run_model(ompss);

    const double gain = (ro.runtime_s - rt.runtime_s) / ro.runtime_s * 100.0;
    t.row({fx::core::cat(n, " x 8"), fx::core::fixed(ro.runtime_s, 4),
           fx::core::fixed(rt.runtime_s, 4),
           fx::core::fixed(gain, 1) + " %"});
    csv.row({fx::core::cat(n), fx::core::cat(ro.runtime_s),
             fx::core::cat(rt.runtime_s), fx::core::cat(gain)});
    if (ro.runtime_s < best_orig) {
      best_orig = ro.runtime_s;
      best_orig_label = fx::core::cat(n, " x 8");
    }
    if (rt.runtime_s < best_ompss) {
      best_ompss = rt.runtime_s;
      best_ompss_label = fx::core::cat(n, " x 8");
    }
  }
  t.print(std::cout);
  std::cout << "\nBest original: " << best_orig_label << " at "
            << fx::core::fixed(best_orig, 4) << " s; best OmpSs: "
            << best_ompss_label << " at " << fx::core::fixed(best_ompss, 4)
            << " s -> best-vs-best gain "
            << fx::core::fixed((best_orig - best_ompss) / best_orig * 100.0, 1)
            << " % (paper: ~10 %)\n";
  fx::trace::dump_metrics("bench_fig6_comparison");
  return 0;
}
