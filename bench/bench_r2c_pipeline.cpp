// Real-input pipeline + narrow wire A/B: complex bands vs r2c pair-packed
// bands, each at fp64 / fp32 / bf16 wire precision, on the real backend.
//
// The r2c claim is structural -- for Gamma-point (real) wavefunctions the
// pipeline carries gamma_pair_count(nbands) packed bands instead of nbands,
// so the exchange counters must show exactly half the bytes -- and the wire
// claim is also structural: fp32 halves and bf16 quarters the bytes of
// every view exchange.  Both are read from simmpi.{alltoallv,ialltoallv}
// .bytes deltas around otherwise identical runs; wall time then shows how
// much of the byte cut survives as end-to-end speedup on this host.
//
// All variants run the fused zero-copy engine (narrow wire implies fused
// anyway), so the A/B isolates band count and wire width, nothing else.
#include <algorithm>
#include <memory>
#include <vector>

#include "common.hpp"
#include "core/metrics.hpp"
#include "core/stats.hpp"
#include "fft/gamma.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/wire.hpp"

namespace {

struct Variant {
  const char* name;
  bool real_bands;
  fx::mpi::WireFormat wire;
};

constexpr Variant kVariants[] = {
    {"complex-fp64", false, fx::mpi::WireFormat::Fp64},
    {"complex-fp32", false, fx::mpi::WireFormat::Fp32},
    {"complex-bf16", false, fx::mpi::WireFormat::Bf16},
    {"r2c-fp64", true, fx::mpi::WireFormat::Fp64},
    {"r2c-fp32", true, fx::mpi::WireFormat::Fp32},
    {"r2c-bf16", true, fx::mpi::WireFormat::Bf16},
};

struct Measured {
  double wall_s = 0.0;   // median wall seconds of the reps
  double wait_s = 0.0;   // summed exchange-blocked seconds, all ranks
  double bytes_mb = 0.0; // wire bytes actually exchanged, per rep
};

/// Per-variant accumulator across the interleaved reps.
struct Samples {
  std::vector<double> times;
  std::vector<double> waits;
  double exchanged_bytes = 0.0;
};

/// One pipeline run of `v`, with per-run metric deltas banked into `out`.
void run_once(const std::shared_ptr<const fx::fftx::Descriptor>& desc,
              int nranks, const Variant& v, int num_bands, Samples& out) {
  auto& reg = fx::core::MetricsRegistry::global();
  auto& wait_bl = reg.histogram("simmpi.alltoallv.wait_us");
  auto& wait_nb = reg.histogram("simmpi.ialltoallv.wait_us");
  auto& bytes_bl = reg.counter("simmpi.alltoallv.bytes");
  auto& bytes_nb = reg.counter("simmpi.ialltoallv.bytes");

  const double wait0 = wait_bl.sum() + wait_nb.sum();
  const double bytes0 =
      static_cast<double>(bytes_bl.value() + bytes_nb.value());

  double t = 0.0;
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = num_bands;
    cfg.mode = fx::fftx::PipelineMode::Original;
    cfg.nthreads = 1;
    cfg.guard_exchanges = false;
    cfg.fused_exchange = true;
    cfg.real_bands = v.real_bands;
    cfg.wire_format = v.wire;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    const double dt = pipe.run();
    if (world.rank() == 0) t = dt;
  });
  out.times.push_back(t);
  out.waits.push_back((wait_bl.sum() + wait_nb.sum() - wait0) / 1e6);
  out.exchanged_bytes +=
      static_cast<double>(bytes_bl.value() + bytes_nb.value()) - bytes0;
}

Measured summarize(const Samples& s, int reps) {
  Measured m;
  m.wall_s = fx::core::median(s.times);
  m.wait_s = fx::core::median(s.waits);
  m.bytes_mb = s.exchanged_bytes / 1e6 / reps;
  return m;
}

}  // namespace

int main() {
  constexpr int kReps = 15;
  // Even band count so the r2c variants pack full pairs; large enough that
  // the rank-thread spawn/join cost of Runtime::run stops polluting the
  // per-run metric deltas.
  constexpr int kBands = 32;

  fx::core::TablePrinter t(
      "r2c + wire precision (real backend, medians over 15 order-rotated "
      "paired reps)");
  t.header({"config", "variant", "wall [s]", "wait [s]", "wire [MB]",
            "byte cut", "speedup"});
  fx::core::CsvWriter csv("bench/out/r2c_wire.csv");
  csv.row({"nranks", "ntg", "ecut", "variant", "bands_carried", "wall_s",
           "exchange_wait_s", "bytes_on_wire_mb", "byte_cut_x", "speedup_x"});

  struct Config {
    int nranks;
    int ntg;
    double ecut;
  };
  // The 8-rank, ecut-32 point is the exchange-bound regime where cutting
  // bytes on the wire should show up in wall time, not just the counters.
  const Config configs[] = {
      {4, 2, 16.0}, {8, 2, 16.0}, {8, 2, 32.0},
  };

  constexpr int kNumVariants =
      static_cast<int>(sizeof(kVariants) / sizeof(kVariants[0]));

  for (const Config& c : configs) {
    // Interleave the variants within each rep, rotating the order, so
    // host-speed drift over the measurement window lands on every variant
    // equally (same paired-rep scheme as the exchange-engine bench).
    auto desc = std::make_shared<const fx::fftx::Descriptor>(
        fx::pw::Cell{10.0}, c.ecut, c.nranks, c.ntg);
    Samples samples[kNumVariants];
    for (int rep = 0; rep < kReps; ++rep) {
      for (int i = 0; i < kNumVariants; ++i) {
        const int vi = (rep + i) % kNumVariants;
        run_once(desc, c.nranks, kVariants[vi], kBands, samples[vi]);
      }
    }
    double base_wall = 0.0;
    double base_bytes = 0.0;
    for (int vi = 0; vi < kNumVariants; ++vi) {
      const Variant& v = kVariants[vi];
      const Measured m = summarize(samples[vi], kReps);
      if (!v.real_bands && v.wire == fx::mpi::WireFormat::Fp64) {
        base_wall = m.wall_s;
        base_bytes = m.bytes_mb;
      }
      const double byte_cut = m.bytes_mb > 0.0 ? base_bytes / m.bytes_mb : 0.0;
      const double speedup = m.wall_s > 0.0 ? base_wall / m.wall_s : 0.0;
      const int carried =
          v.real_bands
              ? static_cast<int>(fx::fft::gamma_pair_count(kBands))
              : kBands;
      t.row({fx::core::cat(c.nranks, " ranks, ntg ", c.ntg, ", ecut ",
                           fx::core::fixed(c.ecut, 0)),
             v.name, fx::core::fixed(m.wall_s, 4),
             fx::core::fixed(m.wait_s, 4), fx::core::fixed(m.bytes_mb, 2),
             fx::core::cat(fx::core::fixed(byte_cut, 2), " x"),
             fx::core::cat(fx::core::fixed(speedup, 2), " x")});
      csv.row({fx::core::cat(c.nranks), fx::core::cat(c.ntg),
               fx::core::cat(c.ecut), v.name, fx::core::cat(carried),
               fx::core::cat(m.wall_s), fx::core::cat(m.wait_s),
               fx::core::cat(m.bytes_mb),
               fx::core::cat(fx::core::fixed(byte_cut, 2)),
               fx::core::cat(fx::core::fixed(speedup, 2))});
    }
  }
  t.print(std::cout);

  fx::trace::dump_metrics("bench_r2c_pipeline");
  return 0;
}
