// Table II: efficiency and scalability factors of the task-based (OmpSs)
// version: N MPI ranks with 8 worker threads replacing the 8 FFT task
// groups, one task per FFT (strategy 2).  Scalability is relative to the
// version's own 1x8 run, exactly as in the paper.
#include "common.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fxbench::ModelConfig;

  std::vector<fx::trace::EfficiencySummary> runs;
  std::vector<fx::trace::ScalabilityFactors> scal;
  for (int n : {1, 2, 4, 8, 16}) {
    ModelConfig cfg;
    cfg.nranks = n;
    cfg.ntg = 1;
    cfg.mode = fx::fftx::PipelineMode::TaskPerFft;
    cfg.threads = 8;
    runs.push_back(fxbench::run_model(cfg).eff);
  }
  for (const auto& r : runs) {
    scal.push_back(fx::trace::scale_against(runs.front(), r));
  }
  fxbench::print_efficiency_table(
      "Table II -- efficiency and scalability factors, OmpSs task version "
      "(model | paper)",
      fxbench::paper_table2(), runs, scal, "bench/out/table2_efficiency.csv");

  std::cout << "\nAvg IPC per configuration:";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::cout << ' ' << fx::core::fixed(runs[i].avg_ipc, 2);
  }
  std::cout << "  (paper: ~0.8 IPC at 8 ranks x 8 tasks vs 0.6 original)\n";
  fx::trace::dump_metrics("bench_table2_efficiency");
  return 0;
}
