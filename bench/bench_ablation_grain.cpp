// Ablation: taskloop grain sizes.  The paper picks grain 200 for cft_2z
// and 10 for cft_2xy; this sweep shows the trade-off the choice sits on
// (too coarse: no fan-out parallelism; too fine: scheduling overhead is
// modeled as lost fan-out beyond the chunk count, and in the real runtime
// as queue pressure).
#include "common.hpp"
#include "trace/artifacts.hpp"

namespace {

double run_grains(std::size_t grain_z, std::size_t grain_xy) {
  const fx::fftx::Descriptor desc(fx::pw::Cell{20.0}, 80.0, 8, 1);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = fx::fftx::PipelineMode::Combined;
  pcfg.num_bands = 32;  // fewer bands than 4 workers can fill -> fan-out acts
  pcfg.grain_z = grain_z;
  pcfg.grain_xy = grain_xy;
  const auto bundle = fx::model::build_program(desc, pcfg);
  fx::model::SimConfig scfg;
  scfg.mode = fx::fftx::PipelineMode::Combined;
  scfg.threads_per_rank = 8;
  return fx::model::simulate(bundle, fx::model::MachineConfig::knl(), scfg,
                             nullptr)
      .makespan;
}

}  // namespace

int main() {
  fx::core::TablePrinter t(
      "Ablation -- taskloop grain sizes (combined mode, 8 ranks x 8 "
      "threads, 32 bands)");
  t.header({"grain_z", "grain_xy", "runtime [s]"});
  fx::core::CsvWriter csv("bench/out/ablation_grain.csv");
  csv.row({"grain_z", "grain_xy", "runtime_s"});

  for (std::size_t gz : {25UL, 100UL, 200UL, 1000UL}) {
    for (std::size_t gxy : {1UL, 5UL, 10UL, 60UL}) {
      const double rt = run_grains(gz, gxy);
      t.row({fx::core::cat(gz), fx::core::cat(gxy),
             fx::core::fixed(rt, 4)});
      csv.row({fx::core::cat(gz), fx::core::cat(gxy), fx::core::cat(rt)});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe paper's choice is grain_z = 200, grain_xy = 10.  Finer "
               "grains enable fan-out over idle workers when bands run "
               "low; grains larger than the loop collapse to a single "
               "chunk (no nested parallelism).\n";
  fx::trace::dump_metrics("bench_ablation_grain");
  return 0;
}
