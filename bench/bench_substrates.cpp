// google-benchmark microbenches of the message-passing and tasking
// substrates (host wall-clock; functional costs, not KNL numbers).
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "simmpi/runtime.hpp"
#include "tasking/runtime.hpp"

namespace {

void BM_AlltoallBytes(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const auto bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& comm) {
      std::vector<char> send(bytes * static_cast<std::size_t>(nranks), 1);
      std::vector<char> recv(send.size());
      for (int it = 0; it < 8; ++it) {
        comm.alltoall_bytes(send.data(), recv.data(), bytes, it);
      }
      benchmark::DoNotOptimize(recv.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(bytes) * nranks * nranks);
}
BENCHMARK(BM_AlltoallBytes)
    ->Args({2, 4096})
    ->Args({4, 4096})
    ->Args({8, 4096})
    ->Args({8, 65536});

void BM_Barrier(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& comm) {
      for (int it = 0; it < 32; ++it) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

void BM_TaskSubmitDrain(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    fx::task::TaskRuntime rt(workers);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i) {
      rt.submit("t", [&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(count.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_TaskSubmitDrain)->Arg(1)->Arg(4);

void BM_TaskDependencyChain(benchmark::State& state) {
  // Worst case for the dependency tracker: one long chain on one object.
  for (auto _ : state) {
    fx::task::TaskRuntime rt(2);
    long value = 0;
    for (int i = 0; i < 500; ++i) {
      rt.submit("link", {fx::task::inout(value)}, [&value] { ++value; });
    }
    rt.taskwait();
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_TaskDependencyChain);

void BM_Taskloop(benchmark::State& state) {
  const auto grain = static_cast<std::size_t>(state.range(0));
  fx::task::TaskRuntime rt(4);
  std::vector<double> data(10000, 1.0);
  for (auto _ : state) {
    rt.taskloop("loop", 0, data.size(), grain,
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) data[i] *= 1.0001;
                });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Taskloop)->Arg(10)->Arg(200)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
