// Shared infrastructure of the figure/table benches.
//
// Every bench regenerates one table or figure of the paper on the KNL
// machine model (the substitution for the obsolete testbed; see DESIGN.md),
// using the paper's workload: plane-wave cutoff 80 Ry, lattice parameter
// 20 bohr, 128 bands, 8 FFT task groups (original) or 8 worker threads
// (task version).  Where it is cheap, benches additionally run the real
// backend on a reduced workload to cross-check the shapes.
#pragma once

#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/csv.hpp"
#include "core/json.hpp"
#include "core/format.hpp"
#include "core/table.hpp"
#include "fftx/descriptor.hpp"
#include "fftx/pipeline.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/program.hpp"
#include "perfmodel/simulator.hpp"
#include "trace/analysis.hpp"
#include "trace/artifacts.hpp"
#include "trace/timeline.hpp"

namespace fxbench {

/// Machine-readable bench result: a flat map of dotted metric names to
/// numbers, written as bench/out/<bench>.json.  perf_regress merges every
/// such file into BENCH_SUMMARY.json and gates the metrics against the
/// committed bench/baselines.json, so anything banked here becomes part of
/// the regression surface.  Keep names stable: "<family>.<quantity>[.<tag>]"
/// (e.g. "fig2.speedup.8x8", "obs_overhead.watch_pct.original").
class JsonReport {
 public:
  explicit JsonReport(std::string bench, std::string out_dir = "bench/out")
      : bench_(std::move(bench)), out_dir_(std::move(out_dir)) {}
  ~JsonReport() {
    if (written_) return;
    try {
      write();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // A failed report write must not mask the bench's own exit path.
    }
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void set(const std::string& metric, double value) {
    metrics_[metric] = value;
  }

  void write() {
    written_ = true;
    fx::core::json::Object metrics;
    for (const auto& [name, value] : metrics_) metrics[name] = value;
    fx::core::json::Object doc;
    doc["bench"] = bench_;
    doc["metrics"] = std::move(metrics);
    fx::core::json::save_file(fx::core::json::Value(std::move(doc)),
                              out_dir_ + "/" + bench_ + ".json");
  }

 private:
  std::string bench_;
  std::string out_dir_;
  std::map<std::string, double> metrics_;
  bool written_ = false;
};

/// The paper's workload parameters (Sec. III).
struct Workload {
  double ecut_ry = 80.0;
  double alat_bohr = 20.0;
  int num_bands = 128;
};

struct ModelConfig {
  int nranks = 8;       ///< world size P
  int ntg = 8;          ///< FFT task groups (original scheme)
  fx::fftx::PipelineMode mode = fx::fftx::PipelineMode::Original;
  int threads = 1;      ///< workers per rank (task modes)
  Workload workload;
};

struct ModelResult {
  double runtime_s = 0.0;
  fx::trace::EfficiencySummary eff;
};

/// Builds descriptor + program, simulates on the KNL model, analyzes.
inline ModelResult run_model(const ModelConfig& cfg,
                             fx::trace::Tracer* tracer = nullptr) {
  const fx::fftx::Descriptor desc(fx::pw::Cell{cfg.workload.alat_bohr},
                                  cfg.workload.ecut_ry, cfg.nranks, cfg.ntg);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = cfg.mode;
  pcfg.num_bands = cfg.workload.num_bands;
  const auto bundle = fx::model::build_program(desc, pcfg);

  fx::model::SimConfig scfg;
  scfg.mode = cfg.mode;
  scfg.threads_per_rank = cfg.threads;

  const auto machine = fx::model::MachineConfig::knl();
  std::unique_ptr<fx::trace::Tracer> local;
  if (tracer == nullptr) {
    local = std::make_unique<fx::trace::Tracer>(cfg.nranks);
    tracer = local.get();
  }
  const auto sim = fx::model::simulate(bundle, machine, scfg, tracer);

  ModelResult r;
  r.runtime_s = sim.makespan;
  r.eff = fx::trace::analyze_efficiency(*tracer, machine.freq_ghz);
  return r;
}

/// The original-version sweep labels of Fig. 2 / Table I: "N x 8" means
/// N*8 MPI ranks in 8 task groups; 16x8 and 32x8 oversubscribe the node
/// with 2- and 4-way hyper-threading.
inline std::vector<int> original_sweep_n() { return {1, 2, 4, 8, 16, 32}; }

/// Paper Table I (original version), column order 1x8..16x8.
struct PaperTable {
  std::vector<std::string> labels;
  std::vector<double> parallel_eff, load_balance, comm_eff, sync_eff,
      transfer_eff, comp_scal, ipc_scal, ins_scal, global_eff;
};

inline PaperTable paper_table1() {
  PaperTable t;
  t.labels = {"1 x 8", "2 x 8", "4 x 8", "8 x 8", "16 x 8"};
  t.parallel_eff = {0.9575, 0.9121, 0.9270, 0.9097, 0.8615};
  t.load_balance = {0.9731, 0.9504, 0.9831, 0.9818, 0.9691};
  t.comm_eff = {0.9840, 0.9597, 0.9429, 0.9266, 0.8890};
  t.sync_eff = {0.9956, 0.9888, 0.9809, 0.9776, 0.9581};
  t.transfer_eff = {0.9883, 0.9706, 0.9613, 0.9478, 0.9278};
  t.comp_scal = {1.0000, 0.9187, 0.7809, 0.5474, 0.2732};
  t.ipc_scal = {1.0000, 0.9278, 0.7868, 0.5628, 0.2826};
  t.ins_scal = {1.0000, 0.9978, 0.9962, 0.9942, 0.9888};
  t.global_eff = {0.9575, 0.8380, 0.7239, 0.4979, 0.2354};
  return t;
}

inline PaperTable paper_table2() {
  PaperTable t;
  t.labels = {"1 x 8", "2 x 8", "4 x 8", "8 x 8", "16 x 8"};
  t.parallel_eff = {0.9913, 0.9553, 0.9167, 0.8333, 0.7047};
  t.load_balance = {0.9986, 0.9825, 0.9552, 0.9181, 0.9032};
  t.comm_eff = {0.9926, 0.9723, 0.9597, 0.9077, 0.7803};
  t.sync_eff = {1.0000, 0.9984, 0.9985, 0.9752, 0.9217};
  t.transfer_eff = {0.9926, 0.9739, 0.9611, 0.9307, 0.8466};
  t.comp_scal = {1.0000, 0.9256, 0.8116, 0.6136, 0.3729};
  t.ipc_scal = {1.0000, 0.9404, 0.8405, 0.6614, 0.4257};
  t.ins_scal = {1.0000, 0.9946, 0.9855, 0.9719, 0.9118};
  t.global_eff = {0.9913, 0.8842, 0.7440, 0.5113, 0.2628};
  return t;
}

/// Emits a paper-vs-model efficiency table (one metric per row).
inline void print_efficiency_table(
    const std::string& title, const PaperTable& paper,
    const std::vector<fx::trace::EfficiencySummary>& runs,
    const std::vector<fx::trace::ScalabilityFactors>& scal,
    const std::string& csv_path) {
  using fx::core::pct;
  fx::core::TablePrinter t(title);
  std::vector<std::string> head{"metric (model | paper)"};
  for (const auto& l : paper.labels) head.push_back(l);
  t.header(head);

  auto row = [&](const std::string& name, auto getter,
                 const std::vector<double>& paper_vals) {
    std::vector<std::string> cells{name};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      cells.push_back(pct(getter(i)) + " | " + pct(paper_vals[i]));
    }
    t.row(cells);
  };

  row("Parallel efficiency",
      [&](std::size_t i) { return runs[i].parallel_efficiency; },
      paper.parallel_eff);
  row("  Load Balance",
      [&](std::size_t i) { return runs[i].load_balance; },
      paper.load_balance);
  row("  Communication Efficiency",
      [&](std::size_t i) { return runs[i].comm_efficiency; }, paper.comm_eff);
  row("    Synchronization",
      [&](std::size_t i) { return runs[i].sync_efficiency; }, paper.sync_eff);
  row("    Transfer",
      [&](std::size_t i) { return runs[i].transfer_efficiency; },
      paper.transfer_eff);
  row("Computation Scalability",
      [&](std::size_t i) { return scal[i].computation_scalability; },
      paper.comp_scal);
  row("  IPC Scalability",
      [&](std::size_t i) { return scal[i].ipc_scalability; }, paper.ipc_scal);
  row("  Instructions Scalability",
      [&](std::size_t i) { return scal[i].instruction_scalability; },
      paper.ins_scal);
  row("Global Efficiency",
      [&](std::size_t i) { return scal[i].global_efficiency; },
      paper.global_eff);
  t.print(std::cout);

  fx::core::CsvWriter csv(csv_path);
  std::vector<std::string> h{"metric"};
  for (const auto& l : paper.labels) {
    h.push_back(l + " model");
    h.push_back(l + " paper");
  }
  csv.row(h);
  auto csv_row = [&](const std::string& name, auto getter,
                     const std::vector<double>& paper_vals) {
    std::vector<std::string> cells{name};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      cells.push_back(fx::core::cat(getter(i)));
      cells.push_back(fx::core::cat(paper_vals[i]));
    }
    csv.row(cells);
  };
  csv_row("parallel_efficiency",
          [&](std::size_t i) { return runs[i].parallel_efficiency; },
          paper.parallel_eff);
  csv_row("load_balance", [&](std::size_t i) { return runs[i].load_balance; },
          paper.load_balance);
  csv_row("comm_efficiency",
          [&](std::size_t i) { return runs[i].comm_efficiency; },
          paper.comm_eff);
  csv_row("sync_efficiency",
          [&](std::size_t i) { return runs[i].sync_efficiency; },
          paper.sync_eff);
  csv_row("transfer_efficiency",
          [&](std::size_t i) { return runs[i].transfer_efficiency; },
          paper.transfer_eff);
  csv_row("computation_scalability",
          [&](std::size_t i) { return scal[i].computation_scalability; },
          paper.comp_scal);
  csv_row("ipc_scalability",
          [&](std::size_t i) { return scal[i].ipc_scalability; },
          paper.ipc_scal);
  csv_row("instruction_scalability",
          [&](std::size_t i) { return scal[i].instruction_scalability; },
          paper.ins_scal);
  csv_row("global_efficiency",
          [&](std::size_t i) { return scal[i].global_efficiency; },
          paper.global_eff);
}

}  // namespace fxbench
