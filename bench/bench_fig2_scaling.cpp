// Figure 2: runtime of the FFT phase (original version) with increasing
// MPI ranks, 1x8 .. 32x8; the last two points use 2- and 4-way
// hyper-threading.  Paper shape: poor scaling beyond 8x8 and *no benefit*
// (a slight regression) from hyper-threading.
#include "common.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fxbench::ModelConfig;
  using fxbench::run_model;

  fx::core::TablePrinter t(
      "Fig. 2 -- FFT phase runtime, original version (KNL model; ecut 80 Ry, "
      "alat 20, 128 bands, 8 task groups)");
  t.header({"config (ranks x task groups)", "total ranks", "hw threads/core",
            "model runtime [s]", "speedup vs 1 x 8"});
  fx::core::CsvWriter csv("bench/out/fig2_scaling.csv");
  csv.row({"config", "total_ranks", "runtime_s", "speedup"});
  // The KNL model is a deterministic discrete-event simulation, so these
  // numbers are bit-stable across hosts -- perf_regress gates them tightly.
  fxbench::JsonReport report("bench_fig2_scaling");

  double base = 0.0;
  for (int n : fxbench::original_sweep_n()) {
    ModelConfig cfg;
    cfg.nranks = n * 8;
    cfg.ntg = 8;
    cfg.mode = fx::fftx::PipelineMode::Original;
    cfg.threads = 1;
    const auto r = run_model(cfg);
    if (base == 0.0) base = r.runtime_s;
    const int ht = (n * 8 + 67) / 68;
    const std::string label = fx::core::cat(n, " x 8");
    t.row({label, fx::core::cat(n * 8), fx::core::cat(ht),
           fx::core::fixed(r.runtime_s, 4),
           fx::core::fixed(base / r.runtime_s, 2) + "x"});
    csv.row({label, fx::core::cat(n * 8), fx::core::cat(r.runtime_s),
             fx::core::cat(base / r.runtime_s)});
    report.set(fx::core::cat("fig2.runtime_s.", n, "x8"), r.runtime_s);
    report.set(fx::core::cat("fig2.speedup.", n, "x8"), base / r.runtime_s);
  }
  t.print(std::cout);
  report.write();
  std::cout << "\nExpected paper shape: sub-linear scaling that flattens at "
               "the full node; the hyper-threaded points (16x8, 32x8) do not "
               "improve on 8x8.\n";
  fx::trace::dump_metrics("bench_fig2_scaling");
  return 0;
}
