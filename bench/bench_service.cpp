// Service-frontend overload bench: three tenants flood the serve layer at
// well past sustainable throughput while every request carries a deadline
// budget.  Reports per-tenant latency quantiles of admitted requests, the
// shed rate, and the degrade rate -- the acceptance surface for the
// overload-resilience design:
//
//   - shedding and degradation must ENGAGE under overload ({min} gates),
//   - the p99 latency of admitted-and-completed requests must stay inside
//     the deadline budget ({max} gate): anything that cannot make the
//     budget is cancelled or shed, never queued into latency collapse.
//
// Writes bench/out/service_latency.csv (per-tenant rows, human-readable)
// and bench/out/service_latency.json (the perf_regress gate surface).
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/csv.hpp"
#include "core/format.hpp"
#include "serve/frontend.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::serve::Frontend;
using fx::serve::Overloaded;
using fx::serve::Request;
using fx::serve::Response;
using fx::serve::ServeConfig;
using fx::serve::Status;
using fx::serve::Ticket;

constexpr int kRanks = 4;
constexpr int kTenants = 3;
constexpr int kPerTenant = 60;
constexpr double kDeadlineS = 0.5;  // per-request wall budget

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct TenantStats {
  int submitted = 0;
  int shed = 0;
  int completed = 0;
  int degraded = 0;
  int cancelled = 0;
  int failed = 0;
  std::vector<double> admitted_latency_ms;  // completed + degraded only
};

}  // namespace

int main() {
  ServeConfig cfg;
  cfg.queue_depth = 8;  // small bound: the flood must shed
  cfg.coalesce_bands = 16;
  cfg.degrade_watermark = 0.5;
  cfg.starvation_ms = 250.0;
  cfg.breaker_strikes = 0;  // measure shedding, not quarantine
  cfg.idle_poll_ms = 1.0;
  cfg.pipeline.fused_exchange = false;
  cfg.pipeline.overlap_exchange = false;
  cfg.recovery.checkpoint_bands = 2;
  cfg.recovery.retry.base_delay_ms = 0.1;

  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;

  Frontend fe(cfg);
  std::vector<TenantStats> stats(kTenants);
  std::vector<std::vector<Ticket>> tickets(kTenants);

  std::thread client([&] {
    for (int i = 0; i < kPerTenant; ++i) {
      for (int c = 0; c < kTenants; ++c) {
        Request r;
        r.tenant = "tenant" + std::to_string(c);
        r.num_bands = 2 + (i + c) % 3;
        r.deadline_s = kDeadlineS;
        ++stats[static_cast<std::size_t>(c)].submitted;
        try {
          tickets[static_cast<std::size_t>(c)].push_back(fe.submit(r));
        } catch (const Overloaded&) {
          ++stats[static_cast<std::size_t>(c)].shed;
        }
      }
      // No pacing: the point is submitting far past sustainable rate.
    }
    for (const auto& per_tenant : tickets) {
      for (const auto& t : per_tenant) {
        while (!t.done()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
    fe.request_stop();
  });
  Runtime::run(kRanks, opts, [&](Comm& world) { fe.serve(world); });
  client.join();
  fe.fail_pending("bench: world terminated");

  for (int c = 0; c < kTenants; ++c) {
    auto& s = stats[static_cast<std::size_t>(c)];
    for (auto& t : tickets[static_cast<std::size_t>(c)]) {
      const Response r = t.wait();
      switch (r.status) {
        case Status::Completed:
          ++s.completed;
          break;
        case Status::CompletedDegraded:
          ++s.degraded;
          break;
        case Status::DeadlineCancelled:
          ++s.cancelled;
          break;
        case Status::Failed:
          ++s.failed;
          break;
      }
      if (r.status == Status::Completed ||
          r.status == Status::CompletedDegraded) {
        s.admitted_latency_ms.push_back((r.queue_s + r.exec_s) * 1e3);
      }
    }
  }

  fxbench::JsonReport report("service_latency");
  fx::core::CsvWriter csv("bench/out/service_latency.csv");
  csv.row({"tenant", "submitted", "admitted", "shed", "completed",
           "degraded", "cancelled", "failed", "p50_ms", "p95_ms", "p99_ms"});

  int submitted = 0, shed = 0, admitted = 0, served = 0, degraded = 0;
  std::vector<double> all_latency_ms;
  for (int c = 0; c < kTenants; ++c) {
    const auto& s = stats[static_cast<std::size_t>(c)];
    const std::string name = "tenant" + std::to_string(c);
    const double p50 = quantile(s.admitted_latency_ms, 0.50);
    const double p95 = quantile(s.admitted_latency_ms, 0.95);
    const double p99 = quantile(s.admitted_latency_ms, 0.99);
    const int adm = s.submitted - s.shed;
    csv.row({name, std::to_string(s.submitted), std::to_string(adm),
             std::to_string(s.shed), std::to_string(s.completed),
             std::to_string(s.degraded), std::to_string(s.cancelled),
             std::to_string(s.failed), fx::core::fixed(p50, 3),
             fx::core::fixed(p95, 3), fx::core::fixed(p99, 3)});
    report.set("service.p99_ms." + name, p99);
    submitted += s.submitted;
    shed += s.shed;
    admitted += adm;
    served += s.completed + s.degraded;
    degraded += s.degraded;
    all_latency_ms.insert(all_latency_ms.end(), s.admitted_latency_ms.begin(),
                          s.admitted_latency_ms.end());
  }

  const double shed_rate =
      submitted > 0 ? static_cast<double>(shed) / submitted : 0.0;
  const double degrade_rate =
      served > 0 ? static_cast<double>(degraded) / served : 0.0;
  const double p99_all = quantile(all_latency_ms, 0.99);

  report.set("service.submitted", submitted);
  report.set("service.admitted", admitted);
  report.set("service.served", served);
  report.set("service.shed_rate", shed_rate);
  report.set("service.degrade_rate", degrade_rate);
  report.set("service.p99_admitted_ms", p99_all);
  report.set("service.deadline_budget_ms", kDeadlineS * 1e3);
  report.write();

  std::printf("service overload: %d submitted, %d admitted, %d served "
              "(%.1f%% shed, %.1f%% degraded), p99 admitted %.2f ms "
              "(budget %.0f ms)\n",
              submitted, admitted, served, 100.0 * shed_rate,
              100.0 * degrade_rate, p99_all, kDeadlineS * 1e3);
  return 0;
}
