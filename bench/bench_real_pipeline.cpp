// Real-backend cross-check: runs the actual distributed pipeline (threads
// as ranks, real FFT arithmetic) on a reduced workload in every mode and
// reports wall-clock.  On a many-core host the mode ordering mirrors the
// model; on small hosts this mainly demonstrates that the full real stack
// (simmpi + tasking + fftx) executes the paper's configurations end to end.
// Results are host-dependent by nature; the KNL figures come from the
// model benches.
#include <memory>

#include "common.hpp"
#include "core/stats.hpp"
#include "simmpi/runtime.hpp"

namespace {

double run_real(int nranks, int ntg, fx::fftx::PipelineMode mode, int threads,
                const fx::mpi::RunOptions& opts = fx::mpi::RunOptions{}) {
  auto desc = std::make_shared<const fx::fftx::Descriptor>(fx::pw::Cell{10.0},
                                                           16.0, nranks, ntg);
  double runtime = 0.0;
  fx::mpi::Runtime::run(nranks, opts, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = 16;
    cfg.mode = mode;
    cfg.nthreads = threads;
    cfg.guard_exchanges = false;  // the A/B below measures validator+watchdog
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    const double t = pipe.run();
    if (world.rank() == 0) runtime = t;
  });
  return runtime;
}

/// Hardening A/B: the runtime safety net (collective validator + watchdog +
/// progress board) on vs off, on the same workload.
void bench_hardening_overhead() {
  using fx::fftx::PipelineMode;

  fx::mpi::RunOptions off;
  off.watchdog.enabled = false;
  off.validate_collectives = false;
  fx::mpi::RunOptions on;  // defaults: validator on, watchdog on (60 s)

  fx::core::TablePrinter t(
      "Hardening overhead (validator + watchdog on vs off, median of 5)");
  t.header({"version", "off [s]", "on [s]", "overhead"});
  fx::core::CsvWriter csv("bench/out/hardening_overhead.csv");
  csv.row({"mode", "variant", "seconds", "overhead_pct"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
  };
  for (const Row& row : rows) {
    std::vector<double> t_off;
    std::vector<double> t_on;
    for (int rep = 0; rep < 5; ++rep) {
      t_off.push_back(
          run_real(row.nranks, row.ntg, row.mode, row.threads, off));
      t_on.push_back(run_real(row.nranks, row.ntg, row.mode, row.threads, on));
    }
    const double med_off = fx::core::median(t_off);
    const double med_on = fx::core::median(t_on);
    const double overhead = (med_on - med_off) / med_off * 100.0;
    t.row({row.name, fx::core::fixed(med_off, 4), fx::core::fixed(med_on, 4),
           fx::core::cat(fx::core::fixed(overhead, 2), " %")});
    csv.row({to_string(row.mode), "off", fx::core::cat(med_off), "0"});
    csv.row({to_string(row.mode), "on", fx::core::cat(med_on),
             fx::core::cat(fx::core::fixed(overhead, 2))});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using fx::fftx::PipelineMode;

  fx::core::TablePrinter t(
      "Real backend (host wall-clock, reduced workload: ecut 16 Ry, alat "
      "10, 16 bands)");
  t.header({"version", "layout", "wall [s]"});
  fx::core::CsvWriter csv("bench/out/real_pipeline.csv");
  csv.row({"mode", "layout", "seconds"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"original 4 x 1", 4, 1, PipelineMode::Original, 1},
      {"task-per-step 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerStep, 2},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
      {"combined 4 ranks x 2 thr", 4, 1, PipelineMode::Combined, 2},
  };
  for (const Row& row : rows) {
    // Median of three runs.
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      times.push_back(run_real(row.nranks, row.ntg, row.mode, row.threads));
    }
    const double med = fx::core::median(times);
    t.row({row.name,
           fx::core::cat(row.nranks, " ranks, ntg ", row.ntg, ", ",
                         row.threads, " thr"),
           fx::core::fixed(med, 4)});
    csv.row({to_string(row.mode), fx::core::cat(row.nranks), fx::core::cat(med)});
  }
  t.print(std::cout);

  bench_hardening_overhead();
  return 0;
}
