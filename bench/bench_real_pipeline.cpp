// Real-backend cross-check: runs the actual distributed pipeline (threads
// as ranks, real FFT arithmetic) on a reduced workload in every mode and
// reports wall-clock.  On a many-core host the mode ordering mirrors the
// model; on small hosts this mainly demonstrates that the full real stack
// (simmpi + tasking + fftx) executes the paper's configurations end to end.
// Results are host-dependent by nature; the KNL figures come from the
// model benches.
#include <algorithm>
#include <memory>

#include "common.hpp"
#include "core/stats.hpp"
#include "core/timer.hpp"
#include "fftx/recovery.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"
#include "trace/observatory.hpp"
#include "trace/tracer.hpp"

namespace {

double run_real(int nranks, int ntg, fx::fftx::PipelineMode mode, int threads,
                const fx::mpi::RunOptions& opts = fx::mpi::RunOptions{},
                fx::trace::Tracer* tracer = nullptr, double ecut = 16.0,
                int num_bands = 16, bool fused = false, bool overlap = false) {
  auto desc = std::make_shared<const fx::fftx::Descriptor>(fx::pw::Cell{10.0},
                                                           ecut, nranks, ntg);
  double runtime = 0.0;
  fx::mpi::Runtime::run(nranks, opts, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = num_bands;
    cfg.mode = mode;
    cfg.nthreads = threads;
    cfg.fused_exchange = fused;
    cfg.overlap_exchange = overlap;
    cfg.guard_exchanges = false;  // the A/B below measures validator+watchdog
    fx::fftx::BandFftPipeline pipe(world, desc, cfg, tracer);
    pipe.initialize_bands();
    const double t = pipe.run();
    if (world.rank() == 0) runtime = t;
  });
  return runtime;
}

/// End-to-end wall seconds of one hardened run (construction + init + band
/// loop + gathering the replicated band outputs), or of the recovery driver
/// over the same workload when `recover` is set.  Both paths produce the
/// same artifact -- every band's coefficients replicated on every rank (the
/// driver's end-of-run checkpoint IS that gather; the baseline performs the
/// identical exchange by hand, as the tests and examples do) -- so the
/// ratio isolates the driver's repair/batching machinery.
double run_e2e(int nranks, int ntg, fx::fftx::PipelineMode mode, int threads,
               const fx::mpi::RunOptions& opts, bool recover) {
  constexpr int kBands = 16;
  auto desc = std::make_shared<const fx::fftx::Descriptor>(fx::pw::Cell{10.0},
                                                           16.0, nranks, ntg);
  double runtime = 0.0;
  fx::mpi::Runtime::run(nranks, opts, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = mode;
    cfg.nthreads = threads;
    cfg.guard_exchanges = false;
    fx::core::WallTimer timer;
    if (recover) {
      fx::fftx::RecoveryConfig rcfg;
      rcfg.enabled = true;
      rcfg.checkpoint_bands = 0;  // one batch; checkpoint at the end
      fx::fftx::RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<fx::fft::cplx>> out;
      (void)driver.run(out);
    } else {
      fx::fftx::BandFftPipeline pipe(world, desc, cfg);
      pipe.initialize_bands();
      pipe.run();
      // Replicate every band to every rank, exactly like the driver's
      // checkpoint: alltoallv of the packed slices + index-map scatter.
      const auto n = static_cast<std::size_t>(nranks);
      const std::size_t ng_mine = desc->ng_world(world.rank());
      std::vector<std::size_t> scounts(n, ng_mine);
      std::vector<std::size_t> sdispls(n, 0);
      std::vector<std::size_t> rcounts(n);
      std::vector<std::size_t> rdispls(n);
      std::size_t off = 0;
      for (int p = 0; p < nranks; ++p) {
        rcounts[static_cast<std::size_t>(p)] = desc->ng_world(p);
        rdispls[static_cast<std::size_t>(p)] = off;
        off += rcounts[static_cast<std::size_t>(p)];
      }
      std::vector<fx::fft::cplx> gathered(off);
      std::vector<std::vector<fx::fft::cplx>> out(kBands);
      for (int b = 0; b < kBands; ++b) {
        world.alltoallv(pipe.band(b).data(), scounts.data(), sdispls.data(),
                        gathered.data(), rcounts.data(), rdispls.data(),
                        /*tag=*/9001);
        out[static_cast<std::size_t>(b)].resize(desc->sphere().size());
        for (int p = 0; p < nranks; ++p) {
          const auto index = desc->world_g_index(p);
          const fx::fft::cplx* src =
              gathered.data() + rdispls[static_cast<std::size_t>(p)];
          for (std::size_t k = 0; k < index.size(); ++k) {
            out[static_cast<std::size_t>(b)][index[k]] = src[k];
          }
        }
      }
    }
    if (world.rank() == 0) runtime = timer.seconds();
  });
  return runtime;
}

/// Hardening A/B: the runtime safety net (collective validator + watchdog +
/// progress board) on vs off, on the same workload.
void bench_hardening_overhead(fxbench::JsonReport& report) {
  using fx::fftx::PipelineMode;

  fx::mpi::RunOptions off;
  off.watchdog.enabled = false;
  off.validate_collectives = false;
  fx::mpi::RunOptions on;  // defaults: validator on, watchdog on (60 s)

  fx::core::TablePrinter t(
      "Hardening overhead (validator + watchdog on vs off, median of 5)");
  t.header({"version", "off [s]", "on [s]", "overhead"});
  fx::core::CsvWriter csv("bench/out/hardening_overhead.csv");
  csv.row({"mode", "variant", "seconds", "overhead_pct"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
  };
  for (const Row& row : rows) {
    std::vector<double> t_off;
    std::vector<double> t_on;
    for (int rep = 0; rep < 5; ++rep) {
      t_off.push_back(
          run_real(row.nranks, row.ntg, row.mode, row.threads, off));
      t_on.push_back(run_real(row.nranks, row.ntg, row.mode, row.threads, on));
    }
    const double med_off = fx::core::median(t_off);
    const double med_on = fx::core::median(t_on);
    const double overhead = (med_on - med_off) / med_off * 100.0;
    t.row({row.name, fx::core::fixed(med_off, 4), fx::core::fixed(med_on, 4),
           fx::core::cat(fx::core::fixed(overhead, 2), " %")});
    csv.row({to_string(row.mode), "off", fx::core::cat(med_off), "0"});
    csv.row({to_string(row.mode), "on", fx::core::cat(med_on),
             fx::core::cat(fx::core::fixed(overhead, 2))});
    report.set(fx::core::cat("hardening_overhead.on_pct.", to_string(row.mode)),
               overhead);
  }
  t.print(std::cout);

  // Recovery A/B: the shrink-and-continue driver (single end-of-run
  // checkpoint batch) vs the bare hardened pipeline, fault-free, both timed
  // end to end.  The driver's budget is <= 3 % on this workload.
  fx::core::TablePrinter tr(
      "Recovery overhead (driver vs hardened pipeline, fault-free, median "
      "of 5)");
  tr.header({"version", "hardened [s]", "recovery [s]", "overhead"});
  for (const Row& row : rows) {
    std::vector<double> t_base;
    std::vector<double> t_rec;
    for (int rep = 0; rep < 5; ++rep) {
      t_base.push_back(run_e2e(row.nranks, row.ntg, row.mode, row.threads, on,
                               /*recover=*/false));
      t_rec.push_back(run_e2e(row.nranks, row.ntg, row.mode, row.threads, on,
                              /*recover=*/true));
    }
    const double med_base = fx::core::median(t_base);
    const double med_rec = fx::core::median(t_rec);
    const double overhead = (med_rec - med_base) / med_base * 100.0;
    tr.row({row.name, fx::core::fixed(med_base, 4), fx::core::fixed(med_rec, 4),
            fx::core::cat(fx::core::fixed(overhead, 2), " %")});
    csv.row({to_string(row.mode), "recovery", fx::core::cat(med_rec),
             fx::core::cat(fx::core::fixed(overhead, 2))});
    report.set(
        fx::core::cat("recovery_overhead.driver_pct.", to_string(row.mode)),
        overhead);
  }
  tr.print(std::cout);
}

/// 20 %-trimmed mean: the scheduler on an oversubscribed host produces a
/// few wild outliers per batch that a plain mean would chase and that even
/// the median wobbles on; trimming both tails keeps the estimate stable
/// run to run.
double trimmed_mean(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t k = v.size() / 5;
  double sum = 0.0;
  for (std::size_t i = k; i < v.size() - k; ++i) sum += v[i];
  return sum / static_cast<double>(v.size() - 2 * k);
}

/// Tracing A/B: the observability layer off vs the mutex collection path vs
/// the sharded ring-buffer path, on the same workload.  The ring design
/// only earns its complexity if "sharded" is at or below "mutex" and within
/// a few percent of "off" (the paper's Extrae traces cost 0.6-2.2 %).
void bench_trace_overhead(fxbench::JsonReport& report) {
  using fx::fftx::PipelineMode;
  using fx::trace::TracerMode;

  fx::mpi::RunOptions quiet;
  quiet.watchdog.enabled = false;
  quiet.validate_collectives = false;

  // Much heavier workload than the mode table: on an oversubscribed (or
  // single-core CI) host, runs under ~50 ms swing several percent from
  // scheduler luck alone; at ~150 ms+ the paired ratios settle well under
  // a percent run to run.
  constexpr double kEcut = 64.0;
  constexpr int kBands = 128;

  fx::core::TablePrinter t(
      "Tracing overhead (off vs mutex vs sharded rings, trimmed mean of 33 "
      "order-rotated paired reps)");
  t.header({"version", "off [s]", "mutex [s]", "sharded [s]", "mutex ovh",
            "sharded ovh"});
  fx::core::CsvWriter csv("bench/out/trace_overhead.csv");
  csv.row({"mode", "variant", "seconds", "overhead_pct"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
  };
  constexpr int kReps = 33;
  for (const Row& row : rows) {
    std::vector<double> t_off;
    std::vector<double> t_mutex;
    std::vector<double> t_ring;
    std::vector<double> ratio_mutex;
    std::vector<double> ratio_ring;
    // Overhead comes from paired per-rep ratios: the three runs of one rep
    // are adjacent in time, so slow drift divides out of the ratio even
    // when it swamps the absolute numbers.  The variant order rotates each
    // rep -- with a fixed order a positional bias (first run of a rep
    // landing on a cold scheduler quantum) masquerades as overhead.  One
    // fresh tracer per rep: events must not accumulate.
    for (int rep = 0; rep < kReps; ++rep) {
      double t_o = 0.0;
      double t_m = 0.0;
      double t_r = 0.0;
      for (int k = 0; k < 3; ++k) {
        const int variant = (rep + k) % 3;
        if (variant == 0) {
          t_o = run_real(row.nranks, row.ntg, row.mode, row.threads, quiet,
                         nullptr, kEcut, kBands);
        } else if (variant == 1) {
          fx::trace::Tracer tracer(row.nranks, TracerMode::Mutex);
          t_m = run_real(row.nranks, row.ntg, row.mode, row.threads, quiet,
                         &tracer, kEcut, kBands);
        } else {
          fx::trace::Tracer tracer(row.nranks, TracerMode::Sharded);
          t_r = run_real(row.nranks, row.ntg, row.mode, row.threads, quiet,
                         &tracer, kEcut, kBands);
        }
      }
      t_off.push_back(t_o);
      t_mutex.push_back(t_m);
      t_ring.push_back(t_r);
      ratio_mutex.push_back(t_m / t_o);
      ratio_ring.push_back(t_r / t_o);
    }
    const double med_off = trimmed_mean(t_off);
    const double med_mutex = trimmed_mean(t_mutex);
    const double med_ring = trimmed_mean(t_ring);
    const double ovh_mutex = (trimmed_mean(ratio_mutex) - 1.0) * 100.0;
    const double ovh_ring = (trimmed_mean(ratio_ring) - 1.0) * 100.0;
    t.row({row.name, fx::core::fixed(med_off, 4), fx::core::fixed(med_mutex, 4),
           fx::core::fixed(med_ring, 4),
           fx::core::cat(fx::core::fixed(ovh_mutex, 2), " %"),
           fx::core::cat(fx::core::fixed(ovh_ring, 2), " %")});
    csv.row({to_string(row.mode), "off", fx::core::cat(med_off), "0"});
    csv.row({to_string(row.mode), "mutex", fx::core::cat(med_mutex),
             fx::core::cat(fx::core::fixed(ovh_mutex, 2))});
    csv.row({to_string(row.mode), "sharded", fx::core::cat(med_ring),
             fx::core::cat(fx::core::fixed(ovh_ring, 2))});
    report.set(
        fx::core::cat("trace_overhead.mutex_pct.", to_string(row.mode)),
        ovh_mutex);
    report.set(
        fx::core::cat("trace_overhead.sharded_pct.", to_string(row.mode)),
        ovh_ring);
  }
  t.print(std::cout);
}

/// Observatory A/B: FFTX_OBS=off vs watch on the same heavy workload, no
/// tracer attached -- spans and the pipeline's comm observer feed the
/// observatory directly, so this prices exactly what an always-on
/// production deployment pays: record_phase per span, record_comm per
/// collective, and the last-rank-out iteration verdicts.  Budget: <= 1 %.
void bench_obs_overhead(fxbench::JsonReport& report) {
  using fx::fftx::PipelineMode;
  using fx::trace::ObsMode;

  fx::mpi::RunOptions quiet;
  quiet.watchdog.enabled = false;
  quiet.validate_collectives = false;

  // Same heavy workload as the trace A/B, for the same reason: the paired
  // ratios only settle under a percent once runs are ~150 ms or longer.
  constexpr double kEcut = 64.0;
  constexpr int kBands = 128;

  fx::core::TablePrinter t(
      "Observatory overhead (FFTX_OBS off vs watch, trimmed mean of 33 "
      "order-rotated paired reps)");
  t.header({"version", "off [s]", "watch [s]", "watch ovh"});
  fx::core::CsvWriter csv("bench/out/obs_overhead.csv");
  csv.row({"mode", "variant", "seconds", "overhead_pct"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
  };
  constexpr int kReps = 33;
  auto& obs = fx::trace::Observatory::global();
  for (const Row& row : rows) {
    std::vector<double> t_off;
    std::vector<double> t_watch;
    std::vector<double> ratio;
    for (int rep = 0; rep < kReps; ++rep) {
      double t_o = 0.0;
      double t_w = 0.0;
      // Order-rotated pairs, same scheme as the tracing A/B.  configure()
      // resets the observatory's recorded state, so every watch rep starts
      // with an empty ring and cold statistics -- the steady-state cost is
      // the same (the ring is fixed-size), but the reset keeps rep K from
      // carrying rep K-1's flight recorder.
      for (int k = 0; k < 2; ++k) {
        if ((rep + k) % 2 == 0) {
          obs.configure(ObsMode::Off);
          t_o = run_real(row.nranks, row.ntg, row.mode, row.threads, quiet,
                         nullptr, kEcut, kBands);
        } else {
          obs.configure(ObsMode::Watch);
          t_w = run_real(row.nranks, row.ntg, row.mode, row.threads, quiet,
                         nullptr, kEcut, kBands);
        }
      }
      t_off.push_back(t_o);
      t_watch.push_back(t_w);
      ratio.push_back(t_w / t_o);
    }
    const double med_off = trimmed_mean(t_off);
    const double med_watch = trimmed_mean(t_watch);
    const double ovh = (trimmed_mean(ratio) - 1.0) * 100.0;
    t.row({row.name, fx::core::fixed(med_off, 4),
           fx::core::fixed(med_watch, 4),
           fx::core::cat(fx::core::fixed(ovh, 2), " %")});
    csv.row({to_string(row.mode), "off", fx::core::cat(med_off), "0"});
    csv.row({to_string(row.mode), "watch", fx::core::cat(med_watch),
             fx::core::cat(fx::core::fixed(ovh, 2))});
    report.set(fx::core::cat("obs_overhead.watch_pct.", to_string(row.mode)),
               ovh);
  }
  // Hand the process back to whatever FFTX_OBS selected.
  obs.configure(fx::trace::default_obs_mode());
  t.print(std::cout);
}

/// ABFT A/B: silent-data-corruption detection off vs detect vs repair on a
/// fault-free run.  Detect adds the checksum-band transforms, energy
/// reductions and at-rest digests inline with the band loop; its budget on
/// the 8-rank ecut-32 workload is <= 3 %.  Repair (fault-free) adds only
/// the deferred-verdict bookkeeping on top of detect, so the pair should
/// be indistinguishable.
void bench_abft_overhead(fxbench::JsonReport& report) {
  using fx::fftx::AbftMode;
  using fx::fftx::PipelineMode;

  // ecut 32: large enough that the per-run time dominates scheduler noise
  // on an oversubscribed host (same reasoning as the trace bench).
  constexpr double kEcut = 32.0;
  constexpr int kBands = 64;
  constexpr int kRanks = 8;
  constexpr int kNtg = 2;
  constexpr int kReps = 15;
  // Simulated link latency for the communication-bound configuration: every
  // communication operation pays this delay on every rank, which is the
  // regime distributed FFTs actually run in (the paper's KNL study is
  // dominated by the transpose exchanges).  The compute-only configuration
  // (zero delay) serializes all ranks' checks onto the bench host's cores
  // and so reports the worst possible ratio.
  constexpr double kLinkDelayUs = 4000.0;

  auto run_abft = [&](AbftMode abft, double delay_us) {
    fx::mpi::RunOptions opts;
    opts.watchdog.enabled = false;
    opts.validate_collectives = false;
    opts.faults.delay_prob = delay_us > 0.0 ? 1.0 : 0.0;
    opts.faults.delay_us = delay_us;
    auto desc = std::make_shared<const fx::fftx::Descriptor>(
        fx::pw::Cell{10.0}, kEcut, kRanks, kNtg);
    double runtime = 0.0;
    fx::mpi::Runtime::run(kRanks, opts, [&](fx::mpi::Comm& world) {
      fx::fftx::PipelineConfig cfg;
      cfg.num_bands = kBands;
      cfg.mode = PipelineMode::Original;
      cfg.guard_exchanges = false;
      cfg.abft = abft;
      fx::fftx::BandFftPipeline pipe(world, desc, cfg);
      pipe.initialize_bands();
      const double t = pipe.run();
      if (world.rank() == 0) runtime = t;
    });
    return runtime;
  };

  fx::core::TablePrinter t(
      "ABFT overhead (off vs detect vs repair, fault-free, trimmed mean of "
      "15 order-rotated paired reps)");
  t.header({"version", "off [s]", "detect [s]", "repair [s]", "detect ovh",
            "repair ovh"});
  fx::core::CsvWriter csv("bench/out/abft_overhead.csv");
  csv.row({"mode", "variant", "seconds", "overhead_pct"});

  struct Case {
    const char* label;
    double delay_us;
    bool to_csv;  ///< the deployment-regime row is the recorded artifact
  };
  const Case cases[] = {
      {"compute-only (serialized)", 0.0, false},
      {"4 ms link latency", kLinkDelayUs, true},
  };
  for (const Case& c : cases) {
    std::vector<double> t_off;
    std::vector<double> t_detect;
    std::vector<double> t_repair;
    std::vector<double> ratio_detect;
    std::vector<double> ratio_repair;
    for (int rep = 0; rep < kReps; ++rep) {
      double t_o = 0.0;
      double t_d = 0.0;
      double t_r = 0.0;
      for (int k = 0; k < 3; ++k) {
        const int variant = (rep + k) % 3;
        if (variant == 0) {
          t_o = run_abft(AbftMode::Off, c.delay_us);
        } else if (variant == 1) {
          t_d = run_abft(AbftMode::Detect, c.delay_us);
        } else {
          t_r = run_abft(AbftMode::Repair, c.delay_us);
        }
      }
      t_off.push_back(t_o);
      t_detect.push_back(t_d);
      t_repair.push_back(t_r);
      ratio_detect.push_back(t_d / t_o);
      ratio_repair.push_back(t_r / t_o);
    }
    const double med_off = trimmed_mean(t_off);
    const double med_detect = trimmed_mean(t_detect);
    const double med_repair = trimmed_mean(t_repair);
    const double ovh_detect = (trimmed_mean(ratio_detect) - 1.0) * 100.0;
    const double ovh_repair = (trimmed_mean(ratio_repair) - 1.0) * 100.0;
    t.row({fx::core::cat("original ", kRanks / kNtg, " x ", kNtg, ", ecut ",
                         fx::core::fixed(kEcut, 0), ", ", c.label),
           fx::core::fixed(med_off, 4), fx::core::fixed(med_detect, 4),
           fx::core::fixed(med_repair, 4),
           fx::core::cat(fx::core::fixed(ovh_detect, 2), " %"),
           fx::core::cat(fx::core::fixed(ovh_repair, 2), " %")});
    if (c.to_csv) {
      csv.row({"original", "off", fx::core::cat(med_off), "0"});
      csv.row({"original", "detect", fx::core::cat(med_detect),
               fx::core::cat(fx::core::fixed(ovh_detect, 2))});
      csv.row({"original", "repair", fx::core::cat(med_repair),
               fx::core::cat(fx::core::fixed(ovh_repair, 2))});
      report.set("abft_overhead.detect_pct.link4ms", ovh_detect);
      report.set("abft_overhead.repair_pct.link4ms", ovh_repair);
    }
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  using fx::fftx::PipelineMode;

  fxbench::JsonReport report("bench_real_pipeline");
  fx::core::TablePrinter t(
      "Real backend (host wall-clock, reduced workload: ecut 16 Ry, alat "
      "10, 16 bands)");
  t.header({"version", "layout", "wall [s]"});
  fx::core::CsvWriter csv("bench/out/real_pipeline.csv");
  csv.row({"mode", "layout", "seconds"});

  struct Row {
    const char* name;
    int nranks;
    int ntg;
    PipelineMode mode;
    int threads;
    bool fused = false;
    bool overlap = false;
  };
  const Row rows[] = {
      {"original 4 x 2", 8, 2, PipelineMode::Original, 1},
      {"original 4 x 2, fused", 8, 2, PipelineMode::Original, 1, true},
      {"original 4 x 2, fused+overlap", 8, 2, PipelineMode::Original, 1, true,
       true},
      {"original 4 x 1", 4, 1, PipelineMode::Original, 1},
      {"task-per-step 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerStep, 2},
      {"task-per-FFT 4 ranks x 2 thr", 4, 1, PipelineMode::TaskPerFft, 2},
      {"combined 4 ranks x 2 thr", 4, 1, PipelineMode::Combined, 2},
  };
  for (const Row& row : rows) {
    // Median of three runs.
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      times.push_back(run_real(row.nranks, row.ntg, row.mode, row.threads,
                               fx::mpi::RunOptions{}, nullptr, 16.0, 16,
                               row.fused, row.overlap));
    }
    const double med = fx::core::median(times);
    t.row({row.name,
           fx::core::cat(row.nranks, " ranks, ntg ", row.ntg, ", ",
                         row.threads, " thr"),
           fx::core::fixed(med, 4)});
    csv.row({fx::core::cat(to_string(row.mode),
                           row.overlap ? "+overlap" : (row.fused ? "+fused"
                                                                 : "")),
             fx::core::cat(row.nranks), fx::core::cat(med)});
  }
  t.print(std::cout);

  bench_hardening_overhead(report);
  bench_abft_overhead(report);
  bench_trace_overhead(report);
  bench_obs_overhead(report);
  report.write();
  fx::trace::dump_metrics("bench_real_pipeline");
  return 0;
}
