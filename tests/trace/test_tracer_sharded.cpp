// Sharded tracer collection: events recorded concurrently from many
// threads must all survive the ring-buffer path (including overflow
// spills), and the read API must agree with the mutex-mode baseline.
// This file is part of the TSan CI target: it exercises the SPSC
// push/drain protocol under real contention.
#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace {

using fx::mpi::CommOpKind;
using fx::trace::PhaseKind;
using fx::trace::Tracer;
using fx::trace::TracerMode;

void record_batch(Tracer& tr, int thread, int n) {
  for (int i = 0; i < n; ++i) {
    const double t0 = thread + i * 1e-6;
    tr.record_compute(
        {0, thread, PhaseKind::FftZ, i, t0, t0 + 5e-7, 1.0e6});
  }
}

TEST(TracerSharded, ConcurrentRecordsAllArrive) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;  // >> ring capacity: forces spills
  Tracer tr(1, TracerMode::Sharded);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tr, t] { record_batch(tr, t, kPerThread); });
  }
  for (auto& th : threads) th.join();

  const auto& events = tr.compute_events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // Per-thread streams stay complete and in order: every thread's bands
  // 0..kPerThread-1 appear exactly once, ascending.
  for (int t = 0; t < kThreads; ++t) {
    int next = 0;
    for (const auto& e : events) {
      if (e.thread != t) continue;
      EXPECT_EQ(e.band, next) << "thread " << t;
      ++next;
    }
    EXPECT_EQ(next, kPerThread);
  }
  EXPECT_GT(tr.overflow_spills(), 0U)
      << "with 5000 events per thread against a 2048-slot ring, the "
         "overflow path must have run";
}

TEST(TracerSharded, AllThreeStreamsConcurrently) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 1500;
  Tracer tr(2, TracerMode::Sharded);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tr, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const double t0 = t + i * 1e-6;
        tr.record_compute({0, t, PhaseKind::Vofr, i, t0, t0 + 1e-7, 1e5});
        tr.record_comm({1, t, CommOpKind::Alltoallv, 2, 2, i, 256, t0,
                        t0 + 2e-7});
        tr.record_task({0, t, "t", t0, t0 + 3e-7});
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto want = static_cast<std::size_t>(kThreads) * kPerThread;
  EXPECT_EQ(tr.compute_events().size(), want);
  EXPECT_EQ(tr.comm_events().size(), want);
  EXPECT_EQ(tr.task_events().size(), want);
}

TEST(TracerSharded, TimeBoundsMatchMutexMode) {
  for (const TracerMode mode : {TracerMode::Sharded, TracerMode::Mutex}) {
    Tracer tr(1, mode);
    std::thread a([&] {
      tr.record_compute({0, 0, PhaseKind::Pack, 0, 5.0, 6.0, 1.0});
    });
    std::thread b([&] {
      tr.record_compute({0, 1, PhaseKind::Pack, 1, 2.0, 3.0, 1.0});
    });
    a.join();
    b.join();
    EXPECT_DOUBLE_EQ(tr.t_min(), 2.0);
    EXPECT_DOUBLE_EQ(tr.t_max(), 6.0);
    tr.normalize_time();
    EXPECT_DOUBLE_EQ(tr.t_min(), 0.0);
    EXPECT_DOUBLE_EQ(tr.t_max(), 4.0);
  }
}

TEST(TracerSharded, ClearEmptiesPendingRingEvents) {
  Tracer tr(1, TracerMode::Sharded);
  record_batch(tr, 0, 10);  // sits in this thread's ring, not yet flushed
  tr.clear();
  EXPECT_TRUE(tr.compute_events().empty());
  record_batch(tr, 0, 3);
  EXPECT_EQ(tr.compute_events().size(), 3U);
}

TEST(TracerSharded, ReuseAfterFlushKeepsRecording) {
  Tracer tr(1, TracerMode::Sharded);
  record_batch(tr, 0, 100);
  EXPECT_EQ(tr.compute_events().size(), 100U);  // flushes
  record_batch(tr, 0, 50);  // same thread, shard re-used after drain
  EXPECT_EQ(tr.compute_events().size(), 150U);
}

TEST(TracerSharded, ManyTracersShareThreadsSafely) {
  // The TLS shard cache is keyed by tracer id; interleaving tracers on one
  // thread must never cross-wire events.
  Tracer a(1, TracerMode::Sharded);
  Tracer b(1, TracerMode::Sharded);
  record_batch(a, 0, 7);
  record_batch(b, 0, 11);
  record_batch(a, 0, 2);
  EXPECT_EQ(a.compute_events().size(), 9U);
  EXPECT_EQ(b.compute_events().size(), 11U);
}

}  // namespace
