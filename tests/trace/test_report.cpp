// Multi-run efficiency report rendering.
#include "trace/report.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace {

using fx::trace::ComputeEvent;
using fx::trace::PhaseKind;
using fx::trace::ReportEntry;
using fx::trace::Tracer;

TEST(Report, RendersHierarchyAndScalesAgainstFirst) {
  fx::trace::EfficiencySummary ref;
  ref.parallel_efficiency = 0.95;
  ref.load_balance = 0.97;
  ref.comm_efficiency = 0.98;
  ref.sync_efficiency = 0.99;
  ref.transfer_efficiency = 0.99;
  ref.total_instructions = 100.0;
  ref.total_compute = 10.0;
  ref.avg_ipc = 1.0;

  fx::trace::EfficiencySummary big = ref;
  big.parallel_efficiency = 0.90;
  big.total_compute = 20.0;
  big.avg_ipc = 0.5;

  const std::string out = fx::trace::render_efficiency_report(
      "Sweep", {ReportEntry{"1 x 8", ref}, ReportEntry{"8 x 8", big}});

  EXPECT_NE(out.find("Sweep"), std::string::npos);
  EXPECT_NE(out.find("1 x 8"), std::string::npos);
  EXPECT_NE(out.find("8 x 8"), std::string::npos);
  EXPECT_NE(out.find("95.00 %"), std::string::npos);  // parallel eff ref
  EXPECT_NE(out.find("50.00 %"), std::string::npos);  // comp scal of big
  EXPECT_NE(out.find("45.00 %"), std::string::npos);  // global eff 0.9*0.5
  EXPECT_NE(out.find("avg IPC"), std::string::npos);
}

TEST(Report, TracerConvenienceOverload) {
  Tracer a(1);
  a.record_compute(ComputeEvent{0, 0, PhaseKind::FftXy, 0, 0.0, 1.0, 1e9});
  Tracer b(2);
  b.record_compute(ComputeEvent{0, 0, PhaseKind::FftXy, 0, 0.0, 1.0, 1e9});
  b.record_compute(ComputeEvent{1, 0, PhaseKind::FftXy, 0, 0.0, 2.0, 1e9});

  const std::string out = fx::trace::render_efficiency_report(
      "Two runs", {"small", "large"}, {&a, &b}, 1.0);
  EXPECT_NE(out.find("small"), std::string::npos);
  EXPECT_NE(out.find("large"), std::string::npos);
  // Large run: LB = 1.5/2 = 75 %.
  EXPECT_NE(out.find("75.00 %"), std::string::npos);
}

TEST(Report, RejectsEmptyAndMismatched) {
  EXPECT_THROW((void)fx::trace::render_efficiency_report("t", {}),
               fx::core::Error);
  Tracer a(1);
  EXPECT_THROW((void)fx::trace::render_efficiency_report("t", {"x", "y"},
                                                         {&a}, 1.0),
               fx::core::Error);
}

}  // namespace
