// Trace save/load round trip and error handling.
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/error.hpp"
#include "trace/analysis.hpp"

namespace {

using fx::mpi::CommOpKind;
using fx::trace::PhaseKind;
using fx::trace::Tracer;

void fill(Tracer& tr) {
  tr.record_compute({0, 0, PhaseKind::FftXy, 4, 0.125, 0.375, 1.5e9});
  tr.record_compute({1, 2, PhaseKind::Pack, 0, 1.0 / 3.0, 0.7071, 2.25e7});
  tr.record_comm({0, 0, CommOpKind::Alltoallv, 7, 4, 12, 65536, 0.375, 0.5});
  tr.record_task({1, 3, "band_fft#12 with spaces", 0.0, 2.0});
}

TEST(TraceIo, RoundTripIsExact) {
  Tracer tr(4);
  fill(tr);
  std::stringstream ss;
  fx::trace::save_trace(tr, ss);
  const auto loaded = fx::trace::load_trace(ss);

  ASSERT_EQ(loaded->nranks(), 4);
  ASSERT_EQ(loaded->compute_events().size(), 2U);
  ASSERT_EQ(loaded->comm_events().size(), 1U);
  ASSERT_EQ(loaded->task_events().size(), 1U);

  const auto& c = loaded->compute_events()[1];
  EXPECT_EQ(c.rank, 1);
  EXPECT_EQ(c.thread, 2);
  EXPECT_EQ(c.phase, PhaseKind::Pack);
  EXPECT_EQ(c.band, 0);
  EXPECT_EQ(c.t_begin, 1.0 / 3.0);  // bit-exact via hex floats
  EXPECT_EQ(c.instructions, 2.25e7);

  const auto& m = loaded->comm_events()[0];
  EXPECT_EQ(m.kind, CommOpKind::Alltoallv);
  EXPECT_EQ(m.comm_id, 7);
  EXPECT_EQ(m.comm_size, 4);
  EXPECT_EQ(m.tag, 12);
  EXPECT_EQ(m.bytes, 65536U);

  const auto& t = loaded->task_events()[0];
  EXPECT_EQ(t.label, "band_fft#12 with spaces");
  EXPECT_EQ(t.worker, 3);
}

TEST(TraceIo, AnalysisIdenticalAfterRoundTrip) {
  Tracer tr(4);
  fill(tr);
  std::stringstream ss;
  fx::trace::save_trace(tr, ss);
  const auto loaded = fx::trace::load_trace(ss);

  const auto a = fx::trace::analyze_efficiency(tr, 1.4);
  const auto b = fx::trace::analyze_efficiency(*loaded, 1.4);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.total_compute, b.total_compute);
  EXPECT_EQ(a.load_balance, b.load_balance);
  EXPECT_EQ(a.avg_ipc, b.avg_ipc);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fx_trace_io.fxt").string();
  Tracer tr(2);
  fill(tr);
  fx::trace::save_trace(tr, path);
  const auto loaded = fx::trace::load_trace(path);
  EXPECT_EQ(loaded->compute_events().size(), 2U);
  std::filesystem::remove(path);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not a trace at all");
  EXPECT_THROW((void)fx::trace::load_trace(ss), fx::core::Error);
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream ss("fxtrace 99 2\n");
  EXPECT_THROW((void)fx::trace::load_trace(ss), fx::core::Error);
}

TEST(TraceIo, RejectsCorruptRecord) {
  std::stringstream ss("fxtrace 1 2\nC 0 0 broken\n");
  EXPECT_THROW((void)fx::trace::load_trace(ss), fx::core::Error);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)fx::trace::load_trace("/nonexistent/path.fxt"),
               fx::core::Error);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Tracer tr(1);
  std::stringstream ss;
  fx::trace::save_trace(tr, ss);
  const auto loaded = fx::trace::load_trace(ss);
  EXPECT_EQ(loaded->nranks(), 1);
  EXPECT_TRUE(loaded->compute_events().empty());
}

}  // namespace
