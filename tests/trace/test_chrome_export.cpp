// Chrome/Perfetto trace-event exporter: output must be valid JSON, carry
// one complete event per recorded trace event, and name every (rank,
// thread) track via metadata events.
#include "trace/chrome_export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace {

using fx::mpi::CommOpKind;
using fx::trace::PhaseKind;
using fx::trace::Tracer;

// Minimal recursive-descent JSON validator: enough to reject anything a
// real parser (python3 -m json.tool, Perfetto's loader) would reject --
// unbalanced structure, bad literals, trailing commas, unescaped control
// characters.  Accepts exactly one top-level value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + k >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_ + k])) == 0) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               s_[pos_ - 1])) != 0;
  }

  bool literal(const char* w) {
    const std::string want(w);
    if (s_.compare(pos_, want.size(), want) != 0) return false;
    pos_ += want.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t p = hay.find(pin); p != std::string::npos;
       p = hay.find(pin, p + pin.size())) {
    ++n;
  }
  return n;
}

void fill(Tracer& tr) {
  tr.record_compute({0, 0, PhaseKind::FftZ, 0, 0.10, 0.20, 1.0e8});
  tr.record_compute({0, 1, PhaseKind::FftXy, 0, 0.20, 0.45, 3.0e8});
  tr.record_compute({1, 0, PhaseKind::Vofr, 1, 0.15, 0.30, 5.0e7});
  tr.record_comm(
      {0, 0, CommOpKind::Alltoallv, 3, 2, 7, 4096, 0.45, 0.55});
  tr.record_comm({1, 0, CommOpKind::Send, 3, 2, 8, 1024, 0.30, 0.32});
  tr.record_task({0, 1, "band#3 \"quoted\"\nlabel", 0.55, 0.80});
}

std::string exported(const Tracer& tr) {
  std::stringstream ss;
  fx::trace::save_chrome_trace(tr, ss);
  return ss.str();
}

TEST(ChromeExport, OutputIsValidJson) {
  Tracer tr(2);
  fill(tr);
  const std::string json = exported(tr);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(ChromeExport, EmptyTracerIsValidJson) {
  Tracer tr(1);
  const std::string json = exported(tr);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeExport, CompleteEventCountMatchesStreams) {
  Tracer tr(2);
  fill(tr);
  const std::string json = exported(tr);
  // One "ph":"X" complete event per compute, comm, and task event.
  const std::size_t want = tr.compute_events().size() +
                           tr.comm_events().size() +
                           tr.task_events().size();
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), want);
  // Counter tracks exist: collectives in flight per rank, IPC per thread.
  EXPECT_GT(count_occurrences(json, "\"ph\": \"C\""), 0U);
}

TEST(ChromeExport, TracksAreNamedPerRankAndThread) {
  Tracer tr(2);
  fill(tr);
  const std::string json = exported(tr);
  // Process (= rank) and thread metadata for every track that has events.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);
  EXPECT_NE(json.find("rank 1"), std::string::npos);
  EXPECT_NE(json.find("thread 0"), std::string::npos);
  EXPECT_NE(json.find("thread 1"), std::string::npos);
}

TEST(ChromeExport, PhaseAndKindNamesAppear) {
  Tracer tr(2);
  fill(tr);
  const std::string json = exported(tr);
  EXPECT_NE(json.find("fft_z"), std::string::npos);
  EXPECT_NE(json.find("fft_xy"), std::string::npos);
  EXPECT_NE(json.find("vofr"), std::string::npos);
  EXPECT_NE(json.find("Alltoallv"), std::string::npos);
}

TEST(ChromeExport, TimesAreRelativeMicroseconds) {
  Tracer tr(1);
  // t_min is 100.0 s; exported ts must be relative to it, not absolute.
  tr.record_compute({0, 0, PhaseKind::Pack, 0, 100.0, 100.5, 1.0e6});
  const std::string json = exported(tr);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"ts\": 0,"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 500000"), std::string::npos);
}

TEST(ChromeExport, LabelsAreEscaped) {
  Tracer tr(2);
  fill(tr);  // task label has a quote and newline
  const std::string json = exported(tr);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

}  // namespace
