// Online observatory: rolling statistics, iteration verdicts, straggler
// and drift detection, the flight-recorder ring, and strict mode -- all
// driven through the public API with hand-fed spans, so every expected
// number is closed-form.
//
// The observatory is a process singleton; each test (re)configures it,
// which resets all recorded state, and the suite leaves it Off.
#include "trace/observatory.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/error.hpp"
#include "core/hooks.hpp"
#include "core/json.hpp"
#include "trace/phases.hpp"

namespace {

using fx::trace::kNumPhaseKinds;
using fx::trace::Observatory;
using fx::trace::ObsMode;
using fx::trace::PhaseKind;

std::array<double, kNumPhaseKinds> no_expectation() { return {}; }

/// Runs one fully-reported iteration: every rank begins, records its
/// phase seconds, and reports done (rank order = vector index).
void feed_iteration(Observatory& obs, int iter,
                    const std::vector<std::vector<std::pair<PhaseKind,
                                                            double>>>& ranks,
                    const std::vector<double>& comm_s = {}) {
  const int n = static_cast<int>(ranks.size());
  for (int r = 0; r < n; ++r) obs.iteration_begin(r, iter);
  for (int r = 0; r < n; ++r) {
    for (const auto& [phase, seconds] : ranks[static_cast<std::size_t>(r)]) {
      obs.record_phase(r, phase, iter, seconds);
    }
    if (static_cast<std::size_t>(r) < comm_s.size()) {
      obs.record_comm(r, iter, comm_s[static_cast<std::size_t>(r)]);
    }
  }
  for (int r = 0; r < n; ++r) obs.iteration_done(r, iter);
}

class ObservatoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs().configure(ObsMode::Watch);
  }
  void TearDown() override {
    obs().configure(ObsMode::Off);
  }
  static Observatory& obs() { return Observatory::global(); }
};

TEST(ObsMode, EnvParsing) {
  setenv("FFTX_OBS", "watch", 1);
  EXPECT_EQ(fx::trace::default_obs_mode(), ObsMode::Watch);
  setenv("FFTX_OBS", "strict", 1);
  EXPECT_EQ(fx::trace::default_obs_mode(), ObsMode::Strict);
  setenv("FFTX_OBS", "off", 1);
  EXPECT_EQ(fx::trace::default_obs_mode(), ObsMode::Off);
  // Typos fail loudly instead of silently disabling observability.
  setenv("FFTX_OBS", "nonsense", 1);
  EXPECT_THROW(fx::trace::default_obs_mode(), fx::core::Error);
  unsetenv("FFTX_OBS");
  EXPECT_EQ(fx::trace::default_obs_mode(), ObsMode::Off);

  EXPECT_STREQ(fx::trace::to_string(ObsMode::Watch), "watch");
  EXPECT_STREQ(fx::trace::to_string(ObsMode::Strict), "strict");
  EXPECT_STREQ(fx::trace::to_string(ObsMode::Off), "off");
}

TEST(ObsMode, RingCapacityEnvValidated) {
  setenv("FFTX_OBS_RING", "128", 1);
  EXPECT_EQ(fx::trace::default_obs_ring(), 128);
  setenv("FFTX_OBS_RING", "1", 1);  // below the minimum of 4: rejected
  EXPECT_THROW(fx::trace::default_obs_ring(), fx::core::Error);
  setenv("FFTX_OBS_RING", "plenty", 1);  // garbage: rejected
  EXPECT_THROW(fx::trace::default_obs_ring(), fx::core::Error);
  unsetenv("FFTX_OBS_RING");
  EXPECT_EQ(fx::trace::default_obs_ring(), 32);
}

TEST_F(ObservatoryTest, OffModeRecordsNothing) {
  obs().configure(ObsMode::Off);
  EXPECT_EQ(fx::trace::obs_active(), nullptr);
  obs().begin_run(2, 1, no_expectation());
  obs().record_phase(0, PhaseKind::FftZ, 0, 0.001);
  obs().iteration_begin(0, 0);
  obs().iteration_done(0, 0);
  obs().end_run();
  EXPECT_EQ(obs().phase_records(), 0u);
  EXPECT_EQ(obs().iterations_done(), 0u);
}

TEST_F(ObservatoryTest, WatchModeIsActiveAndCounts) {
  EXPECT_EQ(fx::trace::obs_active(), &obs());
  obs().begin_run(1, 1, no_expectation());
  for (int i = 0; i < 20; ++i) {
    obs().record_phase(0, PhaseKind::FftZ, 0, 0.010);
  }
  obs().end_run();
  EXPECT_EQ(obs().phase_records(), 20u);
  // The attribution table carries the phase row with its span count.
  const std::string report = obs().attribution_report();
  EXPECT_NE(report.find(fx::trace::to_string(PhaseKind::FftZ)),
            std::string::npos);
  EXPECT_NE(report.find("20"), std::string::npos);
}

TEST_F(ObservatoryTest, IterationVerdictComputesPopFactors) {
  // Widen the straggler factor: a 2x gap would legitimately flag under the
  // 1.75x default, and this test isolates the POP factor arithmetic.
  fx::trace::Observatory::Detection wide;
  wide.straggler_factor = 3.0;
  obs().configure_detection(wide);
  obs().begin_run(2, 1, no_expectation());
  // Rank 0 computes 4 ms, rank 1 computes 2 ms: LB = avg/max = 3/4.
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.004}}, {{PhaseKind::FftZ, 0.002}}});
  obs().end_run();
  ASSERT_EQ(obs().iterations_done(), 1u);
  const auto flight = obs().flight();
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_TRUE(flight[0].complete);
  EXPECT_EQ(flight[0].iter, 0);
  EXPECT_DOUBLE_EQ(flight[0].load_balance, 0.75);
  EXPECT_LE(flight[0].comm_efficiency, 1.0);
  EXPECT_EQ(flight[0].straggler_rank, -1);  // 2x < widened 3x factor
}

TEST_F(ObservatoryTest, AbftSecondsAreOverheadNotCompute) {
  obs().begin_run(2, 1, no_expectation());
  // Identical useful compute; rank 1 additionally runs ABFT checks.  Were
  // ABFT counted as compute, LB would drop to 0.75; it must stay 1.0.
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.004}},
                  {{PhaseKind::FftZ, 0.004}, {PhaseKind::Abft, 0.004}}});
  obs().end_run();
  const auto flight = obs().flight();
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_DOUBLE_EQ(flight[0].load_balance, 1.0);
  EXPECT_DOUBLE_EQ(flight[0].ranks[1].abft_s, 0.004);
  EXPECT_DOUBLE_EQ(flight[0].ranks[1].compute_s, 0.004);
}

TEST_F(ObservatoryTest, StragglerFlagNamesRankAndPhase) {
  obs().begin_run(3, 1, no_expectation());
  // Rank 2 spends 50 ms in FFT-XY against a 1 ms peer median: 50x > 1.75x
  // and 49 ms > the 0.2 ms absolute floor.
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.050}}});
  obs().end_run();
  EXPECT_EQ(obs().straggler_flags(), 1u);
  const auto flag = obs().last_straggler();
  ASSERT_TRUE(flag.has_value());
  EXPECT_EQ(flag->iter, 0);
  EXPECT_EQ(flag->rank, 2);
  EXPECT_EQ(flag->phase, static_cast<int>(PhaseKind::FftXy));
  EXPECT_NEAR(flag->excess_s, 0.049, 1e-12);
}

TEST_F(ObservatoryTest, CollectiveStallAttributedToExchange) {
  obs().begin_run(3, 1, no_expectation());
  // Equal compute everywhere; rank 1 blocks 50 ms inside the exchange.
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.001}},
                  {{PhaseKind::FftZ, 0.001}},
                  {{PhaseKind::FftZ, 0.001}}},
                 {0.001, 0.050, 0.001});
  obs().end_run();
  const auto flag = obs().last_straggler();
  ASSERT_TRUE(flag.has_value());
  EXPECT_EQ(flag->rank, 1);
  EXPECT_EQ(flag->phase, kNumPhaseKinds);  // the "exchange" pseudo-phase
}

TEST_F(ObservatoryTest, BelowThresholdNeverFlags) {
  obs().begin_run(2, 1, no_expectation());
  // 1.5x the peer: below the 1.75x default factor.
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.010}}, {{PhaseKind::FftZ, 0.015}}});
  // Huge ratio but sub-floor absolute excess (50 us < 200 us).
  feed_iteration(obs(), 1,
                 {{{PhaseKind::FftZ, 0.00001}}, {{PhaseKind::FftZ, 0.00006}}});
  obs().end_run();
  EXPECT_EQ(obs().straggler_flags(), 0u);
  EXPECT_FALSE(obs().last_straggler().has_value());
}

TEST_F(ObservatoryTest, DriftAgainstModelExpectation) {
  // The model predicts all compute in FFT-Z; the run spends everything in
  // Pack.  Pack's EWMA share after one iteration is alpha * 1.0 = 0.1,
  // above its expected-share threshold 0 * 1.6 + 0.05.
  std::array<double, kNumPhaseKinds> expected{};
  expected[static_cast<std::size_t>(PhaseKind::FftZ)] = 1.0;
  obs().begin_run(1, 1, expected);
  feed_iteration(obs(), 0, {{{PhaseKind::Pack, 0.010}}});
  obs().end_run();
  EXPECT_GE(obs().drift_flags(), 1u);
  const auto flight = obs().flight();
  ASSERT_EQ(flight.size(), 1u);
  EXPECT_NE(flight[0].drift_mask &
                (1u << static_cast<unsigned>(PhaseKind::Pack)),
            0u);
  // FFT-Z itself is under its expectation -- not drifted.
  EXPECT_EQ(flight[0].drift_mask &
                (1u << static_cast<unsigned>(PhaseKind::FftZ)),
            0u);
}

TEST_F(ObservatoryTest, NoExpectationDisablesDrift) {
  obs().begin_run(1, 1, no_expectation());
  for (int i = 0; i < 10; ++i) {
    feed_iteration(obs(), i, {{{PhaseKind::Pack, 0.010}}});
  }
  obs().end_run();
  EXPECT_EQ(obs().drift_flags(), 0u);
}

TEST_F(ObservatoryTest, RingEvictsOldestIterations) {
  obs().configure(ObsMode::Watch, /*ring_capacity=*/4);
  obs().begin_run(1, 1, no_expectation());
  for (int i = 0; i < 6; ++i) {
    feed_iteration(obs(), i, {{{PhaseKind::FftZ, 0.001}}});
  }
  obs().end_run();
  EXPECT_EQ(obs().iterations_done(), 6u);
  const auto flight = obs().flight();
  ASSERT_EQ(flight.size(), 4u);  // iterations 2..5; 0 and 1 aged out
  EXPECT_EQ(flight.front().iter, 2);
  EXPECT_EQ(flight.back().iter, 5);
}

TEST_F(ObservatoryTest, TaskGroupIterationsShareASlot) {
  // With ntg = 2, iterations advance by 2 bands; slot_for divides by ntg
  // so consecutive iterations do not collide in the ring.
  obs().configure(ObsMode::Watch, /*ring_capacity=*/4);
  obs().begin_run(1, 2, no_expectation());
  for (int i = 0; i < 8; i += 2) {
    feed_iteration(obs(), i, {{{PhaseKind::FftZ, 0.001}}});
  }
  obs().end_run();
  const auto flight = obs().flight();
  ASSERT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.front().iter, 0);
  EXPECT_EQ(flight.back().iter, 6);
}

TEST_F(ObservatoryTest, FlightJsonRoundTripsThroughParser) {
  obs().begin_run(2, 1, no_expectation());
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.004}}, {{PhaseKind::FftZ, 0.002}}},
                 {0.001, 0.001});
  obs().end_run();
  const auto doc = fx::core::json::parse(obs().flight_json().dump());
  EXPECT_EQ(doc.number_at("nranks"), 2.0);
  const auto* iters = doc.find("iterations");
  ASSERT_NE(iters, nullptr);
  ASSERT_EQ(iters->as_array().size(), 1u);
  const auto& it = iters->as_array()[0];
  EXPECT_EQ(it.number_at("iter"), 0.0);
  EXPECT_EQ(it.number_at("load_balance"), 0.75);
  const auto* ranks = it.find("ranks");
  ASSERT_NE(ranks, nullptr);
  ASSERT_EQ(ranks->as_array().size(), 2u);
  EXPECT_EQ(ranks->as_array()[0].number_at("exchange_ms"), 1.0);
}

TEST_F(ObservatoryTest, IncidentHookDumpsFlightToTraceDir) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "fx_obs_incident_test";
  std::filesystem::remove_all(dir);
  setenv("FFTX_TRACE_DIR", dir.string().c_str(), 1);

  obs().begin_run(1, 1, no_expectation());
  feed_iteration(obs(), 0, {{{PhaseKind::FftZ, 0.001}}});
  // Incidents route through the core hook -- the same path SdcError,
  // recovery shrink, guard retries and watchdog near-misses use.
  fx::core::emit_incident("test: injected incident");
  obs().end_run();
  unsetenv("FFTX_TRACE_DIR");

  EXPECT_EQ(obs().incidents(), 1u);
  bool found = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().starts_with("obs_flight_")) {
      found = true;
      const auto doc = fx::core::json::load_file(entry.path().string());
      const auto* incidents = doc.find("incidents");
      ASSERT_NE(incidents, nullptr);
      ASSERT_EQ(incidents->as_array().size(), 1u);
      EXPECT_EQ(incidents->as_array()[0].as_string(),
                "test: injected incident");
    }
  }
  EXPECT_TRUE(found);
  std::filesystem::remove_all(dir);
}

TEST_F(ObservatoryTest, StrictModeThrowsOnAccumulatedFlags) {
  obs().configure(ObsMode::Strict);
  obs().begin_run(3, 1, no_expectation());
  EXPECT_NO_THROW(obs().strict_check());  // clean so far
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.050}}});
  EXPECT_THROW(obs().strict_check(), fx::core::Error);
  obs().end_run();

  // A new run rebases the strict counter: old flags do not re-throw.
  obs().begin_run(3, 1, no_expectation());
  EXPECT_NO_THROW(obs().strict_check());
  obs().end_run();
}

TEST_F(ObservatoryTest, WatchModeNeverThrows) {
  obs().begin_run(3, 1, no_expectation());
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.001}},
                  {{PhaseKind::FftXy, 0.050}}});
  obs().end_run();
  EXPECT_GE(obs().straggler_flags(), 1u);
  EXPECT_NO_THROW(obs().strict_check());
}

TEST_F(ObservatoryTest, DetectionThresholdsAreConfigurable) {
  obs().begin_run(2, 1, no_expectation());
  Observatory::Detection det;
  det.straggler_factor = 1.2;  // tighter than the 1.5x gap below
  det.straggler_floor_s = 1e-6;
  obs().configure_detection(det);
  feed_iteration(obs(), 0,
                 {{{PhaseKind::FftZ, 0.010}}, {{PhaseKind::FftZ, 0.015}}});
  obs().end_run();
  EXPECT_EQ(obs().straggler_flags(), 1u);
}

}  // namespace
