// Timeline and histogram renderers: structural golden checks.
#include "trace/timeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace {

using fx::mpi::CommOpKind;
using fx::trace::CommOpEvent;
using fx::trace::ComputeEvent;
using fx::trace::PhaseKind;
using fx::trace::TimelineOptions;
using fx::trace::TimelineView;
using fx::trace::Tracer;

void fill_trace(Tracer& tr) {
  // Rank 0: fft_xy for [0, 0.5), scatter for [0.5, 1.0).
  tr.record_compute({0, 0, PhaseKind::FftXy, 0, 0.0, 0.5, 0.7e9});
  tr.record_compute({0, 0, PhaseKind::Scatter, 0, 0.5, 1.0, 0.1e9});
  // Rank 1: pack whole second.
  tr.record_compute({1, 0, PhaseKind::Pack, 0, 0.0, 1.0, 0.2e9});
  tr.record_comm({0, 0, CommOpKind::Alltoallv, 3, 2, 0, 64, 1.0, 1.25});
  tr.record_comm({1, 0, CommOpKind::Alltoall, 3, 2, 0, 64, 1.0, 1.25});
}

struct TraceFixture {
  TraceFixture() : tr(2) { fill_trace(tr); }
  Tracer tr;
};

TEST(Timeline, PhaseViewShowsPhaseLetters) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.view = TimelineView::Phase;
  opt.width = 40;
  const std::string out = fx::trace::render_timeline(tr, opt);
  EXPECT_NE(out.find('X'), std::string::npos);  // fft_xy
  EXPECT_NE(out.find('S'), std::string::npos);  // scatter
  EXPECT_NE(out.find('K'), std::string::npos);  // pack
  EXPECT_NE(out.find("legend"), std::string::npos);
  // Two rank rows.
  EXPECT_NE(out.find("r0"), std::string::npos);
  EXPECT_NE(out.find("r1"), std::string::npos);
}

TEST(Timeline, MpiViewShowsOperations) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.view = TimelineView::MpiCall;
  opt.width = 40;
  const std::string out = fx::trace::render_timeline(tr, opt);
  EXPECT_NE(out.find('a'), std::string::npos);  // Alltoallv on rank 0
  EXPECT_NE(out.find('A'), std::string::npos);  // Alltoall on rank 1
}

TEST(Timeline, CommunicatorViewShowsCommIds) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.view = TimelineView::Communicator;
  opt.width = 20;
  const std::string out = fx::trace::render_timeline(tr, opt);
  EXPECT_NE(out.find('3'), std::string::npos);  // comm id 3
}

TEST(Timeline, WindowRestrictsContent) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.view = TimelineView::Phase;
  opt.width = 20;
  opt.t_begin = 0.0;
  opt.t_end = 0.4;  // fft_xy only
  const std::string out = fx::trace::render_timeline(tr, opt);
  const std::string rows = out.substr(0, out.find("legend"));
  EXPECT_NE(rows.find('X'), std::string::npos);
  EXPECT_EQ(rows.find('S'), std::string::npos);
}

TEST(Timeline, IpcViewEncodesDigits) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.view = TimelineView::Ipc;
  opt.width = 30;
  opt.freq_ghz = 1.0;
  const std::string out = fx::trace::render_timeline(tr, opt);
  // fft_xy: 0.7e9 instr / 0.5 s / 1 GHz = 1.4 IPC -> digit 7.
  EXPECT_NE(out.find('7'), std::string::npos);
}

TEST(Timeline, RejectsTinyWidth) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  TimelineOptions opt;
  opt.width = 3;
  EXPECT_THROW((void)fx::trace::render_timeline(tr, opt), fx::core::Error);
}

TEST(Histogram, ShadesAccumulatedDurations) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  const std::string out = fx::trace::render_ipc_histogram(tr, 20, 1.0);
  EXPECT_NE(out.find("IPC histogram"), std::string::npos);
  EXPECT_NE(out.find('@'), std::string::npos);  // densest cell
  EXPECT_NE(out.find("r0.0"), std::string::npos);
  EXPECT_NE(out.find("r1.0"), std::string::npos);
}

TEST(Histogram, RejectsSingleBin) {
  const TraceFixture fx_; const Tracer& tr = fx_.tr;
  EXPECT_THROW((void)fx::trace::render_ipc_histogram(tr, 1, 1.0),
               fx::core::Error);
}

TEST(Csv, DumpContainsAllStreams) {
  TraceFixture fx_;
  Tracer& tr = fx_.tr;
  tr.record_task({0, 1, "band_fft#0", 0.0, 1.0});
  const std::string path =
      (std::filesystem::temp_directory_path() / "fx_trace_dump.csv").string();
  fx::trace::write_events_csv(tr, path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("compute"), std::string::npos);
  EXPECT_NE(content.find("comm"), std::string::npos);
  EXPECT_NE(content.find("task"), std::string::npos);
  EXPECT_NE(content.find("fft_xy"), std::string::npos);
  EXPECT_NE(content.find("band_fft#0"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
